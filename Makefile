# Development entry points. Everything is plain `go` underneath; the
# targets just document the common invocations.

GO ?= go

.PHONY: all build vet test test-race bench bench-kernel bench-json profile experiments experiments-quick fuzz serve smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Coverage-kernel micro-benchmarks, repeated so the output feeds
# benchstat directly: `make bench-kernel > new.txt && benchstat old.txt
# new.txt`. One iteration = one point, so ns/op reads as per-point cost.
BENCH_COUNT ?= 6
bench-kernel:
	$(GO) test -run=NONE -bench='BenchmarkFullView|BenchmarkSectorOccupancy|BenchmarkCountCovering' \
		-benchmem -count=$(BENCH_COUNT) .

# Machine-readable kernel numbers (the format committed as
# BENCH_baseline.json / BENCH_kernel.json).
bench-json:
	$(GO) run ./cmd/fvcbench -kernelbench -benchout BENCH_kernel.json

# CPU + allocation profiles of the kernel benchmarks; inspect with
# `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/fvcbench -kernelbench -cpuprofile cpu.pprof -memprofile mem.pprof

# Regenerate every evaluation artefact at full size (minutes).
experiments:
	$(GO) run ./cmd/fvcbench all

# Reduced sizes for a fast sanity pass (seconds).
experiments-quick:
	$(GO) run ./cmd/fvcbench -quick all

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzNormalizeAngle -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzAngularDistance -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzSectorContains -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzMinArcCoverageDepth -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzParseProfile -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzCameraCovers -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=15s ./internal/checkpoint/
	$(GO) test -run=NONE -fuzz=FuzzReplay -fuzztime=15s ./internal/depjournal/
	$(GO) test -run=NONE -fuzz=FuzzReplay -fuzztime=15s ./internal/jobs/

# Run the fvcd coverage query daemon (see README "Running the service").
FVCD_ADDR ?= :8080
serve:
	$(GO) run ./cmd/fvcd -addr $(FVCD_ADDR)

# End-to-end service smoke: boots fvcd on a random port, verifies a
# query against the library, scrapes /metrics, and checks SIGTERM drain.
smoke:
	bash scripts/smoke_fvcd.sh

# `go clean` removes build products only; the profiling and benchmark
# targets above write artefacts into the repo root that it leaves
# behind. BENCH_kernel.json is regenerable via `make bench-json` (the
# committed copy is restored by git).
clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof BENCH_*.json
