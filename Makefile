# Development entry points. Everything is plain `go` underneath; the
# targets just document the common invocations.

GO ?= go

.PHONY: all build vet test test-race bench bench-kernel bench-json profile experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Coverage-kernel micro-benchmarks, repeated so the output feeds
# benchstat directly: `make bench-kernel > new.txt && benchstat old.txt
# new.txt`. One iteration = one point, so ns/op reads as per-point cost.
BENCH_COUNT ?= 6
bench-kernel:
	$(GO) test -run=NONE -bench='BenchmarkFullView|BenchmarkSectorOccupancy|BenchmarkCountCovering' \
		-benchmem -count=$(BENCH_COUNT) .

# Machine-readable kernel numbers (the format committed as
# BENCH_baseline.json / BENCH_kernel.json).
bench-json:
	$(GO) run ./cmd/fvcbench -kernelbench -benchout BENCH_kernel.json

# CPU + allocation profiles of the kernel benchmarks; inspect with
# `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/fvcbench -kernelbench -cpuprofile cpu.pprof -memprofile mem.pprof

# Regenerate every evaluation artefact at full size (minutes).
experiments:
	$(GO) run ./cmd/fvcbench all

# Reduced sizes for a fast sanity pass (seconds).
experiments-quick:
	$(GO) run ./cmd/fvcbench -quick all

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzNormalizeAngle -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzAngularDistance -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzSectorContains -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzMinArcCoverageDepth -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzParseProfile -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzCameraCovers -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=15s ./internal/checkpoint/

clean:
	$(GO) clean ./...
