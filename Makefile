# Development entry points. Everything is plain `go` underneath; the
# targets just document the common invocations.

GO ?= go

.PHONY: all build vet test test-race bench experiments experiments-quick fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artefact at full size (minutes).
experiments:
	$(GO) run ./cmd/fvcbench all

# Reduced sizes for a fast sanity pass (seconds).
experiments-quick:
	$(GO) run ./cmd/fvcbench -quick all

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzNormalizeAngle -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzAngularDistance -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzSectorContains -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzMinArcCoverageDepth -fuzztime=15s ./internal/geom/
	$(GO) test -run=NONE -fuzz=FuzzParseProfile -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzCameraCovers -fuzztime=15s ./internal/sensor/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=15s ./internal/checkpoint/

clean:
	$(GO) clean ./...
