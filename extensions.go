package fullview

import (
	"context"

	"fullview/internal/analytic"
	"fullview/internal/construct"
	"fullview/internal/core"
	"fullview/internal/holes"
	"fullview/internal/lifetime"
	"fullview/internal/orient"
	"fullview/internal/schedule"
	"fullview/internal/track"
)

// Fault-tolerance and operations types.
type (
	// MultiplicityStats summarizes full-view multiplicity over points.
	MultiplicityStats = core.MultiplicityStats
	// Hole is a connected cluster of uncovered grid points.
	Hole = holes.Hole
	// HealResult reports a hole-healing run.
	HealResult = holes.Result
	// DeterministicPlan sizes the ring construction that guarantees
	// full-view coverage deterministically.
	DeterministicPlan = construct.Plan
	// Trajectory is a moving target's path for frontal-capture analysis.
	Trajectory = track.Trajectory
	// TrackReport summarizes where a target's face was captured along a
	// trajectory.
	TrackReport = track.Report
	// TrackCapture is one per-sample capture verdict.
	TrackCapture = track.Capture
	// OrientResult reports an orientation-optimization run.
	OrientResult = orient.Result
	// FailureSchedule is one realization of exponential battery
	// failures over a network.
	FailureSchedule = lifetime.FailureSchedule
)

// SampleAwake returns the duty-cycled sub-network: each camera awake
// independently with probability p this epoch.
func SampleAwake(net *Network, p float64, r *RNG) (*Network, error) {
	return lifetime.SampleAwake(net, p, r)
}

// NewFailureSchedule draws i.i.d. Exponential(1/meanLifetime) failure
// times for every camera.
func NewFailureSchedule(net *Network, meanLifetime float64, r *RNG) (*FailureSchedule, error) {
	return lifetime.NewFailureSchedule(net, meanLifetime, r)
}

// MinimalCover selects a small camera subset whose activation satisfies
// the sufficient condition (hence full-view covers) every point of a
// gridSide×gridSide grid — greedy set cover, deterministic.
func MinimalCover(net *Network, theta float64, gridSide int) ([]int, error) {
	return schedule.MinimalCover(net, theta, gridSide)
}

// ActivationShifts partitions the cameras into disjoint shifts, each of
// which full-view covers the grid; rotating shifts multiplies network
// lifetime by their count.
func ActivationShifts(net *Network, theta float64, gridSide int) ([][]int, error) {
	return schedule.Shifts(net, theta, gridSide)
}

// Subnetwork materializes the network consisting of the given camera
// indices.
func Subnetwork(net *Network, indices []int) (*Network, error) {
	return schedule.Subnetwork(net, indices)
}

// OptimizeOrientations re-aims the network's cameras (positions fixed)
// to maximize the number of full-view-covered probe points, with at most
// budget re-aimings. Deterministic greedy local search; see package
// orient for the heuristic's characteristics.
func OptimizeOrientations(net *Network, theta float64, probeSide, budget int) (OrientResult, error) {
	return orient.Optimize(net, theta, probeSide, budget)
}

// NewTrajectory builds a target path from at least two waypoints.
func NewTrajectory(waypoints ...Vec) (Trajectory, error) {
	return track.NewTrajectory(waypoints...)
}

// TrackTarget walks a target along the trajectory (facing its direction
// of travel) and reports where a camera captured it frontally, i.e.
// within the checker's θ of head-on.
func TrackTarget(checker *Checker, tr Trajectory, step float64) (TrackReport, error) {
	return track.Run(checker, tr, step)
}

// RequiredNSufficient returns the smallest n for which a homogeneous
// per-camera sensing area s meets the sufficient CSA — the inverse
// design question of Theorem 2.
func RequiredNSufficient(s, theta float64) (int, error) {
	return analytic.RequiredNSufficient(s, theta)
}

// BestGuaranteedTheta returns the smallest effective angle θ (the best
// face-capture quality) a fleet of n cameras with per-camera sensing
// area s can guarantee w.h.p. — Theorem 2 inverted in the quality
// direction.
func BestGuaranteedTheta(s float64, n int) (float64, error) {
	return analytic.BestGuaranteedTheta(s, n)
}

// FindHoles sweeps a gridSide×gridSide grid and returns the connected
// full-view coverage holes, largest first. The grid labelling runs in
// parallel over all cores.
func FindHoles(checker *Checker, gridSide int) ([]Hole, error) {
	return holes.Find(checker, gridSide)
}

// FindHolesContext is FindHoles with context cancellation and an
// explicit worker count (GOMAXPROCS when workers ≤ 0) for the
// grid-labelling sweep. The holes found are identical at any worker
// count.
func FindHolesContext(ctx context.Context, checker *Checker, gridSide, workers int) ([]Hole, error) {
	return holes.FindContext(ctx, checker, gridSide, workers)
}

// PatchHole proposes a ring of cameras that covers the hole (plus pad)
// when added to the network.
func PatchHole(t Torus, h Hole, theta, pad float64) ([]Camera, error) {
	return holes.Patch(t, h, theta, pad)
}

// HealNetwork repeatedly finds and patches holes until a
// gridSide×gridSide sweep is fully covered or maxRounds is exhausted.
func HealNetwork(net *Network, theta float64, gridSide, maxRounds int) (HealResult, error) {
	return holes.Heal(net, theta, gridSide, maxRounds)
}

// NewDeterministicPlan sizes a deterministic ring deployment guaranteeing
// full-view coverage of torus t with effective angle theta, tiling the
// region cellsPerSide×cellsPerSide.
func NewDeterministicPlan(t Torus, theta float64, cellsPerSide int) (DeterministicPlan, error) {
	return construct.NewPlan(t, theta, cellsPerSide)
}

// BuildDeterministic builds the plan's network on torus t.
func BuildDeterministic(p DeterministicPlan, t Torus) (*Network, error) {
	return p.Build(t)
}
