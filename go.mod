module fullview

go 1.22
