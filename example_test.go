package fullview_test

import (
	"fmt"
	"math"

	"fullview"
)

// ExampleNewChecker demonstrates the basic point-coverage workflow: four
// cameras surrounding a point at the cardinal directions full-view cover
// it exactly down to θ = π/4.
func ExampleNewChecker() {
	p := fullview.V(0.5, 0.5)
	var cams []fullview.Camera
	for i := 0; i < 4; i++ {
		bearing := float64(i) * math.Pi / 2
		cams = append(cams, fullview.Camera{
			Pos:      fullview.V(0.5+0.1*math.Cos(bearing), 0.5+0.1*math.Sin(bearing)),
			Orient:   math.Pi + bearing, // face back toward p
			Radius:   0.2,
			Aperture: math.Pi / 2,
		})
	}
	net, err := fullview.NewNetwork(fullview.UnitTorus, cams)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, theta := range []float64{math.Pi / 4, math.Pi / 8} {
		checker, err := fullview.NewChecker(net, theta)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("θ = π/%d: covered = %v\n", int(math.Round(math.Pi/theta)), checker.FullViewCovered(p))
	}
	// Output:
	// θ = π/4: covered = true
	// θ = π/8: covered = false
}

// ExampleCSANecessary evaluates Theorem 1 at the paper's Figure 7
// operating point.
func ExampleCSANecessary() {
	csa, err := fullview.CSANecessary(1000, math.Pi/4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("s_Nc(1000) at θ=π/4: %.4f\n", csa)
	// Output:
	// s_Nc(1000) at θ=π/4: 0.0409
}

// ExampleKNecessary shows the sector counts behind the two geometric
// conditions.
func ExampleKNecessary() {
	theta := math.Pi / 4
	fmt.Println("necessary sectors: ", fullview.KNecessary(theta))
	fmt.Println("sufficient sectors:", fullview.KSufficient(theta))
	// Output:
	// necessary sectors:  4
	// sufficient sectors: 8
}

// ExamplePoissonPN evaluates Theorem 3 for a homogeneous airdrop.
func ExamplePoissonPN() {
	profile, err := fullview.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pn, err := fullview.PoissonPN(profile, 2000, math.Pi/4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("P_N at density 2000: %.3f\n", pn)
	// Output:
	// P_N at density 2000: 0.923
}

// ExampleProfile_ScaleToArea sizes a heterogeneous mix to hit a target
// weighted sensing area without changing its shape.
func ExampleProfile_ScaleToArea() {
	mix, err := fullview.NewProfile(
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	scaled, err := mix.ScaleToArea(0.05)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("weighted sensing area: %.2f\n", scaled.WeightedSensingArea())
	// Output:
	// weighted sensing area: 0.05
}

// ExampleNewDeterministicPlan sizes and verifies a placement with a
// built-in full-view guarantee.
func ExampleNewDeterministicPlan() {
	theta := math.Pi / 3
	plan, err := fullview.NewDeterministicPlan(fullview.UnitTorus, theta, 4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cameras: %d (%d per cell)\n", plan.TotalCameras(), plan.CamerasPerCell)
	net, err := fullview.BuildDeterministic(plan, fullview.UnitTorus)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	grid, err := fullview.GridPoints(fullview.UnitTorus, 20)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("region covered:", checker.SurveyRegion(grid).AllFullView())
	// Output:
	// cameras: 96 (6 per cell)
	// region covered: true
}
