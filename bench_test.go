// Benchmarks regenerating every table and figure of the paper (via the
// figures registry, one benchmark per DESIGN.md experiment) plus
// micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute in Quick mode so a full -bench pass
// stays in the minutes range; `cmd/fvcbench` (without -quick) produces
// the full-size tables recorded in EXPERIMENTS.md.
package fullview_test

import (
	"io"
	"math"
	"testing"

	"fullview"
	"fullview/internal/figures"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	exp, err := figures.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := figures.Options{Seed: 2012, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per evaluation artefact (DESIGN.md experiment index).

func BenchmarkFig7CSAvsTheta(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8CSAvsN(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkThm1Necessary(b *testing.B)         { benchExperiment(b, "thm1") }
func BenchmarkThm2Sufficient(b *testing.B)        { benchExperiment(b, "thm2") }
func BenchmarkPoissonPNPS(b *testing.B)           { benchExperiment(b, "poisson") }
func BenchmarkOneCoverageDegeneracy(b *testing.B) { benchExperiment(b, "onecov") }
func BenchmarkKCoverageComparison(b *testing.B)   { benchExperiment(b, "kcov") }
func BenchmarkSensingAreaDecisive(b *testing.B)   { benchExperiment(b, "area") }
func BenchmarkConditionGap(b *testing.B)          { benchExperiment(b, "gap") }
func BenchmarkPointFailureProb(b *testing.B)      { benchExperiment(b, "pointprob") }
func BenchmarkBarrier(b *testing.B)               { benchExperiment(b, "barrier") }
func BenchmarkProbSense(b *testing.B)             { benchExperiment(b, "probsense") }
func BenchmarkDeterministicVsRandom(b *testing.B) { benchExperiment(b, "construct") }
func BenchmarkFaultTolerance(b *testing.B)        { benchExperiment(b, "fault") }
func BenchmarkOrientationOptimizer(b *testing.B)  { benchExperiment(b, "orientopt") }
func BenchmarkDutyCycleLifetime(b *testing.B)     { benchExperiment(b, "dutycycle") }
func BenchmarkActivationScheduling(b *testing.B)  { benchExperiment(b, "schedule") }
func BenchmarkHeterogeneousCSA(b *testing.B)      { benchExperiment(b, "hetcsa") }
func BenchmarkThetaSweep(b *testing.B)            { benchExperiment(b, "thetasweep") }

// Micro-benchmarks of the building blocks.

func benchNetwork(b *testing.B, n int) (*fullview.Network, *fullview.Checker) {
	b.Helper()
	profile, err := fullview.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, n, fullview.NewRNG(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	checker, err := fullview.NewChecker(net, math.Pi/4)
	if err != nil {
		b.Fatal(err)
	}
	return net, checker
}

func BenchmarkDeployUniform1000(b *testing.B) {
	profile, err := fullview.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	r := fullview.NewRNG(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fullview.DeployUniform(fullview.UnitTorus, profile, 1000, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeployPoisson1000(b *testing.B) {
	profile, err := fullview.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	r := fullview.NewRNG(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fullview.DeployPoisson(fullview.UnitTorus, profile, 1000, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullViewCheck1000(b *testing.B) {
	_, checker := benchNetwork(b, 1000)
	r := fullview.NewRNG(2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.FullViewCovered(fullview.V(r.Float64(), r.Float64()))
	}
}

func BenchmarkPointReport1000(b *testing.B) {
	_, checker := benchNetwork(b, 1000)
	r := fullview.NewRNG(2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Report(fullview.V(r.Float64(), r.Float64()))
	}
}

func BenchmarkCheckerConstruction10000(b *testing.B) {
	net, _ := benchNetwork(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fullview.NewChecker(net, math.Pi/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSurveyDenseGrid500(b *testing.B) {
	_, checker := benchNetwork(b, 500)
	grid, err := fullview.DenseGrid(fullview.UnitTorus, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.SurveyRegion(grid)
	}
}

// Sweep-engine benchmarks over a ~100k-point grid (317² = 100489):
// BenchmarkSweepSequential is the single-worker baseline and the
// BenchmarkSweepParallelN variants track the speedup of the shared
// parallel sweep engine in the bench trajectory.

func benchSweepGrid(b *testing.B) (*fullview.Checker, []fullview.Vec) {
	b.Helper()
	_, checker := benchNetwork(b, 600)
	grid, err := fullview.GridPoints(fullview.UnitTorus, 317)
	if err != nil {
		b.Fatal(err)
	}
	return checker, grid
}

func benchSweepParallel(b *testing.B, workers int) {
	b.Helper()
	checker, grid := benchSweepGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.SurveyRegionParallel(grid, workers)
	}
}

func BenchmarkSweepSequential(b *testing.B) { benchSweepParallel(b, 1) }
func BenchmarkSweepParallel2(b *testing.B)  { benchSweepParallel(b, 2) }
func BenchmarkSweepParallel4(b *testing.B)  { benchSweepParallel(b, 4) }
func BenchmarkSweepParallel8(b *testing.B)  { benchSweepParallel(b, 8) }

func BenchmarkCSAEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := fullview.CSANecessary(1000, math.Pi/4); err != nil {
			b.Fatal(err)
		}
		if _, err := fullview.CSASufficient(1000, math.Pi/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoissonTheoremEvaluation(b *testing.B) {
	profile, err := fullview.NewProfile(
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fullview.PoissonPN(profile, 1000, math.Pi/4); err != nil {
			b.Fatal(err)
		}
		if _, err := fullview.PoissonPS(profile, 1000, math.Pi/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrierSurvey(b *testing.B) {
	_, checker := benchNetwork(b, 2000)
	line := fullview.HorizontalBarrier(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fullview.SurveyBarrier(checker, line, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
