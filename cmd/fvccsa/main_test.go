package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"s_Nc", "s_Sc", "1-coverage", "k-coverage", "n = 1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomParameters(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "500", "-theta", "0.5", "-phi", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n = 500") || !strings.Contains(out, "0.5π") {
		t.Errorf("custom parameters not reflected:\n%s", out)
	}
	// θ = π/2 ⇒ 2 necessary sectors, 4 sufficient sectors.
	if !strings.Contains(out, "(2 sectors)") || !strings.Contains(out, "(4 sectors)") {
		t.Errorf("sector counts wrong:\n%s", out)
	}
}

func TestRunRejectsBadTheta(t *testing.T) {
	var b strings.Builder
	for _, theta := range []string{"0", "-0.25", "1.5"} {
		if err := run([]string{"-theta", theta}, &b); err == nil {
			t.Errorf("theta %s accepted", theta)
		}
	}
}

func TestRunRejectsBadPhi(t *testing.T) {
	var b strings.Builder
	for _, phi := range []string{"0", "-1", "2.5"} {
		if err := run([]string{"-phi", phi}, &b); err == nil {
			t.Errorf("phi %s accepted", phi)
		}
	}
}

func TestRunRejectsBadN(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "1"}, &b); err == nil {
		t.Error("n=1 accepted")
	}
}
