// Command fvccsa evaluates the paper's critical sensing areas and
// related design quantities for one network configuration: how much
// per-camera sensing area a uniform random deployment of n cameras needs
// before full-view coverage with effective angle θ becomes (im)possible.
//
// Usage:
//
//	fvccsa -n 1000 -theta 0.25
//
// Angles are given as fractions of π: -theta 0.25 means θ = π/4 and
// -phi 0.5 means φ = π/2. The radius column reports the sensing radius a
// camera with aperture φ needs for its sector area to reach each CSA.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"fullview/internal/analytic"
	"fullview/internal/report"
	"fullview/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvccsa:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fvccsa", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 1000, "number of deployed cameras")
		thetaPi     = fs.Float64("theta", 0.25, "effective angle θ as a fraction of π, in (0, 1]")
		aperture    = fs.Float64("phi", 0.5, "camera aperture φ as a fraction of π, in (0, 2]")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, version.String("fvccsa"))
		return nil
	}
	if *thetaPi <= 0 || *thetaPi > 1 {
		return errors.New("-theta must be in (0, 1] (fraction of π)")
	}
	if *aperture <= 0 || *aperture > 2 {
		return errors.New("-phi must be in (0, 2] (fraction of π)")
	}
	theta := *thetaPi * math.Pi
	phi := *aperture * math.Pi

	nec, err := analytic.CSANecessary(*n, theta)
	if err != nil {
		return err
	}
	suf, err := analytic.CSASufficient(*n, theta)
	if err != nil {
		return err
	}
	oneCov, err := analytic.OneCoverageCSA(*n)
	if err != nil {
		return err
	}
	k, err := analytic.KNecessaryChecked(theta)
	if err != nil {
		return err
	}
	kSuf, err := analytic.KSufficientChecked(theta)
	if err != nil {
		return err
	}
	kCov, err := analytic.KCoverageSufficientArea(*n, k)
	if err != nil {
		return err
	}

	table := report.NewTable(
		fmt.Sprintf("Critical sensing areas — n = %d, θ = %.4gπ", *n, *thetaPi),
		"quantity", "value", "radius at phi",
	)
	radius := func(area float64) string {
		return report.F(math.Sqrt(2 * area / phi))
	}
	rows := []struct {
		name string
		area float64
	}{
		{name: fmt.Sprintf("s_Nc — necessary CSA (%d sectors)", k), area: nec},
		{name: fmt.Sprintf("s_Sc — sufficient CSA (%d sectors)", kSuf), area: suf},
		{name: "1-coverage CSA (θ = π degeneracy)", area: oneCov},
		{name: fmt.Sprintf("k-coverage area, k = %d", k), area: kCov},
	}
	for _, row := range rows {
		if err := table.AddRow(row.name, report.F(row.area), radius(row.area)); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"\nInterpretation: with weighted sensing area s_c below s_Nc the region cannot be\n"+
			"full-view covered asymptotically; above s_Sc it is w.h.p.; between them coverage\n"+
			"depends on the realization (paper, Section VI-C). Radius column assumes φ = %.4gπ.\n",
		*aperture); err != nil {
		return err
	}

	// The inverse question: the quality this fleet could promise if the
	// cameras carried the sufficient CSA's sensing area at θ = π/4.
	if best, err := analytic.BestGuaranteedTheta(suf, *n); err == nil {
		_, err = fmt.Fprintf(w,
			"A fleet of %d cameras with per-camera sensing area %s can guarantee full-view\n"+
				"coverage down to θ = %.4gπ (BestGuaranteedTheta).\n",
			*n, report.F(suf), best/math.Pi)
		return err
	}
	return nil
}
