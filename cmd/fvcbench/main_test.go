package main

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"fullview/internal/checkpoint"
	"fullview/internal/figures"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range figures.All() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("list output missing %q", e.Name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "fig7"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 7") {
		t.Error("fig7 output missing its table")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"nope"}, &b)
	if !errors.Is(err, figures.ErrUnknownExperiment) {
		t.Errorf("error = %v, want ErrUnknownExperiment", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no-arg invocation should fail")
	}
}

func TestRunTooManyArgs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig7", "fig8"}, &b); err == nil {
		t.Error("two experiment names should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunHonorsTrialsOverride(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-trials", "2", "thm1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2 trials/cell") {
		t.Errorf("trials override not reflected in output:\n%s", b.String())
	}
}

func TestRunCheckpointResumesBitIdentical(t *testing.T) {
	args := []string{"-quick", "-trials", "3", "-seed", "11", "thm1"}
	var plain strings.Builder
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/journals" // exercise MkdirAll
	ckptArgs := append([]string{"-checkpoint", dir}, args...)
	var first strings.Builder
	if err := run(ckptArgs, &first); err != nil {
		t.Fatal(err)
	}
	if first.String() != plain.String() {
		t.Errorf("checkpointed output differs from plain:\n%s\nvs\n%s", first.String(), plain.String())
	}
	journals, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(journals) == 0 {
		t.Fatal("no journals written")
	}
	// Second run resumes from the completed journals: same bytes out.
	var second strings.Builder
	if err := run(ckptArgs, &second); err != nil {
		t.Fatal(err)
	}
	if second.String() != plain.String() {
		t.Error("resumed run output differs from plain run")
	}
}

func TestRunCheckpointRefusesChangedSeed(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-checkpoint", dir, "-quick", "-trials", "2", "-seed", "3", "thm1"}, &b); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-checkpoint", dir, "-quick", "-trials", "2", "-seed", "4", "thm1"}, &b)
	if !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("changed seed against same journals: err = %v, want ErrMismatch", err)
	}
}
