package main

import (
	"errors"
	"strings"
	"testing"

	"fullview/internal/figures"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range figures.All() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("list output missing %q", e.Name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "fig7"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 7") {
		t.Error("fig7 output missing its table")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"nope"}, &b)
	if !errors.Is(err, figures.ErrUnknownExperiment) {
		t.Errorf("error = %v, want ErrUnknownExperiment", err)
	}
}

func TestRunNoArgs(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no-arg invocation should fail")
	}
}

func TestRunTooManyArgs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig7", "fig8"}, &b); err == nil {
		t.Error("two experiment names should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &b); err == nil {
		t.Error("unknown flag should fail")
	}
}

func TestRunHonorsTrialsOverride(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-trials", "2", "thm1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2 trials/cell") {
		t.Errorf("trials override not reflected in output:\n%s", b.String())
	}
}
