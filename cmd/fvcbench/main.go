// Command fvcbench regenerates the paper's tables and figures and the
// repository's validation experiments (DESIGN.md E1–E18).
//
// Usage:
//
//	fvcbench [flags] <experiment>|all
//	fvcbench -list
//
// Flags:
//
//	-quick        shrink populations and trial counts (seconds, not minutes)
//	-seed N       master RNG seed (default 2012)
//	-trials N     override the per-cell Monte-Carlo trial count
//	-parallel N   cap worker goroutines (default GOMAXPROCS); applies to
//	              trial scheduling and grid sweeps alike, both of which
//	              run through the shared internal/sweep engine
//	-checkpoint D journal completed Monte-Carlo trials to D/<cell>.jsonl
//	              and resume from those journals on restart; a killed run
//	              re-executes only unfinished trials and the final tables
//	              are bit-identical to an uninterrupted run
//	-list         list registered experiments and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fullview/internal/figures"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fvcbench", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "shrink populations and trial counts")
		seed     = fs.Uint64("seed", 0, "master RNG seed (0 = default 2012)")
		trials   = fs.Int("trials", 0, "override per-cell trial count (0 = experiment default)")
		parallel = fs.Int("parallel", 0, "worker goroutines for trials and sweeps (0 = GOMAXPROCS)")
		ckptDir  = fs.String("checkpoint", "", "journal trial progress to this directory and resume from it")
		list     = fs.Bool("list", false, "list experiments and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: fvcbench [flags] <experiment>|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range figures.All() {
			fmt.Fprintf(stdout, "%-10s %-4s %s\n", e.Name, e.ID, e.Description)
		}
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name, got %d args", fs.NArg())
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	opts := figures.Options{
		Seed:          *seed,
		Trials:        *trials,
		Parallelism:   *parallel,
		Quick:         *quick,
		CheckpointDir: *ckptDir,
	}
	name := fs.Arg(0)
	if name == "all" {
		return figures.RunAll(stdout, opts)
	}
	e, err := figures.Lookup(name)
	if err != nil {
		return fmt.Errorf("%w (use -list to see experiments)", err)
	}
	return e.Run(stdout, opts)
}
