// Command fvcbench regenerates the paper's tables and figures and the
// repository's validation experiments (DESIGN.md E1–E18).
//
// Usage:
//
//	fvcbench [flags] <experiment>|all
//	fvcbench -list
//
// Flags:
//
//	-quick        shrink populations and trial counts (seconds, not minutes)
//	-seed N       master RNG seed (default 2012)
//	-trials N     override the per-cell Monte-Carlo trial count
//	-parallel N   cap worker goroutines (default GOMAXPROCS); applies to
//	              trial scheduling and grid sweeps alike, both of which
//	              run through the shared internal/sweep engine
//	-checkpoint D journal completed Monte-Carlo trials to D/<cell>.jsonl
//	              and resume from those journals on restart; a killed run
//	              re-executes only unfinished trials and the final tables
//	              are bit-identical to an uninterrupted run
//	-list         list registered experiments and exit
//
// Kernel benchmark harness (the repository's perf trajectory):
//
//	-kernelbench  run the per-point coverage-kernel micro-benchmarks
//	              instead of an experiment and print benchstat-compatible
//	              lines
//	-benchout F   also write the kernel benchmark results as JSON to F
//	              (ns/point, B/point, allocs/point per benchmark), e.g.
//	              BENCH_kernel.json
//	-benchtime D  minimum measuring time per kernel benchmark (default
//	              1s; "1x" runs a single small batch — the CI smoke mode)
//	-benchbaseline F
//	              compare against a committed baseline JSON (e.g.
//	              BENCH_kernel.json) and exit non-zero if any case's
//	              ns/point regresses by more than -benchmaxregress —
//	              the CI perf gate
//	-benchmaxregress R
//	              regression tolerance as a fraction (default 0.10,
//	              i.e. fail beyond +10% ns/point)
//	-batch M      which kernel execution paths to measure: "all"
//	              (default), "point" (point-at-a-time cases only), or
//	              "batch" (cell-sorted batch cases only) — the A/B
//	              profiling switch; incompatible with -benchbaseline,
//	              whose gate needs the full suite
//
// Profiling (usable with any experiment or -kernelbench):
//
//	-cpuprofile F write a CPU profile to F
//	-memprofile F write an allocation profile to F at exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fullview/internal/figures"
	"fullview/internal/kernelbench"
	"fullview/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fvcbench", flag.ContinueOnError)
	var (
		quick    = fs.Bool("quick", false, "shrink populations and trial counts")
		seed     = fs.Uint64("seed", 0, "master RNG seed (0 = default 2012)")
		trials   = fs.Int("trials", 0, "override per-cell trial count (0 = experiment default)")
		parallel = fs.Int("parallel", 0, "worker goroutines for trials and sweeps (0 = GOMAXPROCS)")
		ckptDir  = fs.String("checkpoint", "", "journal trial progress to this directory and resume from it")
		list     = fs.Bool("list", false, "list experiments and exit")

		kbench       = fs.Bool("kernelbench", false, "run the coverage-kernel micro-benchmarks")
		benchOut     = fs.String("benchout", "", "write kernel benchmark results as JSON to this file")
		benchTime    = fs.String("benchtime", "1s", "minimum measuring time per kernel benchmark (duration, or \"1x\" for a single batch)")
		benchBase    = fs.String("benchbaseline", "", "baseline JSON to compare against; regressions past -benchmaxregress fail the run")
		benchRegress = fs.Float64("benchmaxregress", 0.10, "ns/point regression tolerance vs -benchbaseline, as a fraction")
		benchBatch   = fs.String("batch", "all", "kernel paths to measure: all, point, or batch (A/B profiling)")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file at exit")

		showVersion = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: fvcbench [flags] <experiment>|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("fvcbench"))
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fvcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fvcbench: memprofile:", err)
			}
		}()
	}

	if *kbench {
		return runKernelBench(stdout, *benchTime, *benchOut, *benchBase, *benchRegress, *benchBatch)
	}

	if *list {
		for _, e := range figures.All() {
			fmt.Fprintf(stdout, "%-10s %-4s %s\n", e.Name, e.ID, e.Description)
		}
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment name, got %d args", fs.NArg())
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
	}
	opts := figures.Options{
		Seed:          *seed,
		Trials:        *trials,
		Parallelism:   *parallel,
		Quick:         *quick,
		CheckpointDir: *ckptDir,
	}
	name := fs.Arg(0)
	if name == "all" {
		return figures.RunAll(stdout, opts)
	}
	e, err := figures.Lookup(name)
	if err != nil {
		return fmt.Errorf("%w (use -list to see experiments)", err)
	}
	return e.Run(stdout, opts)
}

// runKernelBench executes the kernel micro-benchmark suite, prints
// benchstat-compatible lines, optionally writes the JSON report, and —
// with a baseline — enforces the regression gate.
func runKernelBench(stdout io.Writer, benchTime, benchOut, benchBase string, maxRegress float64, batchMode string) error {
	var target time.Duration
	switch benchTime {
	case "1x":
		target = 0 // a single batch per case — the CI smoke mode
	default:
		var err error
		target, err = time.ParseDuration(benchTime)
		if err != nil {
			return fmt.Errorf("benchtime: %w", err)
		}
	}
	var keep func(kernelbench.Case) bool
	switch batchMode {
	case "", "all":
	case "point":
		keep = func(c kernelbench.Case) bool { return !strings.HasSuffix(c.Name, "Batch") }
	case "batch":
		keep = func(c kernelbench.Case) bool { return strings.HasSuffix(c.Name, "Batch") }
	default:
		return fmt.Errorf("batch: unknown mode %q (all, point, or batch)", batchMode)
	}
	if keep != nil && benchBase != "" {
		return fmt.Errorf("-batch %s cannot be combined with -benchbaseline: the gate needs the full suite (missing cases fail Compare)", batchMode)
	}
	report, err := kernelbench.RunFiltered(target, keep)
	if err != nil {
		return err
	}
	if err := report.WriteBenchstat(stdout); err != nil {
		return err
	}
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			return fmt.Errorf("benchout: %w", err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("benchout: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("benchout: %w", err)
		}
	}
	if benchBase == "" {
		return nil
	}
	bf, err := os.Open(benchBase)
	if err != nil {
		return fmt.Errorf("benchbaseline: %w", err)
	}
	baseline, err := kernelbench.ReadReport(bf)
	bf.Close()
	if err != nil {
		return fmt.Errorf("benchbaseline: %w", err)
	}
	deltas, err := kernelbench.Compare(baseline, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nvs %s (gate: +%.0f%% ns/point):\n", benchBase, 100*maxRegress)
	if err := kernelbench.WriteDeltas(stdout, deltas, maxRegress); err != nil {
		return err
	}
	regressed := 0
	for _, d := range deltas {
		if d.Regressed(maxRegress) {
			regressed++
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d kernel cases regressed more than %.0f%% vs %s",
			regressed, len(deltas), 100*maxRegress, benchBase)
	}
	return nil
}
