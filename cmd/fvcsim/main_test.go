package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fullview/internal/checkpoint"
)

func TestRunUniformDefaults(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "200", "-grid", "15"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"uniform deployment", "200 cameras", "full-view covered fraction",
		"necessary CSA", "sufficient CSA", "grid 15×15",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPoisson(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "200", "-deploy", "poisson", "-grid", "10"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "poisson deployment") {
		t.Errorf("output missing poisson banner:\n%s", b.String())
	}
}

func TestRunWithBarrier(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "300", "-r", "0.3", "-grid", "10", "-barrier", "0.5"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "barrier y=0.500") {
		t.Errorf("output missing barrier report:\n%s", b.String())
	}
}

func TestRunReportsGapWhenSparse(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "10", "-r", "0.05", "-grid", "10"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "first uncovered grid point") {
		t.Errorf("sparse run should report a gap:\n%s", b.String())
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-n", "100", "-grid", "10", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "100", "-grid", "10", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
	var c strings.Builder
	if err := run([]string{"-n", "100", "-grid", "10", "-seed", "8"}, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical output (suspicious)")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	base := []string{"-n", "300", "-grid", "20", "-barrier", "0.5", "-seed", "9"}
	var seq strings.Builder
	if err := run(append([]string{"-parallel", "1"}, base...), &seq); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"0", "2", "3", "7"} {
		var par strings.Builder
		if err := run(append([]string{"-parallel", workers}, base...), &par); err != nil {
			t.Fatal(err)
		}
		if par.String() != seq.String() {
			t.Errorf("-parallel %s output differs from sequential:\n%s\nvs\n%s",
				workers, par.String(), seq.String())
		}
	}
}

func TestRunHeterogeneousGroups(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "200", "-groups", "0.5:0.2:0.5,0.5:0.1:0.25", "-grid", "10"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "weighted sensing area") {
		t.Errorf("heterogeneous run missing output:\n%s", b.String())
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := t.TempDir() + "/map.svg"
	var b strings.Builder
	if err := run([]string{"-n", "150", "-grid", "8", "-svg", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "coverage map written to") {
		t.Error("missing svg confirmation line")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read svg: %v", err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "</svg>") {
		t.Error("svg file malformed")
	}
}

func TestRunRejectsBadGroups(t *testing.T) {
	var b strings.Builder
	for _, groups := range []string{"nonsense", "0.5:0.1:0.5", "1:0.1"} {
		if err := run([]string{"-groups", groups}, &b); err == nil {
			t.Errorf("groups %q accepted", groups)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var b strings.Builder
	cases := [][]string{
		{"-theta", "0"},
		{"-theta", "1.5"},
		{"-deploy", "lattice"},
		{"-n", "200", "-barrier", "1.5"},
		{"-r", "-0.1"},
	}
	for _, args := range cases {
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunCheckpointBitIdentical(t *testing.T) {
	base := []string{"-n", "200", "-grid", "12", "-seed", "5"}
	var plain strings.Builder
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "survey.jsonl")
	args := append([]string{"-checkpoint", journal}, base...)
	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if first.String() != plain.String() {
		t.Errorf("checkpointed output differs from plain:\n%s\nvs\n%s", first.String(), plain.String())
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	// Resume from the completed journal: no recomputation, same bytes.
	var second strings.Builder
	if err := run(args, &second); err != nil {
		t.Fatal(err)
	}
	if second.String() != plain.String() {
		t.Error("resumed output differs from plain run")
	}
}

func TestRunCheckpointResumesPartialJournal(t *testing.T) {
	base := []string{"-n", "200", "-grid", "12", "-seed", "5"}
	journal := filepath.Join(t.TempDir(), "survey.jsonl")
	args := append([]string{"-checkpoint", journal}, base...)
	var full strings.Builder
	if err := run(args, &full); err != nil {
		t.Fatal(err)
	}
	// Truncate the journal to the header plus a few records — the state a
	// killed run leaves behind — and resume.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	partial := strings.Join(lines[:4], "")
	if err := os.WriteFile(journal, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(args, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.String() != full.String() {
		t.Error("resume from partial journal produced different output")
	}
}

func TestRunCheckpointRefusesChangedParams(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "survey.jsonl")
	var b strings.Builder
	if err := run([]string{"-checkpoint", journal, "-n", "150", "-grid", "10", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-checkpoint", journal, "-n", "150", "-grid", "10", "-seed", "3"}, // seed changed
		{"-checkpoint", journal, "-n", "160", "-grid", "10", "-seed", "2"}, // n changed
	} {
		if err := run(args, &b); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Errorf("args %v against stale journal: err = %v, want ErrMismatch", args, err)
		}
	}
}

func TestWriteSVGAtomicLeavesNoPartialFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "map.svg")
	// A write into a nonexistent directory must fail without creating
	// anything under the requested name.
	if err := run([]string{"-n", "100", "-grid", "8", "-svg", filepath.Join(dir, "missing", "map.svg")}, &strings.Builder{}); err == nil {
		t.Error("svg into missing directory should fail")
	}
	if err := run([]string{"-n", "100", "-grid", "8", "-svg", path}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "map.svg" {
			t.Errorf("leftover temp file %q in svg directory", e.Name())
		}
	}
}
