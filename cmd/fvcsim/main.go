// Command fvcsim deploys one camera network and reports its full-view
// coverage: region statistics over the paper's dense grid, the analytic
// expectations for comparison, optional barrier coverage, and an
// optional SVG coverage map.
//
// Usage:
//
//	fvcsim -n 1000 -theta 0.25 -r 0.15 -phi 0.5 -deploy uniform -seed 1
//	fvcsim -n 2000 -theta 0.25 -barrier 0.5 -svg map.svg
//	fvcsim -n 1000 -groups "0.3:0.2:0.33,0.7:0.1:0.5"
//	fvcsim -n 100000 -parallel 8
//
// Coverage sweeps run through the shared parallel sweep engine
// (-parallel workers, GOMAXPROCS by default); the reported statistics
// are bit-identical at any worker count.
//
// Angles are fractions of π (-theta 0.25 ⇒ θ = π/4; -phi 0.5 ⇒ φ = π/2).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"fullview/internal/analytic"
	"fullview/internal/barrier"
	"fullview/internal/checkpoint"
	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/version"
	"fullview/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fvcsim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 1000, "number of cameras (or Poisson density)")
		thetaPi    = fs.Float64("theta", 0.25, "effective angle θ as a fraction of π")
		radius     = fs.Float64("r", 0.15, "sensing radius")
		phiPi      = fs.Float64("phi", 0.5, "aperture φ as a fraction of π")
		groups     = fs.String("groups", "", `heterogeneous profile "frac:r:phiPi,..." (overrides -r/-phi)`)
		deployment = fs.String("deploy", "uniform", "deployment scheme: uniform or poisson")
		seed       = fs.Uint64("seed", 2012, "RNG seed")
		gridSide   = fs.Int("grid", 0, "grid side override (0 = paper dense grid)")
		barrierY   = fs.Float64("barrier", -1, "also survey a horizontal barrier at this height (negative = off)")
		svgPath    = fs.String("svg", "", "write an SVG coverage map to this file")
		parallel   = fs.Int("parallel", 0, "worker goroutines for the coverage sweeps (0 = GOMAXPROCS)")
		ckptPath   = fs.String("checkpoint", "", "journal grid-survey progress to this file and resume from it")

		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, version.String("fvcsim"))
		return nil
	}
	if *thetaPi <= 0 || *thetaPi > 1 {
		return errors.New("-theta must be in (0, 1] (fraction of π)")
	}
	theta := *thetaPi * math.Pi

	var (
		profile sensor.Profile
		err     error
	)
	if *groups != "" {
		profile, err = sensor.ParseProfile(*groups)
	} else {
		profile, err = sensor.Homogeneous(*radius, *phiPi*math.Pi)
	}
	if err != nil {
		return err
	}
	r := rng.New(*seed, 0)
	var net *sensor.Network
	switch *deployment {
	case "uniform":
		net, err = deploy.Uniform(geom.UnitTorus, profile, *n, r)
	case "poisson":
		net, err = deploy.Poisson(geom.UnitTorus, profile, float64(*n), r)
	default:
		return fmt.Errorf("unknown deployment %q (want uniform or poisson)", *deployment)
	}
	if err != nil {
		return err
	}

	checker, err := core.NewChecker(net, theta)
	if err != nil {
		return err
	}
	side := *gridSide
	if side <= 0 {
		side, err = deploy.DenseGridSide(*n)
		if err != nil {
			return err
		}
	}
	points, err := deploy.GridPoints(geom.UnitTorus, side)
	if err != nil {
		return err
	}
	// The grid sweep dominates the run time; spread it over the cores.
	// Results are bit-identical to the sequential sweep at any -parallel,
	// and -checkpoint journals the sweep band by band so a killed run
	// resumes where it left off with identical statistics.
	var stats core.RegionStats
	if *ckptPath != "" {
		stats, err = surveyCheckpoint(*ckptPath, checker, points, side,
			*deployment, *n, theta, profile, *seed, *parallel)
		if err != nil {
			return err
		}
	} else {
		stats = checker.SurveyRegionParallel(points, *parallel)
	}

	table := report.NewTable(
		fmt.Sprintf("fvcsim — %s deployment, %d cameras, θ = %.4gπ, grid %d×%d",
			*deployment, net.Len(), *thetaPi, side, side),
		"quantity", "value",
	)
	nec, err := analytic.CSANecessary(*n, theta)
	if err != nil {
		return err
	}
	suf, err := analytic.CSASufficient(*n, theta)
	if err != nil {
		return err
	}
	rows := [][2]string{
		{"weighted sensing area s_c", report.F(profile.WeightedSensingArea())},
		{"necessary CSA s_Nc(n)", report.F(nec)},
		{"sufficient CSA s_Sc(n)", report.F(suf)},
		{"grid points", report.I(stats.Points)},
		{"full-view covered fraction", report.F4(stats.FullViewFraction())},
		{"necessary-condition fraction", report.F4(stats.NecessaryFraction())},
		{"sufficient-condition fraction", report.F4(stats.SufficientFraction())},
		{"whole grid full-view covered", fmt.Sprintf("%v", stats.AllFullView())},
		{"min / mean covering count", fmt.Sprintf("%d / %s", stats.MinCovering, report.F4(stats.MeanCovering))},
		{"expected covering count (n*s_c)", report.F4(analytic.ExpectedCoverageCount(profile, *n))},
	}
	for _, row := range rows {
		if err := table.AddRow(row[0], row[1]); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}

	if !stats.AllFullView() {
		if p, dir, found := checker.FirstFullViewGap(points); found {
			if _, err := fmt.Fprintf(w, "\nfirst uncovered grid point: %v (unsafe facing direction %.4f rad)\n", p, dir); err != nil {
				return err
			}
		}
	}

	if *barrierY >= 0 {
		if *barrierY > 1 {
			return errors.New("-barrier must be within [0, 1]")
		}
		bstats, err := barrier.SurveyContext(context.Background(), checker, barrier.Horizontal(*barrierY), 0.01, *parallel)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w,
			"\nbarrier y=%.3f: covered=%v full-view fraction=%.4f weak fraction=%.4f\n",
			*barrierY, bstats.Covered, bstats.FullViewFraction(), bstats.WeakFraction()); err != nil {
			return err
		}
	}

	if *svgPath != "" {
		scene, err := viz.NewScene(net, theta, viz.Options{
			HeatmapSide: 40,
			ShowCameras: net.Len() <= 2000, // sector outlines drown past that
			MarkHoles:   true,
		})
		if err != nil {
			return err
		}
		if *barrierY >= 0 {
			scene.AddBarrier([]geom.Vec{geom.V(0, *barrierY), geom.V(1, *barrierY)})
		}
		if err := writeSVGAtomic(*svgPath, scene); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\ncoverage map written to %s\n", *svgPath); err != nil {
			return err
		}
	}
	return nil
}

// writeSVGAtomic renders the scene to a temp file in the target
// directory and renames it into place, so a crash or write error never
// leaves a truncated SVG under the requested name.
func writeSVGAtomic(path string, scene *viz.Scene) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("create svg: %w", err)
	}
	tmp := f.Name()
	_, werr := scene.WriteTo(f)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("write svg: %w", werr)
	}
	return nil
}

// surveyCheckpoint surveys the grid as a resumable journaled run: the
// grid's rows are the journal's trials, each row surveyed with a
// per-goroutine checker clone and recorded durably on completion. The
// merged statistics are bit-identical to SurveyRegionParallel — every
// RegionStats field is an exact integer sum or minimum (MeanCovering is
// re-derived from the carried integer total), so merging restored and
// freshly-computed rows in row order reproduces the single-sweep
// result.
func surveyCheckpoint(
	path string,
	checker *core.Checker,
	points []geom.Vec,
	side int,
	deployment string,
	n int,
	theta float64,
	profile sensor.Profile,
	seed uint64,
	parallel int,
) (core.RegionStats, error) {
	header := checkpoint.Header{
		Kind:   "fvcsim/survey",
		Seed:   seed,
		Trials: side,
		Params: fmt.Sprintf("deploy=%s n=%d theta=%.17g profile=%s grid=%d",
			deployment, n, theta, sensor.FormatProfile(profile), side),
	}
	journal, err := checkpoint.Open(path, header)
	if err != nil {
		return core.RegionStats{}, err
	}
	rows, err := experiment.RunResumable(context.Background(), journal, seed, side, parallel,
		func(row int, _ *rng.PCG) (core.RegionStats, error) {
			return checker.Clone().SurveyRegion(points[row*side : (row+1)*side]), nil
		})
	if err != nil {
		return core.RegionStats{}, fmt.Errorf("checkpointed survey: %w", err)
	}
	var stats core.RegionStats
	for _, row := range rows {
		stats = stats.Merge(row)
	}
	if err := journal.Close(); err != nil {
		return core.RegionStats{}, err
	}
	return stats, nil
}
