// Command fvcd is the full-view-coverage query daemon: a long-running
// HTTP/JSON service that keeps registered camera deployments' spatial
// indexes warm and answers point full-view queries and region surveys
// against them.
//
// Usage:
//
//	fvcd -addr :8080
//	fvcd -addr :8080 -state /var/lib/fvcd
//	fvcd -addr 127.0.0.1:0 -cache 32 -max-inflight 128
//	fvcd -addr :8081 -state /var/lib/fvcd-a -cluster peers.json -self a
//	fvcd -addr :8080 -route -cluster peers.json
//
// # Cluster modes
//
// With -cluster peers.json and -self NAME, the daemon runs as one
// replica of an fvcd cluster: deployments are placed on replicas by a
// consistent-hash ring over the peers file's member names, every
// journal append is mirrored asynchronously to the other members, the
// local journal is served to warming peers on GET /v1/internal/
// snapshot, and a replica starting with no local journal warms from a
// peer snapshot first. -state is required in this mode. Add
// -antientropy DURATION to run the self-healing reconciler: at each
// interval the replica compares per-deployment journal digests with
// its peers and pulls any deployment it is missing or behind on,
// repairing divergence left by dropped mirrors, crashes, or disk loss.
//
// With -route (plus -cluster), the process is instead a thin stateless
// router: it owns no journal and no cache, and forwards every client
// request to the owning shard with bounded retries, jittered backoff,
// and honoured Retry-After. GET /readyz on the router aggregates every
// shard's readiness into a cluster rollup. Run any number of routers;
// they are interchangeable. See README "Running a cluster".
//
// With -state, registrations and mutations are journaled durably: a
// daemon killed at any instant (including kill -9) and restarted on the
// same state dir answers queries for every previously registered
// deployment id bit-identically, with every applied PATCH replayed in
// order. GET /readyz reports "starting" during the startup replay, "ok"
// in normal operation, and "degraded" when journal writes fail (queries
// keep working from memory; registrations and patches answer 503).
//
// API (see README "Running the service" for curl examples):
//
//	POST  /v1/deployments              register a camera network
//	GET   /v1/deployments/{id}         describe a registered deployment
//	PATCH /v1/deployments/{id}         mutate it in place (reaim/remove/add)
//	POST  /v1/deployments/{id}/query   batch point checks across a θ-list
//	POST  /v1/deployments/{id}/survey  region sweep (inline)
//	POST  /v1/jobs                     submit an async survey/sweep job
//	GET   /v1/jobs/{id}                poll job status, progress, result
//	DELETE /v1/jobs/{id}               cancel a job
//	GET   /v1/jobs/{id}/events         stream job progress over SSE
//	GET   /healthz, /readyz, /metrics, /debug/pprof/*
//
// Jobs are journaled under -state alongside the deployments: a daemon
// killed mid-survey resumes the job from its last completed band after
// a restart, and the merged result is bit-identical to an uninterrupted
// run.
//
// Patches are applied through a delta overlay on the deployment's CSR
// index; once the overlay exceeds -rebuild-fraction of the base, the
// index is rebuilt in the background and swapped in atomically.
//
// The daemon prints "listening on HOST:PORT" once the socket is bound
// (useful with -addr :0), serves until SIGINT/SIGTERM, then drains:
// in-flight requests run to completion (bounded by -drain-timeout)
// before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fullview/internal/cluster"
	"fullview/internal/server"
	"fullview/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvcd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fvcd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		stateDir      = fs.String("state", "", "state directory for the durable deployment journal (empty = in-memory only)")
		cacheSize     = fs.Int("cache", 16, "deployments kept warm in the LRU cache")
		maxInFlight   = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = 4×GOMAXPROCS)")
		queueTimeout  = fs.Duration("queue-timeout", 100*time.Millisecond, "max admission wait before a 429")
		queryTimeout  = fs.Duration("query-timeout", 0, "deadline for register/inspect/query handlers, 504 on expiry (0 = 30s default, negative = none)")
		surveyTimeout = fs.Duration("survey-timeout", 0, "deadline for survey handlers, 504 on expiry (0 = 5m default, negative = none)")
		parallel      = fs.Int("parallel", 0, "worker goroutines per survey sweep (0 = GOMAXPROCS)")
		rebuildFrac   = fs.Float64("rebuild-fraction", 0, "overlay size as a fraction of the base index that triggers a background rebuild (0 = default, negative = never rebuild)")
		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout (0 = none)")
		writeTimeout  = fs.Duration("write-timeout", 0, "HTTP write timeout (0 = none; long surveys need headroom)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		jobQueue      = fs.Int("job-queue", 0, "pending async jobs per kind before submissions answer 429 (0 = 64)")
		jobWorkers    = fs.Int("job-concurrency", 0, "job workers per kind (0 = 2)")
		jobTTL        = fs.Duration("job-ttl", 0, "retention of finished job results before 410 Gone (0 = 15m, negative = forever)")
		jobThrottle   = fs.Duration("job-throttle", 0, "pause between job bands, for background pacing (0 = none)")
		clusterFile   = fs.String("cluster", "", "peers file naming the cluster membership (see README \"Running a cluster\")")
		selfName      = fs.String("self", "", "this replica's member name in the -cluster peers file")
		antiEntropy   = fs.Duration("antientropy", 0, "interval between anti-entropy digest reconciliations with peers (0 = disabled; requires -cluster)")
		routeMode     = fs.Bool("route", false, "run as a stateless cluster router instead of a replica (requires -cluster)")
		showVersion   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, version.String("fvcd"))
		return nil
	}

	logger := log.New(w, "fvcd: ", log.LstdFlags)

	if *routeMode {
		if *clusterFile == "" {
			return errors.New("-route requires -cluster peers.json")
		}
		if *antiEntropy != 0 {
			return errors.New("-antientropy cannot be combined with -route (the router holds no journal to reconcile)")
		}
		peers, err := cluster.LoadPeers(*clusterFile)
		if err != nil {
			return err
		}
		return runRouter(peers, *addr, *readTimeout, *writeTimeout, *drainTimeout, logger)
	}

	if *antiEntropy != 0 && *clusterFile == "" {
		return errors.New("-antientropy requires -cluster (nothing to reconcile against)")
	}
	if *antiEntropy < 0 {
		return fmt.Errorf("-antientropy must be positive, got %s", *antiEntropy)
	}

	var peerURLs []string
	if *clusterFile != "" {
		if *selfName == "" {
			return errors.New("-cluster requires -self NAME (this replica's member name)")
		}
		if *stateDir == "" {
			return errors.New("-cluster requires -state (the mirror and snapshot paths journal)")
		}
		peers, err := cluster.LoadPeers(*clusterFile)
		if err != nil {
			return err
		}
		if !peers.Has(*selfName) {
			return fmt.Errorf("-self %q is not a member of %s", *selfName, *clusterFile)
		}
		for _, m := range peers.Others(*selfName) {
			peerURLs = append(peerURLs, m.URL)
		}
		logger.Printf("cluster: replica %q of %d members (%d peers)", *selfName, len(peers.Members), len(peerURLs))
	}

	srv, err := server.New(server.Config{
		CacheSize:           *cacheSize,
		MaxInFlight:         *maxInFlight,
		QueueTimeout:        *queueTimeout,
		QueryTimeout:        *queryTimeout,
		SurveyTimeout:       *surveyTimeout,
		SurveyWorkers:       *parallel,
		RebuildFraction:     *rebuildFrac,
		StateDir:            *stateDir,
		JobQueue:            *jobQueue,
		JobConcurrency:      *jobWorkers,
		JobTTL:              *jobTTL,
		JobThrottle:         *jobThrottle,
		PeerURLs:            peerURLs,
		AntiEntropyInterval: *antiEntropy,
		Logger:              logger,
	})
	if err != nil {
		return err
	}
	srv.SetTimeouts(*readTimeout, *writeTimeout)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	logger.Printf("signal received, draining (timeout %s)", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}

// runRouter serves the stateless cluster router with the same
// bind/drain lifecycle as a replica: "listening on HOST:PORT" once
// bound, serve until SIGINT/SIGTERM, then drain in-flight forwards.
func runRouter(peers *cluster.Peers, addr string, readTimeout, writeTimeout, drainTimeout time.Duration, logger *log.Logger) error {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:       peers,
		RegisterKey: server.DeploymentIDFromRequest,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:     rt.Handler(),
		ReadTimeout: readTimeout,
		// Forwarded surveys stream for as long as the shard computes;
		// the router imposes no write timeout unless asked.
		WriteTimeout: writeTimeout,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("routing %d shards", rt.Ring().N())
	logger.Printf("listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("signal received, draining (timeout %s)", drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
