// Command fvcd is the full-view-coverage query daemon: a long-running
// HTTP/JSON service that keeps registered camera deployments' spatial
// indexes warm and answers point full-view queries and region surveys
// against them.
//
// Usage:
//
//	fvcd -addr :8080
//	fvcd -addr :8080 -state /var/lib/fvcd
//	fvcd -addr 127.0.0.1:0 -cache 32 -max-inflight 128
//
// With -state, registrations and mutations are journaled durably: a
// daemon killed at any instant (including kill -9) and restarted on the
// same state dir answers queries for every previously registered
// deployment id bit-identically, with every applied PATCH replayed in
// order. GET /readyz reports "starting" during the startup replay, "ok"
// in normal operation, and "degraded" when journal writes fail (queries
// keep working from memory; registrations and patches answer 503).
//
// API (see README "Running the service" for curl examples):
//
//	POST  /v1/deployments              register a camera network
//	GET   /v1/deployments/{id}         describe a registered deployment
//	PATCH /v1/deployments/{id}         mutate it in place (reaim/remove/add)
//	POST  /v1/deployments/{id}/query   batch point checks across a θ-list
//	POST  /v1/deployments/{id}/survey  region sweep (inline)
//	POST  /v1/jobs                     submit an async survey/sweep job
//	GET   /v1/jobs/{id}                poll job status, progress, result
//	DELETE /v1/jobs/{id}               cancel a job
//	GET   /v1/jobs/{id}/events         stream job progress over SSE
//	GET   /healthz, /readyz, /metrics, /debug/pprof/*
//
// Jobs are journaled under -state alongside the deployments: a daemon
// killed mid-survey resumes the job from its last completed band after
// a restart, and the merged result is bit-identical to an uninterrupted
// run.
//
// Patches are applied through a delta overlay on the deployment's CSR
// index; once the overlay exceeds -rebuild-fraction of the base, the
// index is rebuilt in the background and swapped in atomically.
//
// The daemon prints "listening on HOST:PORT" once the socket is bound
// (useful with -addr :0), serves until SIGINT/SIGTERM, then drains:
// in-flight requests run to completion (bounded by -drain-timeout)
// before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fullview/internal/server"
	"fullview/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fvcd:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fvcd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		stateDir      = fs.String("state", "", "state directory for the durable deployment journal (empty = in-memory only)")
		cacheSize     = fs.Int("cache", 16, "deployments kept warm in the LRU cache")
		maxInFlight   = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = 4×GOMAXPROCS)")
		queueTimeout  = fs.Duration("queue-timeout", 100*time.Millisecond, "max admission wait before a 429")
		queryTimeout  = fs.Duration("query-timeout", 0, "deadline for register/inspect/query handlers, 504 on expiry (0 = 30s default, negative = none)")
		surveyTimeout = fs.Duration("survey-timeout", 0, "deadline for survey handlers, 504 on expiry (0 = 5m default, negative = none)")
		parallel      = fs.Int("parallel", 0, "worker goroutines per survey sweep (0 = GOMAXPROCS)")
		rebuildFrac   = fs.Float64("rebuild-fraction", 0, "overlay size as a fraction of the base index that triggers a background rebuild (0 = default, negative = never rebuild)")
		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout (0 = none)")
		writeTimeout  = fs.Duration("write-timeout", 0, "HTTP write timeout (0 = none; long surveys need headroom)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		jobQueue      = fs.Int("job-queue", 0, "pending async jobs per kind before submissions answer 429 (0 = 64)")
		jobWorkers    = fs.Int("job-concurrency", 0, "job workers per kind (0 = 2)")
		jobTTL        = fs.Duration("job-ttl", 0, "retention of finished job results before 410 Gone (0 = 15m, negative = forever)")
		jobThrottle   = fs.Duration("job-throttle", 0, "pause between job bands, for background pacing (0 = none)")
		showVersion   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(w, version.String("fvcd"))
		return nil
	}

	logger := log.New(w, "fvcd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInFlight,
		QueueTimeout:    *queueTimeout,
		QueryTimeout:    *queryTimeout,
		SurveyTimeout:   *surveyTimeout,
		SurveyWorkers:   *parallel,
		RebuildFraction: *rebuildFrac,
		StateDir:        *stateDir,
		JobQueue:        *jobQueue,
		JobConcurrency:  *jobWorkers,
		JobTTL:          *jobTTL,
		JobThrottle:     *jobThrottle,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	srv.SetTimeouts(*readTimeout, *writeTimeout)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	logger.Printf("signal received, draining (timeout %s)", *drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
