package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-version"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fvcd") {
		t.Errorf("version output missing binary name: %q", b.String())
	}
}

func TestUnknownFlagFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-no-such-flag"}, &b); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestMalformedDurationFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-job-ttl", "bogus"}, &b); err == nil {
		t.Fatal("malformed -job-ttl accepted")
	}
}

// TestStateDirCollision points -state at an existing regular file: the
// server must refuse to start (it cannot create the state dir) before
// ever binding the listen socket.
func TestStateDirCollision(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-state", path, "-addr", "127.0.0.1:0"}, &b)
	if err == nil {
		t.Fatal("run accepted a regular file as the state dir")
	}
	if !strings.Contains(err.Error(), "state") {
		t.Errorf("error %q does not mention the state dir", err)
	}
}

// TestAntiEntropyFlagValidation: -antientropy is meaningless without a
// cluster to reconcile against, and an interval must be positive.
func TestAntiEntropyFlagValidation(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-antientropy", "30s"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-antientropy requires -cluster") {
		t.Errorf("standalone -antientropy: err %v, want a requires-cluster refusal", err)
	}
	err = run([]string{"-antientropy", "-5s", "-cluster", "nonexistent.json"}, &b)
	if err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Errorf("negative -antientropy: err %v, want a must-be-positive refusal", err)
	}
	err = run([]string{"-route", "-antientropy", "5s", "-cluster", "nonexistent.json"}, &b)
	if err == nil || !strings.Contains(err.Error(), "-antientropy cannot be combined with -route") {
		t.Errorf("-route -antientropy: err %v, want an explicit refusal, not a silent ignore", err)
	}
}

func TestUnlistenableAddrFails(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-addr", "256.256.256.256:70000"}, &b); err == nil {
		t.Fatal("run accepted an unlistenable address")
	}
}
