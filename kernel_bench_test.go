// Micro-benchmarks of the per-point coverage kernel, shared with the
// standalone harness (`fvcbench -kernelbench`) through
// internal/kernelbench so that `go test -bench` numbers and the
// committed BENCH_*.json trajectory measure the same code. One
// iteration evaluates one point, so ns/op etc. read as per-point costs.
//
// Run with:
//
//	go test -run NONE -bench 'BenchmarkFullView|BenchmarkSectorOccupancy|BenchmarkCountCovering' -benchmem
package fullview_test

import (
	"testing"

	"fullview/internal/kernelbench"
)

func benchKernelCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range kernelbench.Cases() {
		if c.Name != name {
			continue
		}
		fn, err := c.Setup()
		if err != nil {
			b.Fatal(err)
		}
		fn(0) // reach buffer steady state before measuring
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn(i)
		}
		// Batch cases evaluate PointsPerOp points per iteration; report
		// the per-point cost explicitly so they read on the same scale
		// as their point-at-a-time twins.
		if pts := c.PointsPerOp(); pts > 1 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*int64(pts)), "ns/point")
		}
		return
	}
	b.Fatalf("kernelbench: no case named %q", name)
}

func BenchmarkFullViewHomog1000(b *testing.B)     { benchKernelCase(b, "FullViewHomog1000") }
func BenchmarkFullViewHet1000(b *testing.B)       { benchKernelCase(b, "FullViewHet1000") }
func BenchmarkFullViewReport1000(b *testing.B)    { benchKernelCase(b, "FullViewReport1000") }
func BenchmarkFullViewMultiTheta1000(b *testing.B) {
	benchKernelCase(b, "FullViewMultiTheta1000")
}
func BenchmarkSectorOccupancy1000(b *testing.B)  { benchKernelCase(b, "SectorOccupancy1000") }
func BenchmarkCountCoveringHet1000(b *testing.B) { benchKernelCase(b, "CountCoveringHet1000") }

func BenchmarkFullViewMultiTheta1000Batch(b *testing.B) {
	benchKernelCase(b, "FullViewMultiTheta1000Batch")
}
func BenchmarkSectorOccupancy1000Batch(b *testing.B) {
	benchKernelCase(b, "SectorOccupancy1000Batch")
}
func BenchmarkSurveyHet1000Batch(b *testing.B) { benchKernelCase(b, "SurveyHet1000Batch") }
