// Package fullview is a library for analysing and simulating *full-view
// coverage* in camera sensor networks, reproducing "Achieving Full View
// Coverage with Randomly-Deployed Heterogeneous Camera Sensors" (Wu &
// Wang, ICDCS 2012).
//
// A point P is full-view covered with effective angle θ if, whatever
// direction an object at P faces, some camera covers P from within θ of
// the frontal viewpoint — guaranteeing a face capture. The library
// provides:
//
//   - the binary-sector camera model with heterogeneous groups
//     (Camera, GroupSpec, Profile, Network);
//   - random uniform, Poisson, and lattice deployments on the unit torus
//     (DeployUniform, DeployPoisson, SquareLattice, TriangularLattice);
//   - exact coverage checkers for full-view coverage and the paper's
//     geometric necessary / sufficient conditions (Checker);
//   - the paper's closed-form results: critical sensing areas
//     (CSANecessary, CSASufficient), per-point condition probabilities
//     (UniformNecessaryFailure, …), and Poisson-deployment probabilities
//     (PoissonPN, PoissonPS);
//   - extensions: full-view barrier coverage (Barrier) and probabilistic
//     sensing (SensingModel, ExpDecayModel).
//
// # Quickstart
//
//	profile, _ := fullview.Homogeneous(0.25, math.Pi/2) // r, φ
//	net, _ := fullview.DeployUniform(fullview.UnitTorus, profile, 800, fullview.NewRNG(1, 0))
//	checker, _ := fullview.NewChecker(net, math.Pi/4)   // θ
//	grid, _ := fullview.DenseGrid(fullview.UnitTorus, 800)
//	stats := checker.SurveyRegion(grid)
//	fmt.Printf("full-view covered fraction: %.3f\n", stats.FullViewFraction())
//
// All geometry lives on a torus so results are free of boundary effects,
// exactly as in the paper's model.
//
// # Concurrency
//
// Every point sweep runs through a shared parallel sweep engine with
// deterministic chunked scheduling: Checker.SurveyRegionParallel and
// Checker.SurveyRegionContext spread a region survey over a worker pool
// (workers ≤ 0 selects GOMAXPROCS) and return statistics bit-identical
// to the sequential Checker.SurveyRegion; SurveyBarrierContext and
// FindHolesContext do the same for barrier sweeps and hole detection.
// A Checker is not safe for concurrent use — derive per-goroutine
// checkers with Checker.Clone, which shares the immutable spatial index
// and costs one scratch-buffer allocation.
package fullview

import (
	"context"
	"net"
	"time"

	"fullview/internal/analytic"
	"fullview/internal/barrier"
	"fullview/internal/cluster"
	"fullview/internal/core"
	"fullview/internal/depcache"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/probsense"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/server"
)

// Geometry types.
type (
	// Vec is a point or displacement in the plane.
	Vec = geom.Vec
	// Torus is the operational region: a flat square torus.
	Torus = geom.Torus
	// Sector is a closed angular sector on the circle of directions.
	Sector = geom.Sector
)

// Sensing-model types.
type (
	// Camera is a binary-sector camera sensor.
	Camera = sensor.Camera
	// GroupSpec describes one heterogeneity group (fraction, radius,
	// aperture).
	GroupSpec = sensor.GroupSpec
	// Profile is a validated heterogeneity profile.
	Profile = sensor.Profile
	// Network is a deployed camera network.
	Network = sensor.Network
)

// Coverage types.
type (
	// Checker evaluates full-view coverage and the paper's geometric
	// conditions for one network and effective angle.
	Checker = core.Checker
	// MultiChecker evaluates the per-point diagnosis for a whole list of
	// effective angles from a single candidate gather per point.
	MultiChecker = core.MultiChecker
	// PointReport is the coverage diagnosis of a single point.
	PointReport = core.PointReport
	// MultiReport is MultiChecker's per-point diagnosis: θ-independent
	// quantities once, plus one ThetaReport per effective angle.
	MultiReport = core.MultiReport
	// ThetaReport is one effective angle's verdict inside a MultiReport.
	ThetaReport = core.ThetaReport
	// RegionStats aggregates coverage over a set of sample points.
	RegionStats = core.RegionStats
)

// Extension types.
type (
	// Barrier is a polyline for full-view barrier coverage.
	Barrier = barrier.Barrier
	// BarrierStats summarizes coverage along a barrier.
	BarrierStats = barrier.Stats
	// SensingModel maps camera and distance to detection probability.
	SensingModel = probsense.Model
	// ExpDecayModel is the exponential-decay probabilistic sensing model.
	ExpDecayModel = probsense.ExpDecay
	// BinarySensing is the paper's binary sector model as a SensingModel.
	BinarySensing = probsense.Binary
	// ProbEvaluator computes probabilistic full-view coverage.
	ProbEvaluator = probsense.Evaluator
	// ProbPointProfile is the probabilistic diagnosis of a point.
	ProbPointProfile = probsense.PointProfile
)

// RNG is the library's deterministic random generator (PCG-XSH-RR).
type RNG = rng.PCG

// UnitTorus is the paper's unit-square operational region.
var UnitTorus = geom.UnitTorus

// V constructs a Vec.
func V(x, y float64) Vec { return geom.V(x, y) }

// NewTorus returns a flat square torus with the given side length.
func NewTorus(side float64) (Torus, error) { return geom.NewTorus(side) }

// NewRNG returns a deterministic generator for (seed, stream); equal
// arguments reproduce identical sequences on every platform.
func NewRNG(seed, stream uint64) *RNG { return rng.New(seed, stream) }

// NewProfile validates group specifications (fractions must sum to 1)
// and returns a heterogeneity profile.
func NewProfile(groups ...GroupSpec) (Profile, error) { return sensor.NewProfile(groups...) }

// Homogeneous returns the single-group profile with the given sensing
// radius and aperture.
func Homogeneous(radius, aperture float64) (Profile, error) {
	return sensor.Homogeneous(radius, aperture)
}

// ParseProfile parses the compact textual profile form
// "fraction:radius:aperturePi[,…]" (aperture as a fraction of π), e.g.
// "0.3:0.2:0.33,0.7:0.1:0.5".
func ParseProfile(s string) (Profile, error) { return sensor.ParseProfile(s) }

// FormatProfile renders a profile in the ParseProfile syntax.
func FormatProfile(p Profile) string { return sensor.FormatProfile(p) }

// NewNetwork assembles a network from explicitly placed cameras.
func NewNetwork(t Torus, cameras []Camera) (*Network, error) {
	return sensor.NewNetwork(t, cameras)
}

// DeployUniform places exactly n sensors i.i.d. uniformly on the torus
// with uniformly random orientations (the paper's uniform deployment).
func DeployUniform(t Torus, profile Profile, n int, r *RNG) (*Network, error) {
	return deploy.Uniform(t, profile, n, r)
}

// DeployPoisson deploys sensors by a 2-D Poisson point process with the
// given density (expected sensors per unit area; the paper's λ = n on
// the unit square).
func DeployPoisson(t Torus, profile Profile, density float64, r *RNG) (*Network, error) {
	return deploy.Poisson(t, profile, density, r)
}

// SquareLattice deploys cameras on a k×k grid with random orientations.
func SquareLattice(t Torus, profile Profile, k int, r *RNG) (*Network, error) {
	return deploy.SquareLattice(t, profile, k, r)
}

// TriangularLattice deploys cameras on a triangular lattice with the
// given spacing (the deployment pattern of Wang & Cao compared in
// Section VII-C).
func TriangularLattice(t Torus, profile Profile, spacing float64, r *RNG) (*Network, error) {
	return deploy.TriangularLattice(t, profile, spacing, r)
}

// GridPoints returns the k×k grid of cell-centre sample points.
func GridPoints(t Torus, k int) ([]Vec, error) { return deploy.GridPoints(t, k) }

// DenseGrid returns the paper's √(n·ln n)-per-side dense grid, whose
// coverage stands in for coverage of the whole region.
func DenseGrid(t Torus, n int) ([]Vec, error) { return deploy.DenseGrid(t, n) }

// NewChecker builds a coverage checker for the network with effective
// angle theta ∈ (0, π]. Checkers are not safe for concurrent use; derive
// one per goroutine with Checker.Clone (parallel survey methods do this
// internally).
func NewChecker(net *Network, theta float64) (*Checker, error) {
	return core.NewChecker(net, theta)
}

// NewMultiChecker builds a fused multi-θ checker for the network: each
// Evaluate call gathers the point's covering cameras once and reports
// full-view coverage plus the necessary and sufficient conditions for
// every effective angle of the list (each in (0, π]). Use it for
// θ-sweeps, where a Checker per θ would repeat the spatial query and
// gather per angle. Like Checker, a MultiChecker is not safe for
// concurrent use; derive one per goroutine with MultiChecker.Clone.
func NewMultiChecker(net *Network, thetas []float64) (*MultiChecker, error) {
	return core.NewMultiChecker(net, thetas)
}

// CSANecessary returns the critical sensing area for the necessary
// condition of full-view coverage under uniform deployment (Theorem 1).
func CSANecessary(n int, theta float64) (float64, error) {
	return analytic.CSANecessary(n, theta)
}

// CSASufficient returns the critical sensing area for the sufficient
// condition of full-view coverage under uniform deployment (Theorem 2).
func CSASufficient(n int, theta float64) (float64, error) {
	return analytic.CSASufficient(n, theta)
}

// UniformNecessaryFailure returns P(F_N,P), the probability that a point
// fails the necessary condition under uniform deployment (Equation 2).
func UniformNecessaryFailure(profile Profile, n int, theta float64) (float64, error) {
	return analytic.UniformNecessaryFailure(profile, n, theta)
}

// UniformSufficientFailure returns P(F_S,P), the probability that a
// point fails the sufficient condition under uniform deployment
// (Equation 13).
func UniformSufficientFailure(profile Profile, n int, theta float64) (float64, error) {
	return analytic.UniformSufficientFailure(profile, n, theta)
}

// PoissonPN returns P_N, the probability that a point meets the
// necessary condition under Poisson deployment (Theorem 3).
func PoissonPN(profile Profile, density, theta float64) (float64, error) {
	return analytic.PoissonPN(profile, density, theta)
}

// PoissonPS returns P_S, the probability that a point meets the
// sufficient condition under Poisson deployment (Theorem 4).
func PoissonPS(profile Profile, density, theta float64) (float64, error) {
	return analytic.PoissonPS(profile, density, theta)
}

// OneCoverageCSA returns the 1-coverage critical sensing area
// (ln n + ln ln n)/n, the θ = π degeneration of CSANecessary
// (Section VII-A).
func OneCoverageCSA(n int) (float64, error) { return analytic.OneCoverageCSA(n) }

// KCoverageSufficientArea returns s_K(n) = (ln n + k·ln ln n)/n, the
// sensing area sufficient for k-coverage (Section VII-B baseline).
func KCoverageSufficientArea(n, k int) (float64, error) {
	return analytic.KCoverageSufficientArea(n, k)
}

// ExpectedCoverageCount returns n·s_c, the expected number of cameras
// covering an arbitrary point under uniform deployment.
func ExpectedCoverageCount(profile Profile, n int) float64 {
	return analytic.ExpectedCoverageCount(profile, n)
}

// KNecessary returns ⌈π/θ⌉, the necessary-condition sector count.
func KNecessary(theta float64) int { return analytic.KNecessary(theta) }

// KSufficient returns ⌈2π/θ⌉, the sufficient-condition sector count.
func KSufficient(theta float64) int { return analytic.KSufficient(theta) }

// NewBarrier builds a barrier polyline from at least two waypoints.
func NewBarrier(waypoints ...Vec) (Barrier, error) { return barrier.New(waypoints...) }

// HorizontalBarrier returns the straight barrier crossing the unit torus
// at height y.
func HorizontalBarrier(y float64) Barrier { return barrier.Horizontal(y) }

// SurveyBarrier evaluates full-view coverage along a barrier with the
// given sample spacing.
func SurveyBarrier(checker *Checker, b Barrier, spacing float64) (BarrierStats, error) {
	return barrier.Survey(checker, b, spacing)
}

// SurveyBarrierContext is SurveyBarrier with context cancellation and a
// worker count (GOMAXPROCS when workers ≤ 0). Results are bit-identical
// to SurveyBarrier at any worker count.
func SurveyBarrierContext(ctx context.Context, checker *Checker, b Barrier, spacing float64, workers int) (BarrierStats, error) {
	return barrier.SurveyContext(ctx, checker, b, spacing, workers)
}

// NewProbEvaluator builds a probabilistic full-view evaluator over the
// network with the given sensing model and effective angle.
func NewProbEvaluator(net *Network, model SensingModel, theta float64) (*ProbEvaluator, error) {
	return probsense.NewEvaluator(net, model, theta)
}

// Service types.
type (
	// Service is the fvcd coverage query service: an HTTP handler that
	// registers camera deployments, keeps their spatial indexes warm in
	// an LRU cache, and answers point queries and region surveys against
	// them, with admission control, Prometheus-format metrics, and
	// graceful drain. See cmd/fvcd for the standalone daemon.
	Service = server.Server
	// ServiceConfig parameterises a Service; the zero value selects the
	// documented defaults.
	ServiceConfig = server.Config
)

// NewService builds the coverage query service. Drive it with
// Service.Serve / Service.Shutdown on your own listener, or mount
// Service.Handler into an existing HTTP server. The only error path is
// an unusable ServiceConfig.StateDir (the durable deployment journal
// could not be opened or replayed).
func NewService(cfg ServiceConfig) (*Service, error) { return server.New(cfg) }

// Cluster types, for clients that place requests themselves (zero-hop
// routing) and for embedding the router.
type (
	// ClusterPeers is an fvcd cluster membership, normally loaded from
	// a peers file with LoadClusterPeers.
	ClusterPeers = cluster.Peers
	// ClusterMember is one replica in a ClusterPeers membership.
	ClusterMember = cluster.Member
	// HashRing is the consistent-hash ring that places deployment ids
	// on cluster members. Every replica, router, and ring-aware client
	// that builds it from the same membership derives the same
	// placement.
	HashRing = cluster.Ring
)

// LoadClusterPeers reads and validates a cluster peers file.
func LoadClusterPeers(path string) (*ClusterPeers, error) { return cluster.LoadPeers(path) }

// NewHashRing builds a consistent-hash ring over member names
// (virtualNodes 0 selects the default).
func NewHashRing(members []string, virtualNodes int) (*HashRing, error) {
	return cluster.NewRing(members, virtualNodes)
}

// NetworkFingerprint returns the content fingerprint the service uses
// as a network's deployment id — and the cluster uses as its shard
// key. Ring-aware clients fingerprint locally, call
// HashRing.Owner(fingerprint), and talk straight to the owning replica
// with no router hop.
func NetworkFingerprint(net *Network) string { return depcache.Fingerprint(net) }

// Serve runs the coverage query service on addr until ctx is
// cancelled, then drains gracefully: in-flight requests run to
// completion (up to 30s) before Serve returns. It is the library form
// of the fvcd daemon.
func Serve(ctx context.Context, addr string, cfg ServiceConfig) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		case <-done:
		}
	}()
	return srv.Serve(ln)
}
