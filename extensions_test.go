package fullview_test

import (
	"math"
	"testing"

	"fullview"
)

func TestPublicMultiplicitySurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 1500, fullview.NewRNG(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	checker, err := fullview.NewChecker(net, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	depth, _ := checker.FullViewMultiplicity(fullview.V(0.5, 0.5))
	if depth < 0 {
		t.Errorf("multiplicity = %d", depth)
	}
	grid, err := fullview.GridPoints(fullview.UnitTorus, 10)
	if err != nil {
		t.Fatal(err)
	}
	ms := checker.SurveyMultiplicity(grid)
	if ms.Points != 100 {
		t.Errorf("Points = %d", ms.Points)
	}
	if frac := ms.FaultTolerantFraction(1); frac < 0 || frac > 1 {
		t.Errorf("FaultTolerantFraction = %v", frac)
	}
}

func TestPublicHealingSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 120, fullview.NewRNG(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 3
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	found, err := fullview.FindHoles(checker, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("sparse network should have holes")
	}
	patch, err := fullview.PatchHole(fullview.UnitTorus, found[0], theta, 1.0/15)
	if err != nil {
		t.Fatal(err)
	}
	if len(patch) == 0 {
		t.Fatal("patch empty")
	}
	res, err := fullview.HealNetwork(net, theta, 15, 10)
	if err != nil {
		t.Fatal(err)
	}
	healed, err := fullview.NewChecker(res.Network, theta)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := fullview.FindHoles(healed, 15); err != nil || len(again) != 0 {
		t.Errorf("healed network still has %d holes (err %v)", len(again), err)
	}
}

func TestPublicLifetimeSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 400, fullview.NewRNG(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	awake, err := fullview.SampleAwake(net, 0.5, fullview.NewRNG(22, 0))
	if err != nil {
		t.Fatal(err)
	}
	if awake.Len() == 0 || awake.Len() == net.Len() {
		t.Errorf("p=0.5 kept %d of %d cameras", awake.Len(), net.Len())
	}
	fs, err := fullview.NewFailureSchedule(net, 5, fullview.NewRNG(23, 0))
	if err != nil {
		t.Fatal(err)
	}
	alive, err := fs.AliveAt(5)
	if err != nil {
		t.Fatal(err)
	}
	if alive.Len() >= net.Len() {
		t.Errorf("no failures by the mean lifetime: %d of %d", alive.Len(), net.Len())
	}
}

func TestPublicScheduleSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 2000, fullview.NewRNG(31, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 2
	cover, err := fullview.MinimalCover(net, theta, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 || len(cover) > net.Len()/4 {
		t.Errorf("cover size %d of %d", len(cover), net.Len())
	}
	shifts, err := fullview.ActivationShifts(net, theta, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) < 2 {
		t.Errorf("only %d shifts", len(shifts))
	}
	sub, err := fullview.Subnetwork(net, cover)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != len(cover) {
		t.Errorf("subnetwork size %d, want %d", sub.Len(), len(cover))
	}
}

func TestPublicTrackingSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 2500, fullview.NewRNG(41, 0))
	if err != nil {
		t.Fatal(err)
	}
	checker, err := fullview.NewChecker(net, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := fullview.NewTrajectory(fullview.V(0.1, 0.1), fullview.V(0.9, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	report, err := fullview.TrackTarget(checker, tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if report.CapturedFraction <= 0 {
		t.Errorf("captured fraction = %v in a dense network", report.CapturedFraction)
	}
	if len(report.Captures) == 0 {
		t.Error("no capture samples")
	}
}

func TestPublicOrientSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 60, fullview.NewRNG(51, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fullview.OptimizeOrientations(net, math.Pi/3, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.After < res.Before {
		t.Errorf("optimization decreased coverage %d → %d", res.Before, res.After)
	}
	if res.Network.Len() != net.Len() {
		t.Error("optimizer changed the camera count")
	}
}

func TestPublicDesignSolvers(t *testing.T) {
	theta, err := fullview.BestGuaranteedTheta(0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0 || theta > math.Pi {
		t.Errorf("BestGuaranteedTheta = %v", theta)
	}
	// Consistency with the n-inversion: deploying the returned quality's
	// sufficient area needs at most 1000 cameras.
	n, err := fullview.RequiredNSufficient(0.1, theta)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1000 {
		t.Errorf("RequiredNSufficient(0.1, θ*) = %d > 1000", n)
	}
}

func TestPublicSafeDirectionFraction(t *testing.T) {
	profile, err := fullview.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 500, fullview.NewRNG(61, 0))
	if err != nil {
		t.Fatal(err)
	}
	checker, err := fullview.NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	p := fullview.V(0.5, 0.5)
	frac := checker.SafeDirectionFraction(p)
	if frac < 0 || frac > 1 {
		t.Errorf("SafeDirectionFraction = %v", frac)
	}
	if (frac >= 1-1e-9) != checker.FullViewCovered(p) {
		t.Errorf("fraction %v inconsistent with coverage", frac)
	}
}

func TestPublicProfileParsing(t *testing.T) {
	p, err := fullview.ParseProfile("0.5:0.1:0.5,0.5:0.2:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGroups() != 2 {
		t.Errorf("NumGroups = %d", p.NumGroups())
	}
	round, err := fullview.ParseProfile(fullview.FormatProfile(p))
	if err != nil {
		t.Fatal(err)
	}
	if round.NumGroups() != 2 {
		t.Error("round trip changed the profile")
	}
}

func TestPublicDeterministicSurface(t *testing.T) {
	theta := math.Pi / 4
	plan, err := fullview.NewDeterministicPlan(fullview.UnitTorus, theta, 5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.BuildDeterministic(plan, fullview.UnitTorus)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != plan.TotalCameras() {
		t.Errorf("built %d, plan %d", net.Len(), plan.TotalCameras())
	}
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := fullview.GridPoints(fullview.UnitTorus, 25)
	if err != nil {
		t.Fatal(err)
	}
	if stats := checker.SurveyRegion(grid); !stats.AllFullView() {
		t.Error("deterministic plan did not cover the grid")
	}
	n, err := fullview.RequiredNSufficient(plan.SensingArea(), theta)
	if err != nil {
		t.Fatal(err)
	}
	if n <= plan.TotalCameras() {
		t.Errorf("random deployment (%d) should cost more than deterministic (%d)",
			n, plan.TotalCameras())
	}
}
