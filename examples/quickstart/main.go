// Quickstart: deploy a random camera network on the unit torus, test
// full-view coverage of the paper's dense grid, and compare what you got
// against the critical sensing areas of Theorems 1 and 2.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 1000        // cameras to deploy
		radius   = 0.25        // sensing radius r
		aperture = math.Pi / 2 // angle of view φ
		theta    = math.Pi / 4 // effective angle θ: how frontal a view must be
	)

	// A homogeneous fleet: every camera has the same r and φ.
	profile, err := fullview.Homogeneous(radius, aperture)
	if err != nil {
		return err
	}
	fmt.Printf("deploying %d cameras (r=%.2f, φ=π/2): sensing area s=%.4f each\n",
		n, radius, profile.WeightedSensingArea())

	// Where does this fleet sit relative to the paper's thresholds?
	nec, err := fullview.CSANecessary(n, theta)
	if err != nil {
		return err
	}
	suf, err := fullview.CSASufficient(n, theta)
	if err != nil {
		return err
	}
	fmt.Printf("critical sensing areas at θ=π/4: necessary %.4f, sufficient %.4f\n", nec, suf)
	switch s := profile.WeightedSensingArea(); {
	case s < nec:
		fmt.Println("→ below the necessary CSA: full-view coverage is asymptotically impossible")
	case s > suf:
		fmt.Println("→ above the sufficient CSA: full-view coverage holds w.h.p.")
	default:
		fmt.Println("→ between the CSAs: coverage depends on the deployment realization")
	}

	// Deploy uniformly at random (fixed seed ⇒ reproducible run).
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, n, fullview.NewRNG(2012, 0))
	if err != nil {
		return err
	}
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		return err
	}

	// Is this specific point guaranteed a frontal capture?
	p := fullview.V(0.5, 0.5)
	rep := checker.Report(p)
	fmt.Printf("\npoint %v: %d cameras cover it, widest viewing gap %.3f rad\n",
		p, rep.NumCovering, rep.MaxGap)
	fmt.Printf("full-view covered: %v (necessary %v, sufficient %v)\n",
		rep.FullView, rep.Necessary, rep.Sufficient)

	// Region-level verdict over the paper's dense grid.
	grid, err := fullview.DenseGrid(fullview.UnitTorus, n)
	if err != nil {
		return err
	}
	stats := checker.SurveyRegion(grid)
	fmt.Printf("\ndense grid (%d points): full-view %.2f%%, necessary %.2f%%, sufficient %.2f%%\n",
		stats.Points,
		100*stats.FullViewFraction(),
		100*stats.NecessaryFraction(),
		100*stats.SufficientFraction())
	if stats.AllFullView() {
		fmt.Println("the whole region is full-view covered: every face gets captured")
	} else {
		gp, dir, _ := checker.FirstFullViewGap(grid)
		fmt.Printf("coverage hole at %v: an object facing %.3f rad escapes frontal capture\n", gp, dir)
	}
	return nil
}
