// Queryservice: drive the fvcd coverage query daemon from a Go client.
//
// The example deploys a heterogeneous camera network, registers it with
// fvcd over HTTP, asks the service for batch point full-view verdicts
// across a θ-list, and cross-checks every answer bit-for-bit against
// fullview.MultiChecker run in-process — then registers the same
// network a second time to show the deployment cache hitting, PATCHes
// the live deployment (reaim/remove/add) to show the mutation overlay,
// and cross-checks the post-patch verdicts against a fresh library
// checker built from the mutated camera list. Finally it runs the same
// survey as an asynchronous job — submit, stream the per-band SSE
// progress, poll with Retry-After-aware backoff — and cross-checks the
// job's merged result against the library's synchronous sweep.
//
// Run self-contained (starts an in-process service on a random port):
//
//	go run ./examples/queryservice
//
// Or against a running daemon (this is also the CI smoke test's mode):
//
//	go run ./cmd/fvcd -addr :8080 &
//	go run ./examples/queryservice -addr http://localhost:8080
//
// Or against an fvcd cluster with client-side ring routing — the
// zero-hop alternative to the fvcd -route process. With -peers the
// client computes the deployment's content fingerprint locally
// (fullview.NetworkFingerprint), asks the consistent-hash ring which
// replica owns it, and talks straight to that shard:
//
//	go run ./examples/queryservice -peers peers.json
//
// The process exits non-zero if any service answer differs from the
// in-process library result, or if any retryable 429/503 rejection
// arrives without the Retry-After header the service contract
// promises.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"fullview"
)

// The JSON wire types a client speaks to fvcd.
type (
	cameraJSON struct {
		X        float64 `json:"x"`
		Y        float64 `json:"y"`
		Orient   float64 `json:"orient"`
		Radius   float64 `json:"radius"`
		Aperture float64 `json:"aperture"`
		Group    int     `json:"group,omitempty"`
	}
	registerRequest struct {
		Cameras []cameraJSON `json:"cameras"`
	}
	registerResponse struct {
		ID      string `json:"id"`
		Cameras int    `json:"cameras"`
		Cached  bool   `json:"cached"`
		Version uint64 `json:"version"`
	}
	reaimJSON struct {
		Index  int     `json:"index"`
		Orient float64 `json:"orient"`
	}
	patchRequest struct {
		Reaim  []reaimJSON  `json:"reaim,omitempty"`
		Remove []int        `json:"remove,omitempty"`
		Add    []cameraJSON `json:"add,omitempty"`
	}
	patchResponse struct {
		ID      string `json:"id"`
		Version uint64 `json:"version"`
		Cameras int    `json:"cameras"`
		Overlay int    `json:"overlay"`
	}
	pointJSON struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	queryRequest struct {
		ThetasPi []float64   `json:"thetasPi"`
		Points   []pointJSON `json:"points"`
	}
	thetaVerdict struct {
		ThetaPi    float64 `json:"thetaPi"`
		FullView   bool    `json:"fullView"`
		Necessary  bool    `json:"necessary"`
		Sufficient bool    `json:"sufficient"`
	}
	pointResult struct {
		Point       pointJSON      `json:"point"`
		NumCovering int            `json:"numCovering"`
		MaxGap      float64        `json:"maxGap"`
		PerTheta    []thetaVerdict `json:"perTheta"`
	}
	queryResponse struct {
		ID      string        `json:"id"`
		Version uint64        `json:"version"`
		Results []pointResult `json:"results"`
	}
	surveyRequest struct {
		ThetaPi float64 `json:"thetaPi"`
		Grid    int     `json:"grid,omitempty"`
	}
	surveyResponse struct {
		Points    int   `json:"points"`
		FullView  int   `json:"fullView"`
		ElapsedNS int64 `json:"elapsedNs"`
	}
	jobSubmitRequest struct {
		Kind       string  `json:"kind"`
		Deployment string  `json:"deployment"`
		ThetaPi    float64 `json:"thetaPi,omitempty"`
		Grid       int     `json:"grid,omitempty"`
	}
	jobResult struct {
		Stats []fullview.RegionStats `json:"stats"`
	}
	jobResponse struct {
		ID        string     `json:"id"`
		State     string     `json:"state"`
		Bands     int        `json:"bands"`
		BandsDone int        `json:"bandsDone"`
		Durable   bool       `json:"durable"`
		Error     string     `json:"error"`
		Result    *jobResult `json:"result"`
	}
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "queryservice:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "", "base URL of a running fvcd (empty = start one in-process)")
	peersFile := flag.String("peers", "", "cluster peers file: route requests client-side by the consistent-hash ring (overrides -addr)")
	n := flag.Int("n", 400, "cameras to deploy")
	seed := flag.Uint64("seed", 2012, "deployment RNG seed")
	flag.Parse()

	base := *addr
	if base == "" && *peersFile == "" {
		// No daemon given: host the service in-process on a random port,
		// exactly as cmd/fvcd would. A small job throttle paces the async
		// job below so its SSE stream visibly carries per-band events.
		srv, err := fullview.NewService(fullview.ServiceConfig{JobThrottle: 2 * time.Millisecond})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process fvcd at %s\n", base)
	}
	base = strings.TrimRight(base, "/")

	// A heterogeneous fleet: a few long-range narrow cameras plus many
	// short-range wide ones (the paper's Section VI setting).
	profile, err := fullview.ParseProfile("0.3:0.22:0.4,0.7:0.12:0.5")
	if err != nil {
		return err
	}
	network, err := fullview.DeployUniform(fullview.UnitTorus, profile, *n, fullview.NewRNG(*seed, 0))
	if err != nil {
		return err
	}

	// Client-side ring routing: fingerprint the network locally — the
	// same sha256 content fingerprint the service will assign as the
	// deployment id — and ask the consistent-hash ring which cluster
	// member owns it. Every request below then goes straight to the
	// owning shard, no router hop. Replicas serve mis-routed requests
	// correctly anyway (ownership is advisory), so a stale peers file
	// degrades placement, not correctness.
	localID := fullview.NetworkFingerprint(network)
	if *peersFile != "" {
		peers, err := fullview.LoadClusterPeers(*peersFile)
		if err != nil {
			return err
		}
		ring, err := peers.Ring()
		if err != nil {
			return err
		}
		owner := ring.Owner(localID)
		base, _ = peers.URL(owner)
		fmt.Printf("ring routing: deployment %s is owned by member %q at %s\n", localID, owner, base)
	}
	base = strings.TrimRight(base, "/")

	// Register the deployment: the id that comes back is the network's
	// content fingerprint.
	cams := make([]cameraJSON, network.Len())
	for i := 0; i < network.Len(); i++ {
		c := network.Camera(i)
		cams[i] = cameraJSON{X: c.Pos.X, Y: c.Pos.Y, Orient: c.Orient,
			Radius: c.Radius, Aperture: c.Aperture, Group: c.Group}
	}
	var reg registerResponse
	if err := postJSON(base+"/v1/deployments", registerRequest{Cameras: cams}, &reg); err != nil {
		return fmt.Errorf("register: %w", err)
	}
	if reg.ID != localID {
		return fmt.Errorf("service assigned id %s, local fingerprint is %s — ring routing would misplace this deployment", reg.ID, localID)
	}
	fmt.Printf("registered deployment %s (%d cameras, cached=%v)\n", reg.ID, reg.Cameras, reg.Cached)

	// Batch query: five probe points across three effective angles.
	thetasPi := []float64{0.2, 0.25, 0.5}
	points := []pointJSON{{0.5, 0.5}, {0.1, 0.9}, {0.25, 0.75}, {0.8, 0.3}, {0.42, 0.58}}
	var q queryResponse
	if err := postJSON(base+"/v1/deployments/"+reg.ID+"/query",
		queryRequest{ThetasPi: thetasPi, Points: points}, &q); err != nil {
		return fmt.Errorf("query: %w", err)
	}

	// Cross-check every verdict bit-for-bit against the library.
	thetas := make([]float64, len(thetasPi))
	for i, tp := range thetasPi {
		thetas[i] = tp * math.Pi
	}
	mc, err := fullview.NewMultiChecker(network, thetas)
	if err != nil {
		return err
	}
	for i, p := range points {
		want := mc.Evaluate(fullview.V(p.X, p.Y))
		got := q.Results[i]
		if got.NumCovering != want.NumCovering || got.MaxGap != want.MaxGap {
			return fmt.Errorf("point %d: service says covering=%d gap=%v, library says %d / %v",
				i, got.NumCovering, got.MaxGap, want.NumCovering, want.MaxGap)
		}
		for j, v := range want.PerTheta {
			g := got.PerTheta[j]
			if g.FullView != v.FullView || g.Necessary != v.Necessary || g.Sufficient != v.Sufficient {
				return fmt.Errorf("point %d θ=%.2fπ: service %+v disagrees with library %+v",
					i, thetasPi[j], g, v)
			}
		}
		fmt.Printf("point (%.2f, %.2f): %d cameras, gap %.3f rad, full-view@0.25π=%v — matches library\n",
			p.X, p.Y, got.NumCovering, got.MaxGap, got.PerTheta[1].FullView)
	}

	// Register the identical network again: same id, served from cache.
	var reg2 registerResponse
	if err := postJSON(base+"/v1/deployments", registerRequest{Cameras: cams}, &reg2); err != nil {
		return fmt.Errorf("re-register: %w", err)
	}
	if reg2.ID != reg.ID || !reg2.Cached {
		return fmt.Errorf("re-registration got id=%s cached=%v, want the cached %s", reg2.ID, reg2.Cached, reg.ID)
	}
	fmt.Println("re-registration was a cache hit: spatial index reused, not rebuilt")

	// Churn: mutate the live deployment in place — re-point one camera,
	// retire two, add one — and check the version bump. The patch is
	// absorbed by a delta overlay on the cached spatial index; the CSR
	// base is not rebuilt on the request path.
	extra := cameraJSON{X: 0.37, Y: 0.73, Orient: -0.9, Radius: 0.2, Aperture: 1.4}
	var patch patchResponse
	if err := doJSON(http.MethodPatch, base+"/v1/deployments/"+reg.ID,
		patchRequest{
			Reaim:  []reaimJSON{{Index: 0, Orient: 1.5}},
			Remove: []int{7, 3},
			Add:    []cameraJSON{extra},
		}, &patch); err != nil {
		return fmt.Errorf("patch: %w", err)
	}
	if patch.Version != reg.Version+3 || patch.Cameras != network.Len()-1 {
		return fmt.Errorf("patch answered version=%d cameras=%d, want version %d and %d cameras",
			patch.Version, patch.Cameras, reg.Version+3, network.Len()-1)
	}
	fmt.Printf("patched deployment: version %d→%d, %d cameras, overlay %d\n",
		reg.Version, patch.Version, patch.Cameras, patch.Overlay)

	// Overlay-vs-fresh agreement: apply the same mutation to a plain
	// camera slice, build a fresh library checker over it, and demand
	// the service's post-patch verdicts match it bit-for-bit.
	mutated := append([]fullview.Camera(nil), network.Cameras()...)
	mutated[0].Orient = 1.5
	mutated = append(mutated[:7], mutated[8:]...) // remove 7 then 3, descending
	mutated = append(mutated[:3], mutated[4:]...)
	mutated = append(mutated, fullview.Camera{Pos: fullview.V(extra.X, extra.Y),
		Orient: extra.Orient, Radius: extra.Radius, Aperture: extra.Aperture})
	mutNet, err := fullview.NewNetwork(fullview.UnitTorus, mutated)
	if err != nil {
		return err
	}
	mutMC, err := fullview.NewMultiChecker(mutNet, thetas)
	if err != nil {
		return err
	}
	var q2 queryResponse
	if err := postJSON(base+"/v1/deployments/"+reg.ID+"/query",
		queryRequest{ThetasPi: thetasPi, Points: points}, &q2); err != nil {
		return fmt.Errorf("post-patch query: %w", err)
	}
	if q2.Version != patch.Version {
		return fmt.Errorf("post-patch query ran against version %d, want %d", q2.Version, patch.Version)
	}
	for i, p := range points {
		want := mutMC.Evaluate(fullview.V(p.X, p.Y))
		got := q2.Results[i]
		if got.NumCovering != want.NumCovering || got.MaxGap != want.MaxGap {
			return fmt.Errorf("post-patch point %d: service says covering=%d gap=%v, fresh library says %d / %v",
				i, got.NumCovering, got.MaxGap, want.NumCovering, want.MaxGap)
		}
		for j, v := range want.PerTheta {
			g := got.PerTheta[j]
			if g.FullView != v.FullView || g.Necessary != v.Necessary || g.Sufficient != v.Sufficient {
				return fmt.Errorf("post-patch point %d θ=%.2fπ: service %+v disagrees with fresh library %+v",
					i, thetasPi[j], g, v)
			}
		}
	}
	fmt.Println("post-patch verdicts match a fresh checker over the mutated camera list")

	// Inline survey: one request-path sweep over a dense grid. The
	// response carries the server's kernel wall time, so the print
	// shows what the batch execution path costs per point in situ.
	const surveyGrid = 60
	var sv surveyResponse
	if err := postJSON(base+"/v1/deployments/"+reg.ID+"/survey",
		surveyRequest{ThetaPi: 0.25, Grid: surveyGrid}, &sv); err != nil {
		return fmt.Errorf("inline survey: %w", err)
	}
	surveyPoints, err := fullview.GridPoints(fullview.UnitTorus, surveyGrid)
	if err != nil {
		return err
	}
	surveyChecker, err := fullview.NewChecker(mutNet, 0.25*math.Pi)
	if err != nil {
		return err
	}
	if want := surveyChecker.SurveyRegion(surveyPoints); sv.Points != want.Points || sv.FullView != want.FullView {
		return fmt.Errorf("inline survey says %d/%d full-view, library sweep says %d/%d",
			sv.FullView, sv.Points, want.FullView, want.Points)
	}
	fmt.Printf("inline survey leg: %d points in %.2fms (%.0f ns/point), %d full-view covered\n",
		sv.Points, float64(sv.ElapsedNS)/1e6, float64(sv.ElapsedNS)/float64(sv.Points), sv.FullView)

	// Async jobs: the same survey work, off the request path. Submit a
	// survey job against the (patched) deployment, stream its band-by-
	// band progress over SSE, poll it to the terminal state with the
	// same Retry-After-aware backoff, and check the merged result
	// bit-for-bit against the library's synchronous sweep.
	const jobGrid = 60
	jobStart := time.Now()
	var job jobResponse
	if err := postJSON(base+"/v1/jobs", jobSubmitRequest{
		Kind: "survey", Deployment: reg.ID, ThetaPi: 0.25, Grid: jobGrid,
	}, &job); err != nil {
		return fmt.Errorf("submit job: %w", err)
	}
	fmt.Printf("submitted survey job %s (%d bands, durable=%v)\n", job.ID, job.Bands, job.Durable)

	bandEvents, streamState, err := streamJob(base + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		return fmt.Errorf("stream job events: %w", err)
	}
	fmt.Printf("SSE stream: %d band events, closing state %q\n", bandEvents, streamState)

	deadline := time.Now().Add(2 * time.Minute)
	for job.State != "done" && job.State != "failed" && job.State != "cancelled" {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %q (%d/%d bands)", job.ID, job.State, job.BandsDone, job.Bands)
		}
		if err := getJSON(base+"/v1/jobs/"+job.ID, &job); err != nil {
			return fmt.Errorf("poll job: %w", err)
		}
	}
	if job.State != "done" || job.Result == nil || len(job.Result.Stats) != 1 {
		return fmt.Errorf("job %s ended %q: %s", job.ID, job.State, job.Error)
	}
	jobPoints, err := fullview.GridPoints(fullview.UnitTorus, jobGrid)
	if err != nil {
		return err
	}
	jobChecker, err := fullview.NewChecker(mutNet, 0.25*math.Pi)
	if err != nil {
		return err
	}
	if want := jobChecker.SurveyRegion(jobPoints); job.Result.Stats[0] != want {
		return fmt.Errorf("job result %+v differs from the library sweep %+v", job.Result.Stats[0], want)
	}
	fmt.Printf("job result matches the library sweep bit-for-bit: %d/%d grid points full-view covered\n",
		job.Result.Stats[0].FullView, job.Result.Stats[0].Points)
	jobElapsed := time.Since(jobStart)
	fmt.Printf("survey job leg: %d points across %d bands in %.2fms wall (submit→done, incl. polling)\n",
		job.Result.Stats[0].Points, job.Bands, float64(jobElapsed.Nanoseconds())/1e6)

	// Show the cache and churn working in the service's own metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		interesting := strings.HasPrefix(line, "fvcd_depcache_") ||
			strings.HasPrefix(line, "fvcd_mutations_total") ||
			strings.HasPrefix(line, "fvcd_overlay_cameras") ||
			strings.HasPrefix(line, "fvcd_rebuilds_total") ||
			strings.HasPrefix(line, "fvcd_jobs_total") ||
			strings.HasPrefix(line, "fvcd_job_bands_total")
		if interesting && !strings.HasPrefix(line, "#") {
			fmt.Println("metrics:", line)
		}
	}
	return nil
}

// retryPolicy is the client-side resilience discipline for talking to
// fvcd: capped exponential backoff with jitter, honoring the server's
// Retry-After header (fvcd sends a jittered fractional-seconds value on
// 429), retrying only failures that are safe to retry. Every fvcd POST
// is idempotent by construction — registration is content-addressed and
// query/survey are reads — so requests here are marked idempotent; a
// non-idempotent request would only retry failures that provably
// happened before any response byte arrived (connection refused),
// never a failure mid-body, where the server may already have acted.
type retryPolicy struct {
	maxAttempts int           // total tries, including the first
	base        time.Duration // first backoff
	cap         time.Duration // backoff ceiling
}

var defaultRetry = retryPolicy{maxAttempts: 5, base: 100 * time.Millisecond, cap: 2 * time.Second}

// retryableStatus reports whether a response status is worth retrying:
// overload shedding and transient gateway states, never client errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the wait before try attempt (0-based), preferring the
// server's Retry-After when one was given: capped exponential growth
// with ±50% jitter, so a fleet of clients that failed together does not
// retry together.
func (p retryPolicy) backoff(attempt int, retryAfter string) time.Duration {
	if s, err := strconv.ParseFloat(strings.TrimSpace(retryAfter), 64); err == nil && s >= 0 {
		return time.Duration(s * float64(time.Second))
	}
	d := p.base << attempt
	if d > p.cap {
		d = p.cap
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// postJSON posts v as JSON under the retry policy and decodes the
// response into out, treating any non-2xx status as an error.
func postJSON(url string, v, out any) error {
	return doJSON(http.MethodPost, url, v, out)
}

// getJSON reads url under the retry policy (no request body).
func getJSON(url string, out any) error {
	return doJSON(http.MethodGet, url, nil, out)
}

// streamJob consumes one job's SSE event stream to EOF, returning the
// number of per-band progress events and the state carried by the last
// snapshot (the stream closes with a terminal snapshot).
func streamJob(url string) (bands int, lastState string, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, "", fmt.Errorf("events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: band"):
			bands++
		case strings.HasPrefix(line, "data: "):
			var payload struct {
				State string `json:"state"`
			}
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &payload) == nil &&
				payload.State != "" {
				lastState = payload.State
			}
		}
	}
	return bands, lastState, sc.Err()
}

// doJSON sends v as a JSON request body with the given method under the
// retry policy. PATCH shares POST's retry safety here: fvcd persists a
// patch to the journal before applying it and a retried 5xx either
// finds the patch never happened or is rejected by validation against
// the already-mutated live list — but a retried 429/503 never applies
// the same patch twice blindly, because those statuses are sent before
// any journal write.
func doJSON(method, url string, v, out any) error {
	var body []byte
	if v != nil {
		var err error
		if body, err = json.Marshal(v); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; attempt < defaultRetry.maxAttempts; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// Transport failure before any response: always safe to retry
			// (the idempotency caveat in the policy doc concerns failures
			// after bytes arrived, which appear below as read errors).
			lastErr = err
			time.Sleep(defaultRetry.backoff(attempt, ""))
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			// Failure mid-body. fvcd requests are idempotent, so retrying
			// is safe; for a non-idempotent API this branch must return.
			lastErr = fmt.Errorf("reading response: %w", err)
			time.Sleep(defaultRetry.backoff(attempt, ""))
			continue
		}
		if retryableStatus(resp.StatusCode) {
			retryAfter := resp.Header.Get("Retry-After")
			// The service contract promises a jittered fractional-seconds
			// Retry-After on every retryable shedding answer (429 and
			// transient 503, from replicas and routers alike). Enforce it:
			// a missing header is a server bug, not something to paper
			// over with local backoff.
			if (resp.StatusCode == http.StatusTooManyRequests ||
				resp.StatusCode == http.StatusServiceUnavailable) && retryAfter == "" {
				return fmt.Errorf("%s from %s without Retry-After — the fvcd contract requires it on retryable 429/503", resp.Status, url)
			}
			lastErr = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
			time.Sleep(defaultRetry.backoff(attempt, retryAfter))
			continue
		}
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("giving up after %d attempts: %w", defaultRetry.maxAttempts, lastErr)
}
