// Barrier patrol: a border strip must capture the face of anyone who
// crosses it — full-view *barrier* coverage, the extension the paper
// proposes as future work. The example finds the smallest airdropped
// fleet that covers a belt barrier, then stress-tests the winning fleet
// under foggy (probabilistic) sensing.
//
// Run with:
//
//	go run ./examples/barrierpatrol
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "barrierpatrol:", err)
		os.Exit(1)
	}
}

func run() error {
	const theta = math.Pi / 4

	profile, err := fullview.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		return err
	}
	line := fullview.HorizontalBarrier(0.5)
	fmt.Printf("barrier: horizontal belt at y=0.5, length %.2f; θ=π/4, cameras r=0.15 φ=π/2\n\n",
		line.Length())

	// Double n until the barrier is covered in 5/5 deployments, then
	// report the first size that succeeds.
	fmt.Println("fleet size sweep (5 random deployments each):")
	winner := 0
	for n := 250; n <= 16000 && winner == 0; n *= 2 {
		covered := 0
		for trial := 0; trial < 5; trial++ {
			net, err := fullview.DeployUniform(fullview.UnitTorus, profile, n,
				fullview.NewRNG(uint64(n), uint64(trial)))
			if err != nil {
				return err
			}
			checker, err := fullview.NewChecker(net, theta)
			if err != nil {
				return err
			}
			stats, err := fullview.SurveyBarrier(checker, line, 0.01)
			if err != nil {
				return err
			}
			if stats.Covered {
				covered++
			}
		}
		fmt.Printf("  n=%6d: barrier covered in %d/5 deployments\n", n, covered)
		if covered == 5 {
			winner = n
		}
	}
	if winner == 0 {
		return fmt.Errorf("no fleet size up to 16000 covered the barrier reliably")
	}
	winnerNet, err := fullview.DeployUniform(fullview.UnitTorus, profile, winner,
		fullview.NewRNG(uint64(winner), 0))
	if err != nil {
		return err
	}
	fmt.Printf("\n→ n=%d reliably full-view covers the barrier\n", winner)

	// Compare with whole-area requirements: a barrier is much cheaper
	// than the full region.
	suf, err := fullview.CSASufficient(winner, theta)
	if err != nil {
		return err
	}
	fmt.Printf("(for the whole region, n=%d would need s_c ≥ %.5f; the fleet has %.5f)\n",
		winner, suf, profile.WeightedSensingArea())

	// Fog check: under probabilistic sensing, what frontal-capture
	// probability does an adversarial crosser face at the weakest point?
	fmt.Println("\nfog stress test on the winning deployment (exp-decay sensing):")
	samples, err := line.Sample(0.05)
	if err != nil {
		return err
	}
	for _, decay := range []float64{0.5, 2, 8, 32} {
		eval, err := fullview.NewProbEvaluator(winnerNet,
			fullview.ExpDecayModel{CertainFraction: 0.1, Decay: decay}, theta)
		if err != nil {
			return err
		}
		worst := 1.0
		for _, p := range samples {
			prof, err := eval.Evaluate(p, 90)
			if err != nil {
				return err
			}
			if prof.WorstProb < worst {
				worst = prof.WorstProb
			}
		}
		fmt.Printf("  decay λ=%.1f: weakest barrier point catches a face with prob ≥ %.3f\n",
			decay, worst)
	}
	fmt.Println("\n→ budget extra density if the deployment must survive heavy fog")
	return nil
}
