// Surveillance planning: a heterogeneous fleet mixing premium and budget
// cameras must full-view cover an estate so that every intruder's face
// is captured. The example sizes the fleet with the paper's critical
// sensing areas — exploiting that only the *sensing area* matters, not
// the (r, φ) shape (Section VI-A) — then validates the plan by
// simulation.
//
// Run with:
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "surveillance:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n     = 1500        // total mounting points available
		theta = math.Pi / 4 // required view quality: within 45° of frontal
	)

	// The procurement mix: 30% premium long-range narrow cameras, 70%
	// budget short-range wide ones. Radii are placeholders; we scale the
	// whole mix to the coverage target below.
	mix, err := fullview.NewProfile(
		fullview.GroupSpec{Fraction: 0.3, Radius: 0.2, Aperture: math.Pi / 3},
		fullview.GroupSpec{Fraction: 0.7, Radius: 0.1, Aperture: math.Pi / 2},
	)
	if err != nil {
		return err
	}

	suf, err := fullview.CSASufficient(n, theta)
	if err != nil {
		return err
	}
	nec, err := fullview.CSANecessary(n, theta)
	if err != nil {
		return err
	}
	fmt.Printf("planning for n=%d cameras, θ=π/4\n", n)
	fmt.Printf("CSA thresholds: necessary %.5f, sufficient %.5f\n", nec, suf)

	// Target 20% above the sufficient CSA for margin. ScaleToArea keeps
	// fractions, apertures, and the premium/budget radius ratio.
	target := 1.2 * suf
	groups := mix.Groups()
	scale := math.Sqrt(target / mix.WeightedSensingArea())
	plan, err := fullview.NewProfile(scaleRadii(groups, scale)...)
	if err != nil {
		return err
	}
	fmt.Printf("\nprocurement plan (weighted sensing area %.5f = 1.2 × s_Sc):\n",
		plan.WeightedSensingArea())
	for i, g := range plan.Groups() {
		kind := "budget"
		if i == 0 {
			kind = "premium"
		}
		fmt.Printf("  %-7s ×%4.0f  r=%.3f  φ=%.2fπ  s=%.5f\n",
			kind, g.Fraction*n, g.Radius, g.Aperture/math.Pi, g.SensingArea())
	}

	// Validate over several random installations: the estate should be
	// full-view covered in essentially every realization.
	fmt.Println("\nvalidating over 5 random installations:")
	grid, err := fullview.DenseGrid(fullview.UnitTorus, n)
	if err != nil {
		return err
	}
	allCovered := true
	for trial := 0; trial < 5; trial++ {
		net, err := fullview.DeployUniform(fullview.UnitTorus, plan, n, fullview.NewRNG(77, uint64(trial)))
		if err != nil {
			return err
		}
		checker, err := fullview.NewChecker(net, theta)
		if err != nil {
			return err
		}
		stats := checker.SurveyRegion(grid)
		fmt.Printf("  install %d: full-view %.3f%% of %d grid points, whole estate covered: %v\n",
			trial+1, 100*stats.FullViewFraction(), stats.Points, stats.AllFullView())
		allCovered = allCovered && stats.AllFullView()
	}
	if allCovered {
		fmt.Println("\nplan accepted: every installation full-view covered the estate")
	} else {
		fmt.Println("\nplan marginal: increase the sensing-area margin above s_Sc")
	}

	// What did heterogeneity buy? The same coverage with one homogeneous
	// model would need every camera to carry the full target area.
	equivalent, err := fullview.Homogeneous(math.Sqrt(2*target/(math.Pi/2)), math.Pi/2)
	if err != nil {
		return err
	}
	fmt.Printf("\nhomogeneous equivalent: every camera r=%.3f (s=%.5f) — the mix lets 70%%\n"+
		"of mounts use cheaper short-range hardware at the same weighted area.\n",
		equivalent.Groups()[0].Radius, equivalent.WeightedSensingArea())
	return nil
}

func scaleRadii(groups []fullview.GroupSpec, k float64) []fullview.GroupSpec {
	out := make([]fullview.GroupSpec, len(groups))
	for i, g := range groups {
		g.Radius *= k
		out[i] = g
	}
	return out
}
