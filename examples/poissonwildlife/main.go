// Wildlife monitoring with air-dropped cameras: sensors scattered from a
// plane land as a 2-D Poisson process, so the operator cannot fix the
// exact count — only the drop density. The example uses Theorems 3 and 4
// to pick the density at which an animal at a random location is very
// likely to be photographed near-frontally, then verifies one simulated
// drop.
//
// Run with:
//
//	go run ./examples/poissonwildlife
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "poissonwildlife:", err)
		os.Exit(1)
	}
}

func run() error {
	const theta = math.Pi / 3 // recognition works up to 60° off frontal

	// The drop mixes rugged wide-angle trap cameras with telephoto units.
	profile, err := fullview.NewProfile(
		fullview.GroupSpec{Fraction: 0.8, Radius: 0.12, Aperture: 2 * math.Pi / 3},
		fullview.GroupSpec{Fraction: 0.2, Radius: 0.25, Aperture: math.Pi / 6},
	)
	if err != nil {
		return err
	}
	fmt.Printf("camera mix: weighted sensing area %.5f per unit density\n",
		profile.WeightedSensingArea())

	// Sweep the density: P_N bounds coverage from above (necessary),
	// P_S from below (sufficient ⇒ covered). These are *expected area
	// fractions* meeting each condition (Section V).
	fmt.Println("\ndensity sweep (Theorems 3 & 4):")
	fmt.Println("  density   P_N (upper)   P_S (lower)")
	targetDensity := 0
	for _, density := range []int{200, 400, 800, 1600, 3200, 6400} {
		pn, err := fullview.PoissonPN(profile, float64(density), theta)
		if err != nil {
			return err
		}
		ps, err := fullview.PoissonPS(profile, float64(density), theta)
		if err != nil {
			return err
		}
		fmt.Printf("  %7d   %11.4f   %11.4f\n", density, pn, ps)
		if targetDensity == 0 && ps >= 0.95 {
			targetDensity = density
		}
	}
	if targetDensity == 0 {
		return fmt.Errorf("no density in the sweep reaches P_S ≥ 0.95")
	}
	fmt.Printf("\nchosen drop density: %d cameras per unit area (P_S ≥ 0.95 — at least\n"+
		"95%% of the habitat is guaranteed full-view covered in expectation)\n", targetDensity)

	// Simulate one drop and ground-truth the guarantee.
	net, err := fullview.DeployPoisson(fullview.UnitTorus, profile, float64(targetDensity),
		fullview.NewRNG(1906, 0))
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated drop landed %d cameras (Poisson draw around %d)\n",
		net.Len(), targetDensity)
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		return err
	}
	grid, err := fullview.GridPoints(fullview.UnitTorus, 60)
	if err != nil {
		return err
	}
	stats := checker.SurveyRegion(grid)
	fmt.Printf("measured over %d habitat points: full-view %.2f%%, necessary %.2f%%, sufficient %.2f%%\n",
		stats.Points,
		100*stats.FullViewFraction(),
		100*stats.NecessaryFraction(),
		100*stats.SufficientFraction())

	// A watering hole we particularly care about:
	hole := fullview.V(0.62, 0.31)
	rep := checker.Report(hole)
	fmt.Printf("\nwatering hole %v: %d cameras watch it; full-view covered: %v\n",
		hole, rep.NumCovering, rep.FullView)
	if !rep.FullView {
		fmt.Println("→ consider hand-placing extra cameras around the watering hole")
	}
	return nil
}
