// Coverage-hole healing: an operator inherits a too-sparse random
// deployment (its sensing budget sits between the two critical sensing
// areas, where the paper shows coverage "depends on the actual
// deployment"), audits it, and patches the holes with the fewest extra
// cameras — then checks how fault-tolerant the repaired network is.
//
// Run with:
//
//	go run ./examples/healing
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healing:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n     = 400
		theta = math.Pi / 3
	)
	profile, err := fullview.Homogeneous(0.3, math.Pi/2)
	if err != nil {
		return err
	}
	nec, err := fullview.CSANecessary(n, theta)
	if err != nil {
		return err
	}
	suf, err := fullview.CSASufficient(n, theta)
	if err != nil {
		return err
	}
	s := profile.WeightedSensingArea()
	fmt.Printf("inherited deployment: %d cameras, s_c = %.4f (s_Nc = %.4f, s_Sc = %.4f)\n",
		n, s, nec, suf)
	if s > nec && s < suf {
		fmt.Println("→ in the indeterminate band: coverage is a dice roll (Section VI-C)")
	}

	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, n, fullview.NewRNG(13, 0))
	if err != nil {
		return err
	}

	// Audit.
	checker, err := fullview.NewChecker(net, theta)
	if err != nil {
		return err
	}
	const gridSide = 25
	holes, err := fullview.FindHoles(checker, gridSide)
	if err != nil {
		return err
	}
	if len(holes) == 0 {
		fmt.Println("\naudit: lucky roll — no holes found; nothing to heal")
		return nil
	}
	fmt.Printf("\naudit over a %d×%d grid found %d hole(s):\n", gridSide, gridSide, len(holes))
	for i, h := range holes {
		fmt.Printf("  hole %d: %3d grid points around %v (radius %.3f)\n",
			i+1, h.Size(), h.Centroid, h.Radius)
		if i == 4 && len(holes) > 5 {
			fmt.Printf("  … and %d more\n", len(holes)-5)
			break
		}
	}

	// Heal.
	res, err := fullview.HealNetwork(net, theta, gridSide, 10)
	if err != nil {
		return err
	}
	fmt.Printf("\nhealing added %d patch cameras in %d round(s): %d → %d cameras (+%.1f%%)\n",
		len(res.Added), res.Rounds, net.Len(), res.Network.Len(),
		100*float64(len(res.Added))/float64(net.Len()))

	// Verify on a finer grid than the healing sweep used.
	healed, err := fullview.NewChecker(res.Network, theta)
	if err != nil {
		return err
	}
	fine, err := fullview.GridPoints(fullview.UnitTorus, 40)
	if err != nil {
		return err
	}
	stats := healed.SurveyRegion(fine)
	fmt.Printf("verification on a 40×40 grid: full-view %.3f%% (%d/%d points)\n",
		100*stats.FullViewFraction(), stats.FullView, stats.Points)

	// How robust is the result to camera failures?
	ms := healed.SurveyMultiplicity(fine)
	fmt.Printf("\nfault tolerance after healing: mean multiplicity %.2f, min %d\n",
		ms.Mean, ms.Min)
	for _, f := range []int{1, 2} {
		fmt.Printf("  %.1f%% of the region survives any %d camera failure(s)\n",
			100*ms.FaultTolerantFraction(f), f)
	}

	// Contrast with brute force: how many *random* extra cameras would
	// have been needed instead of targeted patches?
	needed, err := fullview.RequiredNSufficient(profile.WeightedSensingArea(), theta)
	if err == nil && needed > n {
		fmt.Printf("\n(blind alternative: scattering ~%d cameras of this model for a w.h.p.\n"+
			" guarantee — targeted healing used %d instead)\n", needed, net.Len()+len(res.Added))
	}
	return nil
}
