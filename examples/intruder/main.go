// Intruder tracking: the payoff of full-view coverage in motion. An
// intruder walks several routes through the estate facing its direction
// of travel; we measure on which stretches a camera captured it
// near-frontally (a recognisable shot) and compare a fleet below the
// sufficient CSA with one above it.
//
// Run with:
//
//	go run ./examples/intruder
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "intruder:", err)
		os.Exit(1)
	}
}

func run() error {
	const theta = math.Pi / 4

	routes := []struct {
		name string
		path []fullview.Vec
	}{
		{name: "straight dash", path: []fullview.Vec{
			fullview.V(0.05, 0.50), fullview.V(0.95, 0.50),
		}},
		{name: "L-shaped sneak", path: []fullview.Vec{
			fullview.V(0.10, 0.10), fullview.V(0.10, 0.80), fullview.V(0.85, 0.80),
		}},
		{name: "zig-zag", path: []fullview.Vec{
			fullview.V(0.05, 0.05), fullview.V(0.35, 0.60), fullview.V(0.60, 0.20), fullview.V(0.95, 0.85),
		}},
	}

	for _, fleet := range []struct {
		name string
		n    int
	}{
		{name: "under-provisioned (n=200)", n: 200},
		{name: "fully provisioned (n=3000)", n: 3000},
	} {
		profile, err := fullview.Homogeneous(0.18, math.Pi/2)
		if err != nil {
			return err
		}
		suf, err := fullview.CSASufficient(fleet.n, theta)
		if err != nil {
			return err
		}
		net, err := fullview.DeployUniform(fullview.UnitTorus, profile, fleet.n, fullview.NewRNG(99, uint64(fleet.n)))
		if err != nil {
			return err
		}
		checker, err := fullview.NewChecker(net, theta)
		if err != nil {
			return err
		}
		fmt.Printf("%s: s_c = %.4f vs s_Sc = %.4f\n",
			fleet.name, profile.WeightedSensingArea(), suf)

		for _, route := range routes {
			tr, err := fullview.NewTrajectory(route.path...)
			if err != nil {
				return err
			}
			report, err := fullview.TrackTarget(checker, tr, 0.01)
			if err != nil {
				return err
			}
			fmt.Printf("  %-15s length %.2f: frontal capture on %5.1f%% of the route, longest blind stretch %.3f\n",
				route.name, tr.Length(), 100*report.CapturedFraction, report.LongestGap)
		}
		fmt.Println()
	}

	fmt.Println("the blind stretches are where an intruder can cross without a single")
	fmt.Println("recognisable frame — exactly what full-view coverage (s_c ≥ s_Sc) eliminates")
	return nil
}
