// Activation scheduling: an over-provisioned airdrop can't recharge its
// cameras, so the operator powers on only a minimal certified subset and
// rotates disjoint shifts to stretch battery life. The example selects
// the shifts, proves each one full-view covers the region, and compares
// the scheduled lifetime against running everything at once.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"math"
	"os"

	"fullview"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduler:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n        = 3000
		theta    = math.Pi / 2
		gridSide = 12
		meanLife = 10.0 // battery life per camera, in arbitrary time units
	)
	profile, err := fullview.Homogeneous(0.25, 2*math.Pi/3)
	if err != nil {
		return err
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, n, fullview.NewRNG(808, 0))
	if err != nil {
		return err
	}
	fmt.Printf("airdrop: %d cameras (r=0.25, φ=2π/3), θ=π/2, battery life %.0f units each\n",
		net.Len(), meanLife)

	// The minimal always-on subset.
	cover, err := fullview.MinimalCover(net, theta, gridSide)
	if err != nil {
		return err
	}
	fmt.Printf("\nminimal certified cover: %d cameras awake (%.1f%% of the fleet)\n",
		len(cover), 100*float64(len(cover))/float64(n))

	// Verify the certificate end to end.
	sub, err := fullview.Subnetwork(net, cover)
	if err != nil {
		return err
	}
	checker, err := fullview.NewChecker(sub, theta)
	if err != nil {
		return err
	}
	grid, err := fullview.GridPoints(fullview.UnitTorus, gridSide)
	if err != nil {
		return err
	}
	stats := checker.SurveyRegion(grid)
	fmt.Printf("verification: %d/%d grid points full-view covered by the cover alone\n",
		stats.FullView, stats.Points)

	// Disjoint shifts: one on duty at a time.
	shifts, err := fullview.ActivationShifts(net, theta, gridSide)
	if err != nil {
		return err
	}
	fmt.Printf("\ndisjoint shifts found: %d (sizes: ", len(shifts))
	for i, s := range shifts {
		if i > 0 {
			fmt.Print(", ")
		}
		if i == 6 && len(shifts) > 8 {
			fmt.Printf("… ×%d more", len(shifts)-6)
			break
		}
		fmt.Print(len(s))
	}
	fmt.Println(")")

	fmt.Printf("\nlifetime comparison:\n")
	fmt.Printf("  everything always on: coverage dies with the batteries ≈ %.0f units\n", meanLife)
	fmt.Printf("  rotating %d shifts:   ≈ %.0f units of continuous full-view coverage\n",
		len(shifts), meanLife*float64(len(shifts)))
	fmt.Printf("  scheduling multiplies network lifetime ×%d\n", len(shifts))
	return nil
}
