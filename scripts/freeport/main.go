// Command freeport prints N free loopback TCP ports, one per line.
// scripts/smoke_fvcd.sh uses it to assign cluster replica addresses
// before writing the peers file — a cluster's members must agree on
// every URL up front, so -addr :0 (bind first, learn the port later)
// cannot work there.
//
// The ports are reserved by binding and released before printing, so a
// different process could in principle grab one in the gap; for a
// smoke script on loopback that race is acceptable.
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "usage: freeport [N]\n")
			os.Exit(2)
		}
		n = v
	}
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "freeport: %v\n", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
	}
	// Bind all before releasing any, so the same port is never printed
	// twice.
	for _, ln := range listeners {
		port := ln.Addr().(*net.TCPAddr).Port
		ln.Close()
		fmt.Println(port)
	}
}
