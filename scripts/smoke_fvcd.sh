#!/usr/bin/env bash
# Smoke test for the fvcd coverage query daemon, run by CI and
# `make smoke`: start the daemon on a random port, register a small
# heterogeneous deployment, assert the service's query answers match the
# library bit-for-bit (examples/queryservice exits non-zero on any
# mismatch), scrape /metrics, and check that SIGTERM drains cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/fvcd.log"
cleanup() {
    [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/fvcd" ./cmd/fvcd
"$workdir/fvcd" -addr 127.0.0.1:0 >"$logfile" 2>&1 &
pid=$!

# Wait for the daemon to report its bound address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$logfile" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$logfile"; exit 1; }
echo "fvcd up at $addr"

# Register a heterogeneous deployment, issue a batch query, and verify
# every verdict against the in-process library result.
go run ./examples/queryservice -addr "http://$addr" -n 300

# The deployment cache and request metrics must be visible on /metrics.
metrics=$(curl -sf "http://$addr/metrics")
for series in fvcd_depcache_hits_total fvcd_requests_total fvcd_points_evaluated_total; do
    grep -q "$series" <<<"$metrics" || { echo "missing $series in /metrics"; exit 1; }
done
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'

# SIGTERM must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "fvcd exited non-zero on SIGTERM:"; cat "$logfile"; exit 1
fi
grep -q "drained cleanly" "$logfile" || { echo "no clean-drain log line:"; cat "$logfile"; exit 1; }
pid=""
echo "fvcd smoke: OK"
