#!/usr/bin/env bash
# Smoke test for the fvcd coverage query daemon, run by CI and
# `make smoke`: start the daemon on a random port, register a small
# heterogeneous deployment, assert the service's query answers match the
# library bit-for-bit (examples/queryservice exits non-zero on any
# mismatch), scrape /metrics, and check that SIGTERM drains cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/fvcd.log"
cleanup() {
    [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/fvcd" ./cmd/fvcd
"$workdir/fvcd" -addr 127.0.0.1:0 >"$logfile" 2>&1 &
pid=$!

# Wait for the daemon to report its bound address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$logfile" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$logfile"; exit 1; }
echo "fvcd up at $addr"

# Register a heterogeneous deployment, issue a batch query, and verify
# every verdict against the in-process library result.
go run ./examples/queryservice -addr "http://$addr" -n 300

# The deployment cache and request metrics must be visible on /metrics.
metrics=$(curl -sf "http://$addr/metrics")
for series in fvcd_depcache_hits_total fvcd_requests_total fvcd_points_evaluated_total; do
    grep -q "$series" <<<"$metrics" || { echo "missing $series in /metrics"; exit 1; }
done
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'

# SIGTERM must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "fvcd exited non-zero on SIGTERM:"; cat "$logfile"; exit 1
fi
grep -q "drained cleanly" "$logfile" || { echo "no clean-drain log line:"; cat "$logfile"; exit 1; }
pid=""

# --- Crash recovery ---------------------------------------------------
# Start with a durable state dir, register a deployment, PATCH it, query
# it, then kill -9 the daemon (no drain, no journal close). A fresh
# daemon on the same state dir must replay the registration AND the
# mutation records and answer the same query for the same id
# byte-for-byte, from the journal alone.
statedir="$workdir/state"
crashlog="$workdir/fvcd-crash.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$statedir" >"$crashlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$crashlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$crashlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$crashlog"; exit 1; }

depid=$(curl -sf -X POST "http://$addr/v1/deployments" \
    -d '{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":200,"seed":42}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid" ]] || { echo "registration returned no id"; exit 1; }

# Mutate the deployment in place: the patch must bump the version (one
# bump per group: reaim, remove, add) and is journaled before it is
# applied, so it must survive the kill -9 below.
patch='{"reaim":[{"index":0,"orient":2.25}],"remove":[11,5],"add":[{"x":0.4,"y":0.6,"orient":-0.5,"radius":0.18,"aperture":1.2}]}'
version=$(curl -sf -X PATCH "http://$addr/v1/deployments/$depid" -d "$patch" \
    | sed 's/.*"version":\([0-9]*\).*/\1/')
[[ "$version" == "3" ]] || { echo "patch reported version $version, want 3"; exit 1; }

query='{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9}]}'
curl -sf -X POST "http://$addr/v1/deployments/$depid/query" -d "$query" >"$workdir/q1.json"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "fvcd killed (-9) after registering and patching $depid"

restartlog="$workdir/fvcd-restart.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$statedir" >"$restartlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$restartlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on restart:"; cat "$restartlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "restarted fvcd never reported its address:"; cat "$restartlog"; exit 1; }

# Wait for the startup replay to finish.
for _ in $(seq 1 100); do
    curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' \
    || { echo "restarted fvcd never became ready:"; cat "$restartlog"; exit 1; }

curl -sf -X POST "http://$addr/v1/deployments/$depid/query" -d "$query" >"$workdir/q2.json"
diff "$workdir/q1.json" "$workdir/q2.json" \
    || { echo "query answers diverged across kill -9 restart"; exit 1; }
curl -sf "http://$addr/v1/deployments/$depid" | grep -q '"version":3' \
    || { echo "restarted fvcd lost the patch: version != 3"; exit 1; }
echo "crash recovery: patched deployment $depid answered bit-identically after restart (version 3 replayed)"

kill -TERM "$pid"
wait "$pid" || { echo "restarted fvcd exited non-zero:"; cat "$restartlog"; exit 1; }
pid=""

# --- Job resumption ---------------------------------------------------
# Start a throttled durable daemon, submit an async survey job, kill -9
# the daemon mid-job, and restart it unthrottled on the same state dir.
# The job must resume from its journal, report resumed:true, bump
# fvcd_job_resume_total, and finish with a result byte-identical to a
# fresh, uninterrupted job of the same spec.
jobstate="$workdir/jobstate"
joblog="$workdir/fvcd-job.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$jobstate" -job-throttle 75ms >"$joblog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$joblog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$joblog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$joblog"; exit 1; }

depid=$(curl -sf -X POST "http://$addr/v1/deployments" \
    -d '{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":200,"seed":42}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid" ]] || { echo "registration returned no id"; exit 1; }

jobid=$(curl -sf -X POST "http://$addr/v1/jobs" \
    -d '{"kind":"survey","deployment":"'"$depid"'","thetaPi":0.25,"grid":12}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$jobid" ]] || { echo "job submission returned no id"; exit 1; }

# Wait for at least two journaled bands so the resume has a prefix to
# skip, then kill without warning.
bandsdone=0
for _ in $(seq 1 100); do
    bandsdone=$(curl -sf "http://$addr/v1/jobs/$jobid" \
        | sed 's/.*"bandsDone":\([0-9]*\).*/\1/')
    [[ "$bandsdone" -ge 2 ]] && break
    sleep 0.05
done
[[ "$bandsdone" -ge 2 ]] || { echo "job never journaled two bands"; cat "$joblog"; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "fvcd killed (-9) with job $jobid at $bandsdone/12 bands"

jobrestartlog="$workdir/fvcd-job-restart.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$jobstate" >"$jobrestartlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$jobrestartlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on restart:"; cat "$jobrestartlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "restarted fvcd never reported its address:"; cat "$jobrestartlog"; exit 1; }
for _ in $(seq 1 100); do
    curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' && break
    sleep 0.1
done

# Poll the resumed job to completion.
for _ in $(seq 1 200); do
    curl -sf "http://$addr/v1/jobs/$jobid" >"$workdir/job1.json"
    grep -q '"state":"done"' "$workdir/job1.json" && break
    if grep -qE '"state":"(failed|cancelled)"' "$workdir/job1.json"; then
        echo "resumed job ended badly:"; cat "$workdir/job1.json"; exit 1
    fi
    sleep 0.05
done
grep -q '"state":"done"' "$workdir/job1.json" \
    || { echo "resumed job never finished:"; cat "$workdir/job1.json"; exit 1; }
grep -q '"resumed":true' "$workdir/job1.json" \
    || { echo "finished job does not report resumed:true:"; cat "$workdir/job1.json"; exit 1; }

# A fresh, uninterrupted job of the same spec must produce the same
# exact-integer result.
jobid2=$(curl -sf -X POST "http://$addr/v1/jobs" \
    -d '{"kind":"survey","deployment":"'"$depid"'","thetaPi":0.25,"grid":12}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
for _ in $(seq 1 200); do
    curl -sf "http://$addr/v1/jobs/$jobid2" >"$workdir/job2.json"
    grep -q '"state":"done"' "$workdir/job2.json" && break
    sleep 0.05
done
res1=$(grep -oE '"result":\{"stats":\[[^]]*\]\}' "$workdir/job1.json")
res2=$(grep -oE '"result":\{"stats":\[[^]]*\]\}' "$workdir/job2.json")
[[ -n "$res1" && "$res1" == "$res2" ]] \
    || { echo "resumed result diverged from fresh run:"; echo "$res1"; echo "$res2"; exit 1; }

resumes=$(curl -sf "http://$addr/metrics" | sed -n 's/^fvcd_job_resume_total \([0-9]*\)$/\1/p')
[[ "${resumes:-0}" -ge 1 ]] || { echo "fvcd_job_resume_total = ${resumes:-missing}, want >= 1"; exit 1; }
echo "job resumption: $jobid resumed after kill -9 and matched a fresh run bit-identically (resume_total=$resumes)"

kill -TERM "$pid"
wait "$pid" || { echo "job-leg fvcd exited non-zero:"; cat "$jobrestartlog"; exit 1; }
pid=""
echo "fvcd smoke: OK"
