#!/usr/bin/env bash
# Smoke test for the fvcd coverage query daemon, run by CI and
# `make smoke`: start the daemon on a random port, register a small
# heterogeneous deployment, assert the service's query answers match the
# library bit-for-bit (examples/queryservice exits non-zero on any
# mismatch), scrape /metrics, and check that SIGTERM drains cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
logfile="$workdir/fvcd.log"
cluster_pids=()
cleanup() {
    [[ -n "${pid:-}" ]] && kill "$pid" 2>/dev/null || true
    for p in "${cluster_pids[@]:-}"; do
        [[ -n "$p" ]] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/fvcd" ./cmd/fvcd
"$workdir/fvcd" -addr 127.0.0.1:0 >"$logfile" 2>&1 &
pid=$!

# Wait for the daemon to report its bound address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$logfile" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$logfile"; exit 1; }
echo "fvcd up at $addr"

# Register a heterogeneous deployment, issue a batch query, and verify
# every verdict against the in-process library result.
go run ./examples/queryservice -addr "http://$addr" -n 300

# The deployment cache and request metrics must be visible on /metrics.
metrics=$(curl -sf "http://$addr/metrics")
for series in fvcd_depcache_hits_total fvcd_requests_total fvcd_points_evaluated_total; do
    grep -q "$series" <<<"$metrics" || { echo "missing $series in /metrics"; exit 1; }
done
curl -sf "http://$addr/healthz" | grep -q '"status":"ok"'

# SIGTERM must drain and exit 0.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "fvcd exited non-zero on SIGTERM:"; cat "$logfile"; exit 1
fi
grep -q "drained cleanly" "$logfile" || { echo "no clean-drain log line:"; cat "$logfile"; exit 1; }
pid=""

# --- Crash recovery ---------------------------------------------------
# Start with a durable state dir, register a deployment, PATCH it, query
# it, then kill -9 the daemon (no drain, no journal close). A fresh
# daemon on the same state dir must replay the registration AND the
# mutation records and answer the same query for the same id
# byte-for-byte, from the journal alone.
statedir="$workdir/state"
crashlog="$workdir/fvcd-crash.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$statedir" >"$crashlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$crashlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$crashlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$crashlog"; exit 1; }

depid=$(curl -sf -X POST "http://$addr/v1/deployments" \
    -d '{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":200,"seed":42}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid" ]] || { echo "registration returned no id"; exit 1; }

# Mutate the deployment in place: the patch must bump the version (one
# bump per group: reaim, remove, add) and is journaled before it is
# applied, so it must survive the kill -9 below.
patch='{"reaim":[{"index":0,"orient":2.25}],"remove":[11,5],"add":[{"x":0.4,"y":0.6,"orient":-0.5,"radius":0.18,"aperture":1.2}]}'
version=$(curl -sf -X PATCH "http://$addr/v1/deployments/$depid" -d "$patch" \
    | sed 's/.*"version":\([0-9]*\).*/\1/')
[[ "$version" == "3" ]] || { echo "patch reported version $version, want 3"; exit 1; }

query='{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9}]}'
curl -sf -X POST "http://$addr/v1/deployments/$depid/query" -d "$query" >"$workdir/q1.json"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "fvcd killed (-9) after registering and patching $depid"

restartlog="$workdir/fvcd-restart.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$statedir" >"$restartlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$restartlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on restart:"; cat "$restartlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "restarted fvcd never reported its address:"; cat "$restartlog"; exit 1; }

# Wait for the startup replay to finish.
for _ in $(seq 1 100); do
    curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' && break
    sleep 0.1
done
curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' \
    || { echo "restarted fvcd never became ready:"; cat "$restartlog"; exit 1; }

curl -sf -X POST "http://$addr/v1/deployments/$depid/query" -d "$query" >"$workdir/q2.json"
diff "$workdir/q1.json" "$workdir/q2.json" \
    || { echo "query answers diverged across kill -9 restart"; exit 1; }
curl -sf "http://$addr/v1/deployments/$depid" | grep -q '"version":3' \
    || { echo "restarted fvcd lost the patch: version != 3"; exit 1; }
echo "crash recovery: patched deployment $depid answered bit-identically after restart (version 3 replayed)"

kill -TERM "$pid"
wait "$pid" || { echo "restarted fvcd exited non-zero:"; cat "$restartlog"; exit 1; }
pid=""

# --- Job resumption ---------------------------------------------------
# Start a throttled durable daemon, submit an async survey job, kill -9
# the daemon mid-job, and restart it unthrottled on the same state dir.
# The job must resume from its journal, report resumed:true, bump
# fvcd_job_resume_total, and finish with a result byte-identical to a
# fresh, uninterrupted job of the same spec.
jobstate="$workdir/jobstate"
joblog="$workdir/fvcd-job.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$jobstate" -job-throttle 75ms >"$joblog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$joblog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on startup:"; cat "$joblog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fvcd never reported its address:"; cat "$joblog"; exit 1; }

depid=$(curl -sf -X POST "http://$addr/v1/deployments" \
    -d '{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":200,"seed":42}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid" ]] || { echo "registration returned no id"; exit 1; }

jobid=$(curl -sf -X POST "http://$addr/v1/jobs" \
    -d '{"kind":"survey","deployment":"'"$depid"'","thetaPi":0.25,"grid":12}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$jobid" ]] || { echo "job submission returned no id"; exit 1; }

# Wait for at least two journaled bands so the resume has a prefix to
# skip, then kill without warning.
bandsdone=0
for _ in $(seq 1 100); do
    bandsdone=$(curl -sf "http://$addr/v1/jobs/$jobid" \
        | sed 's/.*"bandsDone":\([0-9]*\).*/\1/')
    [[ "$bandsdone" -ge 2 ]] && break
    sleep 0.05
done
[[ "$bandsdone" -ge 2 ]] || { echo "job never journaled two bands"; cat "$joblog"; exit 1; }
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "fvcd killed (-9) with job $jobid at $bandsdone/12 bands"

jobrestartlog="$workdir/fvcd-job-restart.log"
"$workdir/fvcd" -addr 127.0.0.1:0 -state "$jobstate" >"$jobrestartlog" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \(.*\)/\1/p' "$jobrestartlog" | head -n 1)
    [[ -n "$addr" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "fvcd died on restart:"; cat "$jobrestartlog"; exit 1; }
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "restarted fvcd never reported its address:"; cat "$jobrestartlog"; exit 1; }
for _ in $(seq 1 100); do
    curl -sf "http://$addr/readyz" | grep -q '"status":"ok"' && break
    sleep 0.1
done

# Poll the resumed job to completion.
for _ in $(seq 1 200); do
    curl -sf "http://$addr/v1/jobs/$jobid" >"$workdir/job1.json"
    grep -q '"state":"done"' "$workdir/job1.json" && break
    if grep -qE '"state":"(failed|cancelled)"' "$workdir/job1.json"; then
        echo "resumed job ended badly:"; cat "$workdir/job1.json"; exit 1
    fi
    sleep 0.05
done
grep -q '"state":"done"' "$workdir/job1.json" \
    || { echo "resumed job never finished:"; cat "$workdir/job1.json"; exit 1; }
grep -q '"resumed":true' "$workdir/job1.json" \
    || { echo "finished job does not report resumed:true:"; cat "$workdir/job1.json"; exit 1; }

# A fresh, uninterrupted job of the same spec must produce the same
# exact-integer result.
jobid2=$(curl -sf -X POST "http://$addr/v1/jobs" \
    -d '{"kind":"survey","deployment":"'"$depid"'","thetaPi":0.25,"grid":12}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
for _ in $(seq 1 200); do
    curl -sf "http://$addr/v1/jobs/$jobid2" >"$workdir/job2.json"
    grep -q '"state":"done"' "$workdir/job2.json" && break
    sleep 0.05
done
res1=$(grep -oE '"result":\{"stats":\[[^]]*\]\}' "$workdir/job1.json")
res2=$(grep -oE '"result":\{"stats":\[[^]]*\]\}' "$workdir/job2.json")
[[ -n "$res1" && "$res1" == "$res2" ]] \
    || { echo "resumed result diverged from fresh run:"; echo "$res1"; echo "$res2"; exit 1; }

resumes=$(curl -sf "http://$addr/metrics" | sed -n 's/^fvcd_job_resume_total \([0-9]*\)$/\1/p')
[[ "${resumes:-0}" -ge 1 ]] || { echo "fvcd_job_resume_total = ${resumes:-missing}, want >= 1"; exit 1; }
echo "job resumption: $jobid resumed after kill -9 and matched a fresh run bit-identically (resume_total=$resumes)"

kill -TERM "$pid"
wait "$pid" || { echo "job-leg fvcd exited non-zero:"; cat "$jobrestartlog"; exit 1; }
pid=""

# --- Cluster ----------------------------------------------------------
# Boot a 3-replica cluster plus a stateless router, register and PATCH
# a deployment through the router, and assert its query answer matches
# a single-node oracle byte-for-byte. Then kill -9 one replica, DELETE
# its state dir (disk loss, not just a crash), restart it, and assert
# it warmed its journal from a peer snapshot and answers the same query
# bit-identically — even when asked directly, bypassing the ring.
mapfile -t ports < <(go run ./scripts/freeport 4)
p1=${ports[0]} p2=${ports[1]} p3=${ports[2]} p4=${ports[3]}
peersfile="$workdir/peers.json"
cat >"$peersfile" <<EOF
{"members":[
  {"name":"r1","url":"http://127.0.0.1:$p1"},
  {"name":"r2","url":"http://127.0.0.1:$p2"},
  {"name":"r3","url":"http://127.0.0.1:$p3"}
]}
EOF

# start_replica sets $last_pid (command substitution would fork a
# subshell and lose the cluster_pids bookkeeping). Every replica runs
# the anti-entropy reconciler on a tight interval so the self-healing
# round below converges quickly.
start_replica() { # name port logfile
    "$workdir/fvcd" -addr "127.0.0.1:$2" -state "$workdir/cstate-$1" \
        -cluster "$peersfile" -self "$1" -antientropy 300ms >"$3" 2>&1 &
    last_pid=$!
    cluster_pids+=("$last_pid")
}
wait_ready() { # url logfile
    for _ in $(seq 1 100); do
        curl -sf "$1/readyz" | grep -q '"status":"ok"' && return 0
        sleep 0.1
    done
    echo "replica at $1 never became ready:"; cat "$2"; return 1
}

start_replica r1 "$p1" "$workdir/r1.log"; rpid1=$last_pid
start_replica r2 "$p2" "$workdir/r2.log"; rpid2=$last_pid
start_replica r3 "$p3" "$workdir/r3.log"; rpid3=$last_pid
"$workdir/fvcd" -addr "127.0.0.1:$p4" -route -cluster "$peersfile" >"$workdir/router.log" 2>&1 &
routerpid=$!
cluster_pids+=("$routerpid")
router="http://127.0.0.1:$p4"
for u in "http://127.0.0.1:$p1" "http://127.0.0.1:$p2" "http://127.0.0.1:$p3"; do
    wait_ready "$u" "$workdir/router.log" || exit 1
done
curl -sf "$router/readyz" | grep -q '"status":"ok"' \
    || { echo "router rollup not ok:"; curl -s "$router/readyz"; exit 1; }
echo "cluster up: 3 replicas + router at $router"

# Single-node oracle for byte-compares.
"$workdir/fvcd" -addr 127.0.0.1:0 >"$workdir/oracle.log" 2>&1 &
oraclepid=$!
cluster_pids+=("$oraclepid")
oracle=""
for _ in $(seq 1 100); do
    oracle=$(sed -n 's/.*listening on \(.*\)/\1/p' "$workdir/oracle.log" | head -n 1)
    [[ -n "$oracle" ]] && break
    sleep 0.1
done
[[ -n "$oracle" ]] || { echo "oracle never reported its address"; exit 1; }

regbody='{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":150,"seed":11}'
patch='{"reaim":[{"index":2,"orient":1.5}],"remove":[7]}'
query='{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9}]}'

depid=$(curl -sf -X POST "$router/v1/deployments" -d "$regbody" \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid" ]] || { echo "cluster registration returned no id"; exit 1; }
curl -sf -X PATCH "$router/v1/deployments/$depid" -d "$patch" >/dev/null
oid=$(curl -sf -X POST "http://$oracle/v1/deployments" -d "$regbody" \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ "$oid" == "$depid" ]] || { echo "cluster id $depid != oracle id $oid"; exit 1; }
curl -sf -X PATCH "http://$oracle/v1/deployments/$depid" -d "$patch" >/dev/null

curl -sf -X POST "$router/v1/deployments/$depid/query" -d "$query" >"$workdir/qc1.json"
curl -sf -X POST "http://$oracle/v1/deployments/$depid/query" -d "$query" >"$workdir/qo.json"
diff "$workdir/qc1.json" "$workdir/qo.json" \
    || { echo "cluster query diverged from single-node oracle"; exit 1; }

# The async mirror must land the deployment's records on every replica.
for u in "http://127.0.0.1:$p1" "http://127.0.0.1:$p2" "http://127.0.0.1:$p3"; do
    mirrored=0
    for _ in $(seq 1 100); do
        n=$(curl -sf "$u/metrics" | sed -n 's/^fvcd_journal_deployments \([0-9]*\)$/\1/p')
        [[ "${n:-0}" -ge 1 ]] && { mirrored=1; break; }
        sleep 0.1
    done
    [[ "$mirrored" == 1 ]] || { echo "mirror never reached $u"; exit 1; }
done
echo "cluster: $depid registered+patched via router, mirrored to all replicas, verdicts match oracle"

# kill -9 replica r2 and destroy its disk; its replacement must warm
# from a peer snapshot.
kill -9 "$rpid2"
wait "$rpid2" 2>/dev/null || true
rm -rf "$workdir/cstate-r2"
start_replica r2 "$p2" "$workdir/r2-restart.log"; rpid2=$last_pid
wait_ready "http://127.0.0.1:$p2" "$workdir/r2-restart.log" || exit 1
grep -q "warmed journal from" "$workdir/r2-restart.log" \
    || { echo "restarted r2 did not warm from a peer:"; cat "$workdir/r2-restart.log"; exit 1; }

curl -sf -X POST "$router/v1/deployments/$depid/query" -d "$query" >"$workdir/qc2.json"
diff "$workdir/qc2.json" "$workdir/qo.json" \
    || { echo "cluster query diverged after kill -9 + peer warm"; exit 1; }
# Even asked directly — bypassing the ring — the warmed replica answers
# from its peer-shipped journal.
curl -sf -X POST "http://127.0.0.1:$p2/v1/deployments/$depid/query" -d "$query" >"$workdir/qc3.json"
diff "$workdir/qc3.json" "$workdir/qo.json" \
    || { echo "warmed replica's direct answer diverged"; exit 1; }
echo "cluster: r2 killed -9 with disk loss, warmed from peer snapshot, answers bit-identical"

curl -sf "$router/metrics" | grep -q fvcd_cluster_forwards_total \
    || { echo "router /metrics lacks fvcd_cluster_forwards_total"; exit 1; }

# --- Self-healing: mirror loss + anti-entropy -------------------------
# kill -9 r3 but keep its disk. A deployment registered and patched
# while it is down loses its mirror batches after bounded retries (r3's
# socket is gone); the restarted r3 keeps its intact journal — behind,
# not empty, so there is no snapshot warm — and must reconverge through
# the anti-entropy reconciler alone, until all three replicas answer
# byte-identical digest maps.
kill -9 "$rpid3"
wait "$rpid3" 2>/dev/null || true
regbody2='{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":120,"seed":23}'
depid2=$(curl -sf -X POST "http://127.0.0.1:$p1/v1/deployments" -d "$regbody2" \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')
[[ -n "$depid2" ]] || { echo "mirror-loss registration returned no id"; exit 1; }
curl -sf -X PATCH "http://127.0.0.1:$p1/v1/deployments/$depid2" -d "$patch" >/dev/null
curl -sf -X POST "http://$oracle/v1/deployments" -d "$regbody2" >/dev/null
curl -sf -X PATCH "http://$oracle/v1/deployments/$depid2" -d "$patch" >/dev/null
echo "self-healing: $depid2 registered+patched on r1 while r3 was down"

start_replica r3 "$p3" "$workdir/r3-restart.log"; rpid3=$last_pid
wait_ready "http://127.0.0.1:$p3" "$workdir/r3-restart.log" || exit 1

converged=0
for _ in $(seq 1 100); do
    d1=$(curl -sf "http://127.0.0.1:$p1/v1/internal/digest")
    d2=$(curl -sf "http://127.0.0.1:$p2/v1/internal/digest")
    d3=$(curl -sf "http://127.0.0.1:$p3/v1/internal/digest")
    [[ -n "$d1" && "$d1" == "$d2" && "$d1" == "$d3" ]] && { converged=1; break; }
    sleep 0.1
done
[[ "$converged" == 1 ]] || {
    echo "digests never converged after r3 rejoined:"
    echo "r1: $d1"; echo "r2: $d2"; echo "r3: $d3"
    cat "$workdir/r3-restart.log"; exit 1
}
# The repaired copy must answer, not just hash: ask r3 directly,
# bypassing the ring, and compare against the oracle byte-for-byte.
curl -sf -X POST "http://127.0.0.1:$p3/v1/deployments/$depid2/query" -d "$query" >"$workdir/qh.json"
curl -sf -X POST "http://$oracle/v1/deployments/$depid2/query" -d "$query" >"$workdir/qho.json"
diff "$workdir/qh.json" "$workdir/qho.json" \
    || { echo "anti-entropy-repaired replica's answer diverged from oracle"; exit 1; }
echo "self-healing: r3 rejoined behind, anti-entropy converged all digests, answers bit-identical"

# --- Self-healing: owner kill + failover reads ------------------------
# kill -9 the replica that owns $depid on the ring. Reads through the
# router must fail over to a ring successor's mirrored copy and stay
# bit-identical to the oracle; writes stay owner-only and shed with
# 503 + Retry-After; the router exports its breaker states.
owner=$(go run ./scripts/ringowner "$peersfile" "$depid")
case "$owner" in
    r1) ownerpid=$rpid1 ;;
    r2) ownerpid=$rpid2 ;;
    r3) ownerpid=$rpid3 ;;
    *) echo "ringowner printed unknown member '$owner'"; exit 1 ;;
esac
kill -9 "$ownerpid"
wait "$ownerpid" 2>/dev/null || true
echo "self-healing: owner $owner of $depid killed -9"

curl -sf -X POST "$router/v1/deployments/$depid/query" -d "$query" >"$workdir/qf.json"
diff "$workdir/qf.json" "$workdir/qo.json" \
    || { echo "failover read diverged from oracle with owner down"; exit 1; }

wcode=$(curl -s -o "$workdir/wbody.json" -D "$workdir/wheaders.txt" -w '%{http_code}' \
    -X PATCH "$router/v1/deployments/$depid" -d "$patch")
[[ "$wcode" == "503" ]] \
    || { echo "write with dead owner answered $wcode, want 503:"; cat "$workdir/wbody.json"; exit 1; }
grep -qi '^retry-after:' "$workdir/wheaders.txt" \
    || { echo "write-rejection 503 carries no Retry-After:"; cat "$workdir/wheaders.txt"; exit 1; }

rmetrics=$(curl -sf "$router/metrics")
grep -q fvcd_breaker_state <<<"$rmetrics" \
    || { echo "router /metrics lacks fvcd_breaker_state"; exit 1; }
grep -q fvcd_cluster_failover_reads_total <<<"$rmetrics" \
    || { echo "router /metrics lacks fvcd_cluster_failover_reads_total"; exit 1; }
echo "self-healing: owner-down reads failed over bit-identically, write shed 503+Retry-After"

# TERM everything; the router must drain cleanly like a replica.
kill -TERM "$routerpid"
wait "$routerpid" || { echo "router exited non-zero:"; cat "$workdir/router.log"; exit 1; }
grep -q "drained cleanly" "$workdir/router.log" \
    || { echo "router did not drain cleanly:"; cat "$workdir/router.log"; exit 1; }
for p in "$rpid1" "$rpid2" "$rpid3" "$oraclepid"; do
    kill -TERM "$p" 2>/dev/null || true
    wait "$p" 2>/dev/null || true
done
cluster_pids=()
echo "cluster smoke: OK"

echo "fvcd smoke: OK"
