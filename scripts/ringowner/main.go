// Command ringowner prints the cluster member that owns a key on the
// consistent-hash ring of a peers file. scripts/smoke_fvcd.sh uses it
// to pick which replica to kill in the owner-downtime round — the
// failover assertion is only meaningful when the dead replica is the
// one that owns the deployment under test.
//
// Usage:
//
//	ringowner peers.json DEPLOYMENT_ID
package main

import (
	"fmt"
	"os"

	"fullview/internal/cluster"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: ringowner peers.json KEY\n")
		os.Exit(2)
	}
	peers, err := cluster.LoadPeers(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringowner: %v\n", err)
		os.Exit(1)
	}
	ring, err := peers.Ring()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringowner: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(ring.Owner(os.Args[2]))
}
