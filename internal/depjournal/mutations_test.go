package depjournal

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"fullview/internal/faultinject"
)

// explicitRec is a registration with an explicit camera list, the form
// compaction can fold without a materialize hook.
func explicitRec(id string, n int) Record {
	cams := make([]Camera, n)
	for i := range cams {
		cams[i] = Camera{X: 0.1 * float64(i+1), Y: 0.2, Orient: float64(i), Radius: 0.1, Aperture: 0.7, Group: i % 2}
	}
	return Record{ID: id, Cameras: cams}
}

// TestMutationsRoundTrip appends mutation batches and checks a
// restarted journal replays them in order.
func TestMutationsRoundTrip(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	muts := []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 2.5}, {I: 2, Orient: -1}}},
		{ID: "aaaa", Op: OpRemove, Remove: []int{1}},
		{ID: "aaaa", Op: OpAdd, Cameras: []Camera{{X: 0.9, Y: 0.9, Radius: 0.2, Aperture: 1.1}}},
	}
	if err := j.AppendMutations("aaaa", muts[:2]); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("aaaa", muts[2:]); err != nil {
		t.Fatal(err)
	}
	if got := j.Mutations("aaaa"); !reflect.DeepEqual(got, muts) {
		t.Fatalf("Mutations = %+v, want %+v", got, muts)
	}
	j.Close()

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Mutations("aaaa"); !reflect.DeepEqual(got, muts) {
		t.Fatalf("replayed mutations = %+v, want %+v", got, muts)
	}
	if reg, _ := j2.Lookup("aaaa"); reg.Folded || len(reg.Cameras) != 3 {
		t.Fatalf("registration drifted: %+v", reg)
	}
}

// TestAppendMutationsValidation pins the error contract.
func TestAppendMutationsValidation(t *testing.T) {
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(explicitRec("aaaa", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("zzzz", []Record{{ID: "zzzz", Op: OpRemove, Remove: []int{0}}}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unregistered id: err = %v, want ErrUnknownID", err)
	}
	if err := j.AppendMutations("aaaa", []Record{{ID: "bbbb", Op: OpRemove}}); err == nil {
		t.Fatal("mismatched record id accepted")
	}
	if err := j.AppendMutations("aaaa", []Record{{ID: "aaaa"}}); err == nil {
		t.Fatal("mutation without op accepted")
	}
	if err := j.AppendMutations("aaaa", []Record{{ID: "aaaa", Op: "explode"}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := j.Append(Record{ID: "aaaa", Op: OpAdd}); err == nil {
		t.Fatal("Append accepted a mutation record")
	}
	if got := j.Mutations("aaaa"); got != nil {
		t.Fatalf("failed appends leaked mutations: %+v", got)
	}
	// Empty batch is a no-op.
	if err := j.AppendMutations("aaaa", nil); err != nil {
		t.Fatal(err)
	}
}

// TestDanglingMutationIsCorrupt checks that a journal whose interior
// holds a mutation for an unregistered id is refused: the writer
// journals registrations strictly first, so this shape is damage.
func TestDanglingMutationIsCorrupt(t *testing.T) {
	path := testPath(t)
	body := `{"version":1,"kind":"fvcd/deployments"}` + "\n" +
		`{"id":"aaaa","op":"remove","remove":[0]}` + "\n" +
		`{"id":"aaaa","n":5}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestTornFinalMutationLine checks a crash mid-mutation-append: the
// torn line is dropped, the registration and earlier mutations survive,
// and a fresh batch lands cleanly.
func TestTornFinalMutationLine(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("aaaa", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("aaaa", []Record{{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 1}}}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate the torn write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"aaaa","op":"remove","remove":[1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	muts := j2.Mutations("aaaa")
	if len(muts) != 1 || muts[0].Op != OpReaim {
		t.Fatalf("replayed mutations = %+v, want the one intact reaim", muts)
	}
	if err := j2.AppendMutations("aaaa", []Record{{ID: "aaaa", Op: OpRemove, Remove: []int{1}}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Mutations("aaaa"); len(got) != 2 {
		t.Fatalf("after torn-line recovery: %d mutations, want 2", len(got))
	}
}

// TestDuplicateRegistrationResetsOnDisk checks the last-wins semantics
// across a mutation history: a later registration line for the same id
// supersedes both the earlier registration and its mutations.
func TestDuplicateRegistrationResetsOnDisk(t *testing.T) {
	path := testPath(t)
	body := `{"version":1,"kind":"fvcd/deployments"}` + "\n" +
		`{"id":"aaaa","cameras":[{"x":0.1,"y":0.1,"radius":0.1,"aperture":0.5}]}` + "\n" +
		`{"id":"aaaa","op":"remove","remove":[0]}` + "\n" +
		`{"id":"aaaa","cameras":[{"x":0.9,"y":0.9,"radius":0.2,"aperture":0.8}]}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
	if got := j.Mutations("aaaa"); got != nil {
		t.Fatalf("reset registration kept mutations: %+v", got)
	}
	reg, _ := j.Lookup("aaaa")
	if len(reg.Cameras) != 1 || reg.Cameras[0].X != 0.9 {
		t.Fatalf("last-wins registration wrong: %+v", reg)
	}
}

// TestFoldOnCompaction checks that Compact absorbs an explicit-camera
// deployment's mutations into one Folded registration whose camera list
// is exactly the live list, carrying the folded-in version.
func TestFoldOnCompaction(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	muts := []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 9.75}}},
		{ID: "aaaa", Op: OpRemove, Remove: []int{1}},
		{ID: "aaaa", Op: OpAdd, Cameras: []Camera{{X: 0.9, Y: 0.9, Orient: -3, Radius: 0.2, Aperture: 1.1, Group: 7}}},
	}
	if err := j.AppendMutations("aaaa", muts); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	reg, ok := j.Lookup("aaaa")
	if !ok || !reg.Folded {
		t.Fatalf("registration not folded: %+v", reg)
	}
	if reg.BaseVersion != 3 {
		t.Fatalf("BaseVersion = %d, want 3", reg.BaseVersion)
	}
	// Expected live list: camera 0 reaimed, camera 1 removed, one added.
	base := explicitRec("aaaa", 3).Cameras
	want := []Camera{
		{X: base[0].X, Y: base[0].Y, Orient: 9.75, Radius: base[0].Radius, Aperture: base[0].Aperture, Group: base[0].Group},
		base[2],
		{X: 0.9, Y: 0.9, Orient: -3, Radius: 0.2, Aperture: 1.1, Group: 7},
	}
	if !reflect.DeepEqual(reg.Cameras, want) {
		t.Fatalf("folded cameras = %+v, want %+v", reg.Cameras, want)
	}
	if got := j.Mutations("aaaa"); got != nil {
		t.Fatalf("fold left mutations behind: %+v", got)
	}
	j.Close()

	// The folded snapshot must replay identically.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, _ := j2.Lookup("aaaa")
	if !reflect.DeepEqual(reg2, reg) {
		t.Fatalf("folded record drifted across restart: %+v vs %+v", reg2, reg)
	}
}

// TestFoldRecipeNeedsMaterialize checks that a recipe-form deployment
// folds only when the journal has a materialize hook; without one the
// registration and mutations are kept verbatim.
func TestFoldRecipeNeedsMaterialize(t *testing.T) {
	recipe := Record{ID: "aaaa", Profile: "1:0.1:0.5", N: 2, Seed: 7}
	mut := Record{ID: "aaaa", Op: OpRemove, Remove: []int{0}}

	// Without a hook: kept verbatim.
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(recipe); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("aaaa", []Record{mut}); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if reg, _ := j.Lookup("aaaa"); reg.Folded {
		t.Fatal("recipe folded without a materialize hook")
	}
	if got := j.Mutations("aaaa"); len(got) != 1 {
		t.Fatalf("mutations lost without fold: %+v", got)
	}
	j.Close()

	// With a hook: folded through the materialised list.
	materialize := func(r Record) ([]Camera, error) {
		return []Camera{
			{X: 0.1, Y: 0.1, Radius: 0.1, Aperture: 0.5},
			{X: 0.6, Y: 0.6, Orient: 1, Radius: 0.2, Aperture: 0.9},
		}, nil
	}
	j2, err := Open(path, Options{Materialize: materialize})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Compact(); err != nil {
		t.Fatal(err)
	}
	reg, _ := j2.Lookup("aaaa")
	if !reg.Folded || reg.BaseVersion != 1 {
		t.Fatalf("recipe not folded under hook: %+v", reg)
	}
	want := []Camera{{X: 0.6, Y: 0.6, Orient: 1, Radius: 0.2, Aperture: 0.9}}
	if !reflect.DeepEqual(reg.Cameras, want) {
		t.Fatalf("folded cameras = %+v, want %+v", reg.Cameras, want)
	}
	if reg.Profile != "" || reg.N != 0 {
		t.Fatalf("folded record kept its recipe: %+v", reg)
	}
}

// TestFoldFailureKeepsRecords checks that an unfoldable deployment (a
// fold that would empty the camera list) survives compaction verbatim
// and stops counting as reclaimable.
func TestFoldFailureKeepsRecords(t *testing.T) {
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(explicitRec("aaaa", 1)); err != nil {
		t.Fatal(err)
	}
	// Removing the only camera folds to an empty list — unfoldable.
	if err := j.AppendMutations("aaaa", []Record{{ID: "aaaa", Op: OpRemove, Remove: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if reg, _ := j.Lookup("aaaa"); reg.Folded {
		t.Fatal("empty fold was accepted")
	}
	if got := j.Mutations("aaaa"); len(got) != 1 {
		t.Fatalf("unfoldable deployment lost its mutations: %+v", got)
	}
	if !j.deps[0].unfoldable {
		t.Fatal("failed fold not marked unfoldable")
	}
	if j.compactNeededLocked() {
		t.Fatal("unfoldable deployment still counts as reclaimable")
	}
}

// TestCompactionFoldsPastThreshold checks the automatic trigger: a
// mutation-heavy journal past CompactBytes folds on its own append
// path and the file shrinks.
func TestCompactionFoldsPastThreshold(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{CompactBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("aaaa", 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := j.AppendMutations("aaaa", []Record{
			{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: float64(i)}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg, _ := j.Lookup("aaaa")
	if !reg.Folded {
		t.Fatalf("mutation-heavy journal never folded (size %d)", j.Size())
	}
	if n := len(j.Mutations("aaaa")); n == 64 {
		t.Fatal("no mutations were absorbed")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != j.Size() {
		t.Fatalf("Size()=%d disagrees with file %d", j.Size(), fi.Size())
	}
	j.Close()
	// Everything still replays.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reg2, _ := j2.Lookup("aaaa")
	if !reg2.Folded || len(reg2.Cameras) != 2 {
		t.Fatalf("replayed folded record wrong: %+v", reg2)
	}
}

// TestAppendMutationsInjectedFailure checks the faultinject point on
// the mutation path: nothing is recorded, the journal recovers when
// the fault clears.
func TestAppendMutationsInjectedFailure(t *testing.T) {
	defer faultinject.Reset()
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(explicitRec("aaaa", 1)); err != nil {
		t.Fatal(err)
	}
	diskGone := errors.New("injected: disk gone")
	remove := faultinject.Set(faultinject.JournalWrite, faultinject.Error(diskGone))
	mut := Record{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 1}}}
	if err := j.AppendMutations("aaaa", []Record{mut}); !errors.Is(err, diskGone) {
		t.Fatalf("AppendMutations under injection = %v, want %v", err, diskGone)
	}
	if got := j.Mutations("aaaa"); got != nil {
		t.Fatal("failed mutation append leaked into memory")
	}
	remove()
	if err := j.AppendMutations("aaaa", []Record{mut}); err != nil {
		t.Fatalf("AppendMutations after fault cleared = %v", err)
	}
	if got := j.Mutations("aaaa"); len(got) != 1 {
		t.Fatalf("recovered mutation not recorded: %+v", got)
	}
}

// TestMutationBatchAtomicOnDisk checks the one-write-one-fsync batch
// contract indirectly: a multi-record batch lands as consecutive lines
// and replays whole.
func TestMutationBatchAtomicOnDisk(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 1, Orient: 0.5}}},
		{ID: "aaaa", Op: OpRemove, Remove: []int{0}},
		{ID: "aaaa", Op: OpAdd, Cameras: []Camera{{X: 0.2, Y: 0.8, Radius: 0.1, Aperture: 0.6}}},
	}
	if err := j.AppendMutations("aaaa", batch); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 5 { // header + registration + 3 mutations
		t.Fatalf("journal holds %d lines, want 5:\n%s", len(lines), data)
	}
}
