package depjournal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fullview/internal/faultinject"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "deployments.jsonl")
}

func rec(id string, n int) Record {
	return Record{ID: id, Profile: "0.3:0.2:0.4,0.7:0.1:0.5", N: n, Seed: 7}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec("aaaa", 10),
		{ID: "bbbb", Torus: 2, Cameras: []Camera{{X: 0.5, Y: 0.25, Orient: 1, Radius: 0.1, Aperture: 0.7, Group: 1}}},
		{ID: "cccc", Density: 120.5, Deploy: "poisson", Seed: 3},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open (the restarted daemon) must replay exactly.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
	if !j2.Has("bbbb") || j2.Has("zzzz") {
		t.Fatal("Has is wrong")
	}
	got, ok := j2.Lookup("cccc")
	if !ok || got.Density != 120.5 {
		t.Fatalf("Lookup(cccc) = %+v, %v", got, ok)
	}
}

func TestAppendDuplicateIsNoOp(t *testing.T) {
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(rec("aaaa", 10)); err != nil {
		t.Fatal(err)
	}
	size := j.Size()
	if err := j.Append(rec("aaaa", 10)); err != nil {
		t.Fatal(err)
	}
	if j.Size() != size {
		t.Fatalf("duplicate append grew the file: %d → %d", size, j.Size())
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
}

func TestAppendWithoutID(t *testing.T) {
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{N: 5}); !errors.Is(err, ErrNoID) {
		t.Fatalf("Append without id = %v, want ErrNoID", err)
	}
}

// TestTornFinalLine simulates a crash mid-append: the torn tail is
// dropped on replay, truncated from the file, and a new append lands
// cleanly after the intact prefix.
func TestTornFinalLine(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("aaaa", 10)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"bbbb","n":2`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if j2.Len() != 1 || j2.Has("bbbb") {
		t.Fatalf("torn record leaked into the replay: %+v", j2.Records())
	}
	if err := j2.Append(rec("cccc", 3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 || !j3.Has("aaaa") || !j3.Has("cccc") {
		t.Fatalf("post-torn append corrupted the journal: %+v", j3.Records())
	}
}

// TestMissingFinalNewline covers a valid last line without its newline:
// the record is kept and the next append must not concatenate onto it.
func TestMissingFinalNewline(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(rec("aaaa", 10))
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Has("aaaa") {
		t.Fatal("record with missing newline dropped")
	}
	if err := j2.Append(rec("bbbb", 2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("append after missing-newline repair corrupted the file: %v", err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("Len = %d, want 2", j3.Len())
	}
}

func TestInteriorCorruptionRefused(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(rec("aaaa", 10))
	j.Close()
	data, _ := os.ReadFile(path)
	damaged := append([]byte(nil), data...)
	damaged = append(damaged, []byte("NOT JSON\n")...)
	damaged = append(damaged, []byte(`{"id":"bbbb","n":2}`+"\n")...)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption gave %v, want ErrCorrupt", err)
	}
}

func TestBadHeaderRefused(t *testing.T) {
	path := testPath(t)
	if err := os.WriteFile(path, []byte(`{"version":99,"kind":"other"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header gave %v, want ErrCorrupt", err)
	}
}

// TestDuplicateIDsOnDisk checks replay of a file holding duplicate ids
// (possible when a crash raced the in-memory dedup): last record wins,
// Len counts distinct ids.
func TestDuplicateIDsOnDisk(t *testing.T) {
	path := testPath(t)
	body := `{"version":1,"kind":"fvcd/deployments"}` + "\n" +
		`{"id":"aaaa","n":1}` + "\n" +
		`{"id":"bbbb","n":2}` + "\n" +
		`{"id":"aaaa","n":3}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct ids", j.Len())
	}
	got, _ := j.Lookup("aaaa")
	if got.N != 3 {
		t.Fatalf("duplicate id: last record must win, got n=%d", got.N)
	}
	// Registration order is preserved for the first occurrence.
	recs := j.Records()
	if recs[0].ID != "aaaa" || recs[1].ID != "bbbb" {
		t.Fatalf("order = %v", []string{recs[0].ID, recs[1].ID})
	}
}

// TestCompaction fills a tiny-threshold journal with duplicates and
// checks the snapshot rewrite shrinks the file while keeping appends
// working.
func TestCompaction(t *testing.T) {
	path := testPath(t)
	body := strings.Builder{}
	body.WriteString(`{"version":1,"kind":"fvcd/deployments"}` + "\n")
	for i := 0; i < 200; i++ {
		body.WriteString(`{"id":"aaaa","n":` + string(rune('1'+i%9)) + `}` + "\n")
	}
	if err := os.WriteFile(path, []byte(body.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{CompactBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
	// Open compacted the duplicate-heavy file on the spot.
	if j.Size() >= int64(body.Len()) {
		t.Fatalf("compaction did not shrink: %d ≥ %d", j.Size(), body.Len())
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != j.Size() {
		t.Fatalf("Size()=%d disagrees with file %d", j.Size(), fi.Size())
	}
	if err := j.Append(rec("bbbb", 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || !j2.Has("aaaa") || !j2.Has("bbbb") {
		t.Fatalf("post-compaction journal wrong: %+v", j2.Records())
	}
}

func TestClosedJournal(t *testing.T) {
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(rec("aaaa", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}

// TestInjectedWriteFailure checks the faultinject.JournalWrite point:
// the append fails, nothing is recorded, and the journal recovers as
// soon as the fault clears.
func TestInjectedWriteFailure(t *testing.T) {
	defer faultinject.Reset()
	j, err := Open(testPath(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	diskGone := errors.New("injected: disk gone")
	remove := faultinject.Set(faultinject.JournalWrite, faultinject.Error(diskGone))
	if err := j.Append(rec("aaaa", 1)); !errors.Is(err, diskGone) {
		t.Fatalf("Append under injection = %v, want %v", err, diskGone)
	}
	if j.Has("aaaa") || j.Len() != 0 {
		t.Fatal("failed append leaked into memory")
	}
	remove()
	if err := j.Append(rec("aaaa", 1)); err != nil {
		t.Fatalf("Append after fault cleared = %v", err)
	}
	if !j.Has("aaaa") {
		t.Fatal("recovered append not recorded")
	}
}
