package depjournal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// DigestInfo summarizes one deployment's journaled content for
// anti-entropy comparison across replicas.
type DigestInfo struct {
	// Digest is the hex sha256 chained over the deployment's canonical
	// record stream: the exact JSONL lines SnapshotID would stream for
	// it, hashed in order. Because the stream is canonicalized first
	// (mutations folded into the registration whenever they fold — see
	// canonicalize), the digest is a pure function of the deployment's
	// logical state: replicas whose files differ only in compaction
	// history, duplicate registrations, or record arrival batching
	// still digest identically, and any dropped or divergent record
	// changes the digest.
	Digest string `json:"digest"`
	// Version is the deployment's logical version (see
	// Journal.Version), letting the reconciler order two divergent
	// copies: the higher version strictly supersedes (mutations have a
	// single writer — the ring owner — so versions never fork).
	Version uint64 `json:"version"`
}

// digestDep hashes one canonicalized deployment's record lines.
func digestDep(st stagedDep) (DigestInfo, error) {
	h := sha256.New()
	if _, err := encodeDep(json.NewEncoder(h), st); err != nil {
		return DigestInfo{}, err
	}
	return DigestInfo{
		Digest:  hex.EncodeToString(h.Sum(nil)),
		Version: st.reg.BaseVersion + uint64(len(st.muts)),
	}, nil
}

// Digests computes every journaled deployment's content digest with
// the same copy-under-lock discipline as Snapshot: the per-deployment
// state is copied under the journal lock (record values and slice
// headers only), then the lock is released and hashing runs against
// the copy, so appends are never blocked behind sha256. A deployment
// whose canonical stream fails to encode is skipped (it also could not
// be snapshotted; the next round retries).
func (j *Journal) Digests() map[string]DigestInfo {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	deps := j.stageLocked()
	materialize := j.materialize
	j.mu.Unlock()

	out := make(map[string]DigestInfo, len(deps))
	for _, d := range deps {
		info, err := digestDep(canonicalize(d, materialize))
		if err != nil {
			continue
		}
		out[d.reg.ID] = info
	}
	return out
}

// Digest computes one deployment's content digest (see Digests).
func (j *Journal) Digest(id string) (DigestInfo, bool) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return DigestInfo{}, false
	}
	i, ok := j.ids[id]
	if !ok {
		j.mu.Unlock()
		return DigestInfo{}, false
	}
	d := j.deps[i]
	st := stagedDep{reg: d.reg, muts: d.muts, unfoldable: d.unfoldable}
	materialize := j.materialize
	j.mu.Unlock()

	info, err := digestDep(canonicalize(st, materialize))
	if err != nil {
		return DigestInfo{}, false
	}
	return info, true
}
