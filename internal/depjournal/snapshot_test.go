package depjournal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// snapshotJournal builds a journal exercising every snapshot shape:
// a foldable explicit deployment with mutations, a recipe deployment
// with no materialize hook (unfoldable — written verbatim), and an
// untouched registration.
func snapshotJournal(t *testing.T) (*Journal, string) {
	t.Helper()
	path := testPath(t)
	j, err := Open(path, Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	if err := j.Append(explicitRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("aaaa", []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 1, Orient: 2.25}}},
		{ID: "aaaa", Op: OpRemove, Remove: []int{0}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("bbbb", 10)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendMutations("bbbb", []Record{
		{ID: "bbbb", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(explicitRec("cccc", 2)); err != nil {
		t.Fatal(err)
	}
	return j, path
}

// replaySnapshot writes snapshot bytes to a fresh path and opens them
// as a journal — exactly what a peer warming from the snapshot does.
func replaySnapshot(t *testing.T, data []byte) *Journal {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snapshot.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, Options{CompactBytes: -1})
	if err != nil {
		t.Fatalf("snapshot does not replay: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestSnapshotBitIdenticalToCompaction pins the shipping guarantee: the
// bytes Snapshot streams to a peer are exactly the bytes Compact writes
// locally, so a peer-warmed journal and a locally-compacted one are the
// same file.
func TestSnapshotBitIdenticalToCompaction(t *testing.T) {
	j, path := snapshotJournal(t)

	var buf bytes.Buffer
	n, err := j.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Snapshot reported %d bytes, wrote %d", n, buf.Len())
	}

	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), disk) {
		t.Fatalf("snapshot differs from compaction:\nsnapshot:\n%s\ncompacted:\n%s", buf.Bytes(), disk)
	}
}

// TestSnapshotReplaysToSameState: a journal opened from the snapshot
// answers Records/Lookup/Mutations exactly like the source journal
// after compaction — the state a warmed peer serves from is the state
// the donor held.
func TestSnapshotReplaysToSameState(t *testing.T) {
	j, _ := snapshotJournal(t)

	var buf bytes.Buffer
	if _, err := j.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	warmed := replaySnapshot(t, buf.Bytes())

	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, want := warmed.Records(), j.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("warmed records\n%+v\nwant\n%+v", got, want)
	}
	for _, id := range []string{"aaaa", "bbbb", "cccc"} {
		if got, want := warmed.Mutations(id), j.Mutations(id); !reflect.DeepEqual(got, want) {
			t.Fatalf("warmed mutations for %s = %+v, want %+v", id, got, want)
		}
	}
	// The foldable deployment arrived folded: one registration, no
	// mutation records, the final camera list inline.
	reg, ok := warmed.Lookup("aaaa")
	if !ok || !reg.Folded || reg.BaseVersion != 2 {
		t.Fatalf("warmed aaaa = %+v, want a Folded registration at baseVersion 2", reg)
	}
	if len(reg.Cameras) != 2 {
		t.Fatalf("folded aaaa has %d cameras, want 2 (one removed)", len(reg.Cameras))
	}
}

// TestSnapshotCommitsNothing: unlike Compact, Snapshot must not touch
// the journal — not its file, not its in-memory mutation lists.
func TestSnapshotCommitsNothing(t *testing.T) {
	j, path := snapshotJournal(t)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutsBefore := j.Mutations("aaaa")

	if _, err := j.Snapshot(new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("Snapshot modified the journal file")
	}
	if got := j.Mutations("aaaa"); !reflect.DeepEqual(got, mutsBefore) {
		t.Fatalf("Snapshot folded the in-memory mutations: %+v", got)
	}
	// And appends still land after a snapshot.
	if err := j.Append(rec("dddd", 4)); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotMidAppendReplaysConsistently is the torn-read guard: a
// snapshot taken while another goroutine is appending mutations must
// replay to a consistent prefix of the final state — the registration
// with the first k mutations folded in, for some k ≤ total — never a
// torn or interleaved image. Camera 0's orientation is a marker that
// encodes k, so each snapshot is checked against the exact expected
// fold for the prefix it captured. Run with -race this also proves the
// copy-under-lock discipline.
func TestSnapshotMidAppendReplaysConsistently(t *testing.T) {
	path := testPath(t)
	j, err := Open(path, Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const depID, total = "dddd", 40
	reg := explicitRec(depID, 4)
	muts := make([]Record, total)
	for k := range muts {
		muts[k] = Record{ID: depID, Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: float64(k + 1)}}}
	}
	// expected[k] is the folded state after the first k mutations.
	expected := make([]Record, total+1)
	expected[0] = reg
	for k := 1; k <= total; k++ {
		folded, ok := foldDeployment(reg, muts[:k], nil)
		if !ok {
			t.Fatalf("prefix %d does not fold", k)
		}
		expected[k] = folded
	}

	if err := j.Append(reg); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for k := range muts {
			if err := j.AppendMutations(depID, muts[k:k+1]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	dir := t.TempDir()
	checkSnapshot := func(i int) int {
		var buf bytes.Buffer
		if _, err := j.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		sp := filepath.Join(dir, "snap.jsonl")
		if err := os.WriteFile(sp, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		warmed, err := Open(sp, Options{CompactBytes: -1})
		if err != nil {
			t.Fatalf("snapshot %d does not replay: %v", i, err)
		}
		defer warmed.Close()
		got, ok := warmed.Lookup(depID)
		if !ok {
			t.Fatalf("snapshot %d lost deployment %s", i, depID)
		}
		k := int(got.Cameras[0].Orient) // the marker the k-th mutation wrote
		if k < 0 || k > total {
			t.Fatalf("snapshot %d: marker orient %v outside [0,%d]", i, got.Cameras[0].Orient, total)
		}
		if !reflect.DeepEqual(got, expected[k]) {
			t.Fatalf("snapshot %d replayed\n%+v\nwant the k=%d prefix fold\n%+v", i, got, k, expected[k])
		}
		if warmed.Mutations(depID) != nil {
			t.Fatalf("snapshot %d shipped unfolded mutations", i)
		}
		return k
	}

	lastK := 0
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// One final snapshot with all appends landed.
			if k := checkSnapshot(i); k != total {
				t.Fatalf("final snapshot captured prefix %d, want %d", k, total)
			}
			if lastK == 0 {
				t.Log("note: no snapshot overlapped the appends (scheduler timing); prefix consistency still verified")
			}
			return
		default:
		}
		k := checkSnapshot(i)
		if k < lastK {
			t.Fatalf("snapshot %d went backwards: prefix %d after %d", i, k, lastK)
		}
		lastK = k
	}
}

// TestSnapshotClosed: a closed journal refuses to snapshot.
func TestSnapshotClosed(t *testing.T) {
	j, _ := snapshotJournal(t)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Snapshot(new(bytes.Buffer)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot on closed journal = %v, want ErrClosed", err)
	}
}
