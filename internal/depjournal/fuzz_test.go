package depjournal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReplay fuzzes the journal replay parser: it must never crash, and
// on any accepted image the invariants the server relies on must hold —
// every record has an id, the intact-prefix length is within the input,
// and a snapshot of the parsed records re-parses to the same records
// (torn-line and duplicate-id inputs therefore round-trip through
// compaction without drift).
func FuzzReplay(f *testing.F) {
	head := `{"version":1,"kind":"fvcd/deployments"}` + "\n"
	f.Add([]byte(head))
	f.Add([]byte(head + `{"id":"aaaa","n":10,"profile":"1:0.1:0.5","seed":7}` + "\n"))
	f.Add([]byte(head + `{"id":"bbbb","torus":2,"cameras":[{"x":0.5,"y":0.5,"orient":1,"radius":0.1,"aperture":0.7}]}` + "\n"))
	// Torn final line.
	f.Add([]byte(head + `{"id":"aaaa","n":1}` + "\n" + `{"id":"bbbb","n":2`))
	// Duplicate ids.
	f.Add([]byte(head + `{"id":"aaaa","n":1}` + "\n" + `{"id":"aaaa","n":2}` + "\n"))
	// Garbage.
	f.Add([]byte("not a journal"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, lines, good, err := parse(data)
		if err != nil {
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good = %d outside [0, %d]", good, len(data))
		}
		if int64(len(recs)) != lines {
			t.Fatalf("lines = %d but %d records", lines, len(recs))
		}
		for i, r := range recs {
			if r.ID == "" {
				t.Fatalf("record %d accepted without id", i)
			}
		}

		// Round-trip: a compaction-style snapshot of the parsed records
		// must re-parse to identical records (after dedup, as compaction
		// writes the deduplicated in-memory view).
		dedup := make(map[string]int)
		var uniq []Record
		for _, r := range recs {
			if i, ok := dedup[r.ID]; ok {
				uniq[i] = r
				continue
			}
			dedup[r.ID] = len(uniq)
			uniq = append(uniq, r)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
			t.Fatal(err)
		}
		for _, r := range uniq {
			if err := enc.Encode(r); err != nil {
				// Non-finite floats cannot round-trip through JSON; parse
				// can only have produced them from inputs json.Marshal
				// refuses, which cannot occur: encoding/json rejects NaN/Inf
				// on encode but never produces them on decode from valid
				// JSON. Any encode error here is therefore a real bug.
				t.Fatalf("snapshot encode: %v", err)
			}
		}
		recs2, _, good2, err := parse(buf.Bytes())
		if err != nil {
			t.Fatalf("snapshot does not re-parse: %v", err)
		}
		if good2 != int64(buf.Len()) {
			t.Fatalf("snapshot has a torn tail: good %d of %d", good2, buf.Len())
		}
		if len(recs2) != len(uniq) {
			t.Fatalf("round trip: %d records, want %d", len(recs2), len(uniq))
		}
		for i := range uniq {
			a, _ := json.Marshal(uniq[i])
			b, _ := json.Marshal(recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d drifted: %s → %s", i, a, b)
			}
		}
	})
}
