package depjournal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReplay fuzzes the journal replay parser: it must never crash, and
// on any accepted image the invariants the server relies on must hold —
// every record has an id and a known op, the intact-prefix length is
// within the input, and a compaction-style snapshot of the linked
// per-deployment state (registrations last-wins, mutations in order,
// foldable deployments folded) re-parses to an equivalent journal, so
// torn-line, duplicate-id, and mutation-interleaved inputs round-trip
// through compaction without drift.
func FuzzReplay(f *testing.F) {
	head := `{"version":1,"kind":"fvcd/deployments"}` + "\n"
	f.Add([]byte(head))
	f.Add([]byte(head + `{"id":"aaaa","n":10,"profile":"1:0.1:0.5","seed":7}` + "\n"))
	f.Add([]byte(head + `{"id":"bbbb","torus":2,"cameras":[{"x":0.5,"y":0.5,"orient":1,"radius":0.1,"aperture":0.7}]}` + "\n"))
	// Torn final line.
	f.Add([]byte(head + `{"id":"aaaa","n":1}` + "\n" + `{"id":"bbbb","n":2`))
	// Duplicate ids.
	f.Add([]byte(head + `{"id":"aaaa","n":1}` + "\n" + `{"id":"aaaa","n":2}` + "\n"))
	// Mutations interleaved with registrations.
	f.Add([]byte(head +
		`{"id":"aaaa","cameras":[{"x":0.1,"y":0.2,"orient":0,"radius":0.1,"aperture":0.5},{"x":0.7,"y":0.7,"orient":1,"radius":0.2,"aperture":1}]}` + "\n" +
		`{"id":"aaaa","op":"reaim","reaim":[{"i":0,"orient":2.5}]}` + "\n" +
		`{"id":"aaaa","op":"remove","remove":[1]}` + "\n" +
		`{"id":"aaaa","op":"add","cameras":[{"x":0.4,"y":0.4,"orient":-1,"radius":0.15,"aperture":0.9}]}` + "\n"))
	// Duplicate registration resetting a mutation history (last wins).
	f.Add([]byte(head +
		`{"id":"aaaa","cameras":[{"x":0.1,"y":0.2,"radius":0.1,"aperture":0.5}]}` + "\n" +
		`{"id":"aaaa","op":"remove","remove":[0]}` + "\n" +
		`{"id":"aaaa","cameras":[{"x":0.3,"y":0.3,"radius":0.1,"aperture":0.5}]}` + "\n"))
	// Torn final mutation line.
	f.Add([]byte(head + `{"id":"aaaa","n":1}` + "\n" + `{"id":"aaaa","op":"remove","remove":[0`))
	// A folded snapshot record.
	f.Add([]byte(head + `{"id":"aaaa","cameras":[{"x":0.1,"y":0.2,"radius":0.1,"aperture":0.5}],"folded":true,"baseVersion":4}` + "\n"))
	// Unknown op (must be refused or torn-dropped, never linked).
	f.Add([]byte(head + `{"id":"aaaa","op":"explode"}` + "\n"))
	// Garbage.
	f.Add([]byte("not a journal"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, lines, good, err := parse(data)
		if err != nil {
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good = %d outside [0, %d]", good, len(data))
		}
		if int64(len(recs)) != lines {
			t.Fatalf("lines = %d but %d records", lines, len(recs))
		}
		for i, r := range recs {
			if r.ID == "" {
				t.Fatalf("record %d accepted without id", i)
			}
			if r.validate() != nil {
				t.Fatalf("record %d accepted with invalid op %q", i, r.Op)
			}
		}

		// Link the records exactly as Open does. A mutation without a
		// prior registration makes the whole image corrupt at Open level;
		// nothing further to check for such inputs.
		link := &Journal{ids: make(map[string]int)}
		for _, r := range recs {
			if err := link.link(r); err != nil {
				return
			}
		}

		// Compaction-style snapshot: fold deployments whose mutations
		// fold (explicit camera bases only — no materialize hook here),
		// keep the rest verbatim. The snapshot must re-parse and re-link
		// to an equivalent journal.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
			t.Fatal(err)
		}
		type wantDep struct {
			reg  Record
			muts []Record
		}
		var want []wantDep
		for _, d := range link.deps {
			w := wantDep{reg: d.reg, muts: d.muts}
			if len(d.muts) > 0 && len(d.reg.Cameras) > 0 {
				if folded, ok := foldDeployment(d.reg, d.muts, nil); ok {
					if !folded.Folded {
						t.Fatalf("fold of %s not marked Folded", d.reg.ID)
					}
					if folded.BaseVersion != d.reg.BaseVersion+uint64(len(d.muts)) {
						t.Fatalf("fold of %s: BaseVersion %d, want %d",
							d.reg.ID, folded.BaseVersion, d.reg.BaseVersion+uint64(len(d.muts)))
					}
					if len(folded.Cameras) == 0 {
						t.Fatalf("fold of %s accepted an empty camera list", d.reg.ID)
					}
					w = wantDep{reg: folded}
				}
			}
			if err := enc.Encode(w.reg); err != nil {
				// encoding/json never produces NaN/Inf from valid JSON input,
				// so an encode failure here is a real bug.
				t.Fatalf("snapshot encode: %v", err)
			}
			for i := range w.muts {
				if err := enc.Encode(w.muts[i]); err != nil {
					t.Fatalf("snapshot encode: %v", err)
				}
			}
			want = append(want, w)
		}

		recs2, _, good2, err := parse(buf.Bytes())
		if err != nil {
			t.Fatalf("snapshot does not re-parse: %v", err)
		}
		if good2 != int64(buf.Len()) {
			t.Fatalf("snapshot has a torn tail: good %d of %d", good2, buf.Len())
		}
		link2 := &Journal{ids: make(map[string]int)}
		for _, r := range recs2 {
			if err := link2.link(r); err != nil {
				t.Fatalf("snapshot does not re-link: %v", err)
			}
		}
		if len(link2.deps) != len(want) {
			t.Fatalf("round trip: %d deployments, want %d", len(link2.deps), len(want))
		}
		jsonEq := func(a, b any) bool {
			ab, _ := json.Marshal(a)
			bb, _ := json.Marshal(b)
			return bytes.Equal(ab, bb)
		}
		for i, w := range want {
			d := link2.deps[i]
			if !jsonEq(d.reg, w.reg) || len(d.muts) != len(w.muts) {
				t.Fatalf("deployment %d drifted: %+v vs %+v", i, d, w)
			}
			for k := range w.muts {
				if !jsonEq(d.muts[k], w.muts[k]) {
					t.Fatalf("deployment %d mutation %d drifted", i, k)
				}
			}
		}
	})
}
