package depjournal

import (
	"encoding/json"
	"fmt"
	"io"
)

// stagedDep is one deployment staged for snapshot encoding: the values
// compaction would write for it. Record values and mutation slices are
// never modified in place after they enter the journal (appends only
// extend, compaction replaces whole slices), so a stagedDep copied
// under the journal lock remains a consistent view after the lock is
// released.
type stagedDep struct {
	reg        Record
	muts       []Record
	unfoldable bool
}

// stageFoldable reports whether a staged deployment's mutations could
// fold into its registration.
func stageFoldable(d stagedDep, materialize MaterializeFunc) bool {
	return len(d.muts) > 0 && !d.unfoldable &&
		(len(d.reg.Cameras) > 0 || materialize != nil)
}

// stageLocked copies the per-deployment state for snapshot encoding.
// Caller holds j.mu; the copies stay valid after it is released.
func (j *Journal) stageLocked() []stagedDep {
	deps := make([]stagedDep, len(j.deps))
	for i, d := range j.deps {
		deps[i] = stagedDep{reg: d.reg, muts: d.muts, unfoldable: d.unfoldable}
	}
	return deps
}

// encodeSnapshot writes the compacted snapshot image of deps to w:
// the journal header, then each deployment either as one Folded
// registration (when its mutations fold) or as its registration and
// mutations verbatim. This is THE compaction format — Compact calls it
// to build the replacement file, Snapshot calls it to stream the same
// bytes to a peer — so a snapshot always replays through Open exactly
// like a freshly compacted journal. Returns the staged states as
// written (so compaction can commit them) and the record line count.
func encodeSnapshot(w io.Writer, deps []stagedDep, materialize MaterializeFunc) ([]stagedDep, int64, error) {
	enc := json.NewEncoder(w)
	if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
		return nil, 0, fmt.Errorf("depjournal: encode header: %w", err)
	}
	var lines int64
	out := make([]stagedDep, len(deps))
	for di, d := range deps {
		st := d
		if stageFoldable(d, materialize) {
			if folded, ok := foldDeployment(d.reg, d.muts, materialize); ok {
				st = stagedDep{reg: folded}
			} else {
				st.unfoldable = true
			}
		}
		if err := enc.Encode(st.reg); err != nil {
			return nil, 0, fmt.Errorf("depjournal: encode record %s: %w", st.reg.ID, err)
		}
		lines++
		for i := range st.muts {
			if err := enc.Encode(st.muts[i]); err != nil {
				return nil, 0, fmt.Errorf("depjournal: encode record %s: %w", st.reg.ID, err)
			}
			lines++
		}
		out[di] = st
	}
	return out, lines, nil
}

// countWriter counts the bytes passed through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Snapshot streams the journal's current compacted state to w — the
// byte-identical image Compact would write to disk — without pausing
// appends: the per-deployment state is copied under the lock (cheap —
// record values and slice headers, no camera-list deep copies), then
// the lock is released and encoding runs against the copy. Appends and
// compactions that land while a snapshot is streaming affect neither
// its consistency nor its content: the snapshot captures the journal
// as of the copy instant.
//
// Unlike compaction, Snapshot commits nothing — fold results and
// unfoldable discoveries are discarded, the file is untouched. Returns
// the number of bytes written.
func (j *Journal) Snapshot(w io.Writer) (int64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	deps := j.stageLocked()
	materialize := j.materialize
	j.mu.Unlock()

	cw := &countWriter{w: w}
	_, _, err := encodeSnapshot(cw, deps, materialize)
	return cw.n, err
}
