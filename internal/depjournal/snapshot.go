package depjournal

import (
	"encoding/json"
	"fmt"
	"io"
)

// stagedDep is one deployment staged for snapshot encoding: the values
// compaction would write for it. Record values and mutation slices are
// never modified in place after they enter the journal (appends only
// extend, compaction replaces whole slices), so a stagedDep copied
// under the journal lock remains a consistent view after the lock is
// released.
type stagedDep struct {
	reg        Record
	muts       []Record
	unfoldable bool
}

// stageFoldable reports whether a staged deployment's mutations could
// fold into its registration.
func stageFoldable(d stagedDep, materialize MaterializeFunc) bool {
	return len(d.muts) > 0 && !d.unfoldable &&
		(len(d.reg.Cameras) > 0 || materialize != nil)
}

// stageLocked copies the per-deployment state for snapshot encoding.
// Caller holds j.mu; the copies stay valid after it is released.
func (j *Journal) stageLocked() []stagedDep {
	deps := make([]stagedDep, len(j.deps))
	for i, d := range j.deps {
		deps[i] = stagedDep{reg: d.reg, muts: d.muts, unfoldable: d.unfoldable}
	}
	return deps
}

// canonicalize reduces one staged deployment to its snapshot form: a
// single Folded registration when the mutations fold, the registration
// and mutations verbatim otherwise. This is the canonical shape of a
// deployment's record stream — compaction writes it, Snapshot streams
// it, and the per-deployment content digests hash it — so two replicas
// holding the same logical state produce identical bytes regardless of
// how their journal files got there (live appends, mirror batches, a
// snapshot warm, or any compaction history).
func canonicalize(d stagedDep, materialize MaterializeFunc) stagedDep {
	if stageFoldable(d, materialize) {
		if folded, ok := foldDeployment(d.reg, d.muts, materialize); ok {
			return stagedDep{reg: folded}
		}
		d.unfoldable = true
	}
	return d
}

// encodeDep writes one canonicalized deployment's record lines to enc
// and returns the line count.
func encodeDep(enc *json.Encoder, st stagedDep) (int64, error) {
	if err := enc.Encode(st.reg); err != nil {
		return 0, fmt.Errorf("depjournal: encode record %s: %w", st.reg.ID, err)
	}
	lines := int64(1)
	for i := range st.muts {
		if err := enc.Encode(st.muts[i]); err != nil {
			return 0, fmt.Errorf("depjournal: encode record %s: %w", st.reg.ID, err)
		}
		lines++
	}
	return lines, nil
}

// encodeSnapshot writes the compacted snapshot image of deps to w:
// the journal header, then each deployment in canonical form. This is
// THE compaction format — Compact calls it to build the replacement
// file, Snapshot calls it to stream the same bytes to a peer — so a
// snapshot always replays through Open exactly like a freshly
// compacted journal. Returns the staged states as written (so
// compaction can commit them) and the record line count.
func encodeSnapshot(w io.Writer, deps []stagedDep, materialize MaterializeFunc) ([]stagedDep, int64, error) {
	enc := json.NewEncoder(w)
	if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
		return nil, 0, fmt.Errorf("depjournal: encode header: %w", err)
	}
	var lines int64
	out := make([]stagedDep, len(deps))
	for di, d := range deps {
		st := canonicalize(d, materialize)
		n, err := encodeDep(enc, st)
		if err != nil {
			return nil, 0, err
		}
		lines += n
		out[di] = st
	}
	return out, lines, nil
}

// countWriter counts the bytes passed through to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Snapshot streams the journal's current compacted state to w — the
// byte-identical image Compact would write to disk — without pausing
// appends: the per-deployment state is copied under the lock (cheap —
// record values and slice headers, no camera-list deep copies), then
// the lock is released and encoding runs against the copy. Appends and
// compactions that land while a snapshot is streaming affect neither
// its consistency nor its content: the snapshot captures the journal
// as of the copy instant.
//
// Unlike compaction, Snapshot commits nothing — fold results and
// unfoldable discoveries are discarded, the file is untouched. Returns
// the number of bytes written.
func (j *Journal) Snapshot(w io.Writer) (int64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	deps := j.stageLocked()
	materialize := j.materialize
	j.mu.Unlock()

	cw := &countWriter{w: w}
	_, _, err := encodeSnapshot(cw, deps, materialize)
	return cw.n, err
}

// SnapshotID streams the snapshot image of a single deployment — the
// journal header plus that id's canonical record lines — with the same
// copy-under-lock discipline as Snapshot. The image replays through
// ParseSnapshot (or Open) on its own, which is what the anti-entropy
// reconciler fetches to repair one divergent deployment without
// shipping the whole journal. ErrNotFound is returned, with nothing
// written to w, when the id is not journaled.
func (j *Journal) SnapshotID(w io.Writer, id string) (int64, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	i, ok := j.ids[id]
	if !ok {
		j.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	d := j.deps[i]
	st := stagedDep{reg: d.reg, muts: d.muts, unfoldable: d.unfoldable}
	materialize := j.materialize
	j.mu.Unlock()

	cw := &countWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
		return cw.n, fmt.Errorf("depjournal: encode header: %w", err)
	}
	_, err := encodeDep(enc, canonicalize(st, materialize))
	return cw.n, err
}

// ParseSnapshot decodes a complete snapshot image — the bytes Snapshot
// or SnapshotID streamed — into its records. Unlike Open, a torn final
// line is an error here, not tolerance: a fetched snapshot that does
// not parse to its last byte was truncated in transfer and must be
// refused, never half-applied.
func ParseSnapshot(data []byte) ([]Record, error) {
	recs, _, good, err := parse(data)
	if err != nil {
		return nil, err
	}
	if good != int64(len(data)) {
		return nil, fmt.Errorf("%w: truncated snapshot (%d of %d bytes parse)", ErrCorrupt, good, len(data))
	}
	return recs, nil
}
