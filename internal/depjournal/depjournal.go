// Package depjournal durably records fvcd deployment registrations so
// a restarted daemon still answers queries for ids registered before a
// crash. It is the serving-layer sibling of internal/checkpoint: where
// checkpoint journals Monte-Carlo trial results, depjournal journals
// the *descriptions* of registered camera networks — an explicit camera
// list, or a deterministic recipe (profile, count/density, seed) —
// keyed by the deployment's content-fingerprint id.
//
// # Format
//
// The journal is JSONL: line 1 is a header {"version":1,"kind":
// "fvcd/deployments"}; every further line is one Record. Records are
// appended (O_APPEND write + fsync per registration, so a kill -9
// loses at most the registration whose 201 was never sent), and the
// whole file is rewritten with the atomic temp+fsync+rename discipline
// of internal/checkpoint when compaction runs.
//
// # Replay
//
// Open replays the journal into memory. A torn final line — the
// signature of a crash mid-append — is dropped; malformed interior
// lines are refused with ErrCorrupt (they indicate real damage, and
// silently skipping registrations would turn restart into data loss).
// Duplicate ids are tolerated: the id is a content hash, so duplicates
// describe the same network and the last record wins in place.
//
// # Compaction
//
// When the file grows past CompactBytes and holds duplicate lines, the
// journal is rewritten as a deduplicated snapshot (atomic rename), and
// appending resumes on the fresh file.
package depjournal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fullview/internal/faultinject"
)

// Version is the journal format version written to new headers.
const Version = 1

// Kind is the header kind identifying a deployment journal.
const Kind = "fvcd/deployments"

// DefaultCompactBytes is the compaction threshold used when Options
// leaves CompactBytes zero.
const DefaultCompactBytes = 4 << 20

// Journal errors.
var (
	// ErrCorrupt reports a journal whose interior cannot be parsed.
	ErrCorrupt = errors.New("depjournal: journal is corrupt")
	// ErrClosed reports use of a closed journal.
	ErrClosed = errors.New("depjournal: journal is closed")
	// ErrNoID reports an attempt to append a record without an id.
	ErrNoID = errors.New("depjournal: record has no id")
)

// header is the first journal line.
type header struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
}

// Camera is one explicitly-placed camera, mirroring the service's wire
// form (angles in radians).
type Camera struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Orient   float64 `json:"orient"`
	Radius   float64 `json:"radius"`
	Aperture float64 `json:"aperture"`
	Group    int     `json:"group,omitempty"`
}

// Record is one journaled registration: the deployment id (content
// fingerprint) plus exactly the description the client sent — explicit
// cameras, or a deterministic recipe. Replaying the description through
// the same build path reproduces the same network bit-for-bit, which is
// what makes post-restart answers identical to pre-crash ones.
type Record struct {
	// ID is the deployment's content fingerprint.
	ID string `json:"id"`
	// Torus is the region side (0 means the default unit torus).
	Torus float64 `json:"torus,omitempty"`

	// Cameras is the explicit camera list (explicit form).
	Cameras []Camera `json:"cameras,omitempty"`

	// Profile, N, Density, Deploy, and Seed are the deterministic
	// deployment recipe (recipe form).
	Profile string  `json:"profile,omitempty"`
	N       int     `json:"n,omitempty"`
	Density float64 `json:"density,omitempty"`
	Deploy  string  `json:"deploy,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// Options parameterises Open.
type Options struct {
	// CompactBytes is the file size past which a journal holding
	// duplicate records is rewritten as a snapshot (0 selects
	// DefaultCompactBytes; negative disables compaction).
	CompactBytes int64
}

// Journal is the durable deployment registry. Safe for concurrent use.
type Journal struct {
	mu           sync.Mutex
	path         string
	compactBytes int64
	f            *os.File       // O_APPEND handle for live appends
	ids          map[string]int // id → index into recs
	recs         []Record       // registration order, deduped by id
	lines        int64          // record lines currently in the file
	size         int64          // file size in bytes
	closed       bool
}

// Open creates the journal at path or replays an existing one. The
// parent directory must exist. A missing or empty file becomes a fresh
// journal (header written immediately so even a never-appended journal
// is recognizable); a populated one is replayed with torn-final-line
// tolerance.
func Open(path string, opts Options) (*Journal, error) {
	compact := opts.CompactBytes
	if compact == 0 {
		compact = DefaultCompactBytes
	}
	j := &Journal{path: path, compactBytes: compact, ids: make(map[string]int)}

	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("depjournal: read journal: %w", err)
	}
	if len(data) > 0 {
		recs, lines, good, perr := parse(data)
		if perr != nil {
			return nil, perr
		}
		for _, r := range recs {
			j.insert(r)
		}
		j.lines = lines
		j.size = good
		if good < int64(len(data)) {
			// A torn final line was dropped from the replay; cut it from the
			// file too, so the next append cannot land after torn bytes and
			// turn them into interior corruption.
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("depjournal: truncate torn line: %w", err)
			}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("depjournal: open journal: %w", err)
	}
	j.f = f
	if len(data) == 0 {
		if err := j.writeHeaderLocked(); err != nil {
			f.Close()
			return nil, err
		}
	} else if j.size == int64(len(data)) && data[len(data)-1] != '\n' {
		// The final line parsed fine but lacks its newline (foreign or
		// interrupted writer): terminate it so the next append starts a
		// fresh line instead of concatenating onto this one.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("depjournal: terminate final line: %w", err)
		}
		j.size++
	}
	if j.compactNeededLocked() {
		if err := j.compactLocked(); err != nil {
			j.f.Close()
			return nil, err
		}
	}
	return j, nil
}

// insert stores rec, replacing an earlier record with the same id in
// place (ids are content hashes, so both describe the same network).
func (j *Journal) insert(rec Record) {
	if i, ok := j.ids[rec.ID]; ok {
		j.recs[i] = rec
		return
	}
	j.ids[rec.ID] = len(j.recs)
	j.recs = append(j.recs, rec)
}

// writeHeaderLocked writes the header line to a fresh journal.
func (j *Journal) writeHeaderLocked() error {
	line, err := json.Marshal(header{Version: Version, Kind: Kind})
	if err != nil {
		return fmt.Errorf("depjournal: encode header: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("depjournal: write header: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("depjournal: fsync header: %w", err)
	}
	j.size = int64(len(line))
	return nil
}

// parse decodes a journal image into its records, the number of record
// lines it holds (duplicates included), and the byte length of the
// intact prefix. The final line may be torn and is then dropped (good
// reports where the intact prefix ends so the caller can truncate);
// earlier malformed lines are ErrCorrupt.
func parse(data []byte) (recs []Record, lines, good int64, err error) {
	if len(data) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: empty journal", ErrCorrupt)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20)
	lineEnd := 0 // byte offset just past the last line consumed
	if !sc.Scan() {
		return nil, 0, 0, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	headerLine := sc.Bytes()
	lineEnd += len(headerLine) + 1
	var h header
	if uerr := strictUnmarshal(headerLine, &h); uerr != nil {
		return nil, 0, 0, fmt.Errorf("%w: bad header: %v", ErrCorrupt, uerr)
	}
	if h.Version != Version || h.Kind != Kind {
		return nil, 0, 0, fmt.Errorf("%w: unsupported header %+v", ErrCorrupt, h)
	}
	good = min(int64(lineEnd), int64(len(data)))
	lineNo := 1
	for sc.Scan() {
		raw := sc.Bytes()
		lineEnd += len(raw) + 1
		lineNo++
		if len(bytes.TrimSpace(raw)) == 0 {
			good = min(int64(lineEnd), int64(len(data)))
			continue
		}
		var rec Record
		uerr := strictUnmarshal(raw, &rec)
		if uerr == nil && rec.ID == "" {
			uerr = ErrNoID
		}
		if uerr != nil {
			// A defective *final* line is a torn append (crash mid-write):
			// drop it and keep the intact prefix. Interior damage is real
			// corruption and refused.
			if lineEnd >= len(data) {
				break
			}
			return nil, 0, 0, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, uerr)
		}
		recs = append(recs, rec)
		lines++
		good = min(int64(lineEnd), int64(len(data)))
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, fmt.Errorf("%w: %v", ErrCorrupt, serr)
	}
	return recs, lines, good, nil
}

// strictUnmarshal decodes one JSON document and rejects trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// Append durably records one registration: the record line is written
// through the O_APPEND handle and fsynced before Append returns, so a
// crash immediately after cannot lose it. Appending an id the journal
// already holds is a cheap no-op. The faultinject.JournalWrite point
// fires before the write.
func (j *Journal) Append(rec Record) error {
	if rec.ID == "" {
		return ErrNoID
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.ids[rec.ID]; ok {
		return nil
	}
	if err := faultinject.Fire(faultinject.JournalWrite); err != nil {
		return fmt.Errorf("depjournal: write record: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("depjournal: encode record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		// The file may now hold a partial line; truncate back so a later
		// successful append cannot create interior corruption.
		_ = j.f.Truncate(j.size)
		return fmt.Errorf("depjournal: write record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		_ = j.f.Truncate(j.size)
		return fmt.Errorf("depjournal: fsync record: %w", err)
	}
	j.size += int64(len(line))
	j.lines++
	j.insert(rec)
	if j.compactNeededLocked() {
		// Compaction failing must not fail the append — the record is
		// durable either way; the oversized file is only a cost.
		_ = j.compactLocked()
	}
	return nil
}

// compactNeededLocked reports whether the file is past the threshold
// and actually holds reclaimable duplicate lines.
func (j *Journal) compactNeededLocked() bool {
	return j.compactBytes > 0 && j.size > j.compactBytes && j.lines > int64(len(j.recs))
}

// Compact rewrites the journal as a deduplicated snapshot regardless of
// size, using the atomic temp+fsync+rename discipline.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

// compactLocked writes the snapshot and swaps the append handle onto
// the fresh file. Callers hold j.mu.
func (j *Journal) compactLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(header{Version: Version, Kind: Kind}); err != nil {
		return fmt.Errorf("depjournal: encode header: %w", err)
	}
	for _, rec := range j.recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("depjournal: encode record %s: %w", rec.ID, err)
		}
	}
	if err := writeAtomic(j.path, buf.Bytes()); err != nil {
		return err
	}
	// The rename replaced the inode our O_APPEND handle points at;
	// reopen so future appends land in the new file.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("depjournal: reopen after compaction: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = int64(buf.Len())
	j.lines = int64(len(j.recs))
	return nil
}

// writeAtomic replaces path with data via temp-file + fsync + rename in
// the destination directory, then syncs the directory entry.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("depjournal: create temp: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("depjournal: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("depjournal: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("depjournal: close temp: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("depjournal: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Has reports whether id is journaled.
func (j *Journal) Has(id string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.ids[id]
	return ok
}

// Lookup returns the journaled record for id.
func (j *Journal) Lookup(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.ids[id]
	if !ok {
		return Record{}, false
	}
	return j.recs[i], true
}

// Records returns the journaled registrations in registration order,
// deduplicated by id.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.recs))
	copy(out, j.recs)
	return out
}

// Len returns the number of distinct journaled deployments.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Size returns the journal file's current byte size.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the append handle; later Appends fail with ErrClosed.
// The file stays on disk for the next daemon start.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
