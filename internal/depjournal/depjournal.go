// Package depjournal durably records fvcd deployment registrations so
// a restarted daemon still answers queries for ids registered before a
// crash. It is the serving-layer sibling of internal/checkpoint: where
// checkpoint journals Monte-Carlo trial results, depjournal journals
// the *descriptions* of registered camera networks — an explicit camera
// list, or a deterministic recipe (profile, count/density, seed) —
// keyed by the deployment's content-fingerprint id, plus the mutation
// history (add / remove / reaim records) applied to each deployment
// after registration.
//
// # Format
//
// The journal is JSONL: line 1 is a header {"version":1,"kind":
// "fvcd/deployments"}; every further line is one Record. A Record with
// an empty Op is a registration; Op "reaim", "remove", or "add" is a
// mutation of the most recent registration with the same id, applied in
// file order. Records are appended (O_APPEND write + fsync per call, so
// a kill -9 loses at most the operation whose success was never
// acknowledged), and the whole file is rewritten with the atomic
// temp+fsync+rename discipline of internal/checkpoint when compaction
// runs.
//
// Mutation indices address the *live* camera list at the time the
// record was written: position i in registration order, as already
// modified by earlier mutations (reaim keeps a camera's position,
// remove deletes it, add appends). That convention is what makes
// compaction folding sound — folding mutations into a flat camera list
// yields exactly the live list, so later mutations keep addressing the
// same cameras whether or not a fold happened in between.
//
// # Replay
//
// Open replays the journal into memory. A torn final line — the
// signature of a crash mid-append — is dropped; malformed interior
// lines are refused with ErrCorrupt (they indicate real damage, and
// silently skipping registrations would turn restart into data loss).
// A mutation for an id with no prior registration is likewise
// ErrCorrupt: the writer always journals the registration first.
// Duplicate registration ids are tolerated: the id is a content hash,
// so duplicates describe the same base network; the last registration
// wins in place and resets the mutation history that followed the
// earlier one.
//
// # Compaction
//
// When the file grows past CompactBytes and holds reclaimable lines
// (duplicate registrations, or mutation records that can be folded),
// the journal is rewritten as a snapshot (atomic rename) and appending
// resumes on the fresh file. Folding replaces a registration and its
// mutations with a single flat-camera-list registration marked Folded
// (its id intentionally no longer fingerprints the camera list — it
// names the lineage) carrying BaseVersion, the number of mutations
// folded in, so deployment versions stay monotonic across restarts.
// Recipe-form registrations can only fold when the journal was opened
// with a Materialize hook; a deployment whose fold fails is kept
// verbatim (registration + mutations) — replay handles both shapes.
package depjournal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fullview/internal/faultinject"
)

// Version is the journal format version written to new headers.
const Version = 1

// Kind is the header kind identifying a deployment journal.
const Kind = "fvcd/deployments"

// DefaultCompactBytes is the compaction threshold used when Options
// leaves CompactBytes zero.
const DefaultCompactBytes = 4 << 20

// Mutation record kinds (Record.Op). A registration has an empty Op.
const (
	// OpReaim re-points live cameras: Record.Reaim lists (index, new
	// orientation) pairs.
	OpReaim = "reaim"
	// OpRemove deletes live cameras: Record.Remove lists unique live
	// indices.
	OpRemove = "remove"
	// OpAdd appends cameras: Record.Cameras holds the new cameras.
	OpAdd = "add"
)

// Journal errors.
var (
	// ErrCorrupt reports a journal whose interior cannot be parsed.
	ErrCorrupt = errors.New("depjournal: journal is corrupt")
	// ErrClosed reports use of a closed journal.
	ErrClosed = errors.New("depjournal: journal is closed")
	// ErrNoID reports an attempt to append a record without an id.
	ErrNoID = errors.New("depjournal: record has no id")
	// ErrUnknownID reports a mutation append for an unregistered id.
	ErrUnknownID = errors.New("depjournal: mutation for unregistered id")
	// ErrNotFound reports a lookup (snapshot filter, digest) for an id
	// the journal does not hold.
	ErrNotFound = errors.New("depjournal: id not journaled")
	// ErrStale reports a Reinstall whose fetched history is not ahead
	// of the local copy — the local deployment advanced between the
	// caller's version comparison and the install. The caller lost the
	// race; re-comparing next round is the recovery.
	ErrStale = errors.New("depjournal: reinstall is not ahead of the local copy")
)

// header is the first journal line.
type header struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
}

// Camera is one explicitly-placed camera, mirroring the service's wire
// form (angles in radians).
type Camera struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Orient   float64 `json:"orient"`
	Radius   float64 `json:"radius"`
	Aperture float64 `json:"aperture"`
	Group    int     `json:"group,omitempty"`
}

// ReaimOp re-points the camera at live index I to orientation Orient
// (radians).
type ReaimOp struct {
	I      int     `json:"i"`
	Orient float64 `json:"orient"`
}

// Record is one journaled line: a registration (empty Op) holding
// exactly the description the client sent — explicit cameras, or a
// deterministic recipe — or a mutation (Op reaim/remove/add) of the
// registration with the same id. Replaying the registration through the
// same build path and the mutations in order reproduces the live
// network bit-for-bit, which is what makes post-restart answers
// identical to pre-crash ones.
type Record struct {
	// ID is the deployment's content fingerprint (the lineage id; a
	// mutated deployment keeps the id of its base registration).
	ID string `json:"id"`
	// Op is empty for a registration, or one of OpReaim, OpRemove,
	// OpAdd for a mutation.
	Op string `json:"op,omitempty"`
	// Torus is the region side (0 means the default unit torus).
	Torus float64 `json:"torus,omitempty"`

	// Cameras is the explicit camera list (registration explicit form,
	// or the added cameras of an OpAdd mutation).
	Cameras []Camera `json:"cameras,omitempty"`

	// Profile, N, Density, Deploy, and Seed are the deterministic
	// deployment recipe (recipe form).
	Profile string  `json:"profile,omitempty"`
	N       int     `json:"n,omitempty"`
	Density float64 `json:"density,omitempty"`
	Deploy  string  `json:"deploy,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`

	// Remove lists the live indices an OpRemove mutation deletes.
	Remove []int `json:"remove,omitempty"`
	// Reaim lists the re-aims of an OpReaim mutation.
	Reaim []ReaimOp `json:"reaim,omitempty"`

	// Folded marks a registration written by compaction with mutations
	// folded into its camera list; its id names the lineage and is not
	// re-checked against the list's fingerprint.
	Folded bool `json:"folded,omitempty"`
	// BaseVersion is the deployment version already folded into a
	// Folded registration; replayed mutations continue counting from
	// it.
	BaseVersion uint64 `json:"baseVersion,omitempty"`
}

// validate rejects records no writer of this package produces.
func (r *Record) validate() error {
	if r.ID == "" {
		return ErrNoID
	}
	switch r.Op {
	case "", OpReaim, OpRemove, OpAdd:
		return nil
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
}

// MaterializeFunc resolves a recipe-form registration to its flat
// camera list so compaction can fold mutations into it. It must be
// deterministic and mirror the service's build path exactly (the folded
// list replaces the recipe in the journal).
type MaterializeFunc func(Record) ([]Camera, error)

// Options parameterises Open.
type Options struct {
	// CompactBytes is the file size past which a journal holding
	// reclaimable lines is rewritten as a snapshot (0 selects
	// DefaultCompactBytes; negative disables compaction).
	CompactBytes int64
	// Materialize, when non-nil, lets compaction fold mutations into
	// recipe-form registrations. Without it only explicit-camera
	// registrations fold.
	Materialize MaterializeFunc
}

// depState is one deployment's journaled history: its (last-wins)
// registration and the mutations recorded after it.
type depState struct {
	reg  Record
	muts []Record
	// unfoldable is set when a compaction fold attempt failed, so the
	// deployment stops counting as reclaimable (otherwise every append
	// past the threshold would retry the same failing fold).
	unfoldable bool
}

// Journal is the durable deployment registry. Safe for concurrent use.
type Journal struct {
	mu           sync.Mutex
	path         string
	compactBytes int64
	materialize  MaterializeFunc
	f            *os.File       // O_APPEND handle for live appends
	ids          map[string]int // id → index into deps
	deps         []*depState    // registration order
	dupLines     int64          // duplicate registration lines in the file
	lines        int64          // record lines currently in the file
	size         int64          // file size in bytes
	closed       bool
}

// Open creates the journal at path or replays an existing one. The
// parent directory must exist. A missing or empty file becomes a fresh
// journal (header written immediately so even a never-appended journal
// is recognizable); a populated one is replayed with torn-final-line
// tolerance.
func Open(path string, opts Options) (*Journal, error) {
	compact := opts.CompactBytes
	if compact == 0 {
		compact = DefaultCompactBytes
	}
	j := &Journal{
		path:         path,
		compactBytes: compact,
		materialize:  opts.Materialize,
		ids:          make(map[string]int),
	}

	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("depjournal: read journal: %w", err)
	}
	if len(data) > 0 {
		recs, lines, good, perr := parse(data)
		if perr != nil {
			return nil, perr
		}
		for _, r := range recs {
			if err := j.link(r); err != nil {
				return nil, err
			}
		}
		j.lines = lines
		j.size = good
		if good < int64(len(data)) {
			// A torn final line was dropped from the replay; cut it from the
			// file too, so the next append cannot land after torn bytes and
			// turn them into interior corruption.
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("depjournal: truncate torn line: %w", err)
			}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("depjournal: open journal: %w", err)
	}
	j.f = f
	if len(data) == 0 {
		if err := j.writeHeaderLocked(); err != nil {
			f.Close()
			return nil, err
		}
	} else if j.size == int64(len(data)) && data[len(data)-1] != '\n' {
		// The final line parsed fine but lacks its newline (foreign or
		// interrupted writer): terminate it so the next append starts a
		// fresh line instead of concatenating onto this one.
		if _, err := f.Write([]byte{'\n'}); err != nil {
			f.Close()
			return nil, fmt.Errorf("depjournal: terminate final line: %w", err)
		}
		j.size++
	}
	if j.compactNeededLocked() {
		if err := j.compactLocked(); err != nil {
			j.f.Close()
			return nil, err
		}
	}
	return j, nil
}

// link replays one parsed record into the per-deployment state: a
// registration starts (or, duplicate id, resets) its deployment; a
// mutation appends to the most recent registration with its id. A
// mutation without one is corruption — the writer journals the
// registration strictly before any mutation.
func (j *Journal) link(rec Record) error {
	if rec.Op == "" {
		if i, ok := j.ids[rec.ID]; ok {
			// Last-wins reset: the re-registration supersedes the earlier
			// record and everything applied on top of it.
			j.dupLines += 1 + int64(len(j.deps[i].muts))
			j.deps[i] = &depState{reg: rec}
			return nil
		}
		j.ids[rec.ID] = len(j.deps)
		j.deps = append(j.deps, &depState{reg: rec})
		return nil
	}
	i, ok := j.ids[rec.ID]
	if !ok {
		return fmt.Errorf("%w: mutation %q for unregistered id %s", ErrCorrupt, rec.Op, rec.ID)
	}
	j.deps[i].muts = append(j.deps[i].muts, rec)
	return nil
}

// writeHeaderLocked writes the header line to a fresh journal.
func (j *Journal) writeHeaderLocked() error {
	line, err := json.Marshal(header{Version: Version, Kind: Kind})
	if err != nil {
		return fmt.Errorf("depjournal: encode header: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("depjournal: write header: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("depjournal: fsync header: %w", err)
	}
	j.size = int64(len(line))
	return nil
}

// parse decodes a journal image into its records, the number of record
// lines it holds (duplicates included), and the byte length of the
// intact prefix. The final line may be torn and is then dropped (good
// reports where the intact prefix ends so the caller can truncate);
// earlier malformed lines are ErrCorrupt.
func parse(data []byte) (recs []Record, lines, good int64, err error) {
	if len(data) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: empty journal", ErrCorrupt)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20)
	lineEnd := 0 // byte offset just past the last line consumed
	if !sc.Scan() {
		return nil, 0, 0, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	headerLine := sc.Bytes()
	lineEnd += len(headerLine) + 1
	var h header
	if uerr := strictUnmarshal(headerLine, &h); uerr != nil {
		return nil, 0, 0, fmt.Errorf("%w: bad header: %v", ErrCorrupt, uerr)
	}
	if h.Version != Version || h.Kind != Kind {
		return nil, 0, 0, fmt.Errorf("%w: unsupported header %+v", ErrCorrupt, h)
	}
	good = min(int64(lineEnd), int64(len(data)))
	lineNo := 1
	for sc.Scan() {
		raw := sc.Bytes()
		lineEnd += len(raw) + 1
		lineNo++
		if len(bytes.TrimSpace(raw)) == 0 {
			good = min(int64(lineEnd), int64(len(data)))
			continue
		}
		var rec Record
		uerr := strictUnmarshal(raw, &rec)
		if uerr == nil {
			uerr = rec.validate()
		}
		if uerr != nil {
			// A defective *final* line is a torn append (crash mid-write):
			// drop it and keep the intact prefix. Interior damage is real
			// corruption and refused.
			if lineEnd >= len(data) {
				break
			}
			return nil, 0, 0, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, uerr)
		}
		recs = append(recs, rec)
		lines++
		good = min(int64(lineEnd), int64(len(data)))
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, fmt.Errorf("%w: %v", ErrCorrupt, serr)
	}
	return recs, lines, good, nil
}

// strictUnmarshal decodes one JSON document and rejects trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// Append durably records one registration: the record line is written
// through the O_APPEND handle and fsynced before Append returns, so a
// crash immediately after cannot lose it. Appending an id the journal
// already holds is a cheap no-op — in particular it does NOT reset the
// id's mutation history; a re-registration names the same lineage. The
// faultinject.JournalWrite point fires before the write.
func (j *Journal) Append(rec Record) error {
	if rec.ID == "" {
		return ErrNoID
	}
	if rec.Op != "" {
		return fmt.Errorf("depjournal: Append takes registrations; use AppendMutations for op %q", rec.Op)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.ids[rec.ID]; ok {
		return nil
	}
	if err := j.writeLocked([]Record{rec}); err != nil {
		return err
	}
	j.ids[rec.ID] = len(j.deps)
	j.deps = append(j.deps, &depState{reg: rec})
	if j.compactNeededLocked() {
		// Compaction failing must not fail the append — the record is
		// durable either way; the oversized file is only a cost.
		_ = j.compactLocked()
	}
	return nil
}

// AppendMutations durably records a batch of mutations of one
// registered deployment — all lines are written in one syscall and
// fsynced once, so a crash either keeps the whole batch or none of it
// past the torn-line cutoff. Records must carry the deployment's id and
// a mutation Op; the id must already be registered (ErrUnknownID
// otherwise, so the journal can never hold a dangling mutation).
func (j *Journal) AppendMutations(id string, muts []Record) error {
	if id == "" {
		return ErrNoID
	}
	if len(muts) == 0 {
		return nil
	}
	for i := range muts {
		if muts[i].ID != id {
			return fmt.Errorf("depjournal: mutation %d has id %q, want %q", i, muts[i].ID, id)
		}
		if muts[i].Op == "" {
			return fmt.Errorf("depjournal: mutation %d has no op", i)
		}
		if err := muts[i].validate(); err != nil {
			return fmt.Errorf("depjournal: mutation %d: %w", i, err)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	di, ok := j.ids[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownID, id)
	}
	if err := j.writeLocked(muts); err != nil {
		return err
	}
	j.deps[di].muts = append(j.deps[di].muts, muts...)
	if j.compactNeededLocked() {
		_ = j.compactLocked()
	}
	return nil
}

// Reinstall durably replaces one deployment's journaled history with
// recs — a registration followed by its mutations, as fetched from a
// peer's per-id snapshot (SnapshotID). The records are appended as one
// fsynced batch; replay's last-wins duplicate-registration rule makes
// the appended registration supersede the local history on the next
// Open, and the in-memory state is reset to match immediately. This is
// the anti-entropy apply path: it never merges histories (the fetched
// canonical stream IS the deployment's state), so a replica that
// missed arbitrary mirror records converges to the peer's exact bytes.
//
// The incoming version (the registration's BaseVersion plus its
// mutation count) is re-checked against the local copy under the
// journal lock: a reconciler compares versions from a digest map
// captured earlier, and a write or mirror apply that lands in between
// must not be rolled back by the now-stale install. A fetch that is
// not strictly ahead returns ErrStale and journals nothing — the
// caller re-compares next round.
func (j *Journal) Reinstall(id string, recs []Record) error {
	if id == "" {
		return ErrNoID
	}
	if len(recs) == 0 {
		return errors.New("depjournal: reinstall with no records")
	}
	if recs[0].Op != "" {
		return fmt.Errorf("depjournal: reinstall record 0 is a %q mutation, want a registration", recs[0].Op)
	}
	for i := range recs {
		if recs[i].ID != id {
			return fmt.Errorf("depjournal: reinstall record %d has id %q, want %q", i, recs[i].ID, id)
		}
		if i > 0 && recs[i].Op == "" {
			return fmt.Errorf("depjournal: reinstall record %d is a second registration", i)
		}
		if err := recs[i].validate(); err != nil {
			return fmt.Errorf("depjournal: reinstall record %d: %w", i, err)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	incoming := recs[0].BaseVersion + uint64(len(recs)-1)
	if i, ok := j.ids[id]; ok {
		d := j.deps[i]
		if cur := d.reg.BaseVersion + uint64(len(d.muts)); incoming <= cur {
			return fmt.Errorf("%w: %s incoming version %d, local %d", ErrStale, id, incoming, cur)
		}
	}
	if err := j.writeLocked(recs); err != nil {
		return err
	}
	muts := append([]Record(nil), recs[1:]...)
	if i, ok := j.ids[id]; ok {
		// The superseded registration and its mutations are now dead
		// lines, reclaimable at the next compaction.
		j.dupLines += 1 + int64(len(j.deps[i].muts))
		j.deps[i] = &depState{reg: recs[0], muts: muts}
	} else {
		j.ids[id] = len(j.deps)
		j.deps = append(j.deps, &depState{reg: recs[0], muts: muts})
	}
	if j.compactNeededLocked() {
		_ = j.compactLocked()
	}
	return nil
}

// Version returns a deployment's logical version: the mutation count
// folded into its registration plus the mutation records that follow
// it. This equals the served index version (each journaled mutation
// record is one version bump), so replicas can order their copies of a
// deployment without comparing record streams.
func (j *Journal) Version(id string) (uint64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.ids[id]
	if !ok {
		return 0, false
	}
	d := j.deps[i]
	return d.reg.BaseVersion + uint64(len(d.muts)), true
}

// writeLocked encodes the records as JSONL, writes them through the
// O_APPEND handle in one call, and fsyncs. On failure the file is
// truncated back so a partial batch cannot become interior corruption.
// Caller holds j.mu; in-memory state is NOT updated here.
func (j *Journal) writeLocked(recs []Record) error {
	if err := faultinject.Fire(faultinject.JournalWrite); err != nil {
		return fmt.Errorf("depjournal: write record: %w", err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(recs[i]); err != nil {
			return fmt.Errorf("depjournal: encode record: %w", err)
		}
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		// The file may now hold a partial line; truncate back so a later
		// successful append cannot create interior corruption.
		_ = j.f.Truncate(j.size)
		return fmt.Errorf("depjournal: write record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		_ = j.f.Truncate(j.size)
		return fmt.Errorf("depjournal: fsync record: %w", err)
	}
	j.size += int64(buf.Len())
	j.lines += int64(len(recs))
	return nil
}

// foldableLocked reports whether a deployment's mutations could fold at
// the next compaction.
func (j *Journal) foldableLocked(d *depState) bool {
	return stageFoldable(stagedDep{reg: d.reg, muts: d.muts, unfoldable: d.unfoldable}, j.materialize)
}

// compactNeededLocked reports whether the file is past the threshold
// and actually holds reclaimable lines: duplicate registrations, or
// mutations a fold would absorb.
func (j *Journal) compactNeededLocked() bool {
	if j.compactBytes <= 0 || j.size <= j.compactBytes {
		return false
	}
	if j.dupLines > 0 {
		return true
	}
	for _, d := range j.deps {
		if j.foldableLocked(d) {
			return true
		}
	}
	return false
}

// foldDeployment folds a registration's mutations into a flat camera
// list, mirroring the live-index semantics exactly: reaim re-points in
// place, remove deletes (validated unique and in range), add appends.
// It reports ok == false — fold nothing, keep the records verbatim —
// when the base list cannot be materialised, a mutation is out of
// range, or the folded list is empty (an empty explicit registration
// cannot round-trip through the build path).
func foldDeployment(reg Record, muts []Record, materialize MaterializeFunc) (Record, bool) {
	cams := append([]Camera(nil), reg.Cameras...)
	if len(cams) == 0 {
		if materialize == nil {
			return Record{}, false
		}
		m, err := materialize(reg)
		if err != nil || len(m) == 0 {
			return Record{}, false
		}
		cams = m
	}
	for _, mut := range muts {
		switch mut.Op {
		case OpReaim:
			for _, op := range mut.Reaim {
				if op.I < 0 || op.I >= len(cams) {
					return Record{}, false
				}
				cams[op.I].Orient = op.Orient
			}
		case OpRemove:
			idx := append([]int(nil), mut.Remove...)
			for i := 1; i < len(idx); i++ {
				for k := i; k > 0 && idx[k] > idx[k-1]; k-- {
					idx[k], idx[k-1] = idx[k-1], idx[k]
				}
			}
			for k, i := range idx {
				if i < 0 || i >= len(cams) || (k > 0 && idx[k-1] == i) {
					return Record{}, false
				}
				cams = append(cams[:i], cams[i+1:]...)
			}
		case OpAdd:
			cams = append(cams, mut.Cameras...)
		default:
			return Record{}, false
		}
	}
	if len(cams) == 0 {
		return Record{}, false
	}
	return Record{
		ID:          reg.ID,
		Torus:       reg.Torus,
		Cameras:     cams,
		Folded:      true,
		BaseVersion: reg.BaseVersion + uint64(len(muts)),
	}, true
}

// Compact rewrites the journal as a deduplicated, folded snapshot
// regardless of size, using the atomic temp+fsync+rename discipline.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

// compactLocked writes the snapshot and swaps the append handle onto
// the fresh file. Deployments whose mutations fold are written as one
// Folded registration; the rest keep registration + mutations verbatim.
// In-memory state is committed only after the atomic rename succeeds.
// Callers hold j.mu.
func (j *Journal) compactLocked() error {
	var buf bytes.Buffer
	stagedDeps, lines, err := encodeSnapshot(&buf, j.stageLocked(), j.materialize)
	if err != nil {
		return err
	}
	if err := writeAtomic(j.path, buf.Bytes()); err != nil {
		return err
	}
	// The rename replaced the inode our O_APPEND handle points at;
	// reopen so future appends land in the new file.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("depjournal: reopen after compaction: %w", err)
	}
	j.f.Close()
	j.f = f
	for di := range j.deps {
		j.deps[di].reg = stagedDeps[di].reg
		j.deps[di].muts = stagedDeps[di].muts
		j.deps[di].unfoldable = stagedDeps[di].unfoldable
	}
	j.dupLines = 0
	j.size = int64(buf.Len())
	j.lines = lines
	return nil
}

// writeAtomic replaces path with data via temp-file + fsync + rename in
// the destination directory, then syncs the directory entry.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("depjournal: create temp: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("depjournal: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("depjournal: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("depjournal: close temp: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("depjournal: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Has reports whether id is journaled.
func (j *Journal) Has(id string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.ids[id]
	return ok
}

// Lookup returns the journaled registration record for id.
func (j *Journal) Lookup(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.ids[id]
	if !ok {
		return Record{}, false
	}
	return j.deps[i].reg, true
}

// Mutations returns a copy of the mutation records of id, in applied
// order (empty after a fold absorbed them into the registration).
func (j *Journal) Mutations(id string) []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	i, ok := j.ids[id]
	if !ok || len(j.deps[i].muts) == 0 {
		return nil
	}
	return append([]Record(nil), j.deps[i].muts...)
}

// Records returns the journaled registrations in registration order,
// deduplicated by id.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.deps))
	for i, d := range j.deps {
		out[i] = d.reg
	}
	return out
}

// Len returns the number of distinct journaled deployments.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.deps)
}

// Size returns the journal file's current byte size.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the append handle; later Appends fail with ErrClosed.
// The file stays on disk for the next daemon start.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
