package depjournal

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"
)

// TestDigestInvariantAcrossHistories pins the anti-entropy foundation:
// a deployment's digest is a function of its logical state, not of how
// the journal file reached it. A live journal (registration + mutation
// appends), a compacted one (mutations folded), and one replayed from
// a snapshot all digest identically.
func TestDigestInvariantAcrossHistories(t *testing.T) {
	j, _ := snapshotJournal(t)
	before := j.Digests()
	if len(before) != 3 {
		t.Fatalf("digests for %d deployments, want 3", len(before))
	}
	for id, d := range before {
		if len(d.Digest) != 64 {
			t.Fatalf("digest[%s] = %q, want 64 hex chars", id, d.Digest)
		}
	}

	// Snapshot-replayed journal (what a warmed peer holds).
	var buf bytes.Buffer
	if _, err := j.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	peer := replaySnapshot(t, buf.Bytes())
	if got := peer.Digests(); !digestsEqual(got, before) {
		t.Fatalf("snapshot-replayed digests %v, want %v", got, before)
	}

	// Compaction folds mutations in place; the digest must not move.
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := j.Digests(); !digestsEqual(got, before) {
		t.Fatalf("post-compaction digests %v, want %v", got, before)
	}

	// A new mutation must move exactly its deployment's digest and bump
	// its version by one.
	if err := j.AppendMutations("aaaa", []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: -1}}},
	}); err != nil {
		t.Fatal(err)
	}
	after := j.Digests()
	if after["aaaa"].Digest == before["aaaa"].Digest {
		t.Fatal("mutation did not change the deployment's digest")
	}
	if after["aaaa"].Version != before["aaaa"].Version+1 {
		t.Fatalf("version %d after one mutation, want %d", after["aaaa"].Version, before["aaaa"].Version+1)
	}
	for _, id := range []string{"bbbb", "cccc"} {
		if after[id] != before[id] {
			t.Fatalf("mutation of aaaa moved digest[%s]", id)
		}
	}
}

func digestsEqual(a, b map[string]DigestInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDigestIsHashOfSnapshotID pins the wire contract between the
// digest and the per-id snapshot: the digest is exactly the sha256 of
// the record lines SnapshotID streams (header excluded), so a replica
// that installs a fetched per-id snapshot lands on the peer's digest
// by construction.
func TestDigestIsHashOfSnapshotID(t *testing.T) {
	j, _ := snapshotJournal(t)
	for _, id := range []string{"aaaa", "bbbb", "cccc"} {
		var buf bytes.Buffer
		n, err := j.SnapshotID(&buf, id)
		if err != nil {
			t.Fatalf("SnapshotID(%s): %v", id, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("SnapshotID reported %d bytes, wrote %d", n, buf.Len())
		}
		_, body, ok := bytes.Cut(buf.Bytes(), []byte("\n"))
		if !ok {
			t.Fatalf("SnapshotID(%s) wrote no header line", id)
		}
		sum := sha256.Sum256(body)
		d, ok := j.Digest(id)
		if !ok {
			t.Fatalf("Digest(%s) not found", id)
		}
		if want := hex.EncodeToString(sum[:]); d.Digest != want {
			t.Fatalf("digest[%s] = %s, want hash of SnapshotID body %s", id, d.Digest, want)
		}
	}
}

// TestSnapshotIDNotFound: an unknown id is ErrNotFound with nothing
// written, so the serving handler can still answer a clean 404.
func TestSnapshotIDNotFound(t *testing.T) {
	j, _ := snapshotJournal(t)
	var buf bytes.Buffer
	if _, err := j.SnapshotID(&buf, "zzzz"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v, want ErrNotFound", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes written before the not-found answer", buf.Len())
	}
}

// TestParseSnapshotRefusesTruncation: ParseSnapshot is the strict
// variant of the replay parser — a byte-truncated image (a cut
// transfer) is ErrCorrupt, where Open would tolerate the torn tail.
func TestParseSnapshotRefusesTruncation(t *testing.T) {
	j, _ := snapshotJournal(t)
	var buf bytes.Buffer
	if _, err := j.SnapshotID(&buf, "aaaa"); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	recs, err := ParseSnapshot(full)
	if err != nil {
		t.Fatalf("intact snapshot refused: %v", err)
	}
	if len(recs) == 0 || recs[0].ID != "aaaa" || recs[0].Op != "" {
		t.Fatalf("parsed %+v", recs)
	}
	if _, err := ParseSnapshot(full[:len(full)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot parsed (err %v), want ErrCorrupt", err)
	}
}

// TestReinstallConvergesDivergentJournal drives the full anti-entropy
// repair cycle at the journal layer: a replica that missed mirror
// records fetches the owner's per-id snapshot, Reinstalls it, and must
// land on the owner's digest — and keep it across a restart, since
// Reinstall relies on replay's last-wins rule.
func TestReinstallConvergesDivergentJournal(t *testing.T) {
	owner, _ := snapshotJournal(t)

	// The divergent replica has aaaa's registration but missed both of
	// its mutations, and never saw cccc at all.
	path := testPath(t)
	replica, err := Open(path, Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Append(explicitRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	ownerDigests := owner.Digests()
	repDigests := replica.Digests()
	if repDigests["aaaa"] == ownerDigests["aaaa"] {
		t.Fatal("test premise broken: replica already converged")
	}

	for _, id := range []string{"aaaa", "cccc"} {
		var buf bytes.Buffer
		if _, err := owner.SnapshotID(&buf, id); err != nil {
			t.Fatal(err)
		}
		recs, err := ParseSnapshot(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.Reinstall(id, recs); err != nil {
			t.Fatalf("Reinstall(%s): %v", id, err)
		}
	}
	for _, id := range []string{"aaaa", "cccc"} {
		got, ok := replica.Digest(id)
		if !ok || got != ownerDigests[id] {
			t.Fatalf("digest[%s] = %+v after reinstall, want %+v", id, got, ownerDigests[id])
		}
		gotV, _ := replica.Version(id)
		if gotV != ownerDigests[id].Version {
			t.Fatalf("Version(%s) = %d, want %d", id, gotV, ownerDigests[id].Version)
		}
	}

	// The repair must be durable: a reopened replica replays the
	// reinstalled registration as last-wins and keeps the digests.
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path, Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for _, id := range []string{"aaaa", "cccc"} {
		if got, ok := reopened.Digest(id); !ok || got != ownerDigests[id] {
			t.Fatalf("reopened digest[%s] = %+v, want %+v", id, got, ownerDigests[id])
		}
	}
}

// TestReinstallRefusesStale pins the anti-entropy TOCTOU guard: the
// reconciler compares versions against a digest map captured at round
// start, so a write that lands between the comparison and the install
// must not be rolled back by the now-stale fetch. Reinstall re-checks
// under the journal lock and refuses anything not strictly ahead.
func TestReinstallRefusesStale(t *testing.T) {
	owner, _ := snapshotJournal(t)
	replica, _ := snapshotJournal(t) // identical history: aaaa at version 2

	fetch := func(id string) []Record {
		t.Helper()
		var buf bytes.Buffer
		if _, err := owner.SnapshotID(&buf, id); err != nil {
			t.Fatal(err)
		}
		recs, err := ParseSnapshot(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	// Equal version: nothing to repair, the install is refused with
	// nothing written.
	recs := fetch("aaaa")
	size := replica.Size()
	if err := replica.Reinstall("aaaa", recs); !errors.Is(err, ErrStale) {
		t.Fatalf("equal-version reinstall: err %v, want ErrStale", err)
	}
	if replica.Size() != size {
		t.Fatal("refused reinstall wrote bytes")
	}

	// The race itself: the replica advances past the fetched snapshot
	// (a write landed after the digest comparison). The stale install
	// must be refused and the newer local copy kept.
	if err := replica.AppendMutations("aaaa", []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 1.5}}},
	}); err != nil {
		t.Fatal(err)
	}
	ahead, _ := replica.Digest("aaaa")
	size = replica.Size()
	if err := replica.Reinstall("aaaa", recs); !errors.Is(err, ErrStale) {
		t.Fatalf("behind-version reinstall: err %v, want ErrStale", err)
	}
	if replica.Size() != size {
		t.Fatal("refused reinstall wrote bytes")
	}
	if got, _ := replica.Digest("aaaa"); got != ahead {
		t.Fatalf("refused reinstall moved the digest: %+v, want %+v", got, ahead)
	}

	// A strictly-ahead fetch still installs: the guard gates rollback,
	// not repair.
	if err := owner.AppendMutations("aaaa", []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: -2}}},
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 1, Orient: 0.5}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := replica.Reinstall("aaaa", fetch("aaaa")); err != nil {
		t.Fatalf("strictly-ahead reinstall refused: %v", err)
	}
	want, _ := owner.Digest("aaaa")
	if got, _ := replica.Digest("aaaa"); got != want {
		t.Fatalf("digest %+v after ahead reinstall, want %+v", got, want)
	}
}

// TestReinstallValidation: malformed record sets are refused before
// anything is written.
func TestReinstallValidation(t *testing.T) {
	j, _ := snapshotJournal(t)
	size := j.Size()
	cases := []struct {
		name string
		id   string
		recs []Record
	}{
		{"empty", "aaaa", nil},
		{"mutation first", "aaaa", []Record{{ID: "aaaa", Op: OpRemove, Remove: []int{0}}}},
		{"wrong id", "aaaa", []Record{{ID: "bbbb"}}},
		{"second registration", "aaaa", []Record{{ID: "aaaa"}, {ID: "aaaa"}}},
	}
	for _, tc := range cases {
		if err := j.Reinstall(tc.id, tc.recs); err == nil {
			t.Errorf("%s: Reinstall accepted", tc.name)
		}
	}
	if j.Size() != size {
		t.Fatal("refused reinstalls wrote bytes")
	}
}

// TestVersionCounts: logical versions count mutation records and
// survive folding (BaseVersion carries the folded count).
func TestVersionCounts(t *testing.T) {
	j, _ := snapshotJournal(t)
	v, ok := j.Version("aaaa")
	if !ok || v != 2 {
		t.Fatalf("Version(aaaa) = %d,%v, want 2", v, ok)
	}
	if _, ok := j.Version("zzzz"); ok {
		t.Fatal("Version of unknown id reported ok")
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, _ := j.Version("aaaa"); v != 2 {
		t.Fatalf("post-fold Version(aaaa) = %d, want 2", v)
	}
	if err := j.AppendMutations("aaaa", []Record{
		{ID: "aaaa", Op: OpReaim, Reaim: []ReaimOp{{I: 0, Orient: 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := j.Version("aaaa"); v != 3 {
		t.Fatalf("Version(aaaa) = %d after folded+1, want 3", v)
	}
}
