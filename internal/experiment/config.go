package experiment

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// Deployment selects the random deployment scheme for a trial.
type Deployment int

// Deployment schemes (Section II-A).
const (
	// DeployUniform places exactly N sensors i.i.d. uniformly.
	DeployUniform Deployment = iota + 1
	// DeployPoisson draws the sensor count from a Poisson process of
	// density N.
	DeployPoisson
)

// String implements fmt.Stringer.
func (d Deployment) String() string {
	switch d {
	case DeployUniform:
		return "uniform"
	case DeployPoisson:
		return "poisson"
	default:
		return fmt.Sprintf("Deployment(%d)", int(d))
	}
}

// Config validation errors.
var (
	ErrBadN          = errors.New("experiment: N must be at least 2")
	ErrBadTheta      = errors.New("experiment: theta must be in (0, π]")
	ErrBadDeployment = errors.New("experiment: unknown deployment scheme")
	ErrBadPoints     = errors.New("experiment: points per trial must be positive")
)

// Config describes one experimental cell: a deployment scheme, a
// population size (or density), a heterogeneity profile, and an
// effective angle.
type Config struct {
	// N is the number of sensors (uniform) or the process density
	// (Poisson; expected sensors per unit area).
	N int
	// Theta is the effective angle θ ∈ (0, π].
	Theta float64
	// Profile is the heterogeneity profile to deploy.
	Profile sensor.Profile
	// Deployment is the deployment scheme; DeployUniform by default.
	Deployment Deployment
	// Torus is the operational region; the unit torus when zero.
	Torus geom.Torus
	// KTarget, when positive, makes point experiments additionally count
	// sample points that are k-covered by at least KTarget cameras (the
	// Section VII-B comparison).
	KTarget int
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.Deployment == 0 {
		c.Deployment = DeployUniform
	}
	if c.Torus == (geom.Torus{}) {
		c.Torus = geom.UnitTorus
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: got %d", ErrBadN, c.N)
	}
	if !(c.Theta > 0) || c.Theta > math.Pi {
		return fmt.Errorf("%w: got %v", ErrBadTheta, c.Theta)
	}
	c = c.withDefaults()
	if c.Deployment != DeployUniform && c.Deployment != DeployPoisson {
		return fmt.Errorf("%w: %v", ErrBadDeployment, c.Deployment)
	}
	if c.Profile.NumGroups() == 0 {
		return errors.New("experiment: profile must have at least one group")
	}
	return nil
}

// fingerprint renders the configuration as a stable string for
// checkpoint-journal headers: resuming a journal written under any
// other configuration must fail loudly rather than mix results.
func (c Config) fingerprint() string {
	c = c.withDefaults()
	return fmt.Sprintf("n=%d theta=%.17g deploy=%s profile=%s torus=%.17g ktarget=%d",
		c.N, c.Theta, c.Deployment, sensor.FormatProfile(c.Profile), c.Torus.Side(), c.KTarget)
}

// deployNetwork builds one network realization for this configuration.
func (c Config) deployNetwork(r *rng.PCG) (*sensor.Network, error) {
	c = c.withDefaults()
	switch c.Deployment {
	case DeployUniform:
		return deploy.Uniform(c.Torus, c.Profile, c.N, r)
	case DeployPoisson:
		return deploy.Poisson(c.Torus, c.Profile, float64(c.N), r)
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadDeployment, c.Deployment)
	}
}
