package experiment

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/analytic"
)

func TestEstimateProbabilityValidation(t *testing.T) {
	cfg := Config{N: 100, Theta: math.Pi / 2, Profile: testProfile(t)}
	if _, err := EstimateProbability(cfg, Target(0), 0.05, 10, 100, 1); !errors.Is(err, ErrBadTarget) {
		t.Errorf("error = %v, want ErrBadTarget", err)
	}
	for _, precision := range []float64{0, -0.1, 0.5, 0.9} {
		if _, err := EstimateProbability(cfg, TargetFullView, precision, 10, 100, 1); !errors.Is(err, ErrBadPrecision) {
			t.Errorf("precision %v: error = %v, want ErrBadPrecision", precision, err)
		}
	}
	if _, err := EstimateProbability(cfg, TargetFullView, 0.05, 0, 100, 1); !errors.Is(err, ErrBadBudget) {
		t.Errorf("error = %v, want ErrBadBudget", err)
	}
	if _, err := EstimateProbability(cfg, TargetFullView, 0.05, 10, 0, 1); !errors.Is(err, ErrBadBudget) {
		t.Errorf("error = %v, want ErrBadBudget", err)
	}
	bad := cfg
	bad.N = 1
	if _, err := EstimateProbability(bad, TargetFullView, 0.05, 10, 100, 1); !errors.Is(err, ErrBadN) {
		t.Errorf("error = %v, want ErrBadN", err)
	}
}

func TestTargetString(t *testing.T) {
	if TargetFullView.String() != "full-view" ||
		TargetNecessary.String() != "necessary" ||
		TargetSufficient.String() != "sufficient" {
		t.Error("Target String() values changed")
	}
	if Target(99).String() == "" {
		t.Error("unknown target should still print")
	}
}

func TestEstimateConvergesAndBrackets(t *testing.T) {
	cfg := Config{N: 400, Theta: math.Pi / 2, Profile: testProfile(t)}
	est, err := EstimateProbability(cfg, TargetNecessary, 0.04, 50, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Fatalf("did not converge in %d samples", est.Samples)
	}
	if (est.Hi-est.Lo)/2 > 0.04+1e-9 {
		t.Errorf("interval [%v, %v] wider than the precision target", est.Lo, est.Hi)
	}
	if est.Fraction < est.Lo || est.Fraction > est.Hi {
		t.Errorf("estimate %v outside its own interval", est.Fraction)
	}
	// Cross-check against the analytic formula (Eq. 2).
	fail, err := analytic.UniformNecessaryFailure(testProfile(t), 400, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - fail
	if want < est.Lo-0.05 || want > est.Hi+0.05 {
		t.Errorf("analytic value %v far outside estimate [%v, %v]", want, est.Lo, est.Hi)
	}
}

func TestEstimateExtremeProbabilityIsCheap(t *testing.T) {
	// A hopeless configuration (tiny sensors) pins the estimate near 0
	// quickly: Wilson intervals collapse fast at the extremes, so the
	// adaptive loop should stop long before the budget.
	profile := testProfile(t)
	scaled, err := profile.ScaleToArea(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 100, Theta: math.Pi / 4, Profile: scaled}
	est, err := EstimateProbability(cfg, TargetFullView, 0.02, 50, 100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Fatal("extreme probability did not converge")
	}
	if est.Samples > 2000 {
		t.Errorf("spent %d samples on a near-zero probability", est.Samples)
	}
	if est.Fraction > 0.01 {
		t.Errorf("fraction = %v, want ≈ 0", est.Fraction)
	}
}

func TestEstimateBudgetExhaustion(t *testing.T) {
	// Demanding precision with a tiny budget must come back
	// unconverged, never looping forever.
	cfg := Config{N: 300, Theta: math.Pi / 3, Profile: testProfile(t)}
	est, err := EstimateProbability(cfg, TargetFullView, 0.001, 20, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Converged {
		t.Error("implausible convergence at 200 samples for ±0.001")
	}
	if est.Samples != 200 {
		t.Errorf("Samples = %d, want exactly the budget", est.Samples)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	cfg := Config{N: 200, Theta: math.Pi / 3, Profile: testProfile(t)}
	a, err := EstimateProbability(cfg, TargetSufficient, 0.05, 40, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateProbability(cfg, TargetSufficient, 0.05, 40, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("estimates differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestEstimateOrderingAcrossTargets(t *testing.T) {
	cfg := Config{N: 400, Theta: math.Pi / 3, Profile: testProfile(t)}
	var values [3]float64
	for i, target := range []Target{TargetSufficient, TargetFullView, TargetNecessary} {
		est, err := EstimateProbability(cfg, target, 0.02, 50, 50000, 5)
		if err != nil {
			t.Fatal(err)
		}
		values[i] = est.Fraction
	}
	// sufficient ≤ full-view ≤ necessary, within joint estimation noise.
	if values[0] > values[1]+0.05 || values[1] > values[2]+0.05 {
		t.Errorf("target ordering violated: suf=%v fv=%v nec=%v", values[0], values[1], values[2])
	}
}
