// Package experiment is the Monte-Carlo harness behind every simulation
// result in EXPERIMENTS.md: deterministic parallel trial execution,
// grid-level condition experiments (Theorems 1 and 2), and point-level
// probability experiments (Equations 2 and 13, Theorems 3 and 4).
//
// Determinism: trial i always runs with the RNG stream derived from
// (seed, i), so results are independent of GOMAXPROCS and scheduling.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fullview/internal/rng"
)

// ErrBadTrials reports a non-positive trial count.
var ErrBadTrials = errors.New("experiment: trials must be positive")

// TrialFunc runs a single trial. The PCG stream is exclusive to this
// trial; fn must not share it with other goroutines.
type TrialFunc[T any] func(trial int, r *rng.PCG) (T, error)

// Run executes trials trials of fn with parallelism workers (default
// GOMAXPROCS when parallelism ≤ 0) and returns results in trial order.
// The first trial error aborts the run: no further trials start, and the
// error is returned after in-flight trials complete.
func Run[T any](seed uint64, trials, parallelism int, fn TrialFunc[T]) ([]T, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > trials {
		parallelism = trials
	}

	results := make([]T, trials)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials || failed.Load() {
					return
				}
				out, err := fn(i, rng.New(seed, uint64(i)))
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("experiment: trial %d: %w", i, err)
					})
					failed.Store(true)
					return
				}
				results[i] = out
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
