// Package experiment is the Monte-Carlo harness behind every simulation
// result in EXPERIMENTS.md: deterministic parallel trial execution,
// grid-level condition experiments (Theorems 1 and 2), and point-level
// probability experiments (Equations 2 and 13, Theorems 3 and 4).
//
// Determinism: trial i always runs with the RNG stream derived from
// (seed, i), so results are independent of GOMAXPROCS and scheduling.
// Trial scheduling and point sweeps both execute through the shared
// internal/sweep engine.
package experiment

import (
	"context"
	"errors"
	"fmt"

	"fullview/internal/rng"
	"fullview/internal/sweep"
)

// ErrBadTrials reports a non-positive trial count.
var ErrBadTrials = errors.New("experiment: trials must be positive")

// TrialFunc runs a single trial. The PCG stream is exclusive to this
// trial; fn must not share it with other goroutines.
type TrialFunc[T any] func(trial int, r *rng.PCG) (T, error)

// Run executes trials trials of fn with parallelism workers (default
// GOMAXPROCS when parallelism ≤ 0) and returns results in trial order.
// The first trial error aborts the run: no further trials start, and the
// error is returned after in-flight trials complete.
func Run[T any](seed uint64, trials, parallelism int, fn TrialFunc[T]) ([]T, error) {
	return RunContext(context.Background(), seed, trials, parallelism, fn)
}

// RunContext is Run with cancellation: a cancelled context stops
// launching trials and returns ctx.Err() after in-flight trials
// complete.
func RunContext[T any](ctx context.Context, seed uint64, trials, parallelism int, fn TrialFunc[T]) ([]T, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	return sweep.Map(ctx, trials, parallelism, func(i int) (T, error) {
		out, err := fn(i, rng.New(seed, uint64(i)))
		if err != nil {
			return out, fmt.Errorf("experiment: trial %d: %w", i, err)
		}
		return out, nil
	})
}

// sweepWorkers picks the worker count for a point sweep nested inside a
// trial: trials already saturate the cores when there are several, so
// inner sweeps stay sequential unless the experiment is a single trial.
func sweepWorkers(trials, parallelism int) int {
	if trials == 1 {
		return parallelism
	}
	return 1
}
