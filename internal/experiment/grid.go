package experiment

import (
	"context"
	"fmt"

	"fullview/internal/checkpoint"
	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/numeric"
	"fullview/internal/rng"
	"fullview/internal/stats"
)

// GridOutcome aggregates a grid-coverage experiment: per-trial dense-grid
// sweeps testing whether *every* grid point satisfies each condition (the
// paper's events H_N, H_S, and full-view coverage of the region), plus
// the mean per-trial fractions.
type GridOutcome struct {
	// Trials is the number of completed trials.
	Trials int
	// AllNecessary counts trials where every grid point met the
	// necessary condition (event H_N).
	AllNecessary stats.Counter
	// AllSufficient counts trials where every grid point met the
	// sufficient condition (event H_S).
	AllSufficient stats.Counter
	// AllFullView counts trials where the whole grid was full-view
	// covered.
	AllFullView stats.Counter
	// NecessaryFraction etc. summarize the per-trial fraction of grid
	// points passing each test.
	NecessaryFraction  stats.Summary
	SufficientFraction stats.Summary
	FullViewFraction   stats.Summary
	// MeanCovering summarizes the per-trial mean k-coverage multiplicity.
	MeanCovering stats.Summary
}

// gridPrep validates cfg and materializes the sample grid: the explicit
// gridSide when positive, the paper's √(n·ln n) dense grid otherwise.
func gridPrep(cfg Config, gridSide int) (Config, []geom.Vec, int, error) {
	if err := cfg.Validate(); err != nil {
		return cfg, nil, 0, err
	}
	cfg = cfg.withDefaults()
	side := gridSide
	if side <= 0 {
		var err error
		side, err = deploy.DenseGridSide(cfg.N)
		if err != nil {
			return cfg, nil, 0, err
		}
	}
	points, err := deploy.GridPoints(cfg.Torus, side)
	if err != nil {
		return cfg, nil, 0, err
	}
	return cfg, points, side, nil
}

// gridTrial returns the per-trial function of the grid experiment:
// deploy a fresh network on the trial's RNG stream and sweep the grid.
func gridTrial(cfg Config, points []geom.Vec, trials, parallelism int) TrialFunc[core.RegionStats] {
	return func(_ int, r *rng.PCG) (core.RegionStats, error) {
		net, err := cfg.deployNetwork(r)
		if err != nil {
			return core.RegionStats{}, err
		}
		checker, err := core.NewChecker(net, cfg.Theta)
		if err != nil {
			return core.RegionStats{}, err
		}
		// Single-trial runs push the parallelism into the grid sweep
		// itself; multi-trial runs keep cores busy at the trial level.
		return checker.SurveyRegionParallel(points, sweepWorkers(trials, parallelism)), nil
	}
}

// aggregateGrid folds per-trial region statistics into the outcome and
// runs the numeric-health check on the derived summaries.
func aggregateGrid(results []core.RegionStats) (GridOutcome, error) {
	out := GridOutcome{Trials: len(results)}
	necFrac := make([]float64, 0, len(results))
	sufFrac := make([]float64, 0, len(results))
	fvFrac := make([]float64, 0, len(results))
	cover := make([]float64, 0, len(results))
	for _, s := range results {
		out.AllNecessary.Add(s.AllNecessary())
		out.AllSufficient.Add(s.AllSufficient())
		out.AllFullView.Add(s.AllFullView())
		necFrac = append(necFrac, s.NecessaryFraction())
		sufFrac = append(sufFrac, s.SufficientFraction())
		fvFrac = append(fvFrac, s.FullViewFraction())
		cover = append(cover, s.MeanCovering)
	}
	out.NecessaryFraction = stats.Summarize(necFrac)
	out.SufficientFraction = stats.Summarize(sufFrac)
	out.FullViewFraction = stats.Summarize(fvFrac)
	out.MeanCovering = stats.Summarize(cover)
	if err := out.checkFinite(); err != nil {
		return GridOutcome{}, err
	}
	return out, nil
}

// checkFinite guards the outcome's floating-point summaries: a NaN here
// would otherwise propagate silently into every downstream table.
func (o GridOutcome) checkFinite() error {
	ctx := fmt.Sprintf("grid experiment, %d trials", o.Trials)
	return numeric.CheckAll(ctx,
		"NecessaryFraction.Mean", o.NecessaryFraction.Mean,
		"SufficientFraction.Mean", o.SufficientFraction.Mean,
		"FullViewFraction.Mean", o.FullViewFraction.Mean,
		"MeanCovering.Mean", o.MeanCovering.Mean,
		"MeanCovering.Variance", o.MeanCovering.Variance,
	)
}

// RunGrid executes trials of the grid-coverage experiment for cfg: each
// trial deploys a fresh network, sweeps the paper's dense grid
// (√(n·ln n) per side), and records region statistics.
//
// gridSide overrides the dense-grid side when positive — coarser grids
// make large sweeps affordable; the dense grid is the paper-faithful
// default (gridSide ≤ 0).
func RunGrid(cfg Config, gridSide, trials, parallelism int, seed uint64) (GridOutcome, error) {
	cfg, points, _, err := gridPrep(cfg, gridSide)
	if err != nil {
		return GridOutcome{}, err
	}
	results, err := Run(seed, trials, parallelism, gridTrial(cfg, points, trials, parallelism))
	if err != nil {
		return GridOutcome{}, fmt.Errorf("grid experiment: %w", err)
	}
	return aggregateGrid(results)
}

// RunGridCheckpoint is RunGrid with checkpoint/resume: completed trials
// are journaled at journalPath, a restarted run re-executes only the
// missing trials, and the outcome is bit-identical to an uninterrupted
// RunGrid. The journal header fingerprints (cfg, gridSide, seed,
// trials), so resuming with different parameters fails with
// checkpoint.ErrMismatch.
func RunGridCheckpoint(
	ctx context.Context,
	journalPath string,
	cfg Config,
	gridSide, trials, parallelism int,
	seed uint64,
) (GridOutcome, error) {
	cfg, points, side, err := gridPrep(cfg, gridSide)
	if err != nil {
		return GridOutcome{}, err
	}
	if trials <= 0 {
		return GridOutcome{}, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	journal, err := checkpoint.Open(journalPath, checkpoint.Header{
		Kind:   "experiment/grid",
		Seed:   seed,
		Trials: trials,
		Params: fmt.Sprintf("%s grid=%d", cfg.fingerprint(), side),
	})
	if err != nil {
		return GridOutcome{}, err
	}
	defer journal.Close()
	results, err := RunResumable(ctx, journal, seed, trials, parallelism,
		gridTrial(cfg, points, trials, parallelism))
	if err != nil {
		return GridOutcome{}, fmt.Errorf("grid experiment: %w", err)
	}
	return aggregateGrid(results)
}
