package experiment

import (
	"context"
	"fmt"

	"fullview/internal/checkpoint"
	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/numeric"
	"fullview/internal/rng"
	"fullview/internal/stats"
	"fullview/internal/sweep"
)

// PointOutcome aggregates a point-coverage experiment: random sample
// points diagnosed across fresh network realizations. Its proportions
// estimate the paper's per-point probabilities — 1−P(F_N,P), 1−P(F_S,P)
// under uniform deployment (Eqs. 2, 13) and P_N, P_S under Poisson
// deployment (Theorems 3, 4).
type PointOutcome struct {
	// Necessary / Sufficient / FullView count sample points passing
	// each test, pooled over all trials.
	Necessary  stats.Counter
	Sufficient stats.Counter
	FullView   stats.Counter
	// NecessaryNotFullView counts points that met the necessary
	// condition yet were not full-view covered (Figure 9, left).
	NecessaryNotFullView stats.Counter
	// FullViewNotSufficient counts points full-view covered without
	// meeting the sufficient condition (Figure 9, right: redundancy in
	// the sufficient construction).
	FullViewNotSufficient stats.Counter
	// KCovered counts points covered by at least Config.KTarget cameras;
	// it stays empty when KTarget ≤ 0.
	KCovered stats.Counter
	// CoveringCount summarizes the per-point k-coverage multiplicity.
	CoveringCount stats.Summary
}

// pointTrial is one trial's aggregate of the point experiment. Fields
// are exported with JSON tags so completed trials can be journaled by
// the checkpoint layer; every field is an integer or a float64 series,
// both of which round-trip through encoding/json exactly.
type pointTrial struct {
	Necessary            int       `json:"nec"`
	Sufficient           int       `json:"suf"`
	FullView             int       `json:"fv"`
	NecessaryNotFullView int       `json:"necNotFv"`
	FullViewNotSuf       int       `json:"fvNotSuf"`
	KCovered             int       `json:"kCov"`
	Covering             []float64 `json:"covering"`
}

// pointTrialFunc returns the per-trial function of the point
// experiment: deploy a fresh network, draw pointsPerTrial uniform
// sample points, diagnose each through the sweep engine.
func pointTrialFunc(cfg Config, pointsPerTrial, trials, parallelism int) TrialFunc[pointTrial] {
	return func(_ int, r *rng.PCG) (pointTrial, error) {
		net, err := cfg.deployNetwork(r)
		if err != nil {
			return pointTrial{}, err
		}
		checker, err := core.NewChecker(net, cfg.Theta)
		if err != nil {
			return pointTrial{}, err
		}
		// Draw all sample points up front (the RNG sequence is exactly
		// the interleaved one, since diagnosis consumes no randomness),
		// then evaluate them through the sweep engine. Chunk-ordered
		// merging keeps the covering series in point order.
		side := cfg.Torus.Side()
		points := make([]geom.Vec, pointsPerTrial)
		for i := range points {
			points[i] = geom.V(r.Float64()*side, r.Float64()*side)
		}
		return sweep.Run(context.Background(), points, sweepWorkers(trials, parallelism),
			func() (*core.Checker, error) { return checker.Clone(), nil },
			func(worker *core.Checker, acc pointTrial, _ int, p geom.Vec) pointTrial {
				rep := worker.Report(p)
				if rep.Necessary {
					acc.Necessary++
					if !rep.FullView {
						acc.NecessaryNotFullView++
					}
				}
				if rep.FullView {
					acc.FullView++
					if !rep.Sufficient {
						acc.FullViewNotSuf++
					}
				}
				if rep.Sufficient {
					acc.Sufficient++
				}
				if cfg.KTarget > 0 && rep.NumCovering >= cfg.KTarget {
					acc.KCovered++
				}
				acc.Covering = append(acc.Covering, float64(rep.NumCovering))
				return acc
			},
			func(dst, src pointTrial) pointTrial {
				dst.Necessary += src.Necessary
				dst.Sufficient += src.Sufficient
				dst.FullView += src.FullView
				dst.NecessaryNotFullView += src.NecessaryNotFullView
				dst.FullViewNotSuf += src.FullViewNotSuf
				dst.KCovered += src.KCovered
				dst.Covering = append(dst.Covering, src.Covering...)
				return dst
			})
	}
}

// aggregatePoints pools per-trial counts into the outcome and runs the
// numeric-health check on the covering-count summary.
func aggregatePoints(cfg Config, results []pointTrial, pointsPerTrial int) (PointOutcome, error) {
	var out PointOutcome
	var covering []float64
	for _, tr := range results {
		out.Necessary.AddN(tr.Necessary, pointsPerTrial)
		out.Sufficient.AddN(tr.Sufficient, pointsPerTrial)
		out.FullView.AddN(tr.FullView, pointsPerTrial)
		out.NecessaryNotFullView.AddN(tr.NecessaryNotFullView, pointsPerTrial)
		out.FullViewNotSufficient.AddN(tr.FullViewNotSuf, pointsPerTrial)
		if cfg.KTarget > 0 {
			out.KCovered.AddN(tr.KCovered, pointsPerTrial)
		}
		covering = append(covering, tr.Covering...)
	}
	out.CoveringCount = stats.Summarize(covering)
	ctx := fmt.Sprintf("point experiment, %d trials × %d points", len(results), pointsPerTrial)
	if err := numeric.CheckAll(ctx,
		"CoveringCount.Mean", out.CoveringCount.Mean,
		"CoveringCount.Variance", out.CoveringCount.Variance,
	); err != nil {
		return PointOutcome{}, err
	}
	return out, nil
}

// validatePoints is the shared argument validation of the point runners.
func validatePoints(cfg Config, pointsPerTrial int) (Config, error) {
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if pointsPerTrial <= 0 {
		return cfg, fmt.Errorf("%w: got %d", ErrBadPoints, pointsPerTrial)
	}
	return cfg.withDefaults(), nil
}

// RunPoints executes trials of the point experiment for cfg: each trial
// deploys a fresh network and diagnoses pointsPerTrial uniformly random
// sample points.
func RunPoints(cfg Config, pointsPerTrial, trials, parallelism int, seed uint64) (PointOutcome, error) {
	cfg, err := validatePoints(cfg, pointsPerTrial)
	if err != nil {
		return PointOutcome{}, err
	}
	results, err := Run(seed, trials, parallelism, pointTrialFunc(cfg, pointsPerTrial, trials, parallelism))
	if err != nil {
		return PointOutcome{}, fmt.Errorf("point experiment: %w", err)
	}
	return aggregatePoints(cfg, results, pointsPerTrial)
}

// RunPointsCheckpoint is RunPoints with checkpoint/resume via a journal
// at journalPath; see RunGridCheckpoint for the resume contract.
func RunPointsCheckpoint(
	ctx context.Context,
	journalPath string,
	cfg Config,
	pointsPerTrial, trials, parallelism int,
	seed uint64,
) (PointOutcome, error) {
	cfg, err := validatePoints(cfg, pointsPerTrial)
	if err != nil {
		return PointOutcome{}, err
	}
	if trials <= 0 {
		return PointOutcome{}, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	journal, err := checkpoint.Open(journalPath, checkpoint.Header{
		Kind:   "experiment/point",
		Seed:   seed,
		Trials: trials,
		Params: fmt.Sprintf("%s points=%d", cfg.fingerprint(), pointsPerTrial),
	})
	if err != nil {
		return PointOutcome{}, err
	}
	defer journal.Close()
	results, err := RunResumable(ctx, journal, seed, trials, parallelism,
		pointTrialFunc(cfg, pointsPerTrial, trials, parallelism))
	if err != nil {
		return PointOutcome{}, fmt.Errorf("point experiment: %w", err)
	}
	return aggregatePoints(cfg, results, pointsPerTrial)
}
