package experiment

import (
	"context"
	"fmt"

	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/stats"
	"fullview/internal/sweep"
)

// PointOutcome aggregates a point-coverage experiment: random sample
// points diagnosed across fresh network realizations. Its proportions
// estimate the paper's per-point probabilities — 1−P(F_N,P), 1−P(F_S,P)
// under uniform deployment (Eqs. 2, 13) and P_N, P_S under Poisson
// deployment (Theorems 3, 4).
type PointOutcome struct {
	// Necessary / Sufficient / FullView count sample points passing
	// each test, pooled over all trials.
	Necessary  stats.Counter
	Sufficient stats.Counter
	FullView   stats.Counter
	// NecessaryNotFullView counts points that met the necessary
	// condition yet were not full-view covered (Figure 9, left).
	NecessaryNotFullView stats.Counter
	// FullViewNotSufficient counts points full-view covered without
	// meeting the sufficient condition (Figure 9, right: redundancy in
	// the sufficient construction).
	FullViewNotSufficient stats.Counter
	// KCovered counts points covered by at least Config.KTarget cameras;
	// it stays empty when KTarget ≤ 0.
	KCovered stats.Counter
	// CoveringCount summarizes the per-point k-coverage multiplicity.
	CoveringCount stats.Summary
}

// RunPoints executes trials of the point experiment for cfg: each trial
// deploys a fresh network and diagnoses pointsPerTrial uniformly random
// sample points.
func RunPoints(cfg Config, pointsPerTrial, trials, parallelism int, seed uint64) (PointOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return PointOutcome{}, err
	}
	if pointsPerTrial <= 0 {
		return PointOutcome{}, fmt.Errorf("%w: got %d", ErrBadPoints, pointsPerTrial)
	}
	cfg = cfg.withDefaults()

	type trialResult struct {
		necessary, sufficient, fullView      int
		necessaryNotFullView, fullViewNotSuf int
		kCovered                             int
		covering                             []float64
	}
	results, err := Run(seed, trials, parallelism, func(_ int, r *rng.PCG) (trialResult, error) {
		net, err := cfg.deployNetwork(r)
		if err != nil {
			return trialResult{}, err
		}
		checker, err := core.NewChecker(net, cfg.Theta)
		if err != nil {
			return trialResult{}, err
		}
		// Draw all sample points up front (the RNG sequence is exactly
		// the interleaved one, since diagnosis consumes no randomness),
		// then evaluate them through the sweep engine. Chunk-ordered
		// merging keeps the covering series in point order.
		side := cfg.Torus.Side()
		points := make([]geom.Vec, pointsPerTrial)
		for i := range points {
			points[i] = geom.V(r.Float64()*side, r.Float64()*side)
		}
		return sweep.Run(context.Background(), points, sweepWorkers(trials, parallelism),
			func() (*core.Checker, error) { return checker.Clone(), nil },
			func(worker *core.Checker, acc trialResult, _ int, p geom.Vec) trialResult {
				rep := worker.Report(p)
				if rep.Necessary {
					acc.necessary++
					if !rep.FullView {
						acc.necessaryNotFullView++
					}
				}
				if rep.FullView {
					acc.fullView++
					if !rep.Sufficient {
						acc.fullViewNotSuf++
					}
				}
				if rep.Sufficient {
					acc.sufficient++
				}
				if cfg.KTarget > 0 && rep.NumCovering >= cfg.KTarget {
					acc.kCovered++
				}
				acc.covering = append(acc.covering, float64(rep.NumCovering))
				return acc
			},
			func(dst, src trialResult) trialResult {
				dst.necessary += src.necessary
				dst.sufficient += src.sufficient
				dst.fullView += src.fullView
				dst.necessaryNotFullView += src.necessaryNotFullView
				dst.fullViewNotSuf += src.fullViewNotSuf
				dst.kCovered += src.kCovered
				dst.covering = append(dst.covering, src.covering...)
				return dst
			})
	})
	if err != nil {
		return PointOutcome{}, fmt.Errorf("point experiment: %w", err)
	}

	var out PointOutcome
	var covering []float64
	for _, tr := range results {
		out.Necessary.AddN(tr.necessary, pointsPerTrial)
		out.Sufficient.AddN(tr.sufficient, pointsPerTrial)
		out.FullView.AddN(tr.fullView, pointsPerTrial)
		out.NecessaryNotFullView.AddN(tr.necessaryNotFullView, pointsPerTrial)
		out.FullViewNotSufficient.AddN(tr.fullViewNotSuf, pointsPerTrial)
		if cfg.KTarget > 0 {
			out.KCovered.AddN(tr.kCovered, pointsPerTrial)
		}
		covering = append(covering, tr.covering...)
	}
	out.CoveringCount = stats.Summarize(covering)
	return out, nil
}
