package experiment

import (
	"context"
	"fmt"

	"fullview/internal/checkpoint"
	"fullview/internal/rng"
	"fullview/internal/sweep"
)

// RunResumable is RunContext with checkpoint/resume: every completed
// trial's result is journaled, already-journaled trials are skipped on
// restart, and the final result slice is bit-identical to an
// uninterrupted run at any worker count — trial i always consumes the
// dedicated (seed, i) RNG stream, and encoding/json round-trips every
// finite float64 exactly.
//
// The journal must have been opened with Header.Trials == trials (and a
// seed/params fingerprint identifying this run; checkpoint.Open refuses
// mismatches). T must round-trip through encoding/json: exported
// fields, no NaN/±Inf — run numeric-health checks inside fn before
// returning.
//
// On cancellation or error, trials that completed before the abort stay
// journaled, so a later RunResumable call re-executes only the rest.
func RunResumable[T any](
	ctx context.Context,
	journal *checkpoint.Journal,
	seed uint64,
	trials, parallelism int,
	fn TrialFunc[T],
) ([]T, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	if h := journal.Header(); h.Trials != trials {
		return nil, fmt.Errorf("%w: journal for %d trials, run wants %d",
			checkpoint.ErrMismatch, h.Trials, trials)
	}

	results := make([]T, trials)
	missing := journal.Missing()

	// Decode the journaled prefix first: a corrupt record should fail
	// before any new work starts.
	for i := 0; i < trials; i++ {
		if journal.Done(i) {
			if _, err := journal.Get(i, &results[i]); err != nil {
				return nil, err
			}
		}
	}

	if len(missing) > 0 {
		fresh, err := sweep.Map(ctx, len(missing), parallelism, func(k int) (T, error) {
			i := missing[k]
			out, err := fn(i, rng.New(seed, uint64(i)))
			if err != nil {
				return out, fmt.Errorf("experiment: trial %d: %w", i, err)
			}
			if err := journal.Record(i, out); err != nil {
				return out, fmt.Errorf("experiment: trial %d: %w", i, err)
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		for k, i := range missing {
			results[i] = fresh[k]
		}
	}
	return results, nil
}
