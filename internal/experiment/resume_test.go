package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"fullview/internal/checkpoint"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/sweep"
)

func resumeWorkerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// syntheticTrial is a cheap deterministic trial: a few RNG draws folded
// into floats, JSON-round-trippable, distinct per trial.
type syntheticTrial struct {
	Trial int       `json:"trial"`
	Sum   float64   `json:"sum"`
	Draws []float64 `json:"draws"`
}

func syntheticFn(trial int, r *rng.PCG) (syntheticTrial, error) {
	out := syntheticTrial{Trial: trial}
	for k := 0; k < 5; k++ {
		d := r.Float64()
		out.Draws = append(out.Draws, d)
		out.Sum += d * math.Pi
	}
	return out, nil
}

func TestRunResumableKillAndResume(t *testing.T) {
	const (
		seed   = uint64(77)
		trials = 40
		killAt = 13
	)
	for _, workers := range resumeWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseline, err := Run(seed, trials, workers, syntheticFn)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "run.jsonl")
			header := checkpoint.Header{Kind: "test/synthetic", Seed: seed, Trials: trials}

			// Phase 1: "kill" the run by cancelling the context once
			// killAt trials have completed.
			journal, err := checkpoint.Open(path, header)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var completed atomic.Int64
			_, err = RunResumable(ctx, journal, seed, trials, workers,
				func(trial int, r *rng.PCG) (syntheticTrial, error) {
					out, err := syntheticFn(trial, r)
					if completed.Add(1) >= killAt {
						cancel()
					}
					return out, err
				})
			if err == nil {
				t.Fatal("interrupted run returned no error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run error = %v", err)
			}
			journal.Close()

			// The journal on disk must be parseable and resumable
			// (cancellation mid-checkpoint leaves intact state).
			resumedJournal, err := checkpoint.Open(path, header)
			if err != nil {
				t.Fatalf("reopen journal after kill: %v", err)
			}
			done := resumedJournal.Len()
			if done == 0 || done >= trials {
				t.Fatalf("journal holds %d of %d trials after kill", done, trials)
			}

			// Phase 2: resume. Only the missing trials may execute.
			var reexecuted atomic.Int64
			results, err := RunResumable(context.Background(), resumedJournal, seed, trials, workers,
				func(trial int, r *rng.PCG) (syntheticTrial, error) {
					reexecuted.Add(1)
					if resumedJournal.Done(trial) {
						t.Errorf("trial %d re-executed despite journal entry", trial)
					}
					return syntheticFn(trial, r)
				})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := int(reexecuted.Load()), trials-done; got != want {
				t.Errorf("resumed run executed %d trials, want %d", got, want)
			}
			if !reflect.DeepEqual(results, baseline) {
				t.Error("resumed results differ from uninterrupted run")
			}
			if !resumedJournal.Complete() {
				t.Error("journal incomplete after successful resume")
			}
		})
	}
}

func TestRunResumableJournalTrialsMismatch(t *testing.T) {
	journal, err := checkpoint.Open(filepath.Join(t.TempDir(), "run.jsonl"),
		checkpoint.Header{Kind: "test", Seed: 1, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunResumable(context.Background(), journal, 1, 6, 1, syntheticFn)
	if !errors.Is(err, checkpoint.ErrMismatch) {
		t.Fatalf("err = %v, want ErrMismatch", err)
	}
}

func testConfig() Config {
	profile, err := sensor.Homogeneous(0.22, math.Pi/2)
	if err != nil {
		panic(err)
	}
	return Config{N: 60, Theta: math.Pi / 3, Profile: profile}
}

func TestRunGridCheckpointBitIdentical(t *testing.T) {
	const (
		seed     = uint64(2012)
		trials   = 6
		gridSide = 12
	)
	cfg := testConfig()
	for _, workers := range resumeWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseline, err := RunGrid(cfg, gridSide, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "grid.jsonl")

			// Simulate a killed run deterministically: journal a strict
			// subset of trials exactly as a partial run would have, using
			// the same per-trial (seed, i) streams.
			prepCfg, points, side, err := gridPrep(cfg, gridSide)
			if err != nil {
				t.Fatal(err)
			}
			partial, err := checkpoint.Open(path, checkpoint.Header{
				Kind:   "experiment/grid",
				Seed:   seed,
				Trials: trials,
				Params: fmt.Sprintf("%s grid=%d", prepCfg.fingerprint(), side),
			})
			if err != nil {
				t.Fatal(err)
			}
			fn := gridTrial(prepCfg, points, trials, workers)
			for _, i := range []int{0, 2, 4} {
				res, err := fn(i, rng.New(seed, uint64(i)))
				if err != nil {
					t.Fatal(err)
				}
				if err := partial.Record(i, res); err != nil {
					t.Fatal(err)
				}
			}
			partial.Close()

			// Resume: only trials 1, 3, 5 run; the outcome must match the
			// uninterrupted baseline bit for bit.
			out, err := RunGridCheckpoint(context.Background(), path, cfg, gridSide, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, baseline) {
				t.Errorf("checkpointed outcome differs from RunGrid:\n got %+v\nwant %+v", out, baseline)
			}

			// Re-running over the complete journal recomputes nothing and
			// still reproduces the outcome.
			again, err := RunGridCheckpoint(context.Background(), path, cfg, gridSide, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, baseline) {
				t.Error("outcome from fully-journaled run differs")
			}
		})
	}
}

func TestRunGridCheckpointMismatchRefused(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	if _, err := RunGridCheckpoint(context.Background(), path, cfg, 8, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Different seed, N, and grid side must all refuse the journal.
	if _, err := RunGridCheckpoint(context.Background(), path, cfg, 8, 2, 1, 2); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("seed change: %v", err)
	}
	cfg2 := cfg
	cfg2.N = 61
	if _, err := RunGridCheckpoint(context.Background(), path, cfg2, 8, 2, 1, 1); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("config change: %v", err)
	}
	if _, err := RunGridCheckpoint(context.Background(), path, cfg, 9, 2, 1, 1); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("grid change: %v", err)
	}
}

func TestRunPointsCheckpointBitIdentical(t *testing.T) {
	const (
		seed           = uint64(9)
		trials         = 5
		pointsPerTrial = 50
	)
	cfg := testConfig()
	for _, workers := range resumeWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseline, err := RunPoints(cfg, pointsPerTrial, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "points.jsonl")
			out, err := RunPointsCheckpoint(context.Background(), path, cfg, pointsPerTrial, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, baseline) {
				t.Errorf("checkpointed outcome differs from RunPoints:\n got %+v\nwant %+v", out, baseline)
			}
			// Resume over the full journal: no recomputation, same result.
			again, err := RunPointsCheckpoint(context.Background(), path, cfg, pointsPerTrial, trials, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, baseline) {
				t.Error("outcome from fully-journaled run differs")
			}
		})
	}
}

// TestTrialPanicSurfacesAsPanicError is the experiment-level guarantee:
// a panicking trial aborts the run with a structured *sweep.PanicError
// carrying the trial index — the process does not crash — at every
// tested worker count.
func TestTrialPanicSurfacesAsPanicError(t *testing.T) {
	const badTrial = 3
	for _, workers := range resumeWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Run(42, 8, workers, func(trial int, r *rng.PCG) (int, error) {
				if trial == badTrial {
					panic("injected trial panic")
				}
				return trial, nil
			})
			var pe *sweep.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *sweep.PanicError, got %v", err)
			}
			if pe.Item != badTrial {
				t.Errorf("PanicError.Item = %d, want %d", pe.Item, badTrial)
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError.Stack empty")
			}
		})
	}
}
