package experiment

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fullview/internal/rng"
	"fullview/internal/sweep"
)

// ErrTransient marks an error as transient: a trial failing with an
// error wrapping ErrTransient is eligible for retry under the default
// RetryPolicy. Wrap with Transient or fmt.Errorf("...: %w", ErrTransient).
var ErrTransient = errors.New("transient")

// Transient marks err as transient for retry classification. A nil err
// stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// RetryPolicy bounds how trial errors are retried: at most MaxAttempts
// attempts per trial with exponential backoff capped at MaxDelay, all
// inside the deadline of the context threaded through RunContext /
// RunRetry. The zero value retries nothing.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per trial (first run
	// included); values ≤ 1 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// further retry. Zero means no waiting between attempts.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Retryable classifies errors. nil selects the default: retry only
	// errors marked with ErrTransient. Panics (surfaced as
	// *sweep.PanicError) and context cancellation are never retried,
	// regardless of this predicate.
	Retryable func(error) bool
}

// retryable applies the policy's classifier with the non-negotiable
// exclusions: programming errors (panics) and cancellation.
func (p RetryPolicy) retryable(err error) bool {
	var pe *sweep.PanicError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return errors.Is(err, ErrTransient)
}

// backoff returns the capped exponential delay before retry attempt
// `retry` (0-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 0; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// WithRetry wraps a trial function so transient failures are retried
// under the policy. Every retry re-runs the trial on a freshly
// reconstructed (seed, trial) RNG stream — the generator handed to the
// failed attempt is partially consumed — so a retry that succeeds
// produces exactly the result an untroubled first attempt would have.
// Backoff waits respect ctx: once the context is cancelled or its
// deadline passes, the wrapper returns the last trial error joined with
// ctx.Err() instead of waiting further.
//
// Panics are NOT retried: they escape to the sweep engine, which
// converts them into a *sweep.PanicError and aborts the run.
func WithRetry[T any](ctx context.Context, policy RetryPolicy, seed uint64, fn TrialFunc[T]) TrialFunc[T] {
	if policy.MaxAttempts <= 1 {
		return fn
	}
	return func(trial int, r *rng.PCG) (T, error) {
		out, err := fn(trial, r)
		for retry := 0; err != nil && retry < policy.MaxAttempts-1; retry++ {
			if !policy.retryable(err) {
				return out, err
			}
			if waitErr := sleepContext(ctx, policy.backoff(retry)); waitErr != nil {
				return out, fmt.Errorf("experiment: retry abandoned: %w", errors.Join(err, waitErr))
			}
			out, err = fn(trial, rng.New(seed, uint64(trial)))
		}
		if err != nil {
			return out, fmt.Errorf("experiment: after %d attempts: %w", policy.MaxAttempts, err)
		}
		return out, nil
	}
}

// sleepContext waits for d or until ctx is done, whichever is first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// RunRetry is RunContext with bounded per-trial retries: fn is wrapped
// with WithRetry under the policy, and the context's deadline bounds
// both trial execution and backoff waits.
func RunRetry[T any](
	ctx context.Context,
	policy RetryPolicy,
	seed uint64,
	trials, parallelism int,
	fn TrialFunc[T],
) ([]T, error) {
	return RunContext(ctx, seed, trials, parallelism, WithRetry(ctx, policy, seed, fn))
}
