package experiment

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/analytic"
	"fullview/internal/sensor"
)

func testProfile(t *testing.T) sensor.Profile {
	t.Helper()
	p, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := Config{N: 100, Theta: math.Pi / 4, Profile: testProfile(t)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{name: "tiny n", mutate: func(c *Config) { c.N = 1 }, wantErr: ErrBadN},
		{name: "zero theta", mutate: func(c *Config) { c.Theta = 0 }, wantErr: ErrBadTheta},
		{name: "theta above pi", mutate: func(c *Config) { c.Theta = 4 }, wantErr: ErrBadTheta},
		{name: "bad scheme", mutate: func(c *Config) { c.Deployment = Deployment(99) }, wantErr: ErrBadDeployment},
		{name: "empty profile", mutate: func(c *Config) { c.Profile = sensor.Profile{} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeploymentString(t *testing.T) {
	if DeployUniform.String() != "uniform" || DeployPoisson.String() != "poisson" {
		t.Error("Deployment String() values changed")
	}
	if Deployment(42).String() == "" {
		t.Error("unknown deployment should still print")
	}
}

func TestRunGridDeterministic(t *testing.T) {
	cfg := Config{N: 100, Theta: math.Pi / 2, Profile: testProfile(t)}
	a, err := RunGrid(cfg, 10, 8, 4, 2024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrid(cfg, 10, 8, 1, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if a.AllNecessary.Successes() != b.AllNecessary.Successes() ||
		a.NecessaryFraction.Mean != b.NecessaryFraction.Mean {
		t.Error("grid outcome differs across parallelism")
	}
}

func TestRunGridOrderingInvariants(t *testing.T) {
	cfg := Config{N: 200, Theta: math.Pi / 3, Profile: testProfile(t)}
	out, err := RunGrid(cfg, 12, 10, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trials != 10 {
		t.Fatalf("Trials = %d", out.Trials)
	}
	// sufficient ⊆ full-view ⊆ necessary holds per point, hence for
	// "all points" events and for mean fractions.
	if out.AllSufficient.Successes() > out.AllFullView.Successes() ||
		out.AllFullView.Successes() > out.AllNecessary.Successes() {
		t.Errorf("event ordering violated: %d/%d/%d",
			out.AllSufficient.Successes(), out.AllFullView.Successes(), out.AllNecessary.Successes())
	}
	if out.SufficientFraction.Mean > out.FullViewFraction.Mean+1e-12 ||
		out.FullViewFraction.Mean > out.NecessaryFraction.Mean+1e-12 {
		t.Errorf("fraction ordering violated: %v/%v/%v",
			out.SufficientFraction.Mean, out.FullViewFraction.Mean, out.NecessaryFraction.Mean)
	}
}

func TestRunGridDenseDefault(t *testing.T) {
	cfg := Config{N: 50, Theta: math.Pi / 2, Profile: testProfile(t)}
	if _, err := RunGrid(cfg, 0, 2, 0, 1); err != nil {
		t.Fatalf("dense-grid default failed: %v", err)
	}
}

func TestRunGridInvalidConfig(t *testing.T) {
	cfg := Config{N: 1, Theta: math.Pi / 2, Profile: testProfile(t)}
	if _, err := RunGrid(cfg, 10, 2, 0, 1); !errors.Is(err, ErrBadN) {
		t.Errorf("error = %v, want ErrBadN", err)
	}
}

func TestRunPointsMatchesAnalyticUniform(t *testing.T) {
	// E10 in miniature: empirical point-failure frequency vs Eq. (2).
	prof := testProfile(t)
	cfg := Config{N: 300, Theta: math.Pi / 2, Profile: prof}
	out, err := RunPoints(cfg, 40, 150, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	fail, err := analytic.UniformNecessaryFailure(prof, 300, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Necessary.Fraction()
	want := 1 - fail
	// 6000 pooled points; allow a loose tolerance (sector-correlation at
	// finite n plus Monte-Carlo noise).
	if math.Abs(got-want) > 0.03 {
		t.Errorf("necessary fraction = %v, analytic %v", got, want)
	}
}

func TestRunPointsPoissonMatchesTheorem(t *testing.T) {
	prof := testProfile(t)
	theta := math.Pi / 2
	cfg := Config{N: 300, Theta: theta, Profile: prof, Deployment: DeployPoisson}
	out, err := RunPoints(cfg, 40, 150, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := analytic.PoissonPN(prof, 300, theta)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := analytic.PoissonPS(prof, 300, theta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Necessary.Fraction()-pn) > 0.03 {
		t.Errorf("P_N: simulated %v vs analytic %v", out.Necessary.Fraction(), pn)
	}
	if math.Abs(out.Sufficient.Fraction()-ps) > 0.03 {
		t.Errorf("P_S: simulated %v vs analytic %v", out.Sufficient.Fraction(), ps)
	}
}

func TestRunPointsContingencyConsistency(t *testing.T) {
	cfg := Config{N: 150, Theta: math.Pi / 3, Profile: testProfile(t)}
	out, err := RunPoints(cfg, 50, 40, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// necessary ≥ fullView ≥ sufficient; gap counters consistent.
	if out.FullView.Successes() > out.Necessary.Successes() {
		t.Error("full-view exceeds necessary")
	}
	if out.Sufficient.Successes() > out.FullView.Successes() {
		t.Error("sufficient exceeds full-view")
	}
	if got, want := out.NecessaryNotFullView.Successes(), out.Necessary.Successes()-out.FullView.Successes(); got != want {
		t.Errorf("necessary-not-fullview = %d, want %d", got, want)
	}
	if got, want := out.FullViewNotSufficient.Successes(), out.FullView.Successes()-out.Sufficient.Successes(); got != want {
		t.Errorf("fullview-not-sufficient = %d, want %d", got, want)
	}
	if out.CoveringCount.N != 50*40 {
		t.Errorf("covering sample size = %d", out.CoveringCount.N)
	}
}

func TestRunPointsExpectedCoverage(t *testing.T) {
	// Mean covering count ≈ n·s_c (Section VI-A).
	prof := testProfile(t)
	cfg := Config{N: 500, Theta: math.Pi / 2, Profile: prof}
	out, err := RunPoints(cfg, 30, 80, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.ExpectedCoverageCount(prof, 500)
	if math.Abs(out.CoveringCount.Mean-want) > 0.08*want {
		t.Errorf("mean covering = %v, want ≈ %v", out.CoveringCount.Mean, want)
	}
}

func TestRunPointsKTarget(t *testing.T) {
	// With an exact-divisor θ the necessary condition forces ⌈π/θ⌉
	// distinct covering cameras, so necessary points ⊆ k-covered points.
	theta := math.Pi / 4
	cfg := Config{
		N: 200, Theta: theta, Profile: testProfile(t),
		KTarget: analytic.KNecessary(theta),
	}
	out, err := RunPoints(cfg, 50, 40, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	if out.KCovered.Total() == 0 {
		t.Fatal("KTarget set but KCovered not populated")
	}
	if out.KCovered.Successes() < out.Necessary.Successes() {
		t.Errorf("k-covered (%d) below necessary (%d): necessary must imply k-coverage",
			out.KCovered.Successes(), out.Necessary.Successes())
	}

	// KTarget disabled leaves the counter empty.
	cfg.KTarget = 0
	out, err = RunPoints(cfg, 10, 5, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	if out.KCovered.Total() != 0 {
		t.Error("KTarget=0 should leave KCovered empty")
	}
}

func TestRunPointsValidation(t *testing.T) {
	cfg := Config{N: 100, Theta: math.Pi / 2, Profile: testProfile(t)}
	if _, err := RunPoints(cfg, 0, 10, 0, 1); !errors.Is(err, ErrBadPoints) {
		t.Errorf("error = %v, want ErrBadPoints", err)
	}
	bad := cfg
	bad.Theta = -1
	if _, err := RunPoints(bad, 10, 10, 0, 1); !errors.Is(err, ErrBadTheta) {
		t.Errorf("error = %v, want ErrBadTheta", err)
	}
}
