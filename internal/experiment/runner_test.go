package experiment

import (
	"errors"
	"testing"

	"fullview/internal/rng"
)

func TestRunReturnsResultsInOrder(t *testing.T) {
	results, err := Run(1, 100, 8, func(trial int, _ *rng.PCG) (int, error) {
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 100 {
		t.Fatalf("len = %d", len(results))
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	fn := func(_ int, r *rng.PCG) (float64, error) {
		return r.Float64(), nil
	}
	serial, err := Run(42, 64, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(42, 64, 16, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

func TestRunDistinctTrialStreams(t *testing.T) {
	results, err := Run(7, 50, 4, func(_ int, r *rng.PCG) (uint64, error) {
		return r.Uint64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, len(results))
	for _, v := range results {
		if seen[v] {
			t.Fatalf("duplicate first draw %v across trials", v)
		}
		seen[v] = true
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(1, 100, 4, func(trial int, _ *rng.PCG) (int, error) {
		if trial == 13 {
			return 0, sentinel
		}
		return trial, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want wrapped sentinel", err)
	}
}

func TestRunRejectsBadTrialCount(t *testing.T) {
	for _, trials := range []int{0, -5} {
		if _, err := Run(1, trials, 1, func(int, *rng.PCG) (int, error) { return 0, nil }); !errors.Is(err, ErrBadTrials) {
			t.Errorf("trials=%d: error = %v, want ErrBadTrials", trials, err)
		}
	}
}

func TestRunParallelismAboveTrials(t *testing.T) {
	results, err := Run(1, 3, 64, func(trial int, _ *rng.PCG) (int, error) {
		return trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] != 0 || results[2] != 2 {
		t.Errorf("results = %v", results)
	}
}
