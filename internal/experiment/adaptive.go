package experiment

import (
	"errors"
	"fmt"

	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/stats"
)

// Target selects which per-point probability an adaptive estimate
// measures.
type Target int

// Estimation targets.
const (
	// TargetFullView estimates P(point is full-view covered).
	TargetFullView Target = iota + 1
	// TargetNecessary estimates P(point meets the necessary condition).
	TargetNecessary
	// TargetSufficient estimates P(point meets the sufficient condition).
	TargetSufficient
)

// String implements fmt.Stringer.
func (t Target) String() string {
	switch t {
	case TargetFullView:
		return "full-view"
	case TargetNecessary:
		return "necessary"
	case TargetSufficient:
		return "sufficient"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// Estimation errors.
var (
	ErrBadTarget    = errors.New("experiment: unknown estimation target")
	ErrBadPrecision = errors.New("experiment: precision must be in (0, 0.5)")
	ErrBadBudget    = errors.New("experiment: sample budget must be positive")
)

// Estimate is an adaptively sampled probability with its confidence
// interval.
type Estimate struct {
	// Fraction is the point estimate.
	Fraction float64
	// Lo and Hi bound the 95% Wilson interval.
	Lo, Hi float64
	// Samples is the number of points evaluated.
	Samples int
	// Batches is the number of network realizations drawn.
	Batches int
	// Converged reports whether the precision target was met within the
	// budget.
	Converged bool
}

// EstimateProbability estimates the target probability for cfg by
// sequential sampling: batches of batchPoints random points on fresh
// network realizations, stopping as soon as the 95% Wilson interval
// half-width drops below precision or the sample budget is exhausted.
// Unlike a fixed-trial run it spends exactly as much work as the
// requested precision needs — cheap at extreme probabilities, thorough
// near 1/2.
func EstimateProbability(
	cfg Config,
	target Target,
	precision float64,
	batchPoints, maxSamples int,
	seed uint64,
) (Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return Estimate{}, err
	}
	if target != TargetFullView && target != TargetNecessary && target != TargetSufficient {
		return Estimate{}, fmt.Errorf("%w: %v", ErrBadTarget, target)
	}
	if !(precision > 0) || precision >= 0.5 {
		return Estimate{}, fmt.Errorf("%w: got %v", ErrBadPrecision, precision)
	}
	if batchPoints <= 0 || maxSamples <= 0 {
		return Estimate{}, fmt.Errorf("%w: batch=%d max=%d", ErrBadBudget, batchPoints, maxSamples)
	}
	cfg = cfg.withDefaults()

	var counter stats.Counter
	est := Estimate{}
	for est.Samples < maxSamples {
		r := rng.New(seed, uint64(est.Batches))
		net, err := cfg.deployNetwork(r)
		if err != nil {
			return Estimate{}, err
		}
		checker, err := core.NewChecker(net, cfg.Theta)
		if err != nil {
			return Estimate{}, err
		}
		side := cfg.Torus.Side()
		for i := 0; i < batchPoints && est.Samples < maxSamples; i++ {
			p := geom.V(r.Float64()*side, r.Float64()*side)
			var hit bool
			switch target {
			case TargetFullView:
				hit = checker.FullViewCovered(p)
			case TargetNecessary:
				hit = checker.MeetsNecessary(p)
			case TargetSufficient:
				hit = checker.MeetsSufficient(p)
			}
			counter.Add(hit)
			est.Samples++
		}
		est.Batches++

		lo, hi := counter.Wilson95()
		est.Fraction, est.Lo, est.Hi = counter.Fraction(), lo, hi
		if (hi-lo)/2 <= precision {
			est.Converged = true
			break
		}
	}
	return est, nil
}
