package experiment

import (
	"context"
	"fmt"
	"strings"

	"fullview/internal/checkpoint"
	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/numeric"
	"fullview/internal/rng"
	"fullview/internal/stats"
	"fullview/internal/sweep"
)

// ErrBadThetas reports an empty effective-angle list.
var ErrBadThetas = fmt.Errorf("experiment: thetas list must be non-empty")

// pointThetaCounts is one θ's share of a fused multi-θ trial. The
// θ-independent quantities (covering counts, k-coverage) live on the
// trial itself.
type pointThetaCounts struct {
	Necessary            int `json:"nec"`
	Sufficient           int `json:"suf"`
	FullView             int `json:"fv"`
	NecessaryNotFullView int `json:"necNotFv"`
	FullViewNotSuf       int `json:"fvNotSuf"`
}

func (c *pointThetaCounts) add(other pointThetaCounts) {
	c.Necessary += other.Necessary
	c.Sufficient += other.Sufficient
	c.FullView += other.FullView
	c.NecessaryNotFullView += other.NecessaryNotFullView
	c.FullViewNotSuf += other.FullViewNotSuf
}

// pointsThetasTrial is one trial's aggregate of the fused experiment:
// per-θ condition counts plus the shared (θ-independent) covering
// series. All fields round-trip through encoding/json exactly, so
// completed trials can be journaled by the checkpoint layer.
type pointsThetasTrial struct {
	PerTheta []pointThetaCounts `json:"perTheta"`
	KCovered int                `json:"kCov"`
	Covering []float64          `json:"covering"`
}

// pointsThetasTrialFunc returns the per-trial function of the fused
// experiment: deploy one network, draw the sample points, and diagnose
// every θ of the list from a single candidate gather per point
// (core.MultiChecker).
func pointsThetasTrialFunc(cfg Config, thetas []float64, pointsPerTrial, trials, parallelism int) TrialFunc[pointsThetasTrial] {
	return func(_ int, r *rng.PCG) (pointsThetasTrial, error) {
		net, err := cfg.deployNetwork(r)
		if err != nil {
			return pointsThetasTrial{}, err
		}
		checker, err := core.NewMultiChecker(net, thetas)
		if err != nil {
			return pointsThetasTrial{}, err
		}
		// Same RNG discipline as pointTrialFunc: all sample points drawn
		// up front, so the trial's random sequence — and therefore its
		// deployments and points — is identical to a single-θ RunPoints
		// trial, making outcome k bit-identical to RunPoints at θ_k.
		side := cfg.Torus.Side()
		points := make([]geom.Vec, pointsPerTrial)
		for i := range points {
			points[i] = geom.V(r.Float64()*side, r.Float64()*side)
		}
		// The batch kernel (EvaluateBatch) reports points in batch order
		// with verdicts bit-identical to Evaluate, so the fold below — and
		// therefore every trial aggregate — matches the point-at-a-time
		// sweep exactly while amortising the spatial gather per batch.
		return sweep.RunBatch(context.Background(), points, sweepWorkers(trials, parallelism),
			func() (*core.MultiChecker, error) { return checker.Clone(), nil },
			func(worker *core.MultiChecker, acc pointsThetasTrial, _ int, pts []geom.Vec) pointsThetasTrial {
				if acc.PerTheta == nil {
					acc.PerTheta = make([]pointThetaCounts, len(thetas))
				}
				worker.EvaluateBatch(pts, func(_ int, rep core.MultiReport) {
					for k, v := range rep.PerTheta {
						t := &acc.PerTheta[k]
						if v.Necessary {
							t.Necessary++
							if !v.FullView {
								t.NecessaryNotFullView++
							}
						}
						if v.FullView {
							t.FullView++
							if !v.Sufficient {
								t.FullViewNotSuf++
							}
						}
						if v.Sufficient {
							t.Sufficient++
						}
					}
					if cfg.KTarget > 0 && rep.NumCovering >= cfg.KTarget {
						acc.KCovered++
					}
					acc.Covering = append(acc.Covering, float64(rep.NumCovering))
				})
				return acc
			},
			func(dst, src pointsThetasTrial) pointsThetasTrial {
				if dst.PerTheta == nil {
					dst.PerTheta = make([]pointThetaCounts, len(thetas))
				}
				for k := range src.PerTheta {
					dst.PerTheta[k].add(src.PerTheta[k])
				}
				dst.KCovered += src.KCovered
				dst.Covering = append(dst.Covering, src.Covering...)
				return dst
			})
	}
}

// aggregatePointsThetas pools per-trial counts into one PointOutcome per
// θ. The covering-count summary and k-coverage counter are θ-independent
// and shared across the outcomes.
func aggregatePointsThetas(cfg Config, thetas []float64, results []pointsThetasTrial, pointsPerTrial int) ([]PointOutcome, error) {
	var covering []float64
	for _, tr := range results {
		covering = append(covering, tr.Covering...)
	}
	summary := stats.Summarize(covering)
	ctx := fmt.Sprintf("multi-θ point experiment, %d trials × %d points × %d thetas",
		len(results), pointsPerTrial, len(thetas))
	if err := numeric.CheckAll(ctx,
		"CoveringCount.Mean", summary.Mean,
		"CoveringCount.Variance", summary.Variance,
	); err != nil {
		return nil, err
	}
	outs := make([]PointOutcome, len(thetas))
	for k := range thetas {
		out := &outs[k]
		for _, tr := range results {
			if k >= len(tr.PerTheta) {
				return nil, fmt.Errorf("experiment: trial journal has %d thetas, want %d (stale checkpoint?)",
					len(tr.PerTheta), len(thetas))
			}
			c := tr.PerTheta[k]
			out.Necessary.AddN(c.Necessary, pointsPerTrial)
			out.Sufficient.AddN(c.Sufficient, pointsPerTrial)
			out.FullView.AddN(c.FullView, pointsPerTrial)
			out.NecessaryNotFullView.AddN(c.NecessaryNotFullView, pointsPerTrial)
			out.FullViewNotSufficient.AddN(c.FullViewNotSuf, pointsPerTrial)
			if cfg.KTarget > 0 {
				out.KCovered.AddN(tr.KCovered, pointsPerTrial)
			}
		}
		out.CoveringCount = summary
	}
	return outs, nil
}

// validatePointsThetas validates the shared arguments of the fused
// runners. cfg.Theta is ignored: the explicit list governs.
func validatePointsThetas(cfg Config, thetas []float64, pointsPerTrial int) (Config, error) {
	if len(thetas) == 0 {
		return cfg, ErrBadThetas
	}
	for _, theta := range thetas {
		probe := cfg
		probe.Theta = theta
		if err := probe.Validate(); err != nil {
			return cfg, err
		}
	}
	cfg.Theta = thetas[0]
	return validatePoints(cfg, pointsPerTrial)
}

// formatThetas renders the θ-list for checkpoint fingerprints.
func formatThetas(thetas []float64) string {
	parts := make([]string, len(thetas))
	for i, theta := range thetas {
		parts[i] = fmt.Sprintf("%.17g", theta)
	}
	return strings.Join(parts, ",")
}

// RunPointsThetas executes the point experiment for a whole list of
// effective angles at once: each trial deploys a single network, draws a
// single set of sample points, and diagnoses every θ from one candidate
// gather per point. Outcome k is bit-identical to what RunPoints would
// return with cfg.Theta = thetas[k] (the trial RNG sequence does not
// depend on θ), at a fraction of the deployment and gather cost.
// cfg.Theta is ignored.
func RunPointsThetas(cfg Config, thetas []float64, pointsPerTrial, trials, parallelism int, seed uint64) ([]PointOutcome, error) {
	cfg, err := validatePointsThetas(cfg, thetas, pointsPerTrial)
	if err != nil {
		return nil, err
	}
	results, err := Run(seed, trials, parallelism, pointsThetasTrialFunc(cfg, thetas, pointsPerTrial, trials, parallelism))
	if err != nil {
		return nil, fmt.Errorf("multi-θ point experiment: %w", err)
	}
	return aggregatePointsThetas(cfg, thetas, results, pointsPerTrial)
}

// RunPointsThetasCheckpoint is RunPointsThetas with checkpoint/resume
// via a journal at journalPath; see RunGridCheckpoint for the resume
// contract. The journal header fingerprints the full θ-list, so a
// journal written for a different list fails loudly instead of mixing
// results.
func RunPointsThetasCheckpoint(
	ctx context.Context,
	journalPath string,
	cfg Config,
	thetas []float64,
	pointsPerTrial, trials, parallelism int,
	seed uint64,
) ([]PointOutcome, error) {
	cfg, err := validatePointsThetas(cfg, thetas, pointsPerTrial)
	if err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadTrials, trials)
	}
	journal, err := checkpoint.Open(journalPath, checkpoint.Header{
		Kind:   "experiment/point-thetas",
		Seed:   seed,
		Trials: trials,
		Params: fmt.Sprintf("%s points=%d thetas=%s", cfg.fingerprint(), pointsPerTrial, formatThetas(thetas)),
	})
	if err != nil {
		return nil, err
	}
	defer journal.Close()
	results, err := RunResumable(ctx, journal, seed, trials, parallelism,
		pointsThetasTrialFunc(cfg, thetas, pointsPerTrial, trials, parallelism))
	if err != nil {
		return nil, fmt.Errorf("multi-θ point experiment: %w", err)
	}
	return aggregatePointsThetas(cfg, thetas, results, pointsPerTrial)
}
