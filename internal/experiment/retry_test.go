package experiment

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fullview/internal/rng"
	"fullview/internal/sweep"
)

// flakyOnce fails each listed trial's first attempt with a transient
// error and succeeds afterwards.
type flakyOnce struct {
	mu     sync.Mutex
	failed map[int]bool
	calls  map[int]int
}

func newFlakyOnce() *flakyOnce {
	return &flakyOnce{failed: make(map[int]bool), calls: make(map[int]int)}
}

func (f *flakyOnce) fn(failTrials map[int]bool) TrialFunc[syntheticTrial] {
	return func(trial int, r *rng.PCG) (syntheticTrial, error) {
		f.mu.Lock()
		f.calls[trial]++
		shouldFail := failTrials[trial] && !f.failed[trial]
		if shouldFail {
			f.failed[trial] = true
		}
		f.mu.Unlock()
		if shouldFail {
			return syntheticTrial{}, Transient(errors.New("simulated I/O blip"))
		}
		return syntheticFn(trial, r)
	}
}

func TestRunRetryRecoversTransient(t *testing.T) {
	const seed, trials = uint64(5), 12
	baseline, err := Run(seed, trials, 2, syntheticFn)
	if err != nil {
		t.Fatal(err)
	}
	flaky := newFlakyOnce()
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	results, err := RunRetry(context.Background(), policy, seed, trials, 2,
		flaky.fn(map[int]bool{2: true, 7: true}))
	if err != nil {
		t.Fatal(err)
	}
	// Retries replay the exact (seed, i) stream, so recovered trials are
	// bit-identical to never-failed ones.
	if !reflect.DeepEqual(results, baseline) {
		t.Error("retried results differ from clean run")
	}
	if flaky.calls[2] != 2 || flaky.calls[7] != 2 {
		t.Errorf("calls = %v, want exactly one retry for trials 2 and 7", flaky.calls)
	}
}

func TestRunRetryNonTransientFailsFast(t *testing.T) {
	hard := errors.New("hard failure")
	calls := 0
	policy := RetryPolicy{MaxAttempts: 5}
	_, err := RunRetry(context.Background(), policy, 1, 1, 1,
		func(trial int, r *rng.PCG) (int, error) {
			calls++
			return 0, hard
		})
	if !errors.Is(err, hard) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("non-transient error retried %d times", calls-1)
	}
}

func TestRunRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	policy := RetryPolicy{MaxAttempts: 3}
	_, err := RunRetry(context.Background(), policy, 1, 1, 1,
		func(trial int, r *rng.PCG) (int, error) {
			calls++
			return 0, Transient(errors.New("always down"))
		})
	if err == nil {
		t.Fatal("exhausted retries returned nil error")
	}
	if calls != 3 {
		t.Errorf("calls = %d, want MaxAttempts = 3", calls)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error lacks attempt count: %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("underlying transient cause lost: %v", err)
	}
}

func TestRunRetryHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	policy := RetryPolicy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond}
	start := time.Now()
	_, err := RunRetry(ctx, policy, 1, 1, 1,
		func(trial int, r *rng.PCG) (int, error) {
			return 0, Transient(errors.New("always down"))
		})
	if err == nil {
		t.Fatal("deadline-bounded retries returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ignored deadline, ran %v", elapsed)
	}
}

func TestRetryNeverRetriesPanics(t *testing.T) {
	calls := 0
	policy := RetryPolicy{MaxAttempts: 5, Retryable: func(error) bool { return true }}
	_, err := RunRetry(context.Background(), policy, 1, 2, 1,
		func(trial int, r *rng.PCG) (int, error) {
			if trial == 1 {
				calls++
				panic("poisoned trial")
			}
			return trial, nil
		})
	var pe *sweep.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *sweep.PanicError, got %v", err)
	}
	if calls != 1 {
		t.Errorf("panicking trial ran %d times, want 1", calls)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for retry, w := range want {
		if got := p.backoff(retry); got != w {
			t.Errorf("backoff(%d) = %v, want %v", retry, got, w)
		}
	}
	if got := (RetryPolicy{}).backoff(3); got != 0 {
		t.Errorf("zero-policy backoff = %v", got)
	}
	// Uncapped growth must not overflow into negative durations for sane
	// retry counts.
	uncapped := RetryPolicy{BaseDelay: time.Second}
	if got := uncapped.backoff(10); got != 1024*time.Second {
		t.Errorf("uncapped backoff(10) = %v", got)
	}
}

func TestWithRetryDisabled(t *testing.T) {
	fn := func(trial int, r *rng.PCG) (int, error) { return trial, nil }
	if got := WithRetry(context.Background(), RetryPolicy{}, 1, fn); reflect.ValueOf(got).Pointer() != reflect.ValueOf(fn).Pointer() {
		t.Error("MaxAttempts ≤ 1 should return fn unchanged")
	}
}
