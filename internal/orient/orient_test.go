package orient

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestOptimizeValidation(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(net, 0, 10, 5); !errors.Is(err, ErrBadTheta) {
		t.Errorf("error = %v, want ErrBadTheta", err)
	}
	if _, err := Optimize(net, math.Pi/4, 0, 5); !errors.Is(err, ErrBadProbes) {
		t.Errorf("error = %v, want ErrBadProbes", err)
	}
	if _, err := Optimize(net, math.Pi/4, 10, 0); !errors.Is(err, ErrBadBudget) {
		t.Errorf("error = %v, want ErrBadBudget", err)
	}
}

func TestOptimizeEmptyNetwork(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(net, math.Pi/4, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 || res.Before != 0 || res.After != 0 {
		t.Errorf("empty network result = %+v", res)
	}
}

// TestOptimizeFixesDeliberatelyBadAiming is the package's core promise:
// cameras placed perfectly but aimed away from the target point get
// re-aimed to cover it.
func TestOptimizeFixesDeliberatelyBadAiming(t *testing.T) {
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 2
	// Four cameras at the cardinal points around p, all facing AWAY.
	var cams []sensor.Camera
	for i := 0; i < 4; i++ {
		bearing := float64(i) * math.Pi / 2
		cams = append(cams, sensor.Camera{
			Pos:      geom.UnitTorus.Translate(p, geom.FromPolar(0.08, bearing)),
			Orient:   bearing, // pointing outward
			Radius:   0.25,
			Aperture: math.Pi / 2,
		})
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	before, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	if before.FullViewCovered(p) {
		t.Fatal("test setup: p should start uncovered")
	}

	// A probe grid fine enough that the eligible central cluster
	// dominates the greedy potential (see package doc: the optimizer is
	// a heuristic and needs probes where coverage is winnable).
	res, err := Optimize(net, theta, 21, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Fatal("optimizer made no moves on an obviously fixable layout")
	}
	if res.After <= res.Before {
		t.Fatalf("no improvement: before %d after %d", res.Before, res.After)
	}
	after, err := core.NewChecker(res.Network, theta)
	if err != nil {
		t.Fatal(err)
	}
	if !after.FullViewCovered(p) {
		t.Error("optimizer failed to cover the central point")
	}
}

func TestOptimizeNeverDecreasesScore(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		net, err := deploy.Uniform(geom.UnitTorus, profile, 80, rng.New(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(net, math.Pi/3, 12, 15)
		if err != nil {
			t.Fatal(err)
		}
		if res.After < res.Before {
			t.Errorf("seed %d: score decreased %d → %d", seed, res.Before, res.After)
		}
		if res.ImprovedFraction() < 0 {
			t.Errorf("seed %d: negative improvement fraction", seed)
		}
	}
}

func TestOptimizePreservesEverythingButOrientation(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 50, rng.New(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(net, math.Pi/3, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Len() != net.Len() {
		t.Fatalf("camera count changed: %d → %d", net.Len(), res.Network.Len())
	}
	for i := 0; i < net.Len(); i++ {
		a, b := net.Camera(i), res.Network.Camera(i)
		if a.Pos != b.Pos || a.Radius != b.Radius || a.Aperture != b.Aperture || a.Group != b.Group {
			t.Fatalf("camera %d changed beyond orientation: %+v → %+v", i, a, b)
		}
	}
}

func TestOptimizeScoreMatchesIndependentChecker(t *testing.T) {
	// The incremental scorer must agree with the reference checker on
	// the final configuration.
	profile, err := sensor.Homogeneous(0.25, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 60, rng.New(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 3
	const side = 13
	res, err := Optimize(net, theta, side, 25)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(res.Network, theta)
	if err != nil {
		t.Fatal(err)
	}
	probes, err := deploy.GridPoints(geom.UnitTorus, side)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, p := range probes {
		if checker.FullViewCovered(p) {
			covered++
		}
	}
	if covered != res.After {
		t.Errorf("incremental score %d, reference checker %d", res.After, covered)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 60, rng.New(13, 0))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Optimize(net, math.Pi/3, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(net, math.Pi/3, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.After != b.After || a.Moves != b.Moves {
		t.Error("optimizer not deterministic")
	}
	for i := 0; i < a.Network.Len(); i++ {
		if a.Network.Camera(i).Orient != b.Network.Camera(i).Orient {
			t.Fatalf("orientations differ at %d", i)
		}
	}
}

func TestOptimizeBudgetRespected(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 100, rng.New(17, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(net, math.Pi/3, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 3 {
		t.Errorf("Moves = %d exceeds budget 3", res.Moves)
	}
}
