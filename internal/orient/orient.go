// Package orient optimizes camera *orientations* for full-view coverage
// when positions are already fixed. The paper's model freezes each
// orientation at deployment time and draws it uniformly at random; when
// an installer gets one chance to aim the cameras before walking away
// (positions dictated by mounting points, drops, or a prior random
// deployment), a good aiming pass recovers a large part of the coverage
// that randomness wastes.
//
// The optimizer is a deterministic greedy local search over probe
// points: each step re-aims the camera whose new orientation most
// increases the number of full-view-covered probes, until a local
// optimum or the move budget. Scoring is incremental — re-aiming a
// camera can only change probes within its sensing radius, and a
// camera's *viewed direction* at a probe depends on its position alone,
// so candidates are evaluated by toggling set membership rather than
// rebuilding the network.
package orient

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrBadTheta  = errors.New("orient: effective angle θ must be in (0, π]")
	ErrBadProbes = errors.New("orient: probe grid side must be positive")
	ErrBadBudget = errors.New("orient: move budget must be positive")
)

// candidateResolution buckets candidate orientations to 2π/64 ≈ 5.6° so
// aiming at many nearby probes doesn't multiply near-identical
// candidates.
const candidateResolution = 64

// Result reports an optimization run.
type Result struct {
	// Network carries the optimized orientations.
	Network *sensor.Network
	// Moves is the number of re-aimings applied.
	Moves int
	// Before and After are the covered probe counts at start and end.
	Before, After int
	// Probes is the number of probe points scored against.
	Probes int
}

// ImprovedFraction returns the coverage gain as a fraction of probes.
func (r Result) ImprovedFraction() float64 {
	if r.Probes == 0 {
		return 0
	}
	return float64(r.After-r.Before) / float64(r.Probes)
}

// camReach is one in-range probe as seen from a camera.
type camReach struct {
	probe   int
	fromCam float64 // direction camera→probe
}

// probeReach is one in-range camera as seen from a probe.
type probeReach struct {
	cam      int
	beta     float64 // viewed direction P→S
	fromCam  float64 // direction camera→probe
	halfAper float64
}

// state is the incremental scoring structure.
type state struct {
	theta     float64
	sectors   []geom.Sector // anchored 2θ partition for the potential
	cameras   []sensor.Camera
	perCamera [][]camReach
	perProbe  [][]probeReach
	betaBuf   []float64
	covered   []bool
	eligible  []bool // probe can possibly be full-view covered
	potential []int  // occupied 2θ sectors per eligible probe
	score     int
}

func newState(t geom.Torus, cameras []sensor.Camera, probes []geom.Vec, theta float64) (*state, error) {
	sectors, err := geom.AnchoredPartition(2 * theta)
	if err != nil {
		return nil, err
	}
	s := &state{
		theta:     theta,
		sectors:   sectors,
		cameras:   cameras,
		perCamera: make([][]camReach, len(cameras)),
		perProbe:  make([][]probeReach, len(probes)),
		covered:   make([]bool, len(probes)),
		eligible:  make([]bool, len(probes)),
		potential: make([]int, len(probes)),
	}
	for ci, cam := range cameras {
		r2 := cam.Radius * cam.Radius
		for pi, p := range probes {
			d := t.Delta(cam.Pos, p)
			if d.Norm2() > r2 {
				continue
			}
			s.perCamera[ci] = append(s.perCamera[ci], camReach{probe: pi, fromCam: d.Angle()})
			s.perProbe[pi] = append(s.perProbe[pi], probeReach{
				cam:      ci,
				beta:     t.Delta(p, cam.Pos).Angle(),
				fromCam:  d.Angle(),
				halfAper: cam.Aperture / 2,
			})
		}
	}
	// A probe is eligible for the potential only if enough cameras are
	// in range that full-view coverage is possible at all: a single beta
	// leaves a 2π gap, so θ < π needs at least two cameras. Potential
	// spent on hopeless probes would cancel genuine progress elsewhere.
	minCams := 2
	if theta >= math.Pi {
		minCams = 1
	}
	for pi := range probes {
		s.eligible[pi] = len(s.perProbe[pi]) >= minCams
		s.covered[pi], s.potential[pi] = s.probeState(pi, -1, 0)
		if s.covered[pi] {
			s.score++
		}
	}
	return s, nil
}

// probeState recomputes full-view coverage and the sector-occupancy
// potential of probe pi, with camera overrideCam (when ≥ 0)
// hypothetically aimed at overrideOrient.
func (s *state) probeState(pi, overrideCam int, overrideOrient float64) (covered bool, potential int) {
	betas := s.betaBuf[:0]
	for _, pr := range s.perProbe[pi] {
		orient := s.cameras[pr.cam].Orient
		if pr.cam == overrideCam {
			orient = overrideOrient
		}
		if geom.AngularDistance(pr.fromCam, orient) <= pr.halfAper {
			betas = append(betas, pr.beta)
		}
	}
	s.betaBuf = betas
	if len(betas) == 0 {
		return false, 0
	}
	for _, sec := range s.sectors {
		for _, b := range betas {
			if sec.Contains(b) {
				potential++
				break
			}
		}
	}
	gap, _ := geom.MaxCircularGap(betas)
	return gap <= 2*s.theta, potential
}

// gain returns the coverage delta of aiming camera ci at orient, plus
// the secondary objective: the change in total sector-occupancy
// potential across affected probes. Full-view coverage often needs two
// coordinated aims (cameras on opposite sides of a point); the potential
// rewards each aim separately, letting the greedy search climb through
// the zero-primary plateau between them.
func (s *state) gain(ci int, orient float64) (primary, potential int) {
	for _, cr := range s.perCamera[ci] {
		wasCovered, wasPot := s.covered[cr.probe], s.potential[cr.probe]
		isCovered, isPot := s.probeState(cr.probe, ci, orient)
		if isCovered && !wasCovered {
			primary++
		} else if !isCovered && wasCovered {
			primary--
		}
		if s.eligible[cr.probe] {
			potential += isPot - wasPot
		}
	}
	return primary, potential
}

// apply re-aims camera ci and refreshes affected probes.
func (s *state) apply(ci int, orient float64) {
	s.cameras[ci].Orient = orient
	for _, cr := range s.perCamera[ci] {
		covered, pot := s.probeState(cr.probe, -1, 0)
		if covered != s.covered[cr.probe] {
			s.covered[cr.probe] = covered
			if covered {
				s.score++
			} else {
				s.score--
			}
		}
		s.potential[cr.probe] = pot
	}
}

// candidates proposes orientations for camera ci: the bearing of each
// in-range probe, bucketed to candidateResolution.
func (s *state) candidates(ci int) []float64 {
	seen := make(map[int]bool, candidateResolution)
	var out []float64
	for _, cr := range s.perCamera[ci] {
		bucket := int(cr.fromCam / geom.TwoPi * candidateResolution)
		if bucket >= candidateResolution {
			bucket = candidateResolution - 1
		}
		if !seen[bucket] {
			seen[bucket] = true
			out = append(out, cr.fromCam)
		}
	}
	return out
}

// Optimize re-aims the network's cameras to maximize the number of
// full-view-covered points on a probeSide×probeSide grid, applying at
// most budget re-aimings. Positions, radii, and apertures never change;
// the result is deterministic for a given input.
func Optimize(net *sensor.Network, theta float64, probeSide, budget int) (Result, error) {
	if !(theta > 0) || theta > math.Pi {
		return Result{}, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if probeSide <= 0 {
		return Result{}, fmt.Errorf("%w: got %d", ErrBadProbes, probeSide)
	}
	if budget <= 0 {
		return Result{}, fmt.Errorf("%w: got %d", ErrBadBudget, budget)
	}
	t := net.Torus()
	probes, err := deploy.GridPoints(t, probeSide)
	if err != nil {
		return Result{}, err
	}
	st, err := newState(t, net.Cameras(), probes, theta)
	if err != nil {
		return Result{}, err
	}
	res := Result{Before: st.score, After: st.score, Probes: len(probes)}

	for move := 0; move < budget; move++ {
		bestPrimary, bestPotential, bestCam, bestOrient := 0, 0, -1, 0.0
		for ci := range st.cameras {
			for _, cand := range st.candidates(ci) {
				if geom.AngularDistance(cand, st.cameras[ci].Orient) < 1e-9 {
					continue
				}
				primary, potential := st.gain(ci, cand)
				better := primary > bestPrimary ||
					(primary == bestPrimary && potential > bestPotential)
				if better && (primary > 0 || (primary == 0 && potential > 0)) {
					bestPrimary, bestPotential, bestCam, bestOrient = primary, potential, ci, cand
				}
			}
		}
		if bestCam < 0 {
			break // local optimum under both objectives
		}
		st.apply(bestCam, bestOrient)
		res.Moves++
		res.After = st.score
	}

	optimized, err := sensor.NewNetwork(t, st.cameras)
	if err != nil {
		return Result{}, err
	}
	res.Network = optimized
	return res, nil
}
