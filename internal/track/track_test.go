package track

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestNewTrajectoryValidation(t *testing.T) {
	if _, err := NewTrajectory(geom.V(0, 0)); !errors.Is(err, ErrTooFewWaypoints) {
		t.Errorf("error = %v, want ErrTooFewWaypoints", err)
	}
	if _, err := NewTrajectory(geom.V(0.5, 0.5), geom.V(0.5, 0.5)); !errors.Is(err, ErrZeroLength) {
		t.Errorf("error = %v, want ErrZeroLength", err)
	}
	if _, err := NewTrajectory(geom.V(0, 0), geom.V(1, 1)); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
}

func TestTrajectoryLength(t *testing.T) {
	tr, err := NewTrajectory(geom.V(0, 0), geom.V(0.3, 0), geom.V(0.3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Length(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Length = %v, want 0.7", got)
	}
}

func TestSamplesFacingFollowsMotion(t *testing.T) {
	// East leg then north leg: facing must flip from 0 to π/2 at the turn.
	tr, err := NewTrajectory(geom.V(0.1, 0.1), geom.V(0.5, 0.1), geom.V(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	samples, err := tr.Samples(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range samples {
		switch {
		case s.Dist < 0.4-1e-9:
			if geom.AngularDistance(s.Facing, 0) > 1e-9 {
				t.Fatalf("east leg facing = %v at dist %v", s.Facing, s.Dist)
			}
		case s.Dist > 0.4+1e-9:
			if geom.AngularDistance(s.Facing, math.Pi/2) > 1e-9 {
				t.Fatalf("north leg facing = %v at dist %v", s.Facing, s.Dist)
			}
		}
	}
	lastSample := samples[len(samples)-1]
	if math.Abs(lastSample.Dist-0.8) > 1e-9 {
		t.Errorf("final Dist = %v, want 0.8", lastSample.Dist)
	}
}

func TestSamplesStepValidation(t *testing.T) {
	tr, err := NewTrajectory(geom.V(0, 0), geom.V(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []float64{0, -0.1, math.NaN()} {
		if _, err := tr.Samples(step); !errors.Is(err, ErrBadStep) {
			t.Errorf("step %v: error = %v, want ErrBadStep", step, err)
		}
	}
}

func TestSamplesSkipZeroLengthSegments(t *testing.T) {
	tr, err := NewTrajectory(geom.V(0, 0), geom.V(0, 0), geom.V(0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	samples, err := tr.Samples(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Pos == samples[i-1].Pos {
			t.Fatalf("duplicate consecutive sample at %d", i)
		}
	}
}

func checkerWith(t *testing.T, cams []sensor.Camera, theta float64) *core.Checker {
	t.Helper()
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunHeadOnCameraCaptures(t *testing.T) {
	// Target walks east along y=0.5; a camera ahead of it looking west
	// sees it frontally the whole way (within its range).
	cam := sensor.Camera{
		Pos:      geom.V(0.6, 0.5),
		Orient:   math.Pi,
		Radius:   0.3,
		Aperture: math.Pi / 2,
	}
	checker := checkerWith(t, []sensor.Camera{cam}, math.Pi/4)
	tr, err := NewTrajectory(geom.V(0.35, 0.5), geom.V(0.55, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(checker, tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if report.CapturedFraction != 1 {
		t.Errorf("head-on capture fraction = %v, want 1", report.CapturedFraction)
	}
	if report.LongestGap != 0 {
		t.Errorf("LongestGap = %v, want 0", report.LongestGap)
	}
	for _, c := range report.Captures {
		if c.BestAngle > 1e-9 {
			t.Errorf("BestAngle = %v at %v, want ≈ 0 (camera dead ahead)", c.BestAngle, c.Pos)
		}
	}
}

func TestRunCameraBehindDoesNotCapture(t *testing.T) {
	// Same camera, but the target walks *away* from it: the camera sees
	// only the target's back.
	cam := sensor.Camera{
		Pos:      geom.V(0.3, 0.5),
		Orient:   0,
		Radius:   0.3,
		Aperture: math.Pi / 2,
	}
	checker := checkerWith(t, []sensor.Camera{cam}, math.Pi/4)
	tr, err := NewTrajectory(geom.V(0.35, 0.5), geom.V(0.55, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(checker, tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if report.CapturedFraction != 0 {
		t.Errorf("behind-only capture fraction = %v, want 0", report.CapturedFraction)
	}
	if math.Abs(report.LongestGap-tr.Length()) > 1e-9 {
		t.Errorf("LongestGap = %v, want full length %v", report.LongestGap, tr.Length())
	}
}

func TestRunGapAccounting(t *testing.T) {
	// Frontal camera covering only the middle third of an eastward walk.
	cam := sensor.Camera{
		Pos:      geom.V(0.5, 0.5),
		Orient:   math.Pi,
		Radius:   0.1,
		Aperture: math.Pi,
	}
	checker := checkerWith(t, []sensor.Camera{cam}, math.Pi/4)
	tr, err := NewTrajectory(geom.V(0.1, 0.5), geom.V(0.49, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(checker, tr, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if report.CapturedFraction <= 0 || report.CapturedFraction >= 1 {
		t.Fatalf("capture fraction = %v, want partial", report.CapturedFraction)
	}
	// The uncovered prefix is [0.1, 0.4) → gap ≈ 0.3.
	if math.Abs(report.LongestGap-0.3) > 0.05 {
		t.Errorf("LongestGap = %v, want ≈ 0.3", report.LongestGap)
	}
}

// TestFullViewRegionCapturesEveryTrajectory is the paper's core promise
// in motion: inside a full-view covered region, every trajectory gets a
// frontal capture at every sample, whatever direction it moves.
func TestFullViewRegionCapturesEveryTrajectory(t *testing.T) {
	profile, err := sensor.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 3000, rng.New(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 2
	checker, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the region really is fully covered first.
	grid, err := deploy.GridPoints(geom.UnitTorus, 20)
	if err != nil {
		t.Fatal(err)
	}
	if stats := checker.SurveyRegion(grid); !stats.AllFullView() {
		t.Skip("random network did not fully cover; cannot exercise the guarantee")
	}
	r := rng.New(4, 0)
	for trial := 0; trial < 10; trial++ {
		tr, err := NewTrajectory(
			geom.V(r.Float64(), r.Float64()),
			geom.V(r.Float64(), r.Float64()),
			geom.V(r.Float64(), r.Float64()),
		)
		if err != nil {
			continue // coincident random points; astronomically rare
		}
		report, err := Run(checker, tr, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if report.CapturedFraction != 1 {
			t.Errorf("trial %d: captured %.3f of a trajectory inside a full-view region",
				trial, report.CapturedFraction)
		}
	}
}
