// Package track simulates moving targets through a camera network and
// measures *frontal capture*: the paper's motivation is that a
// recognition system needs an image taken within θ of the object's
// facing direction, and a moving object faces its direction of travel.
// Full-view coverage guarantees capture everywhere; this package
// measures what actually happens along concrete trajectories, including
// where coverage falls short.
package track

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrTooFewWaypoints = errors.New("track: trajectory needs at least two waypoints")
	ErrBadStep         = errors.New("track: sample step must be positive")
	ErrZeroLength      = errors.New("track: trajectory has zero length")
)

// Trajectory is a polyline path through the region. The target moves
// along it facing its direction of travel; waypoints are planar (the
// path itself does not wrap) while sampled positions are evaluated on
// the torus.
type Trajectory struct {
	waypoints []geom.Vec
}

// NewTrajectory builds a trajectory from at least two waypoints.
func NewTrajectory(waypoints ...geom.Vec) (Trajectory, error) {
	if len(waypoints) < 2 {
		return Trajectory{}, fmt.Errorf("%w: got %d", ErrTooFewWaypoints, len(waypoints))
	}
	length := 0.0
	for i := 1; i < len(waypoints); i++ {
		length += waypoints[i].Sub(waypoints[i-1]).Norm()
	}
	if length == 0 {
		return Trajectory{}, ErrZeroLength
	}
	pts := make([]geom.Vec, len(waypoints))
	copy(pts, waypoints)
	return Trajectory{waypoints: pts}, nil
}

// Length returns the total path length.
func (tr Trajectory) Length() float64 {
	length := 0.0
	for i := 1; i < len(tr.waypoints); i++ {
		length += tr.waypoints[i].Sub(tr.waypoints[i-1]).Norm()
	}
	return length
}

// Sample is one moment of the target's motion.
type Sample struct {
	// Pos is the target position.
	Pos geom.Vec
	// Facing is the direction of travel (the facing direction d⃗).
	Facing float64
	// Dist is the arc-length from the start of the trajectory.
	Dist float64
}

// Samples walks the trajectory at arc-length intervals of at most step,
// including segment endpoints. Zero-length segments are skipped.
func (tr Trajectory) Samples(step float64) ([]Sample, error) {
	if !(step > 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBadStep, step)
	}
	var out []Sample
	travelled := 0.0
	for i := 1; i < len(tr.waypoints); i++ {
		a, b := tr.waypoints[i-1], tr.waypoints[i]
		seg := b.Sub(a)
		segLen := seg.Norm()
		if segLen == 0 {
			continue
		}
		facing := seg.Angle()
		steps := int(math.Ceil(segLen / step))
		from := 0
		if len(out) > 0 {
			from = 1 // avoid duplicating the shared waypoint
		}
		for s := from; s <= steps; s++ {
			frac := float64(s) / float64(steps)
			out = append(out, Sample{
				Pos:    a.Add(seg.Scale(frac)),
				Facing: facing,
				Dist:   travelled + frac*segLen,
			})
		}
		travelled += segLen
	}
	return out, nil
}

// Capture is the capture verdict at one sample.
type Capture struct {
	Sample
	// Captured reports whether some camera covers the target from
	// within θ of its facing direction — a recognisable frontal shot.
	Captured bool
	// BestAngle is the smallest angle between the facing direction and
	// any covering camera's viewed direction (π when nothing covers the
	// target).
	BestAngle float64
}

// Report summarizes a tracking run.
type Report struct {
	// Captures holds the per-sample verdicts in path order.
	Captures []Capture
	// CapturedFraction is the fraction of samples with a frontal shot.
	CapturedFraction float64
	// LongestGap is the longest arc-length stretch with no frontal
	// capture.
	LongestGap float64
}

// Run walks the trajectory through the checker's network and reports
// where the target's face was captured. The checker's θ defines
// "frontal enough".
func Run(checker *core.Checker, tr Trajectory, step float64) (Report, error) {
	samples, err := tr.Samples(step)
	if err != nil {
		return Report{}, err
	}
	t := checker.Index().Torus()
	report := Report{Captures: make([]Capture, 0, len(samples))}
	captured := 0

	gapStart := -1.0
	flushGap := func(end float64) {
		if gapStart >= 0 {
			if g := end - gapStart; g > report.LongestGap {
				report.LongestGap = g
			}
			gapStart = -1
		}
	}
	for _, s := range samples {
		pos := t.Wrap(s.Pos)
		best := math.Pi
		checker.Index().ForEachCovering(pos, func(cam *sensor.Camera) {
			if d := geom.AngularDistance(cam.ViewedDirection(t, pos), s.Facing); d < best {
				best = d
			}
		})
		c := Capture{
			Sample:    s,
			Captured:  best <= checker.Theta(),
			BestAngle: best,
		}
		if c.Captured {
			captured++
			flushGap(s.Dist)
		} else if gapStart < 0 {
			gapStart = s.Dist
		}
		report.Captures = append(report.Captures, c)
	}
	flushGap(tr.Length())
	if len(samples) > 0 {
		report.CapturedFraction = float64(captured) / float64(len(samples))
	}
	return report, nil
}
