package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fullview/internal/telemetry"
)

// RouterConfig parameterises NewRouter. Zero fields fall back to the
// documented defaults.
type RouterConfig struct {
	// Peers is the cluster membership (required).
	Peers *Peers
	// RegisterKey computes the deployment id a POST /v1/deployments
	// body would be assigned, so registrations route to the owner that
	// will journal them. Required: without it the router cannot place
	// registrations (server.DeploymentIDFromRequest is the production
	// implementation).
	RegisterKey func(body []byte) (string, error)
	// MaxBodyBytes caps forwarded request bodies (default 8 MiB,
	// matching the replica default).
	MaxBodyBytes int64
	// Retries is the total number of attempts per forward, including
	// the first (default 3).
	Retries int
	// BackoffBase and BackoffCap bound the jittered exponential backoff
	// between attempts when the shard gave no Retry-After (defaults
	// 50ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// ReadyTimeout bounds each per-shard /readyz probe during
	// aggregation (default 2s).
	ReadyTimeout time.Duration
	// ReadyCacheTTL is how long an aggregated /readyz answer is reused
	// before shards are probed again, so a tight readiness poller (a
	// load balancer, an orchestrator, several of each) cannot amplify
	// its poll rate onto every shard. Default 1s; negative disables
	// caching.
	ReadyCacheTTL time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// shard's circuit breaker (default 5); BreakerCooldown is how long
	// a tripped breaker rejects before admitting a half-open probe
	// (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client is the HTTP client used to reach shards (default: a
	// dedicated client with no overall timeout — surveys are long-lived
	// and the replicas enforce their own deadlines).
	Client *http.Client
	// Logger receives operational log lines; nil discards them.
	Logger *log.Logger
}

// Router is the thin stateless fvcd routing tier: it owns no journal,
// no cache, and no compute — it derives the owning shard of every
// request from the consistent-hash ring and forwards, with bounded
// retries, jittered backoff, and the shard's Retry-After honoured
// between attempts. Run any number of router processes behind one
// address; they are interchangeable.
//
// Routed endpoints (everything a client of a single fvcd uses):
//
//	POST   /v1/deployments              → owner of the body's fingerprint
//	GET    /v1/deployments/{id}         → owner of id
//	PATCH  /v1/deployments/{id}         → owner of id
//	POST   /v1/deployments/{id}/query   → owner of id
//	POST   /v1/deployments/{id}/survey  → owner of id
//	POST   /v1/jobs                     → owner of the body's deployment
//	GET    /v1/jobs/{id}                → located by scatter (job ids are shard-local)
//	DELETE /v1/jobs/{id}                → located by scatter
//	GET    /v1/jobs/{id}/events         → located by scatter, then streamed
//	GET    /readyz                      → per-shard aggregation (starting/ok/degraded rollup)
//	GET    /healthz                     → the router's own liveness
//	GET    /metrics                     → the router's own cluster telemetry
//
// Shard observability endpoints (/metrics, /debug/pprof) are reached
// directly on each replica, not through the router.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	order  []Member // scatter order: members sorted by name
	client *http.Client

	reg       *telemetry.Registry
	forwards  map[string]*telemetry.Counter   // by shard
	errs      map[string]*telemetry.Counter   // by shard
	latency   map[string]*telemetry.Histogram // by shard
	retries   *telemetry.Counter
	failovers *telemetry.Counter

	// breakers holds one circuit breaker per shard; breaker outcomes
	// are fed by every forward attempt (whatever the endpoint), and
	// consulted to fast-fail writes and steer reads around dead owners.
	breakers map[string]*Breaker

	// readyMu guards the cached /readyz aggregation.
	readyMu      sync.Mutex
	readyCached  []shardReady
	readyProbeAt time.Time

	mux *http.ServeMux
}

// NewRouter builds the routing tier from a membership.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Peers == nil {
		return nil, errors.New("cluster: router needs peers")
	}
	if cfg.RegisterKey == nil {
		return nil, errors.New("cluster: router needs a RegisterKey function")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = time.Second
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 2 * time.Second
	}
	if cfg.ReadyCacheTTL == 0 {
		cfg.ReadyCacheTTL = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	ring, err := cfg.Peers.Ring()
	if err != nil {
		return nil, err
	}
	order := append([]Member(nil), cfg.Peers.Members...)
	sort.Slice(order, func(i, j int) bool { return order[i].Name < order[j].Name })

	rt := &Router{
		cfg:      cfg,
		ring:     ring,
		order:    order,
		client:   cfg.Client,
		reg:      telemetry.New(),
		forwards: make(map[string]*telemetry.Counter),
		errs:     make(map[string]*telemetry.Counter),
		latency:  make(map[string]*telemetry.Histogram),
		breakers: make(map[string]*Breaker),
	}
	for _, m := range order {
		b := NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		rt.breakers[m.Name] = b
		rt.reg.GaugeFunc("fvcd_breaker_state",
			"Per-shard circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 { return float64(b.State()) },
			telemetry.L("shard", m.Name))
		rt.forwards[m.Name] = rt.reg.Counter("fvcd_cluster_forwards_total",
			"Requests forwarded to a shard (attempts, including retries).",
			telemetry.L("shard", m.Name))
		rt.errs[m.Name] = rt.reg.Counter("fvcd_cluster_shard_errors_total",
			"Forward attempts that failed: transport errors plus retryable 429/5xx shard answers.",
			telemetry.L("shard", m.Name))
		rt.latency[m.Name] = rt.reg.Histogram("fvcd_cluster_forward_duration_ns",
			"Per-attempt forward latency in nanoseconds by shard.",
			nil, telemetry.L("shard", m.Name))
	}
	rt.retries = rt.reg.Counter("fvcd_cluster_retries_total",
		"Forward attempts that were retried after a failure.")
	rt.failovers = rt.reg.Counter("fvcd_cluster_failover_reads_total",
		"Read requests served by a ring-successor replica because the owner was tripped or unreachable.")
	rt.mux = rt.routes()
	return rt, nil
}

// Registry returns the router's metrics registry (for embedding more
// series next to the cluster ones).
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Ring returns the router's placement ring (shared; read-only).
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/deployments", rt.handleRegister)
	mux.HandleFunc("GET /v1/deployments/{id}", rt.handleReadByID)
	mux.HandleFunc("PATCH /v1/deployments/{id}", rt.handleByID)
	mux.HandleFunc("POST /v1/deployments/{id}/query", rt.handleReadByID)
	mux.HandleFunc("POST /v1/deployments/{id}/survey", rt.handleReadByID)
	mux.HandleFunc("POST /v1/jobs", rt.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobScatter)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJobScatter)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJobEvents)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "shards": rt.ring.N()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rt.reg.WritePrometheus(w)
	})
	return mux
}

// handleRegister routes a registration by computing the deployment id
// it would be assigned — the same fingerprint the owning shard will
// compute — so a registration always lands on the shard that owns its
// id.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		return
	}
	key, err := rt.cfg.RegisterKey(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.forward(w, r, rt.ring.Owner(key), body)
}

// handleByID routes a deployment-scoped *write* by its path id. Writes
// go to the owner and only the owner — mutations have a single writer
// per id, which is what makes version-ordered anti-entropy repair
// sound — so a dead owner means 503 + Retry-After, never a silent
// second writer.
func (rt *Router) handleByID(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		return
	}
	rt.forward(w, r, rt.ring.Owner(r.PathValue("id")), body)
}

// handleReadByID routes a deployment-scoped *read* (inspect, query,
// survey) with failover: reads only need a mirrored copy of the
// journal, so when the owner is tripped or unreachable the request
// walks the id's ring-successor sequence instead of failing.
func (rt *Router) handleReadByID(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		return
	}
	rt.forwardRead(w, r, r.PathValue("id"), body)
}

// handleJobSubmit routes a job submission by the deployment it names,
// so a job runs on the shard that owns (and has journaled) its
// deployment.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		return
	}
	key, err := jobDeployment(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.forward(w, r, rt.ring.Owner(key), body)
}

// handleJobScatter locates a job by trying every shard: job ids are
// generated by the shard that accepted the submission, so the router
// holds no id→shard map (it is stateless by design). Shards answer 404
// for ids they do not know; the first non-404 answer is authoritative.
// The scatter order is deterministic (members by name) so repeated
// polls of one id trace the same path.
func (rt *Router) handleJobScatter(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(w, r)
	if err != nil {
		return
	}
	shard, found := rt.locateJob(r.Context(), r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no shard knows job %s", r.PathValue("id")))
		return
	}
	rt.forward(w, r, shard, body)
}

// handleJobEvents locates the job's shard, then proxies the SSE stream
// without buffering or retries — a live stream cannot be replayed.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	shard, found := rt.locateJob(r.Context(), r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no shard knows job %s", r.PathValue("id")))
		return
	}
	base, _ := rt.cfg.Peers.URL(shard)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+r.URL.RequestURI(), nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	rt.forwards[shard].Inc()
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.errs[shard].Inc()
		rt.unavailable(w, fmt.Sprintf("shard %s: %v", shard, err))
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 4<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// locateJob probes shards (GET /v1/jobs/{id}) in scatter order and
// returns the first one that does not answer 404. Unreachable shards
// are skipped: a job on a live shard is still found, and an id whose
// only possible home is down reports not-found (the client retries and
// finds it once the shard is back).
func (rt *Router) locateJob(ctx context.Context, id string) (shard string, found bool) {
	for _, m := range rt.order {
		probe, err := http.NewRequestWithContext(ctx, http.MethodGet,
			strings.TrimRight(m.URL, "/")+"/v1/jobs/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(probe)
		if err != nil {
			rt.errs[m.Name].Inc()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			return m.Name, true
		}
	}
	return "", false
}

// readBody slurps the request body under the size cap. The body must
// be buffered before forwarding: the key may come from it, and a retry
// must resend it.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte cap", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return nil, err
	}
	return body, nil
}

// retryableStatus reports the shard answers worth a router-side retry:
// load shedding and transient upstream failures. 504 is deliberately
// excluded — an expired survey deadline will expire again; the shard's
// answer (which carries the retry-as-job hint) goes back to the
// client.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// forward sends the request to the named shard with bounded retries.
// Transport errors and retryable shard answers (429/502/503) back off
// — honouring the shard's Retry-After when one was sent, jittered
// exponential growth otherwise — and try again; any other answer is
// relayed verbatim. When every attempt fails at the transport the
// router answers 503 with its own jittered Retry-After, so clients of
// the cluster see the same shedding contract as clients of one
// replica.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, shard string, body []byte) {
	base, ok := rt.cfg.Peers.URL(shard)
	if !ok {
		// Unreachable by construction: Owner only returns ring members.
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("no url for shard %s", shard))
		return
	}
	url := base + r.URL.RequestURI()
	b := rt.breakers[shard]
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Retries; attempt++ {
		if !b.Allow() {
			// Tripped before the first attempt, or mid-loop by this
			// request's own failures: fail fast with the shedding
			// contract instead of burning the remaining retries.
			msg := fmt.Sprintf("shard %s circuit open", shard)
			if lastErr != nil {
				msg += ": " + lastErr.Error()
			}
			rt.unavailable(w, msg)
			return
		}
		if attempt > 0 {
			rt.retries.Inc()
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
		if err != nil {
			b.Release() // not the shard's fault; don't leak a probe slot
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		t0 := time.Now()
		rt.forwards[shard].Inc()
		resp, err := rt.client.Do(req)
		rt.latency[shard].ObserveSince(t0)
		if err != nil {
			b.Failure()
			rt.errs[shard].Inc()
			lastErr = err
			rt.logf("forward %s %s to %s: %v", r.Method, r.URL.Path, shard, err)
			if r.Context().Err() != nil {
				return // client is gone; nobody is listening for a reply
			}
			rt.sleep(r.Context(), rt.backoff(attempt, ""))
			continue
		}
		rt.breakerObserve(b, resp.StatusCode)
		if retryableStatus(resp.StatusCode) && attempt < rt.cfg.Retries-1 {
			rt.errs[shard].Inc()
			retryAfter := resp.Header.Get("Retry-After")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered %d", shard, resp.StatusCode)
			rt.sleep(r.Context(), rt.backoff(attempt, retryAfter))
			continue
		}
		defer resp.Body.Close()
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	rt.unavailable(w, fmt.Sprintf("shard %s unavailable after %d attempts: %v",
		shard, rt.cfg.Retries, lastErr))
}

// breakerObserve feeds an HTTP answer's status into a shard's breaker.
// Only 502/503 count as failures — those are "the shard (or its
// upstream) is down" answers. Everything else, including 429 (alive
// and load-shedding) and 5xx application errors, proves the shard is
// reachable and resets the consecutive-failure count.
func (rt *Router) breakerObserve(b *Breaker, code int) {
	if code == http.StatusBadGateway || code == http.StatusServiceUnavailable {
		b.Failure()
	} else {
		b.Success()
	}
}

// forwardRead serves a deployment read with failover: it walks the
// id's ring sequence (owner first, then each successor in the order
// that would inherit the id), one attempt per shard, and relays the
// first real answer. Shards whose breaker is open are skipped without
// an attempt; transport errors and 502/503 feed the breaker and move
// on; a 404 is remembered and the walk continues, because a replica
// that missed the id's mirror records answers 404 while a later
// successor may hold the copy — only when every reachable shard says
// 404 is the last one relayed as the cluster's answer. When nothing is
// reachable at all the router sheds with its own 503 + Retry-After.
//
// Reads never retry one shard (forward's job); redundancy, not
// repetition, is the availability mechanism here.
func (rt *Router) forwardRead(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	seq := rt.ring.Sequence(key)
	var lastErr error
	var notFound *http.Response
	var notFoundBody []byte
	for i, shard := range seq {
		b := rt.breakers[shard]
		if !b.Allow() {
			lastErr = fmt.Errorf("shard %s circuit open", shard)
			continue
		}
		base, ok := rt.cfg.Peers.URL(shard)
		if !ok {
			b.Release()
			continue
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), rd)
		if err != nil {
			b.Release() // not the shard's fault; don't leak a probe slot
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		t0 := time.Now()
		rt.forwards[shard].Inc()
		resp, err := rt.client.Do(req)
		rt.latency[shard].ObserveSince(t0)
		if err != nil {
			b.Failure()
			rt.errs[shard].Inc()
			lastErr = err
			rt.logf("read %s %s via %s: %v", r.Method, r.URL.Path, shard, err)
			if r.Context().Err() != nil {
				return // client is gone
			}
			continue
		}
		rt.breakerObserve(b, resp.StatusCode)
		switch {
		case resp.StatusCode == http.StatusNotFound:
			notFoundBody, _ = io.ReadAll(resp.Body)
			resp.Body.Close()
			notFound = resp
			lastErr = fmt.Errorf("shard %s answered 404", shard)
			continue
		case retryableStatus(resp.StatusCode):
			rt.errs[shard].Inc()
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("shard %s answered %d", shard, resp.StatusCode)
			continue
		}
		defer resp.Body.Close()
		if i > 0 {
			rt.failovers.Inc()
			rt.logf("read %s %s failed over to %s", r.Method, r.URL.Path, shard)
		}
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	if notFound != nil {
		copyHeader(w.Header(), notFound.Header)
		w.WriteHeader(http.StatusNotFound)
		w.Write(notFoundBody)
		return
	}
	rt.unavailable(w, fmt.Sprintf("no shard could serve the read (%d tried): %v", len(seq), lastErr))
}

// unavailable answers the router's own 503 with the cluster-uniform
// jittered Retry-After.
func (rt *Router) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterValue())
	writeError(w, http.StatusServiceUnavailable, msg)
}

// backoff computes the wait before the next attempt: the shard's
// Retry-After verbatim when it sent one (fractional seconds, matching
// the replicas' jittered contract), otherwise capped exponential
// growth with ±50% jitter.
func (rt *Router) backoff(attempt int, retryAfter string) time.Duration {
	if s, err := strconv.ParseFloat(strings.TrimSpace(retryAfter), 64); err == nil && s >= 0 {
		return time.Duration(s * float64(time.Second))
	}
	d := rt.cfg.BackoffBase << attempt
	if d > rt.cfg.BackoffCap {
		d = rt.cfg.BackoffCap
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// sleep waits for d or until ctx is cancelled.
func (rt *Router) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Readiness rollup states. ReadyOK/ReadyStarting/ReadyDegraded mirror
// the per-replica states; ReadyDown is the router-only state for a
// cluster with no reachable shard.
const (
	ReadyOK       = "ok"
	ReadyStarting = "starting"
	ReadyDegraded = "degraded"
	ReadyDown     = "down"
)

// shardReady is one shard's readiness as seen by the router.
type shardReady struct {
	Name   string `json:"name"`
	URL    string `json:"url"`
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// handleReadyz aggregates every shard's /readyz into one cluster
// verdict:
//
//	starting — any shard is still replaying its journal (503: hold
//	           traffic until the whole ring answers from warm state)
//	down     — no shard is reachable (503)
//	degraded — some shard is degraded or unreachable (200: the cluster
//	           still serves, with the failing shards named)
//	ok       — every shard is ok (200)
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	shards := rt.cachedShards(r.Context())
	rollup := ReadyOK
	reachable := 0
	for _, s := range shards {
		switch s.Status {
		case ReadyStarting:
			rollup = ReadyStarting
		case ReadyDegraded, "unreachable":
			if rollup == ReadyOK {
				rollup = ReadyDegraded
			}
		}
		if s.Status != "unreachable" {
			reachable++
		}
	}
	if reachable == 0 {
		rollup = ReadyDown
	}
	code := http.StatusOK
	if rollup == ReadyStarting || rollup == ReadyDown {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": rollup, "shards": shards})
}

// cachedShards returns the shard readiness set, reusing the previous
// probe while it is younger than ReadyCacheTTL. Readiness is polled by
// load balancers and orchestrators, often several at once and often
// sub-second; without the cache every poller's every hit fans out to
// every shard, so the cluster's probe load would be pollers × shards ×
// rate. The cache bounds it to shards per TTL regardless of poller
// count. Probes are serialized under the lock — one slow shard delays
// concurrent /readyz callers rather than multiplying onto the fleet.
func (rt *Router) cachedShards(ctx context.Context) []shardReady {
	if rt.cfg.ReadyCacheTTL < 0 {
		return rt.probeShards(ctx)
	}
	rt.readyMu.Lock()
	defer rt.readyMu.Unlock()
	if rt.readyCached != nil && time.Since(rt.readyProbeAt) < rt.cfg.ReadyCacheTTL {
		return rt.readyCached
	}
	// Probe detached from the triggering caller's context: the result is
	// served to every poller for a whole TTL, so one caller arriving with
	// a cancelled or nearly-expired context must not poison the shared
	// cache with failed probes. probeShards bounds each probe with
	// ReadyTimeout on its own.
	rt.readyCached = rt.probeShards(context.Background())
	rt.readyProbeAt = time.Now()
	return rt.readyCached
}

// probeShards fetches every member's /readyz concurrently.
func (rt *Router) probeShards(ctx context.Context) []shardReady {
	out := make([]shardReady, len(rt.order))
	var wg sync.WaitGroup
	for i, m := range rt.order {
		out[i] = shardReady{Name: m.Name, URL: strings.TrimRight(m.URL, "/")}
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ReadyTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, out[i].URL+"/readyz", nil)
			if err != nil {
				out[i].Status, out[i].Reason = "unreachable", err.Error()
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.errs[m.Name].Inc()
				out[i].Status, out[i].Reason = "unreachable", err.Error()
				return
			}
			defer resp.Body.Close()
			var body struct {
				Status string `json:"status"`
				Reason string `json:"reason"`
			}
			if err := readJSON(resp.Body, &body); err != nil || body.Status == "" {
				out[i].Status, out[i].Reason = "unreachable", "unparseable /readyz answer"
				return
			}
			out[i].Status, out[i].Reason = body.Status, body.Reason
		}(i, m)
	}
	wg.Wait()
	return out
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf(format, args...)
	}
}

// retryAfterValue mirrors the replicas' Retry-After contract: 1 second
// ±20% jitter, formatted as fractional seconds.
func retryAfterValue() string {
	v := 1 + 0.2*(2*rand.Float64()-1)
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// hopHeaders are the per-connection headers stripped when relaying a
// shard response (RFC 9110 §7.6.1).
var hopHeaders = map[string]bool{
	"Connection":        true,
	"Keep-Alive":        true,
	"Transfer-Encoding": true,
	"Upgrade":           true,
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopHeaders[k] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// jobDeployment extracts the deployment id a job submission names.
// Only that one field is examined — full validation is the owning
// shard's job.
func jobDeployment(body []byte) (string, error) {
	var req struct {
		Deployment string `json:"deployment"`
	}
	if err := readJSON(bytes.NewReader(body), &req); err != nil {
		return "", fmt.Errorf("malformed job submission: %v", err)
	}
	if req.Deployment == "" {
		return "", errors.New("job submission names no deployment")
	}
	return req.Deployment, nil
}

func readJSON(r io.Reader, v any) error {
	return jsonDecode(r, v)
}
