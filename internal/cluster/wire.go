package cluster

import (
	"encoding/json"
	"io"
	"net/http"
)

// errorResponse mirrors the replica error body so router-originated
// errors are indistinguishable in shape from shard-originated ones.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// jsonDecode decodes exactly one JSON document from r. Unknown fields
// are tolerated: the router must keep routing bodies whose schema is
// newer than it is.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
