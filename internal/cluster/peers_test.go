package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodPeers = `{
  "virtualNodes": 64,
  "members": [
    {"name": "a", "url": "http://127.0.0.1:8081"},
    {"name": "b", "url": "http://127.0.0.1:8082/"},
    {"name": "c", "url": "https://fvcd-c.internal:443"}
  ]
}`

func TestParsePeers(t *testing.T) {
	p, err := ParsePeers([]byte(goodPeers))
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(p.Members) != 3 || p.VirtualNodes != 64 {
		t.Fatalf("parsed %d members, vnodes %d; want 3, 64", len(p.Members), p.VirtualNodes)
	}
	if u, ok := p.URL("b"); !ok || u != "http://127.0.0.1:8082" {
		t.Fatalf("URL(b) = %q, %v; want trailing slash trimmed", u, ok)
	}
	if !p.Has("c") || p.Has("router") {
		t.Fatal("Has misreports membership")
	}
	others := p.Others("b")
	if len(others) != 2 || others[0].Name != "a" || others[1].Name != "c" {
		t.Fatalf("Others(b) = %v", others)
	}
	r, err := p.Ring()
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if r.N() != 3 || r.VirtualNodes() != 64 {
		t.Fatalf("ring has %d members, %d vnodes", r.N(), r.VirtualNodes())
	}
}

func TestParsePeersRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"members":[{"name":"a","url":"http://h"}],"vnodes":7}`,
		"trailing data":  `{"members":[{"name":"a","url":"http://h"}]} {}`,
		"no members":     `{"members":[]}`,
		"negative vn":    `{"virtualNodes":-1,"members":[{"name":"a","url":"http://h"}]}`,
		"empty name":     `{"members":[{"name":"","url":"http://h"}]}`,
		"duplicate name": `{"members":[{"name":"a","url":"http://h1"},{"name":"a","url":"http://h2"}]}`,
		"duplicate url":  `{"members":[{"name":"a","url":"http://h/"},{"name":"b","url":"http://h"}]}`,
		"bad scheme":     `{"members":[{"name":"a","url":"ftp://h"}]}`,
		"no host":        `{"members":[{"name":"a","url":"http://"}]}`,
	}
	for name, doc := range cases {
		if _, err := ParsePeers([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func TestLoadPeers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	if err := os.WriteFile(path, []byte(goodPeers), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeers(path); err != nil {
		t.Fatalf("LoadPeers: %v", err)
	}
	if _, err := LoadPeers(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadPeers accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"members":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeers(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("LoadPeers(bad) error %v does not name the file", err)
	}
}
