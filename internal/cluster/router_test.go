package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testShard is one fake replica: it records hits and answers with a
// programmable handler, defaulting to echoing its own name so tests
// can assert which shard a request landed on.
type testShard struct {
	name    string
	hits    atomic.Int64
	handler atomic.Value // http.HandlerFunc
	srv     *httptest.Server
}

func newTestShard(name string) *testShard {
	s := &testShard{name: name}
	s.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"shard": name, "path": r.URL.Path})
	}))
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.hits.Add(1)
		s.handler.Load().(http.HandlerFunc)(w, r)
	}))
	return s
}

func (s *testShard) set(h http.HandlerFunc) { s.handler.Store(h) }

// newTestCluster builds n shards and a router over them. RegisterKey
// routes by the body's "key" field, standing in for the deployment
// fingerprint.
func newTestCluster(t *testing.T, n int, tweak func(*RouterConfig)) ([]*testShard, *Router) {
	t.Helper()
	shards := make([]*testShard, n)
	peers := &Peers{}
	for i := range shards {
		shards[i] = newTestShard(fmt.Sprintf("shard-%d", i))
		t.Cleanup(shards[i].srv.Close)
		peers.Members = append(peers.Members, Member{Name: shards[i].name, URL: shards[i].srv.URL})
	}
	cfg := RouterConfig{
		Peers: peers,
		RegisterKey: func(body []byte) (string, error) {
			var req struct {
				Key string `json:"key"`
			}
			if err := json.Unmarshal(body, &req); err != nil || req.Key == "" {
				return "", fmt.Errorf("no key in body")
			}
			return req.Key, nil
		},
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
		// Tests flip shard states between consecutive /readyz hits;
		// disable the probe cache unless a test opts back in.
		ReadyCacheTTL: -1,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return shards, rt
}

func shardByName(shards []*testShard, name string) *testShard {
	for _, s := range shards {
		if s.name == name {
			return s
		}
	}
	return nil
}

func do(t *testing.T, rt *Router, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

// TestRouterRoutesByPathID: a deployment-scoped request lands on the
// ring owner of the path id, and only there.
func TestRouterRoutesByPathID(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	for _, id := range []string{"dep-a", "dep-b", "dep-c", "dep-d"} {
		owner := rt.Ring().Owner(id)
		w := do(t, rt, http.MethodGet, "/v1/deployments/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", id, w.Code, w.Body)
		}
		var resp struct{ Shard, Path string }
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Shard != owner {
			t.Errorf("id %s answered by %s, ring owner is %s", id, resp.Shard, owner)
		}
		if resp.Path != "/v1/deployments/"+id {
			t.Errorf("forwarded path %s", resp.Path)
		}
	}
	total := int64(0)
	for _, s := range shards {
		total += s.hits.Load()
	}
	if total != 4 {
		t.Fatalf("4 requests produced %d shard hits", total)
	}
}

// TestRouterRegisterRoutesByKey: registrations land on the owner of
// the id RegisterKey computes from the body; a body RegisterKey
// rejects answers 400 without touching any shard.
func TestRouterRegisterRoutesByKey(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	w := do(t, rt, http.MethodPost, "/v1/deployments", `{"key":"fp-1234"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	var resp struct{ Shard string }
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := rt.Ring().Owner("fp-1234"); resp.Shard != want {
		t.Fatalf("registration answered by %s, owner of its key is %s", resp.Shard, want)
	}

	w = do(t, rt, http.MethodPost, "/v1/deployments", `{"nope":true}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad register body: %d, want 400", w.Code)
	}
	if total := shards[0].hits.Load() + shards[1].hits.Load() + shards[2].hits.Load(); total != 1 {
		t.Fatalf("bad body reached a shard (total hits %d, want 1)", total)
	}
}

// TestRouterRetriesHonourRetryAfter: a shard shedding a write with 503
// + Retry-After is retried after that exact wait, not the (much
// larger) configured backoff. (Writes exercise forward's retry loop;
// reads fail over instead of retrying — see the failover tests.)
func TestRouterRetriesHonourRetryAfter(t *testing.T) {
	shards, rt := newTestCluster(t, 1, func(cfg *RouterConfig) {
		cfg.BackoffBase = 5 * time.Second // would blow the test deadline if used
		cfg.BackoffCap = 5 * time.Second
	})
	var calls atomic.Int64
	shards[0].set(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0.01")
			writeError(w, http.StatusServiceUnavailable, "shedding")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"shard": shards[0].name})
	})
	t0 := time.Now()
	w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}")
	if w.Code != http.StatusOK {
		t.Fatalf("after retries: %d %s", w.Code, w.Body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3", got)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("retries took %s — Retry-After was not honoured over the 5s backoff", el)
	}
}

// TestRouterRelaysFinalRetryableAnswer: when the retry budget is spent
// the shard's last answer goes back verbatim — the router never
// swallows a shard's 503 into its own.
func TestRouterRelaysFinalRetryableAnswer(t *testing.T) {
	shards, rt := newTestCluster(t, 1, func(cfg *RouterConfig) { cfg.Retries = 2 })
	shards[0].set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0.01")
		writeError(w, http.StatusServiceUnavailable, "still shedding")
	})
	w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "still shedding") {
		t.Fatalf("final shard answer not relayed verbatim: %s", w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("relayed 503 lost the shard's Retry-After")
	}
	if got := shards[0].hits.Load(); got != 2 {
		t.Fatalf("%d attempts, want 2", got)
	}
}

// TestRouterUnavailableShard: every attempt failing at the transport
// yields the router's own 503, carrying the cluster-uniform jittered
// Retry-After — the same shedding contract a single replica offers.
func TestRouterUnavailableShard(t *testing.T) {
	shards, rt := newTestCluster(t, 1, func(cfg *RouterConfig) { cfg.Retries = 2 })
	shards[0].srv.Close()
	w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "unavailable after 2 attempts") {
		t.Fatalf("body %s", w.Body)
	}
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("router 503 carries no Retry-After")
	}
	var secs float64
	if _, err := fmt.Sscanf(ra, "%f", &secs); err != nil || secs < 0.8 || secs > 1.2 {
		t.Fatalf("Retry-After %q outside the 1s±20%% contract", ra)
	}
}

// TestRouterDoesNotRetry504: a survey deadline will expire again — the
// 504 (with its retry-as-job hint) must reach the client on the first
// attempt.
func TestRouterDoesNotRetry504(t *testing.T) {
	shards, rt := newTestCluster(t, 1, nil)
	shards[0].set(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusGatewayTimeout, "survey deadline exceeded")
	})
	w := do(t, rt, http.MethodPost, "/v1/deployments/x/survey", `{"grid":64}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504", w.Code)
	}
	if got := shards[0].hits.Load(); got != 1 {
		t.Fatalf("504 was retried: %d attempts", got)
	}
}

// TestRouterJobSubmitRoutesByDeployment: job submissions go to the
// owner of the deployment they name; a submission naming none is the
// router's own 400.
func TestRouterJobSubmitRoutesByDeployment(t *testing.T) {
	_, rt := newTestCluster(t, 3, nil)
	w := do(t, rt, http.MethodPost, "/v1/jobs", `{"kind":"survey","deployment":"dep-7"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var resp struct{ Shard string }
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := rt.Ring().Owner("dep-7"); resp.Shard != want {
		t.Fatalf("job landed on %s, deployment owner is %s", resp.Shard, want)
	}
	if w := do(t, rt, http.MethodPost, "/v1/jobs", `{"kind":"survey"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("deployment-less submit: %d, want 400", w.Code)
	}
}

// TestRouterJobScatter: job ids are shard-local, so polls scatter in
// deterministic member order until a shard answers non-404; an id no
// shard knows is a 404.
func TestRouterJobScatter(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	const jobID = "01HTESTJOB"
	for _, s := range shards {
		s.set(func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound, "unknown job")
		})
	}
	// Only shard-2 knows the job.
	shardByName(shards, "shard-2").set(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"id": jobID, "state": "done"})
	})
	w := do(t, rt, http.MethodGet, "/v1/jobs/"+jobID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("scatter: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"state":"done"`) {
		t.Fatalf("body %s", w.Body)
	}
	// All three probed (scatter is by name order, shard-2 last), plus
	// the forwarded request itself.
	if h0, h1, h2 := shards[0].hits.Load(), shards[1].hits.Load(), shards[2].hits.Load(); h0 != 1 || h1 != 1 || h2 != 2 {
		t.Fatalf("scatter hits %d/%d/%d, want 1/1/2", h0, h1, h2)
	}

	shardByName(shards, "shard-2").set(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown job")
	})
	if w := do(t, rt, http.MethodGet, "/v1/jobs/"+jobID, ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
}

// TestRouterReadyzRollup drives the aggregation table: ok, starting,
// degraded, unreachable-as-degraded, and all-down.
func TestRouterReadyzRollup(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	setReady := func(s *testShard, status string) {
		s.set(func(w http.ResponseWriter, r *http.Request) {
			code := http.StatusOK
			if status == ReadyStarting {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, map[string]string{"status": status})
		})
	}
	check := func(wantCode int, wantStatus string) {
		t.Helper()
		w := do(t, rt, http.MethodGet, "/readyz", "")
		if w.Code != wantCode {
			t.Fatalf("readyz code %d, want %d (%s)", w.Code, wantCode, w.Body)
		}
		var resp struct {
			Status string       `json:"status"`
			Shards []shardReady `json:"shards"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Status != wantStatus {
			t.Fatalf("rollup %q, want %q (%s)", resp.Status, wantStatus, w.Body)
		}
		if len(resp.Shards) != 3 {
			t.Fatalf("rollup names %d shards, want all 3", len(resp.Shards))
		}
	}

	for _, s := range shards {
		setReady(s, ReadyOK)
	}
	check(http.StatusOK, ReadyOK)

	setReady(shards[1], ReadyDegraded)
	check(http.StatusOK, ReadyDegraded)

	setReady(shards[1], ReadyStarting)
	check(http.StatusServiceUnavailable, ReadyStarting)
	w := do(t, rt, http.MethodGet, "/readyz", "")
	if w.Header().Get("Retry-After") == "" {
		// The rollup 503 is retryable like any other.
		t.Log("note: starting rollup carries no Retry-After (router aggregation)")
	}

	setReady(shards[1], ReadyOK)
	shards[2].srv.Close()
	check(http.StatusOK, ReadyDegraded)

	shards[0].srv.Close()
	shards[1].srv.Close()
	check(http.StatusServiceUnavailable, ReadyDown)
}

// TestRouterOwnEndpoints: healthz and metrics are answered by the
// router itself, never forwarded.
func TestRouterOwnEndpoints(t *testing.T) {
	shards, rt := newTestCluster(t, 2, nil)
	// Produce some forwards first so the counters are non-zero.
	do(t, rt, http.MethodGet, "/v1/deployments/abc", "")

	w := do(t, rt, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"role":"router"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
	w = do(t, rt, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	for _, series := range []string{
		"fvcd_cluster_forwards_total",
		"fvcd_cluster_shard_errors_total",
		"fvcd_cluster_forward_duration_ns",
		"fvcd_cluster_retries_total",
	} {
		if !strings.Contains(w.Body.String(), series) {
			t.Errorf("metrics output lacks %s", series)
		}
	}
	if total := shards[0].hits.Load() + shards[1].hits.Load(); total != 1 {
		t.Fatalf("own endpoints reached shards (%d hits, want only the 1 forward)", total)
	}
}

// TestRouterBodyTooLarge: the body cap answers 413 at the router; the
// oversized body never reaches a shard.
func TestRouterBodyTooLarge(t *testing.T) {
	shards, rt := newTestCluster(t, 1, func(cfg *RouterConfig) { cfg.MaxBodyBytes = 64 })
	w := do(t, rt, http.MethodPost, "/v1/deployments/x/query", `{"pad":"`+strings.Repeat("x", 256)+`"}`)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code %d, want 413", w.Code)
	}
	if shards[0].hits.Load() != 0 {
		t.Fatal("oversized body was forwarded")
	}
}

func TestNewRouterValidation(t *testing.T) {
	key := func([]byte) (string, error) { return "k", nil }
	if _, err := NewRouter(RouterConfig{RegisterKey: key}); err == nil {
		t.Fatal("router built without peers")
	}
	p := &Peers{Members: []Member{{Name: "a", URL: "http://127.0.0.1:1"}}}
	if _, err := NewRouter(RouterConfig{Peers: p}); err == nil {
		t.Fatal("router built without RegisterKey")
	}
	if _, err := NewRouter(RouterConfig{Peers: p, RegisterKey: key}); err != nil {
		t.Fatalf("minimal router: %v", err)
	}
}
