package cluster

import (
	"testing"
	"time"
)

// clockedBreaker returns a breaker with a manually-advanced clock.
func clockedBreaker(threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	b := NewBreaker(threshold, cooldown)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

// TestBreakerLifecycle walks the full state machine: closed → open on
// consecutive failures → half-open after the cooldown → closed on a
// successful probe.
func TestBreakerLifecycle(t *testing.T) {
	b, now := clockedBreaker(3, time.Minute)
	if b.State() != BreakerClosed {
		t.Fatal("new breaker is not closed")
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %d after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	*now = now.Add(59 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker admitted 1s early")
	}
	*now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("expired breaker rejected the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %d during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerFailedProbeReopens: a failed half-open probe re-opens for
// a full fresh cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	b, now := clockedBreaker(1, time.Minute)
	b.Allow()
	b.Failure()
	*now = now.Add(61 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %d after failed probe, want open", b.State())
	}
	*now = now.Add(30 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker admitted mid-cooldown: failed probe did not restart the clock")
	}
	*now = now.Add(31 * time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker never re-probed")
	}
}

// TestBreakerReleaseFreesProbeWithoutClosing: an admitted attempt that
// never reached the shard (request construction failed, no URL) frees
// the half-open probe slot for a real probe without closing the
// breaker — only an actual shard answer may close it.
func TestBreakerReleaseFreesProbeWithoutClosing(t *testing.T) {
	b, now := clockedBreaker(1, time.Minute)
	b.Allow()
	b.Failure()
	*now = now.Add(61 * time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Release()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %d after Release, want half-open (not closed)", b.State())
	}
	if !b.Allow() {
		t.Fatal("released probe slot was not reusable")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe after a Release did not re-open")
	}
}

// TestBreakerReleaseKeepsFailureCount: Release in the closed state must
// not reset the consecutive-failure count the way Success does.
func TestBreakerReleaseKeepsFailureCount(t *testing.T) {
	b, _ := clockedBreaker(2, time.Minute)
	b.Allow()
	b.Failure()
	b.Release()
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("Release reset the consecutive-failure count")
	}
}

// TestBreakerConsecutiveMeansConsecutive: successes reset the failure
// count, so a shard failing every other request never trips.
func TestBreakerConsecutiveMeansConsecutive(t *testing.T) {
	b, _ := clockedBreaker(2, time.Minute)
	for i := 0; i < 20; i++ {
		if !b.Allow() {
			t.Fatalf("tripped at alternation %d", i)
		}
		if i%2 == 0 {
			b.Failure()
		} else {
			b.Success()
		}
	}
	if b.State() != BreakerClosed {
		t.Fatal("alternating outcomes tripped the breaker")
	}
}
