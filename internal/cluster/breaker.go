package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported through the fvcd_breaker_state gauge. The
// numeric order is chosen so the gauge reads as "how broken": 0 is a
// healthy closed breaker, 2 is a tripped-open one, 1 is the half-open
// probe state in between.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// Breaker is a per-shard circuit breaker. It exists to answer one
// question cheaply on the router's hot path: "is this shard worth an
// attempt right now?" — so that a dead owner costs the first few
// requests a connect timeout and every later request nothing.
//
// State machine: the breaker starts closed and counts *consecutive*
// failures; reaching the threshold trips it open. Open rejects every
// attempt until the cooldown elapses, then the next Allow admits a
// single half-open probe (concurrent callers keep being rejected while
// the probe is in flight). A successful probe closes the breaker and
// zeroes the count; a failed one re-opens it for another cooldown.
// Any success in the closed state resets the failure count, so the
// threshold really means consecutive — a shard that fails every fifth
// request under load never trips.
//
// All methods are safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	state     int
	openedAt  time.Time
	probing   bool
	now       func() time.Time // injectable for tests
}

// NewBreaker returns a closed breaker that trips after threshold
// consecutive failures and re-probes after cooldown. Non-positive
// arguments select the defaults (5 failures, 5s cooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the caller may attempt the shard. In the open
// state it admits exactly one caller per cooldown expiry as the
// half-open probe; that caller MUST report the outcome via Success or
// Failure, or the breaker stays half-open (rejecting everyone) forever.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: the single probe is already out
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful attempt: closes the breaker and resets
// the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Release abandons an admitted attempt that never reached the shard
// (request construction failed, the member had no URL): it clears the
// half-open probing flag so a later Allow can admit a real probe, and
// nothing else — no transition to closed, no failure-count reset —
// because the attempt proved nothing about the shard either way.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed attempt. In the closed state it counts
// toward the trip threshold; in the half-open state it re-opens
// immediately (the probe failed). Failures restart the cooldown clock.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	default: // already open (e.g. a straggler attempt admitted pre-trip)
		b.openedAt = b.now()
	}
}

// State returns the current state constant for export. An expired open
// breaker still reports open until an Allow transitions it — the gauge
// reflects what traffic would experience, not the wall clock.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
