package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// tripBreaker drives a router's breaker for one shard straight to open.
func tripBreaker(rt *Router, shard string) {
	b := rt.breakers[shard]
	for b.State() != BreakerOpen {
		b.Allow()
		b.Failure()
	}
}

// TestRouterReadFailsOverToSuccessor: with the owner's process gone, a
// read is served by the first ring successor, the failover is counted,
// and the breaker state series is exported.
func TestRouterReadFailsOverToSuccessor(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	seq := rt.Ring().Sequence("x")
	shardByName(shards, seq[0]).srv.Close()

	w := do(t, rt, http.MethodGet, "/v1/deployments/x", "")
	if w.Code != http.StatusOK {
		t.Fatalf("read with dead owner: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), seq[1]) {
		t.Fatalf("read served by %s, want successor %s", w.Body, seq[1])
	}

	m := do(t, rt, http.MethodGet, "/metrics", "")
	for _, series := range []string{"fvcd_cluster_failover_reads_total 1", "fvcd_breaker_state"} {
		if !strings.Contains(m.Body.String(), series) {
			t.Fatalf("metrics missing %q:\n%s", series, m.Body)
		}
	}
}

// TestRouterReadSkipsOpenBreaker: a read whose owner's breaker is open
// goes straight to the successor without burning an attempt on the
// owner — the whole point of the breaker.
func TestRouterReadSkipsOpenBreaker(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	seq := rt.Ring().Sequence("x")
	owner := shardByName(shards, seq[0])
	tripBreaker(rt, seq[0])

	w := do(t, rt, http.MethodGet, "/v1/deployments/x", "")
	if w.Code != http.StatusOK {
		t.Fatalf("read with tripped owner: %d %s", w.Code, w.Body)
	}
	if owner.hits.Load() != 0 {
		t.Fatalf("tripped owner was still attempted %d times", owner.hits.Load())
	}
	if !strings.Contains(w.Body.String(), seq[1]) {
		t.Fatalf("read served by %s, want successor %s", w.Body, seq[1])
	}
}

// TestRouterReadFailover404TriesNext: a replica answering 404 (it
// missed the id's mirror records) does not end the read — the walk
// continues to the next successor — and only when every shard says 404
// is a 404 relayed to the client.
func TestRouterReadFailover404TriesNext(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	seq := rt.Ring().Sequence("x")
	shardByName(shards, seq[0]).set(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not here")
	})

	w := do(t, rt, http.MethodGet, "/v1/deployments/x", "")
	if w.Code != http.StatusOK {
		t.Fatalf("read after owner 404: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), seq[1]) {
		t.Fatalf("read served by %s, want successor %s", w.Body, seq[1])
	}

	for _, s := range shards {
		s.set(func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound, "nobody has it")
		})
	}
	w = do(t, rt, http.MethodGet, "/v1/deployments/x", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("all-404 read answered %d, want the 404 relayed", w.Code)
	}
	if !strings.Contains(w.Body.String(), "nobody has it") {
		t.Fatalf("relayed 404 lost the shard body: %s", w.Body)
	}
}

// TestRouterWriteFastFailsOnOpenBreaker: writes never fail over — a
// dead owner with a tripped breaker means an immediate 503 with
// Retry-After, attempting nothing.
func TestRouterWriteFastFailsOnOpenBreaker(t *testing.T) {
	shards, rt := newTestCluster(t, 3, nil)
	owner := rt.Ring().Owner("x")
	tripBreaker(rt, owner)
	hitsBefore := shardByName(shards, owner).hits.Load()

	w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("write with tripped owner: %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), "circuit open") {
		t.Fatalf("body %s", w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("fast-fail 503 carries no Retry-After")
	}
	if got := shardByName(shards, owner).hits.Load(); got != hitsBefore {
		t.Fatalf("fast-fail still attempted the shard (%d hits)", got-hitsBefore)
	}
}

// TestRouterBreakerTripsAndRecovers: transport failures trip the
// breaker through the forward path itself, and a half-open probe after
// the cooldown closes it again once the shard is back.
func TestRouterBreakerTripsAndRecovers(t *testing.T) {
	shards, rt := newTestCluster(t, 1, func(cfg *RouterConfig) {
		cfg.Retries = 1
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 10 * time.Millisecond
	})
	// The shard keeps its listener address but refuses connections.
	shards[0].srv.Close()
	for i := 0; i < 2; i++ {
		if w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}"); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("dead shard answered %d", w.Code)
		}
	}
	if got := rt.breakers[shards[0].name].State(); got != BreakerOpen {
		t.Fatalf("breaker state %d after %d transport failures, want open", got, 2)
	}
	w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}")
	if !strings.Contains(w.Body.String(), "circuit open") {
		t.Fatalf("tripped write not fast-failed: %s", w.Body)
	}

	// Shard comes back; after the cooldown one probe closes the breaker.
	revived := newTestShard(shards[0].name)
	t.Cleanup(revived.srv.Close)
	rt.cfg.Peers.Members[0].URL = revived.srv.URL
	time.Sleep(15 * time.Millisecond)
	if w := do(t, rt, http.MethodPatch, "/v1/deployments/x", "{}"); w.Code != http.StatusOK {
		t.Fatalf("probe after cooldown: %d %s", w.Code, w.Body)
	}
	if got := rt.breakers[shards[0].name].State(); got != BreakerClosed {
		t.Fatalf("breaker state %d after successful probe, want closed", got)
	}
}

// TestRouterBackoff pins the wait computation: a parseable Retry-After
// (fractional seconds, whitespace tolerated) is honoured verbatim;
// garbage and negatives fall back to capped exponential growth with
// jitter bounded in [d/2, 3d/2).
func TestRouterBackoff(t *testing.T) {
	_, rt := newTestCluster(t, 1, func(cfg *RouterConfig) {
		cfg.BackoffBase = 100 * time.Millisecond
		cfg.BackoffCap = 400 * time.Millisecond
	})
	for _, tc := range []struct {
		retryAfter string
		want       time.Duration
	}{
		{"0.25", 250 * time.Millisecond},
		{"2", 2 * time.Second},
		{" 0.5\t", 500 * time.Millisecond},
		{"0", 0},
	} {
		if got := rt.backoff(0, tc.retryAfter); got != tc.want {
			t.Errorf("backoff(0, %q) = %s, want %s", tc.retryAfter, got, tc.want)
		}
	}
	for _, garbage := range []string{"", "soon", "-1", "1h", "NaN"} {
		for attempt := 0; attempt < 5; attempt++ {
			d := rt.cfg.BackoffBase << attempt
			if d > rt.cfg.BackoffCap {
				d = rt.cfg.BackoffCap
			}
			for i := 0; i < 50; i++ {
				got := rt.backoff(attempt, garbage)
				if got < d/2 || got >= d/2+d {
					t.Fatalf("backoff(%d, %q) = %s outside [%s, %s)", attempt, garbage, got, d/2, d/2+d)
				}
			}
		}
	}
}

// TestRouterReadyzProbeCache: with the TTL cache on, consecutive
// /readyz hits reuse one probe fan-out instead of re-probing every
// shard per hit.
func TestRouterReadyzProbeCache(t *testing.T) {
	shards, rt := newTestCluster(t, 3, func(cfg *RouterConfig) { cfg.ReadyCacheTTL = time.Hour })
	for _, s := range shards {
		s.set(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": ReadyOK})
		})
	}
	for i := 0; i < 5; i++ {
		if w := do(t, rt, http.MethodGet, "/readyz", ""); w.Code != http.StatusOK {
			t.Fatalf("readyz hit %d: %d %s", i, w.Code, w.Body)
		}
	}
	for _, s := range shards {
		if got := s.hits.Load(); got != 1 {
			t.Fatalf("shard %s probed %d times across 5 cached /readyz hits, want 1", s.name, got)
		}
	}
}

// TestRouterReadyzCacheSurvivesCancelledPoller: the cached probe runs
// detached from the triggering caller's context, so a poller arriving
// with an already-cancelled (or nearly-expired) context cannot poison
// the shared cache with failed probes for a whole TTL.
func TestRouterReadyzCacheSurvivesCancelledPoller(t *testing.T) {
	shards, rt := newTestCluster(t, 2, func(cfg *RouterConfig) { cfg.ReadyCacheTTL = time.Hour })
	for _, s := range shards {
		s.set(func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": ReadyOK})
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sr := range rt.cachedShards(ctx) {
		if sr.Status != ReadyOK {
			t.Fatalf("cancelled poller cached status %q for %s, want %q", sr.Status, sr.Name, ReadyOK)
		}
	}
	// Whatever that first poller cached is now everyone's answer for the
	// TTL; a healthy poller must still see the cluster as ok.
	if w := do(t, rt, http.MethodGet, "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz after a cancelled poller's probe: %d %s", w.Code, w.Body)
	}
}

// TestRouterReadAllShardsDown: when no shard can serve the read the
// router sheds with its own 503 + Retry-After, naming the tried count.
func TestRouterReadAllShardsDown(t *testing.T) {
	shards, rt := newTestCluster(t, 2, nil)
	for _, s := range shards {
		s.srv.Close()
	}
	w := do(t, rt, http.MethodGet, "/v1/deployments/x", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", w.Code)
	}
	if !strings.Contains(w.Body.String(), fmt.Sprintf("%d tried", len(shards))) {
		t.Fatalf("body %s", w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("router 503 carries no Retry-After")
	}
}
