package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// fingerprints returns n deterministic keys shaped exactly like the
// deployment ids the ring shards in production: hex digests of a
// sha256 (depcache fingerprints are the first 16 bytes of one).
func fingerprints(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("deployment-%d", i)))
		keys[i] = hex.EncodeToString(sum[:16])
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%d", i)
	}
	return out
}

func mustRing(t *testing.T, m []string, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(m, vnodes)
	if err != nil {
		t.Fatalf("NewRing(%v, %d): %v", m, vnodes, err)
	}
	return r
}

// TestRingValidation pins the constructor's error paths and the
// dedupe/ordering normalisation.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member set built a ring")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name built a ring")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Fatal("negative virtual-node count built a ring")
	}
	r := mustRing(t, []string{"b", "a", "b"}, 0)
	if r.N() != 2 {
		t.Fatalf("deduped member count = %d, want 2", r.N())
	}
	if got := r.Members(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("members not sorted: %v", got)
	}
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("default virtual nodes = %d, want %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
}

// TestRingDeterministicPlacement: the ring is a pure function of the
// member SET — input order must not change any placement.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := fingerprints(200)
	a := mustRing(t, []string{"x", "y", "z"}, 64)
	b := mustRing(t, []string{"z", "x", "y"}, 64)
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %q vs %q across member orderings", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingUniformDistribution: across 1000 fingerprint keys and 5
// members at the default virtual-node count, every member's share must
// sit within ±20% of the uniform K/N.
func TestRingUniformDistribution(t *testing.T) {
	const K, N = 1000, 5
	keys := fingerprints(K)
	r := mustRing(t, members(N), DefaultVirtualNodes)
	counts := make(map[string]int, N)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := float64(K) / N
	for _, m := range r.Members() {
		c := counts[m]
		if dev := float64(c)/want - 1; dev < -0.20 || dev > 0.20 {
			t.Errorf("member %s owns %d keys, %+.1f%% off the uniform %g (limit ±20%%)",
				m, c, dev*100, want)
		}
	}
}

// TestRingMinimalMovementOnRemove: removing one of N members must
// relocate exactly the removed member's keys — every key it owned
// moves (it has to), and no other key changes owner. That is the
// strongest form of the ~K/N movement bound.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const K, N = 1000, 5
	keys := fingerprints(K)
	full := mustRing(t, members(N), DefaultVirtualNodes)
	removed := members(N)[N-1]
	reduced := mustRing(t, members(N)[:N-1], DefaultVirtualNodes)

	moved, ownedByRemoved := 0, 0
	for _, k := range keys {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == removed {
			ownedByRemoved++
			if after == removed {
				t.Fatalf("key %s still owned by removed member", k)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %s moved %s→%s though neither is the removed member", k, before, after)
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member relocated; consistent hashing promises zero", moved)
	}
	// The removed member's share is itself bounded by the distribution
	// property: ~K/N ± 20%.
	if limit := int(float64(K) / N * 1.2); ownedByRemoved > limit {
		t.Fatalf("removed member owned %d keys, above the %d (≈1.2·K/N) bound", ownedByRemoved, limit)
	}
}

// TestRingMinimalMovementOnAdd: adding an (N+1)th member must move
// keys only TO the new member, and no more than ~K/(N+1) of them
// (within the same ±20% tolerance the distribution property grants,
// which holds at the default virtual-node count).
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const K, N = 1000, 5
	keys := fingerprints(K)
	base := mustRing(t, members(N), DefaultVirtualNodes)
	grown := mustRing(t, members(N+1), DefaultVirtualNodes)
	newcomer := members(N + 1)[N]

	moved := 0
	for _, k := range keys {
		before, after := base.Owner(k), grown.Owner(k)
		if before == after {
			continue
		}
		if after != newcomer {
			t.Errorf("key %s moved %s→%s, not to the new member", k, before, after)
		}
		moved++
	}
	limit := int(float64(len(keys)) / float64(N+1) * 1.2)
	if moved > limit {
		t.Fatalf("adding one member moved %d of %d keys, above the %d (≈1.2·K/(N+1)) bound", moved, K, limit)
	}
	if moved == 0 {
		t.Fatal("adding a member moved zero keys — the new member owns nothing")
	}
}

// TestRingMovementScalesWithVirtualNodes: the movement bound is a
// consequence of virtual nodes smoothing arc lengths; pin that it
// holds across the vnode counts a config may choose.
func TestRingMovementScalesWithVirtualNodes(t *testing.T) {
	const K, N = 1000, 4
	keys := fingerprints(K)
	for _, vn := range []int{64, 160, 320} {
		base := mustRing(t, members(N), vn)
		grown := mustRing(t, members(N+1), vn)
		moved := 0
		for _, k := range keys {
			if base.Owner(k) != grown.Owner(k) {
				moved++
			}
		}
		// Looser ±35% at the smallest count: fewer virtual nodes mean
		// coarser arcs. The default count is pinned tight above.
		if limit := int(float64(len(keys)) / float64(N+1) * 1.35); moved > limit {
			t.Errorf("vnodes=%d: adding one member moved %d keys, above %d", vn, moved, limit)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := NewRing(members(8), DefaultVirtualNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := fingerprints(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i%len(keys)])
	}
}

// TestRingSequence pins the failover-order contract: the sequence
// starts at the owner, visits every member exactly once, is
// deterministic, and its tail is the ownership order under member
// removal — seq[1] is who would own the key if the owner vanished.
func TestRingSequence(t *testing.T) {
	mems := members(5)
	r := mustRing(t, mems, 0)
	for _, key := range fingerprints(50) {
		seq := r.Sequence(key)
		if len(seq) != len(mems) {
			t.Fatalf("sequence of %d members for %d-member ring", len(seq), len(mems))
		}
		if seq[0] != r.Owner(key) {
			t.Fatalf("sequence starts at %s, owner is %s", seq[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence visits %s twice: %v", m, seq)
			}
			seen[m] = true
		}
		// Drop the first k members of the sequence; the shrunken ring's
		// owner must be the next member in the sequence.
		remaining := mems
		for k := 0; k < len(mems)-1; k++ {
			var next []string
			for _, m := range remaining {
				if m != seq[k] {
					next = append(next, m)
				}
			}
			remaining = next
			shrunk := mustRing(t, remaining, 0)
			if got := shrunk.Owner(key); got != seq[k+1] {
				t.Fatalf("after removing %v, owner %s, sequence predicted %s", seq[:k+1], got, seq[k+1])
			}
		}
	}
}
