package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"strings"
)

// Member is one cluster replica: a stable name (the ring identity —
// renaming a member moves its keys) and the base URL its fvcd listens
// on.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Peers is the cluster membership, normally loaded from a peers file.
// Every replica and every router in one cluster must load the same
// file (or byte-equivalent content): the ring is derived from the
// member names and the virtual-node count, so agreement on the file is
// agreement on every key placement.
//
// The file is JSON:
//
//	{
//	  "virtualNodes": 160,
//	  "members": [
//	    {"name": "a", "url": "http://127.0.0.1:8081"},
//	    {"name": "b", "url": "http://127.0.0.1:8082"},
//	    {"name": "c", "url": "http://127.0.0.1:8083"}
//	  ]
//	}
//
// virtualNodes may be omitted (DefaultVirtualNodes).
type Peers struct {
	VirtualNodes int      `json:"virtualNodes,omitempty"`
	Members      []Member `json:"members"`
}

// LoadPeers reads and validates a peers file.
func LoadPeers(path string) (*Peers, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read peers file: %w", err)
	}
	p, err := ParsePeers(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: peers file %s: %w", path, err)
	}
	return p, nil
}

// ParsePeers decodes and validates a peers document. Unknown fields
// are rejected — a misspelt key silently changing cluster topology is
// the kind of error that must fail loudly.
func ParsePeers(data []byte) (*Peers, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Peers
	if err := dec.Decode(&p); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after peers document")
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// validate enforces the invariants the ring and router rely on.
func (p *Peers) validate() error {
	if len(p.Members) == 0 {
		return errors.New("no members")
	}
	if p.VirtualNodes < 0 {
		return fmt.Errorf("virtualNodes %d must be non-negative", p.VirtualNodes)
	}
	names := make(map[string]bool, len(p.Members))
	urls := make(map[string]bool, len(p.Members))
	for i, m := range p.Members {
		if m.Name == "" {
			return fmt.Errorf("member %d has no name", i)
		}
		if names[m.Name] {
			return fmt.Errorf("duplicate member name %q", m.Name)
		}
		names[m.Name] = true
		u, err := url.Parse(m.URL)
		if err != nil {
			return fmt.Errorf("member %q: bad url: %v", m.Name, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return fmt.Errorf("member %q: url %q must be http or https", m.Name, m.URL)
		}
		if u.Host == "" {
			return fmt.Errorf("member %q: url %q has no host", m.Name, m.URL)
		}
		norm := strings.TrimRight(m.URL, "/")
		if urls[norm] {
			return fmt.Errorf("duplicate member url %q", m.URL)
		}
		urls[norm] = true
	}
	return nil
}

// Ring builds the cluster's consistent-hash ring over the member
// names.
func (p *Peers) Ring() (*Ring, error) {
	names := make([]string, len(p.Members))
	for i, m := range p.Members {
		names[i] = m.Name
	}
	return NewRing(names, p.VirtualNodes)
}

// URL returns the base URL of the named member (trailing slash
// trimmed).
func (p *Peers) URL(name string) (string, bool) {
	for _, m := range p.Members {
		if m.Name == name {
			return strings.TrimRight(m.URL, "/"), true
		}
	}
	return "", false
}

// Others returns the members other than self, in file order. Self not
// being a member at all is fine (a router is not a member).
func (p *Peers) Others(self string) []Member {
	out := make([]Member, 0, len(p.Members))
	for _, m := range p.Members {
		if m.Name != self {
			out = append(out, m)
		}
	}
	return out
}

// Has reports whether name is a member.
func (p *Peers) Has(name string) bool {
	_, ok := p.URL(name)
	return ok
}
