package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
)

// aeJournal opens a throwaway journal with compaction disabled.
func aeJournal(t *testing.T) *depjournal.Journal {
	t.Helper()
	j, err := depjournal.Open(filepath.Join(t.TempDir(), "deployments.jsonl"), depjournal.Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// aeRec builds an explicit-camera registration record.
func aeRec(id string, n int) depjournal.Record {
	cams := make([]depjournal.Camera, n)
	for i := range cams {
		cams[i] = depjournal.Camera{X: 0.1 * float64(i+1), Y: 0.2, Orient: float64(i), Radius: 0.1, Aperture: 0.7}
	}
	return depjournal.Record{ID: id, Cameras: cams}
}

func aeReaim(id string, orient float64) []depjournal.Record {
	return []depjournal.Record{{ID: id, Op: depjournal.OpReaim, Reaim: []depjournal.ReaimOp{{I: 0, Orient: orient}}}}
}

// aeStore adapts a journal to AntiEntropyStore and records applies.
type aeStore struct {
	j       *depjournal.Journal
	applied []string
}

func (s *aeStore) Digests() map[string]depjournal.DigestInfo { return s.j.Digests() }
func (s *aeStore) Apply(id string, recs []depjournal.Record) error {
	s.applied = append(s.applied, id)
	return s.j.Reinstall(id, recs)
}

// servePeer exposes a journal over the two cluster-internal endpoints,
// exactly as a replica would.
func servePeer(t *testing.T, j *depjournal.Journal) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+DigestPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, j.Digests())
	})
	mux.HandleFunc("GET "+SnapshotPath, func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if _, err := j.SnapshotID(&buf, r.URL.Query().Get("id")); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Write(buf.Bytes())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestAntiEntropyRoundRepairs: a replica missing one deployment and
// behind on another pulls exactly those two from a peer and converges
// to the peer's digests; a second round is a no-op.
func TestAntiEntropyRoundRepairs(t *testing.T) {
	peer := aeJournal(t)
	for _, id := range []string{"aaaa", "bbbb", "cccc"} {
		if err := peer.Append(aeRec(id, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := peer.AppendMutations("bbbb", aeReaim("bbbb", 2.5)); err != nil {
		t.Fatal(err)
	}

	local := aeJournal(t)
	if err := local.Append(aeRec("aaaa", 3)); err != nil { // same aaaa copy: must not be pulled
		t.Fatal(err)
	}
	if err := local.Append(aeRec("bbbb", 3)); err != nil { // behind: missed the reaim
		t.Fatal(err)
	}
	store := &aeStore{j: local}

	srv := servePeer(t, peer)
	ae, err := NewAntiEntropy(AntiEntropyConfig{Peers: []string{srv.URL}, Local: store})
	if err != nil {
		t.Fatal(err)
	}
	if pulled := ae.Round(context.Background()); pulled != 2 {
		t.Fatalf("round pulled %d, want 2 (bbbb behind, cccc missing)", pulled)
	}
	want := peer.Digests()
	got := local.Digests()
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("digest[%s] = %+v after repair, want %+v", id, got[id], w)
		}
	}
	if len(store.applied) != 2 {
		t.Fatalf("applied %v, want exactly [bbbb cccc]", store.applied)
	}
	if pulled := ae.Round(context.Background()); pulled != 0 {
		t.Fatalf("converged round pulled %d, want 0", pulled)
	}
}

// TestAntiEntropyNeverPullsBackwards: a replica that is AHEAD of a
// stale peer must not pull — version gating makes repair monotonic.
func TestAntiEntropyNeverPullsBackwards(t *testing.T) {
	stale := aeJournal(t)
	if err := stale.Append(aeRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	local := aeJournal(t)
	if err := local.Append(aeRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	if err := local.AppendMutations("aaaa", aeReaim("aaaa", 1.5)); err != nil {
		t.Fatal(err)
	}
	before := local.Digests()

	srv := servePeer(t, stale)
	store := &aeStore{j: local}
	ae, err := NewAntiEntropy(AntiEntropyConfig{Peers: []string{srv.URL}, Local: store})
	if err != nil {
		t.Fatal(err)
	}
	if pulled := ae.Round(context.Background()); pulled != 0 {
		t.Fatalf("pulled %d from a stale peer, want 0", pulled)
	}
	if got := local.Digests(); got["aaaa"] != before["aaaa"] {
		t.Fatal("round against a stale peer moved local state backwards")
	}
}

// staleDigestStore reports a digest map frozen below the journal's real
// versions — the TOCTOU window: a write lands after the reconciler
// captured its local digests but before the pull applies.
type staleDigestStore struct {
	aeStore
	stale map[string]depjournal.DigestInfo
}

func (s *staleDigestStore) Digests() map[string]depjournal.DigestInfo { return s.stale }

// TestAntiEntropyStaleRaceDoesNotRollBack: when the local copy advances
// between the round's digest snapshot and the pull's apply, the
// journal-level version re-check refuses the rollback; the round treats
// the lost race as benign (no pull counted, no error counted) and the
// newer local copy survives.
func TestAntiEntropyStaleRaceDoesNotRollBack(t *testing.T) {
	peer := aeJournal(t)
	if err := peer.Append(aeRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	if err := peer.AppendMutations("aaaa", aeReaim("aaaa", 2.5)); err != nil {
		t.Fatal(err)
	}

	// The local journal is already ahead of the peer (version 2 > 1),
	// but the store advertises the pre-race digest map in which it was
	// still behind (version 0), so Round decides to pull.
	local := aeJournal(t)
	if err := local.Append(aeRec("aaaa", 3)); err != nil {
		t.Fatal(err)
	}
	if err := local.AppendMutations("aaaa", aeReaim("aaaa", -1)); err != nil {
		t.Fatal(err)
	}
	before := local.Digests()
	store := &staleDigestStore{
		aeStore: aeStore{j: local},
		stale:   map[string]depjournal.DigestInfo{"aaaa": {Digest: before["aaaa"].Digest, Version: 0}},
	}

	srv := servePeer(t, peer)
	ae, err := NewAntiEntropy(AntiEntropyConfig{Peers: []string{srv.URL}, Local: store})
	if err != nil {
		t.Fatal(err)
	}
	if pulled := ae.Round(context.Background()); pulled != 0 {
		t.Fatalf("lost race counted %d pulls, want 0", pulled)
	}
	if len(store.applied) != 1 {
		t.Fatalf("apply attempts %v, want exactly one refused attempt", store.applied)
	}
	if ae.errs.Value() != 0 {
		t.Fatalf("error counter %d for a benign lost race, want 0", ae.errs.Value())
	}
	if got := local.Digests(); got["aaaa"] != before["aaaa"] {
		t.Fatalf("stale pull rolled the local copy back: %+v, want %+v", got["aaaa"], before["aaaa"])
	}
}

// TestAntiEntropyFaultInjection: DigestFetch errors skip the peer for
// the round; AntiEntropyApply errors abandon the repair. Both count
// errors and both heal on the next clean round.
func TestAntiEntropyFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	peer := aeJournal(t)
	if err := peer.Append(aeRec("aaaa", 2)); err != nil {
		t.Fatal(err)
	}
	local := aeJournal(t)
	store := &aeStore{j: local}
	srv := servePeer(t, peer)
	ae, err := NewAntiEntropy(AntiEntropyConfig{Peers: []string{srv.URL}, Local: store})
	if err != nil {
		t.Fatal(err)
	}

	undo := faultinject.Set(faultinject.DigestFetch, faultinject.Error(errors.New("partitioned")))
	if pulled := ae.Round(context.Background()); pulled != 0 {
		t.Fatalf("pulled %d through a failed digest fetch", pulled)
	}
	undo()

	undo = faultinject.Set(faultinject.AntiEntropyApply, faultinject.Error(errors.New("apply torn")))
	if pulled := ae.Round(context.Background()); pulled != 0 {
		t.Fatalf("counted %d pulls when apply failed", pulled)
	}
	if len(store.applied) != 0 {
		t.Fatalf("apply ran despite the injected fault: %v", store.applied)
	}
	undo()

	if pulled := ae.Round(context.Background()); pulled != 1 {
		t.Fatalf("healed round pulled %d, want 1", pulled)
	}
	if local.Digests()["aaaa"] != peer.Digests()["aaaa"] {
		t.Fatal("healed round did not converge")
	}
	if ae.errs.Value() != 2 {
		t.Fatalf("error counter %d, want 2", ae.errs.Value())
	}
}

// TestParseDigests pins the strict decode: a valid map round-trips,
// and each malformation is refused.
func TestParseDigests(t *testing.T) {
	valid := map[string]depjournal.DigestInfo{
		"aaaa": {Digest: "8f434346648f6b96df89dda901c5176b10a6d83961dd3c1ac88b59b2dc327aa4", Version: 3},
	}
	body, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDigests(body)
	if err != nil {
		t.Fatalf("valid map refused: %v", err)
	}
	if got["aaaa"] != valid["aaaa"] {
		t.Fatalf("round-trip %+v, want %+v", got["aaaa"], valid["aaaa"])
	}
	if got, err := ParseDigests([]byte("{}")); err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}

	bad := map[string]string{
		"garbage":        "not json",
		"wrong shape":    `[1,2,3]`,
		"trailing data":  string(body) + "{}",
		"unknown field":  `{"aaaa":{"digest":"8f434346648f6b96df89dda901c5176b10a6d83961dd3c1ac88b59b2dc327aa4","version":1,"extra":true}}`,
		"short digest":   `{"aaaa":{"digest":"abcd","version":1}}`,
		"non-hex digest": `{"aaaa":{"digest":"zf434346648f6b96df89dda901c5176b10a6d83961dd3c1ac88b59b2dc327aa4","version":1}}`,
		"empty id":       `{"":{"digest":"8f434346648f6b96df89dda901c5176b10a6d83961dd3c1ac88b59b2dc327aa4","version":1}}`,
	}
	for name, in := range bad {
		if _, err := ParseDigests([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// FuzzParseDigests: the digest parser faces bytes from the network; it
// must never panic, and anything it accepts must survive a
// marshal/reparse round trip.
func FuzzParseDigests(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"aaaa":{"digest":"8f434346648f6b96df89dda901c5176b10a6d83961dd3c1ac88b59b2dc327aa4","version":3}}`))
	f.Add([]byte(`{"aaaa":{"digest":"abcd"}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseDigests(data)
		if err != nil {
			return
		}
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted map does not re-marshal: %v", err)
		}
		m2, err := ParseDigests(re)
		if err != nil {
			t.Fatalf("re-marshalled accepted map refused: %v", err)
		}
		if fmt.Sprint(m) != fmt.Sprint(m2) {
			t.Fatalf("round trip changed the map: %v vs %v", m, m2)
		}
	})
}
