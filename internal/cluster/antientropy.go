package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
	"fullview/internal/telemetry"
)

// Cluster-internal paths served by every replica and consumed by the
// anti-entropy reconciler. The server registers its handlers on these
// same constants, so the two sides cannot drift.
const (
	// DigestPath answers the replica's per-deployment digest map
	// (JSON: id → {digest, version}).
	DigestPath = "/v1/internal/digest"
	// SnapshotPath streams a journal snapshot; with ?id= it streams the
	// single-deployment image (404 when the id is not journaled).
	SnapshotPath = "/v1/internal/snapshot"
)

// AntiEntropyStore is the local side of the reconciler: the digest map
// it advertises and the apply path for repairs. internal/server
// implements it over the deployment journal and cache.
type AntiEntropyStore interface {
	// Digests returns the local per-deployment content digests.
	Digests() map[string]depjournal.DigestInfo
	// Apply installs one deployment's fetched snapshot records,
	// replacing any local copy.
	Apply(id string, recs []depjournal.Record) error
}

// AntiEntropyConfig parameterises NewAntiEntropy.
type AntiEntropyConfig struct {
	// Peers are the base URLs of the other replicas (required,
	// non-empty).
	Peers []string
	// Local is the replica's own store (required).
	Local AntiEntropyStore
	// Interval is the gap between periodic rounds; Start is a no-op
	// when it is zero or negative (Round stays available for manual
	// driving).
	Interval time.Duration
	// Client is the HTTP client used to reach peers (default: a
	// dedicated client with a 30s timeout).
	Client *http.Client
	// Registry receives the reconciler's metrics (default: a private
	// registry, for tests that don't care).
	Registry *telemetry.Registry
	// Logger receives repair and error lines; nil discards them.
	Logger *log.Logger
}

// AntiEntropy is the background reconciler that makes mirror loss
// self-healing. Each round it fetches every peer's digest map, compares
// against its own, and pulls only the deployments it is missing or
// behind on — per-id snapshots, not whole journals — applying them
// through the store. Divergence of any cause (dropped mirror batches,
// kill -9 mid-batch, a wiped disk) converges to bit-identical digests,
// because digests are content-canonical (depjournal.DigestInfo) and
// mutations have a single writer per id (the ring owner), so "higher
// version wins" is a true repair rule, not a heuristic.
type AntiEntropy struct {
	cfg    AntiEntropyConfig
	client *http.Client

	rounds *telemetry.Counter
	pulls  *telemetry.Counter
	errs   *telemetry.Counter

	startOnce sync.Once
	stopOnce  sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewAntiEntropy builds a reconciler. It does not start the periodic
// loop — call Start for that, or drive Round directly.
func NewAntiEntropy(cfg AntiEntropyConfig) (*AntiEntropy, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: anti-entropy needs peers")
	}
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: anti-entropy needs a local store")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	a := &AntiEntropy{
		cfg:    cfg,
		client: cfg.Client,
		done:   make(chan struct{}),
	}
	a.rounds = cfg.Registry.Counter("fvcd_antientropy_rounds_total",
		"Anti-entropy reconciliation rounds completed.")
	a.pulls = cfg.Registry.Counter("fvcd_antientropy_pulls_total",
		"Deployments repaired by pulling a peer's per-id snapshot.")
	a.errs = cfg.Registry.Counter("fvcd_antientropy_errors_total",
		"Anti-entropy steps that failed (digest fetch, snapshot fetch, apply); retried next round.")
	return a, nil
}

// Start launches the periodic loop (no-op when Interval <= 0 or after a
// previous Start). Stop it with Stop.
func (a *AntiEntropy) Start() {
	if a.cfg.Interval <= 0 {
		return
	}
	a.startOnce.Do(func() {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			t := time.NewTicker(a.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-a.done:
					return
				case <-t.C:
					ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Interval*4+time.Second)
					a.Round(ctx)
					cancel()
				}
			}
		}()
	})
}

// Stop halts the periodic loop and waits for an in-flight round to
// finish. Safe to call without Start and to call twice.
func (a *AntiEntropy) Stop() {
	a.stopOnce.Do(func() { close(a.done) })
	a.wg.Wait()
}

// Round runs one reconciliation pass over every peer and returns the
// number of deployments repaired. Errors are counted, logged, and
// skipped — a partitioned peer must not stall repairs from reachable
// ones — so a Round against an unreachable cluster is a cheap no-op,
// not a failure.
func (a *AntiEntropy) Round(ctx context.Context) int {
	pulled := 0
	local := a.cfg.Local.Digests()
	for _, peer := range a.cfg.Peers {
		remote, err := a.fetchDigests(ctx, peer)
		if err != nil {
			a.errs.Inc()
			a.logf("antientropy: digests from %s: %v", peer, err)
			continue
		}
		// Sorted ids make repair order (and its logs) deterministic.
		ids := make([]string, 0, len(remote))
		for id := range remote {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			theirs := remote[id]
			ours, have := local[id]
			if have && ours.Version >= theirs.Version {
				// Equal versions with unequal digests would mean the
				// single-writer invariant broke; surface it, never
				// "repair" sideways or backwards.
				if ours.Version == theirs.Version && ours.Digest != theirs.Digest {
					a.logf("antientropy: %s diverged from %s at equal version %d (ours %s, theirs %s)",
						id, peer, ours.Version, ours.Digest, theirs.Digest)
				}
				continue
			}
			if err := a.pull(ctx, peer, id); err != nil {
				if errors.Is(err, depjournal.ErrStale) {
					// The local copy advanced past the digest snapshot
					// while this round ran (a write or mirror apply
					// landed); Reinstall's locked version re-check
					// refused the rollback. Not a fault — the next
					// round compares fresh digests.
					a.logf("antientropy: pull %s from %s lost the race to a newer local copy: %v", id, peer, err)
					continue
				}
				a.errs.Inc()
				a.logf("antientropy: pull %s from %s: %v", id, peer, err)
				continue
			}
			// Track the repair locally so a later peer in this round is
			// compared against the post-repair version.
			local[id] = theirs
			pulled++
			a.pulls.Inc()
			a.logf("antientropy: repaired %s from %s (version %d)", id, peer, theirs.Version)
		}
	}
	a.rounds.Inc()
	return pulled
}

// fetchDigests retrieves and parses one peer's digest map.
func (a *AntiEntropy) fetchDigests(ctx context.Context, peer string) (map[string]depjournal.DigestInfo, error) {
	if err := faultinject.Fire(faultinject.DigestFetch); err != nil {
		return nil, err
	}
	body, err := a.get(ctx, peer+DigestPath)
	if err != nil {
		return nil, err
	}
	return ParseDigests(body)
}

// pull fetches one deployment's snapshot from peer and applies it.
func (a *AntiEntropy) pull(ctx context.Context, peer, id string) error {
	body, err := a.get(ctx, peer+SnapshotPath+"?id="+url.QueryEscape(id))
	if err != nil {
		return err
	}
	recs, err := depjournal.ParseSnapshot(body)
	if err != nil {
		return err
	}
	for i := range recs {
		if recs[i].ID != id {
			return fmt.Errorf("snapshot record %d is for %q, want %q", i, recs[i].ID, id)
		}
	}
	if err := faultinject.Fire(faultinject.AntiEntropyApply); err != nil {
		return err
	}
	return a.cfg.Local.Apply(id, recs)
}

// get fetches url and returns the body of a 200 answer.
func (a *AntiEntropy) get(ctx context.Context, u string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %d", u, resp.StatusCode)
	}
	return body, nil
}

func (a *AntiEntropy) logf(format string, args ...any) {
	if a.cfg.Logger != nil {
		a.cfg.Logger.Printf(format, args...)
	}
}

// ParseDigests decodes a digest-endpoint body: a single JSON object
// mapping deployment ids to their DigestInfo. The decode is strict —
// unknown fields, trailing documents, missing or non-hex digests, and
// empty ids are all refused — because a malformed digest map must fail
// the round loudly rather than trigger bogus pulls.
func ParseDigests(data []byte) (map[string]depjournal.DigestInfo, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var out map[string]depjournal.DigestInfo
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: digest map: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("cluster: digest map: trailing data")
	}
	for id, d := range out {
		if id == "" {
			return nil, fmt.Errorf("cluster: digest map: empty deployment id")
		}
		raw, err := hex.DecodeString(d.Digest)
		if err != nil || len(raw) != 32 {
			return nil, fmt.Errorf("cluster: digest map: %s has malformed digest %q", id, d.Digest)
		}
	}
	return out, nil
}
