// Package cluster turns fvcd into a horizontally scalable service: a
// consistent-hash ring places deployment ids on replicas, a peers file
// names the membership, and a thin stateless router forwards requests
// to the owning shard. Deployment ids are already content fingerprints
// (internal/depcache: sha256 over the camera network), which makes them
// ideal shard keys — uniformly distributed by construction and stable
// across replicas, so every node and every client derives the same
// placement from the same membership with no coordination.
//
// # Placement
//
// The ring hashes each member name onto VirtualNodes points of a
// 64-bit circle; a key is owned by the member whose virtual node is
// the first at or clockwise of the key's hash. Virtual nodes smooth
// the arc lengths so load spreads within a few percent of uniform, and
// give consistent hashing its defining property: adding or removing
// one member relocates only the keys in the arcs it gains or loses —
// about K/N of K keys across N members — while every other key keeps
// its owner. The randomized suite in ring_test.go pins both
// properties.
//
// # Topology
//
// Every replica and every router loads the same peers file and builds
// the same ring. Replicas serve whatever they are asked (ownership is
// advisory — a mis-routed request still answers correctly, it just
// warms the wrong cache), so rebalancing after a membership change
// needs no data migration protocol: the ring moves the keys, the
// journal mirror (internal/server) already has the records everywhere,
// and the new owner rebuilds indexes lazily on first use.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count used when a
// configuration leaves it zero. 160 points per member keeps the
// largest member share within ~±15% of uniform at small cluster sizes
// (the classic ketama operating point).
const DefaultVirtualNodes = 160

// ringPoint is one virtual node: a position on the hash circle and the
// member that owns the arc ending there.
type ringPoint struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Build
// with NewRing; safe for concurrent use (all methods are reads).
type Ring struct {
	members []string // sorted, deduplicated
	points  []ringPoint
	vnodes  int
}

// NewRing builds a ring over the member names with the given
// virtual-node count per member (0 selects DefaultVirtualNodes).
// Member order does not matter: the ring is a pure function of the
// member set and the virtual-node count, so replicas and routers that
// agree on a peers file agree on every placement.
func NewRing(members []string, virtualNodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	if virtualNodes == 0 {
		virtualNodes = DefaultVirtualNodes
	}
	if virtualNodes < 1 {
		return nil, fmt.Errorf("cluster: virtual-node count %d must be positive", virtualNodes)
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, m := range sorted {
		if m == "" {
			return nil, errors.New("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			continue
		}
		dedup = append(dedup, m)
	}
	r := &Ring{
		members: dedup,
		points:  make([]ringPoint, 0, len(dedup)*virtualNodes),
		vnodes:  virtualNodes,
	}
	for mi, m := range r.members {
		for v := 0; v < virtualNodes; v++ {
			h := hashString(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, member: int32(mi)})
		}
	}
	// Ties (two virtual nodes on one hash) are broken by member index so
	// the winner is deterministic across builds.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// hashString maps a string onto the 64-bit hash circle. sha256 keeps
// virtual-node placement well spread even for near-identical member
// names ("replica-1", "replica-2", …), where a cheaper multiplicative
// hash would cluster; placement is a ring-build-time cost, not a
// lookup cost.
func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the member of the first virtual
// node at or clockwise of the key's hash (wrapping past the top of the
// circle to the first point).
func (r *Ring) Owner(key string) string {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// Sequence returns every member in the key's failover order: the owner
// first, then each remaining member as its virtual nodes are first met
// walking clockwise from the key's hash. The order is a pure function
// of the key and the member set — every router derives the same
// successor list — and it is exactly the ownership order that would
// result from removing the preceding members, so a read that fails
// over along it lands on the replica that would own the key if the
// dead owners were dropped from the peers file.
func (r *Ring) Sequence(key string) []string {
	h := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Members returns the member names in sorted order. The slice is
// shared; callers must not modify it.
func (r *Ring) Members() []string { return r.members }

// N returns the member count.
func (r *Ring) N() int { return len(r.members) }

// VirtualNodes returns the per-member virtual-node count the ring was
// built with.
func (r *Ring) VirtualNodes() int { return r.vnodes }
