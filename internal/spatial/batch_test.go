package spatial

// Equivalence tests for the cell-sorted batch gather: the batch CSR
// results must equal the point-at-a-time outputs ELEMENT FOR ELEMENT —
// same values in the same per-point order, compared with == (never a
// tolerance) — over randomized heterogeneous networks with a 100×
// radius span, mutated MutableIndex snapshots with a live overlay, and
// the wrap-seam / degenerate-batch edge cases. Plus
// testing.AllocsPerRun pins proving the steady state allocates nothing.

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// wideSpanNetwork mixes radii 0.002 … 0.2 so every per-radius tier of
// the index carries cameras: the tiny tiers exercise fine grid cells
// and (at small populations) the whole-tier "all" scan.
func wideSpanNetwork(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.002, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.02, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, p, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// batchPoints draws a batch mixing uniform points, seam-hugging points
// (within one cell of the torus wrap on each axis), duplicates, and
// points planted near cameras so small-radius tiers see hits.
func batchPoints(net *sensor.Network, r *rng.PCG, n int) []geom.Vec {
	pts := make([]geom.Vec, 0, n)
	torus := net.Torus()
	for len(pts) < n {
		switch r.Intn(5) {
		case 0: // seam-hugging: exercises the mixed wrap classification
			x := r.Float64() * 0.01
			if r.Bool(0.5) {
				x = 1 - r.Float64()*0.01
			}
			y := r.Float64() * 0.01
			if r.Bool(0.5) {
				y = 1 - r.Float64()*0.01
			}
			pts = append(pts, geom.V(x, y))
		case 1: // planted inside / just outside a camera sector
			cam := net.Camera(r.Intn(net.Len()))
			dir := cam.Orient + (r.Float64()-0.5)*1.2*cam.Aperture
			d := geom.FromPolar(r.Float64()*1.05*cam.Radius, dir)
			pts = append(pts, torus.Translate(cam.Pos, d))
		case 2: // exact duplicate of an earlier batch point
			if len(pts) > 0 {
				pts = append(pts, pts[r.Intn(len(pts))])
				break
			}
			fallthrough
		default:
			pts = append(pts, geom.V(r.Float64(), r.Float64()))
		}
	}
	return pts
}

// assertBatchMatchesPoints checks both batch entry points of src
// against its point-at-a-time methods with exact equality.
func assertBatchMatchesPoints(t *testing.T, tag string, src Source, sc *BatchScratch, pts []geom.Vec) {
	t.Helper()
	cams, offs := src.AppendCoveringBatch(sc, pts)
	if len(offs) != len(pts)+1 {
		t.Fatalf("%s: offs length %d, want %d", tag, len(offs), len(pts)+1)
	}
	var camBuf []int32
	for i, p := range pts {
		camBuf = src.AppendCovering(camBuf[:0], p)
		got := cams[offs[i]:offs[i+1]]
		if len(got) != len(camBuf) {
			t.Fatalf("%s point %d: batch found %d cameras, point path %d",
				tag, i, len(got), len(camBuf))
		}
		for k := range camBuf {
			if got[k] != camBuf[k] {
				t.Fatalf("%s point %d: camera order diverges at %d: batch %v, point %v",
					tag, i, k, got, camBuf)
			}
		}
	}
	dirs, doffs := src.AppendViewedDirectionsBatch(sc, pts)
	var dirBuf []float64
	for i, p := range pts {
		dirBuf = src.AppendViewedDirections(dirBuf[:0], p)
		got := dirs[doffs[i]:doffs[i+1]]
		if len(got) != len(dirBuf) {
			t.Fatalf("%s point %d: batch found %d directions, point path %d",
				tag, i, len(got), len(dirBuf))
		}
		for k := range dirBuf {
			// Exact comparison: the batch path must be bit-identical,
			// not merely close.
			if got[k] != dirBuf[k] {
				t.Fatalf("%s point %d: direction %d differs: batch %v, point %v",
					tag, i, k, got[k], dirBuf[k])
			}
		}
	}
}

// TestBatchMatchesPointPathWideSpan compares the batch gather against
// the point-at-a-time path on randomized heterogeneous networks.
func TestBatchMatchesPointPathWideSpan(t *testing.T) {
	var sc BatchScratch
	for seed := uint64(1); seed <= 4; seed++ {
		// 40 cameras leaves some tiers nearly empty (whole-tier scans);
		// 600 forces fine grids on the small tiers.
		for _, n := range []int{40, 600} {
			net := wideSpanNetwork(t, n, seed)
			ix := NewIndex(net)
			r := rng.New(seed, 99)
			for trial := 0; trial < 4; trial++ {
				pts := batchPoints(net, r, 128)
				assertBatchMatchesPoints(t, "index", ix, &sc, pts)
			}
		}
	}
}

// TestBatchEdgeCases pins the degenerate batch shapes: empty batch,
// single point, and a batch of identical points.
func TestBatchEdgeCases(t *testing.T) {
	net := wideSpanNetwork(t, 200, 5)
	ix := NewIndex(net)
	var sc BatchScratch

	cams, offs := ix.AppendCoveringBatch(&sc, nil)
	if len(cams) != 0 || len(offs) != 1 || offs[0] != 0 {
		t.Fatalf("empty batch: cams %v offs %v, want empty CSR", cams, offs)
	}
	dirs, doffs := ix.AppendViewedDirectionsBatch(&sc, nil)
	if len(dirs) != 0 || len(doffs) != 1 {
		t.Fatalf("empty batch: dirs %v offs %v, want empty CSR", dirs, doffs)
	}

	one := []geom.Vec{{X: 0.3, Y: 0.7}}
	assertBatchMatchesPoints(t, "single", ix, &sc, one)

	same := make([]geom.Vec, 64)
	for i := range same {
		same[i] = geom.V(0.123, 0.456)
	}
	assertBatchMatchesPoints(t, "identical", ix, &sc, same)
}

// TestBatchMatchesPointPathMutated drives the batch gather through
// MutableIndex snapshots whose overlay is guaranteed non-empty —
// removals, re-aims, and additions that have not been folded into the
// CSR base — and through pinned Views across later mutations.
func TestBatchMatchesPointPathMutated(t *testing.T) {
	r := rng.New(77, 3)
	cams := baseCameras(t, 250, r)
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	// Negative fraction: never auto-rebuild, so the overlay stays live
	// and the batch path must consult the removed bitmap and the added
	// list for every candidate.
	m := NewMutableIndex(net, MutableOptions{RebuildFraction: -1})
	var sc BatchScratch
	live := net.Len()
	for round := 0; round < 6; round++ {
		mut := randomMutation(live, r)
		live += applyMutationCount(t, m, mut)
		view := m.Snapshot()
		pts := batchPoints(net, r, 96)
		assertBatchMatchesPoints(t, "mutable", m, &sc, pts)
		assertBatchMatchesPoints(t, "view", view, &sc, pts)
		// Mutate again and re-check the pinned view: its answers must
		// not move.
		if live > 0 {
			if _, err := m.Remove([]int{0}); err != nil {
				t.Fatal(err)
			}
			live--
		}
		assertBatchMatchesPoints(t, "view-after-mutation", view, &sc, pts)
	}
}

// applyMutationCount applies mut to m and returns the net change in
// live-camera count.
func applyMutationCount(t *testing.T, m *MutableIndex, mut oracleMutation) int {
	t.Helper()
	if len(mut.reaim) > 0 {
		if _, err := m.Reaim(mut.reaim); err != nil {
			t.Fatal(err)
		}
	}
	if len(mut.remove) > 0 {
		if _, err := m.Remove(mut.remove); err != nil {
			t.Fatal(err)
		}
	}
	if len(mut.add) > 0 {
		if _, err := m.Add(mut.add); err != nil {
			t.Fatal(err)
		}
	}
	return len(mut.add) - len(mut.remove)
}

// TestBatchZeroAllocSteadyState proves the batch gather allocates
// nothing once its scratch has grown — on the pure index and on a
// mutated snapshot with a live overlay.
func TestBatchZeroAllocSteadyState(t *testing.T) {
	net := wideSpanNetwork(t, 400, 9)
	ix := NewIndex(net)
	m := NewMutableIndex(net, MutableOptions{RebuildFraction: -1})
	r := rng.New(3, 1)
	if _, err := m.Remove([]int{1, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add([]sensor.Camera{randomCamera(r), randomCamera(r)}); err != nil {
		t.Fatal(err)
	}
	batches := [][]geom.Vec{
		batchPoints(net, r, 256),
		batchPoints(net, r, 256),
	}
	var sc BatchScratch
	for _, pts := range batches { // warm-up: grow scratch to high-water mark
		ix.AppendCoveringBatch(&sc, pts)
		ix.AppendViewedDirectionsBatch(&sc, pts)
		m.AppendCoveringBatch(&sc, pts)
		m.AppendViewedDirectionsBatch(&sc, pts)
	}
	var sink int
	cases := []struct {
		name string
		fn   func([]geom.Vec)
	}{
		{"Index.AppendCoveringBatch", func(pts []geom.Vec) {
			cams, _ := ix.AppendCoveringBatch(&sc, pts)
			sink += len(cams)
		}},
		{"Index.AppendViewedDirectionsBatch", func(pts []geom.Vec) {
			dirs, _ := ix.AppendViewedDirectionsBatch(&sc, pts)
			sink += len(dirs)
		}},
		{"MutableIndex.AppendCoveringBatch", func(pts []geom.Vec) {
			cams, _ := m.AppendCoveringBatch(&sc, pts)
			sink += len(cams)
		}},
		{"MutableIndex.AppendViewedDirectionsBatch", func(pts []geom.Vec) {
			dirs, _ := m.AppendViewedDirectionsBatch(&sc, pts)
			sink += len(dirs)
		}},
	}
	for _, tc := range cases {
		i := 0
		allocs := testing.AllocsPerRun(50, func() {
			tc.fn(batches[i%len(batches)])
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per batch in steady state, want 0", tc.name, allocs)
		}
	}
	_ = sink
}
