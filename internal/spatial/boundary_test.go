package spatial

// Adversarial boundary cases for the guard-band cover test: query points
// placed exactly on a camera's radius or exactly on its aperture edge
// land inside the ±coverGuard·dist band, forcing the exact
// Camera.Covers fallback. Every verdict must still agree with the
// oracle bit-for-bit, and the wide-span test stresses the per-radius
// tiers with a 100× radius spread that the uniform index_test profile
// does not reach.

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// checkAgainstOracle asserts that the index agrees with the O(n) oracle
// on count, covering set size and viewed directions for point p.
func checkAgainstOracle(t *testing.T, net *sensor.Network, ix *Index, p geom.Vec, label string) {
	t.Helper()
	want := net.CoveringIndices(p)
	if got := ix.CountCovering(p); got != len(want) {
		t.Errorf("%s p=%v: CountCovering = %d, oracle %d", label, p, got, len(want))
	}
	if got := ix.AppendCovering(nil, p); len(got) != len(want) {
		t.Errorf("%s p=%v: AppendCovering yields %d cameras, oracle %d", label, p, len(got), len(want))
	}
	wantDirs := net.ViewedDirections(p)
	gotDirs := ix.AppendViewedDirections(nil, p)
	if len(gotDirs) != len(wantDirs) {
		t.Fatalf("%s p=%v: %d directions, oracle %d", label, p, len(gotDirs), len(wantDirs))
	}
	// Both sides enumerate cameras in index order within a radius class,
	// but the tiers reorder across classes; compare as multisets exactly.
	seen := make(map[float64]int, len(wantDirs))
	for _, d := range wantDirs {
		seen[d]++
	}
	for _, d := range gotDirs {
		if seen[d] == 0 {
			t.Fatalf("%s p=%v: direction %v not produced by oracle", label, p, d)
		}
		seen[d]--
	}
}

func TestIndexBoundaryExactCases(t *testing.T) {
	// Camera at the centre, aimed along +x, quarter-circle aperture.
	cam := sensor.Camera{
		Pos:      geom.V(0.5, 0.5),
		Orient:   0,
		Radius:   0.25,
		Aperture: math.Pi / 2,
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, []sensor.Camera{cam})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	r := cam.Radius
	h := cam.Radius / math.Sqrt2 // on the 45° aperture edge (dx == dy)
	cases := []struct {
		name string
		p    geom.Vec
	}{
		{"exact radius on axis", geom.V(0.5 + r, 0.5)},
		{"one ulp beyond radius", geom.V(math.Nextafter(0.5+r, 1), 0.5)},
		{"one ulp inside radius", geom.V(math.Nextafter(0.5+r, 0), 0.5)},
		{"exact aperture edge dx==dy", geom.V(0.5+h, 0.5+h)},
		{"exact aperture edge dx==-dy", geom.V(0.5+h, 0.5-h)},
		{"ulp outside aperture edge", geom.V(0.5+h, math.Nextafter(0.5+h, 1))},
		{"ulp inside aperture edge", geom.V(0.5+h, math.Nextafter(0.5+h, 0))},
		{"at the camera position", cam.Pos},
		{"behind the camera", geom.V(0.5 - 0.1, 0.5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantCount := 0
			if cam.Covers(geom.UnitTorus, tc.p) {
				wantCount = 1
			}
			if got := ix.CountCovering(tc.p); got != wantCount {
				t.Errorf("CountCovering = %d, Camera.Covers says %d", got, wantCount)
			}
			checkAgainstOracle(t, net, ix, tc.p, tc.name)
		})
	}
}

// TestIndexWideRadiusSpan is the randomized brute-force comparison on a
// heterogeneous profile spanning 100× in radius (0.002 … 0.2), so every
// tier of the CSR grid carries cameras and small tiers use a far finer
// cell size than the big-radius tier.
func TestIndexWideRadiusSpan(t *testing.T) {
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.002, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.02, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		net, err := deploy.Uniform(geom.UnitTorus, p, 400, rng.New(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		ix := NewIndex(net)
		r := rng.New(seed, 11)
		for trial := 0; trial < 100; trial++ {
			checkAgainstOracle(t, net, ix, geom.V(r.Float64(), r.Float64()), "uniform")
		}
		// Points planted around cameras, concentrated near each sector's
		// radius and aperture boundary.
		for i := 0; i < net.Len(); i++ {
			cam := net.Camera(i)
			dir := cam.Orient + (r.Float64()-0.5)*1.1*cam.Aperture
			dist := cam.Radius * (0.95 + 0.1*r.Float64())
			q := geom.UnitTorus.Translate(cam.Pos, geom.FromPolar(dist, dir))
			checkAgainstOracle(t, net, ix, q, "planted")
		}
	}
}

// TestAppendCoveringZeroAlloc proves the CSR gather appends into the
// caller-owned scratch without allocating once capacity is reached.
func TestAppendCoveringZeroAlloc(t *testing.T) {
	net := randomNetwork(t, 400, 3)
	ix := NewIndex(net)
	r := rng.New(5, 2)
	pts := make([]geom.Vec, 64)
	for i := range pts {
		pts[i] = geom.V(r.Float64(), r.Float64())
	}
	idxBuf := make([]int32, 0, net.Len())
	dirBuf := make([]float64, 0, net.Len())
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		p := pts[i%len(pts)]
		idxBuf = ix.AppendCovering(idxBuf[:0], p)
		dirBuf = ix.AppendViewedDirections(dirBuf[:0], p)
		i++
	})
	if allocs != 0 {
		t.Errorf("AppendCovering+AppendViewedDirections: %.1f allocs/op, want 0", allocs)
	}
}
