package spatial

import (
	"math"
	"sort"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func randomNetwork(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.08, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.15, Aperture: math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, p, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestIndexMatchesBruteForce(t *testing.T) {
	net := randomNetwork(t, 500, 42)
	ix := NewIndex(net)
	r := rng.New(7, 1)
	for trial := 0; trial < 500; trial++ {
		p := geom.V(r.Float64(), r.Float64())

		want := net.CoveringIndices(p)
		got := make([]int, 0, len(want))
		ix.ForEachCovering(p, func(cam *sensor.Camera) {
			// Recover the index by matching position: positions are
			// almost surely unique under uniform deployment.
			for i := 0; i < net.Len(); i++ {
				if net.Camera(i).Pos == cam.Pos {
					got = append(got, i)
					break
				}
			}
		})
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: index found %d cameras, brute force %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index %v, brute force %v", trial, got, want)
			}
		}
	}
}

func TestAppendViewedDirectionsMatchesBruteForce(t *testing.T) {
	net := randomNetwork(t, 300, 99)
	ix := NewIndex(net)
	r := rng.New(11, 1)
	buf := make([]float64, 0, 64)
	for trial := 0; trial < 300; trial++ {
		p := geom.V(r.Float64(), r.Float64())
		want := net.ViewedDirections(p)
		buf = ix.AppendViewedDirections(buf[:0], p)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(buf), len(want))
		}
		sort.Float64s(buf)
		sort.Float64s(want)
		for i := range want {
			if math.Abs(buf[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: directions differ at %d: %v vs %v", trial, i, buf[i], want[i])
			}
		}
	}
}

func TestCountCovering(t *testing.T) {
	net := randomNetwork(t, 400, 5)
	ix := NewIndex(net)
	r := rng.New(13, 1)
	for trial := 0; trial < 200; trial++ {
		p := geom.V(r.Float64(), r.Float64())
		if got, want := ix.CountCovering(p), len(net.CoveringIndices(p)); got != want {
			t.Fatalf("trial %d: CountCovering = %d, want %d", trial, got, want)
		}
	}
}

func TestIndexEmptyNetwork(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	if ix.Len() != 0 {
		t.Errorf("Len = %d", ix.Len())
	}
	if got := ix.CountCovering(geom.V(0.5, 0.5)); got != 0 {
		t.Errorf("CountCovering = %d", got)
	}
}

func TestIndexSingleCamera(t *testing.T) {
	cams := []sensor.Camera{{
		Pos: geom.V(0.5, 0.5), Orient: 0, Radius: 0.2, Aperture: math.Pi,
	}}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	if got := ix.CountCovering(geom.V(0.6, 0.5)); got != 1 {
		t.Errorf("point in sector: CountCovering = %d, want 1", got)
	}
	if got := ix.CountCovering(geom.V(0.4, 0.5)); got != 0 {
		t.Errorf("point behind camera: CountCovering = %d, want 0", got)
	}
}

func TestIndexLargeRadiusCoversWholeTorus(t *testing.T) {
	// Radius beyond the torus diameter forces the scan-everything path.
	cams := []sensor.Camera{{
		Pos: geom.V(0.1, 0.1), Orient: 0, Radius: 2, Aperture: 2 * math.Pi,
	}}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	r := rng.New(17, 0)
	for i := 0; i < 100; i++ {
		p := geom.V(r.Float64(), r.Float64())
		if ix.CountCovering(p) != 1 {
			t.Fatalf("omnidirectional full-range camera missed %v", p)
		}
	}
}

func TestIndexSeamQueries(t *testing.T) {
	// Cameras clustered at the torus corner; queries from the opposite
	// side of the seam must still find them.
	cams := []sensor.Camera{
		{Pos: geom.V(0.02, 0.02), Orient: math.Pi, Radius: 0.1, Aperture: 2 * math.Pi},
		{Pos: geom.V(0.98, 0.98), Orient: 0, Radius: 0.1, Aperture: 2 * math.Pi},
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(net)
	if got := ix.CountCovering(geom.V(0.99, 0.99)); got != 2 {
		t.Errorf("corner point sees %d cameras, want 2 (seam wrap)", got)
	}
}

func TestCellsPerSide(t *testing.T) {
	tests := []struct {
		name string
		side float64
		maxR float64
		n    int
		want int
	}{
		{name: "empty network", side: 1, maxR: 0.1, n: 0, want: 1},
		{name: "zero radius", side: 1, maxR: 0, n: 100, want: 1},
		{name: "radius bound", side: 1, maxR: 0.25, n: 10000, want: 4},
		{name: "count bound", side: 1, maxR: 0.001, n: 100, want: 21},
		{name: "hard cap", side: 1, maxR: 1e-9, n: 100000000, want: maxCellsPerSide},
		{name: "radius larger than side", side: 1, maxR: 3, n: 100, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cellsPerSide(tt.side, tt.maxR, tt.n); got != tt.want {
				t.Errorf("cellsPerSide(%v, %v, %d) = %d, want %d",
					tt.side, tt.maxR, tt.n, got, tt.want)
			}
		})
	}
}

func BenchmarkIndexQuery(b *testing.B) {
	p, err := sensor.Homogeneous(0.05, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, p, 10000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	ix := NewIndex(net)
	r := rng.New(2, 0)
	buf := make([]float64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.AppendViewedDirections(buf[:0], geom.V(r.Float64(), r.Float64()))
	}
}

func BenchmarkBruteForceQuery(b *testing.B) {
	p, err := sensor.Homogeneous(0.05, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, p, 10000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ViewedDirections(geom.V(r.Float64(), r.Float64()))
	}
}
