// Package spatial provides a toroidal bucket-grid index over a camera
// network. Grid sweeps ask "which cameras cover point P?" for hundreds of
// thousands of points; the index answers in O(local density) instead of
// O(n) by only examining cameras in cells within the maximum sensing
// radius of P. Results are always filtered through the exact
// Camera.Covers predicate, so the index returns exactly what a
// brute-force scan would.
package spatial

import (
	"math"

	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// maxCellsPerSide bounds index memory: cells² ints regardless of how
// small the sensing radius gets.
const maxCellsPerSide = 2048

// Index is an immutable spatial index over the cameras of one network.
type Index struct {
	torus    geom.Torus
	cameras  []sensor.Camera
	maxR     float64
	cells    int
	cellSize float64
	buckets  [][]int32
}

// NewIndex builds an index for the network. Building is O(n); the
// network's cameras are copied so later mutations of the source slice
// cannot corrupt the index.
func NewIndex(net *sensor.Network) *Index {
	cameras := net.Cameras()
	t := net.Torus()
	maxR := net.MaxRadius()

	cells := cellsPerSide(t.Side(), maxR, len(cameras))
	idx := &Index{
		torus:    t,
		cameras:  cameras,
		maxR:     maxR,
		cells:    cells,
		cellSize: t.Side() / float64(cells),
		buckets:  make([][]int32, cells*cells),
	}
	for i, c := range cameras {
		b := idx.bucketOf(c.Pos)
		idx.buckets[b] = append(idx.buckets[b], int32(i))
	}
	return idx
}

// cellsPerSide picks the grid resolution: ideally one cell per maximum
// sensing radius (so a query touches a 3×3 neighbourhood), but never more
// cells than roughly 2√n per side (so memory stays proportional to n) and
// never more than maxCellsPerSide.
func cellsPerSide(side, maxR float64, n int) int {
	if n == 0 || maxR <= 0 {
		return 1
	}
	cells := int(side / maxR)
	if byCount := int(2*math.Sqrt(float64(n))) + 1; cells > byCount {
		cells = byCount
	}
	if cells > maxCellsPerSide {
		cells = maxCellsPerSide
	}
	if cells < 1 {
		cells = 1
	}
	return cells
}

func (ix *Index) bucketOf(p geom.Vec) int {
	p = ix.torus.Wrap(p)
	cx := int(p.X / ix.cellSize)
	cy := int(p.Y / ix.cellSize)
	// Wrap guards against p.X/cellSize rounding to ix.cells.
	if cx >= ix.cells {
		cx = ix.cells - 1
	}
	if cy >= ix.cells {
		cy = ix.cells - 1
	}
	return cy*ix.cells + cx
}

// Len returns the number of indexed cameras.
func (ix *Index) Len() int { return len(ix.cameras) }

// Camera returns the i-th indexed camera.
func (ix *Index) Camera(i int) sensor.Camera { return ix.cameras[i] }

// Torus returns the operational region.
func (ix *Index) Torus() geom.Torus { return ix.torus }

// ForEachCovering calls fn for every camera that covers p, in
// unspecified order. fn must not retain the camera pointer past the
// call.
func (ix *Index) ForEachCovering(p geom.Vec, fn func(cam *sensor.Camera)) {
	p = ix.torus.Wrap(p)
	ix.forEachCandidate(p, func(i int32) {
		cam := &ix.cameras[i]
		if cam.Covers(ix.torus, p) {
			fn(cam)
		}
	})
}

// CountCovering returns the number of cameras covering p — the point's
// traditional k-coverage multiplicity.
func (ix *Index) CountCovering(p geom.Vec) int {
	count := 0
	ix.ForEachCovering(p, func(*sensor.Camera) { count++ })
	return count
}

// AppendViewedDirections appends the viewed directions (angle of P→S)
// of every camera covering p to dst and returns the extended slice.
// Passing a reused buffer avoids per-point allocations in grid sweeps.
func (ix *Index) AppendViewedDirections(dst []float64, p geom.Vec) []float64 {
	p = ix.torus.Wrap(p)
	ix.forEachCandidate(p, func(i int32) {
		cam := &ix.cameras[i]
		if cam.Covers(ix.torus, p) {
			dst = append(dst, cam.ViewedDirection(ix.torus, p))
		}
	})
	return dst
}

// forEachCandidate visits the indices of all cameras whose cell lies
// within the maximum sensing radius of p (plus one cell of slack). Each
// candidate is visited exactly once, including when the reach spans the
// whole torus.
func (ix *Index) forEachCandidate(p geom.Vec, fn func(i int32)) {
	if ix.cells == 1 {
		for _, i := range ix.buckets[0] {
			fn(i)
		}
		return
	}
	reach := int(ix.maxR/ix.cellSize) + 1
	if 2*reach+1 >= ix.cells {
		for _, bucket := range ix.buckets {
			for _, i := range bucket {
				fn(i)
			}
		}
		return
	}
	pcx := int(p.X / ix.cellSize)
	pcy := int(p.Y / ix.cellSize)
	if pcx >= ix.cells {
		pcx = ix.cells - 1
	}
	if pcy >= ix.cells {
		pcy = ix.cells - 1
	}
	for dy := -reach; dy <= reach; dy++ {
		cy := wrapCell(pcy+dy, ix.cells)
		row := cy * ix.cells
		for dx := -reach; dx <= reach; dx++ {
			cx := wrapCell(pcx+dx, ix.cells)
			for _, i := range ix.buckets[row+cx] {
				fn(i)
			}
		}
	}
}

func wrapCell(c, cells int) int {
	c %= cells
	if c < 0 {
		c += cells
	}
	return c
}
