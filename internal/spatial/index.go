// Package spatial provides a toroidal spatial index over a camera
// network. Grid sweeps ask "which cameras cover point P?" for hundreds of
// thousands of points; the index answers in O(local density) instead of
// O(n). Results are exactly — bit for bit — what a brute-force scan
// through the sensor.Camera.Covers predicate would produce: the hot path
// uses a cheaper algebraic form of the same test and falls back to the
// exact predicate inside a guard band around decision boundaries.
//
// # Layout
//
// Cameras are stored twice: as the original structs (for accessors) and
// as structure-of-arrays columns (positions, orientation sin/cos,
// squared radius, half-aperture and its cosine) so the per-candidate
// cover test is a branch-light scan over flat float64 slices.
//
// Cameras are partitioned into radius tiers (each tier spans at most a
// 2× radius ratio) and each tier gets its own bucket grid in compressed
// sparse row form: starts []int32 offsets into one flat camIdx []int32
// slice. A query visits each tier with that tier's own reach, so a
// heterogeneous network — the paper's whole subject — never scans the
// neighbourhood of its largest radius on behalf of its smallest group.
// Candidate enumeration is closure-free: the public methods walk the
// CSR rows inline and append into caller-owned scratch buffers.
package spatial

import (
	"math"
	"sort"

	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// maxCellsPerSide bounds index memory: cells² ints regardless of how
// small the sensing radius gets.
const maxCellsPerSide = 2048

// tierRatio is the maximum radius ratio within one tier: a camera's
// cells are scanned with at most tierRatio× its own radius as reach.
const tierRatio = 2

// coverGuard is the relative width of the guard band around the angular
// decision boundary. The algebraic test d·f̂ ≷ |d|·cos(φ/2) agrees with
// the exact atan2-based predicate whenever the two sides differ by more
// than a few ulps; any candidate within coverGuard·|d| of the boundary
// is re-examined with the exact predicate instead, keeping the index
// bit-identical to sensor.Camera.Covers for every input (including NaN,
// which fails both certainty tests and takes the exact path).
const coverGuard = 1e-9

// Index is an immutable spatial index over the cameras of one network.
type Index struct {
	torus   geom.Torus
	side    float64
	half    float64
	cameras []sensor.Camera

	// Structure-of-arrays camera columns, indexed like cameras.
	posX, posY []float64
	orient     []float64 // orientation, normalized to [0, 2π)
	radius2    []float64 // Radius²
	halfAper   []float64 // Aperture/2
	cosOrient  []float64
	sinOrient  []float64
	cosHalf    []float64 // cos(Aperture/2)

	tiers []tier
}

// tier is one radius class with its own CSR bucket grid.
type tier struct {
	maxR     float64
	cells    int
	cellSize float64
	starts   []int32 // length cells*cells+1; CSR row offsets into camIdx
	camIdx   []int32 // camera indices grouped by bucket
}

// NewIndex builds an index for the network. Building is O(n log n); the
// network's cameras are copied so later mutations of the source slice
// cannot corrupt the index.
func NewIndex(net *sensor.Network) *Index {
	cameras := net.Cameras()
	t := net.Torus()
	n := len(cameras)

	ix := &Index{
		torus:     t,
		side:      t.Side(),
		half:      t.Side() / 2,
		cameras:   cameras,
		posX:      make([]float64, n),
		posY:      make([]float64, n),
		orient:    make([]float64, n),
		radius2:   make([]float64, n),
		halfAper:  make([]float64, n),
		cosOrient: make([]float64, n),
		sinOrient: make([]float64, n),
		cosHalf:   make([]float64, n),
	}
	for i, c := range cameras {
		ix.posX[i] = c.Pos.X
		ix.posY[i] = c.Pos.Y
		ix.orient[i] = c.Orient
		ix.radius2[i] = c.Radius * c.Radius
		ix.halfAper[i] = c.Aperture / 2
		sin, cos := math.Sincos(c.Orient)
		ix.sinOrient[i] = sin
		ix.cosOrient[i] = cos
		ix.cosHalf[i] = math.Cos(c.Aperture / 2)
	}
	ix.buildTiers()
	return ix
}

// buildTiers partitions cameras into radius classes spanning at most
// tierRatio× each and builds one CSR bucket grid per class. Tier count
// is logarithmic in the radius spread, so even a network whose radii
// span 100× gets a handful of tiers, each scanned with its own reach.
func (ix *Index) buildTiers() {
	n := len(ix.cameras)
	if n == 0 {
		return
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return ix.cameras[order[a]].Radius < ix.cameras[order[b]].Radius
	})
	for lo := 0; lo < n; {
		base := ix.cameras[order[lo]].Radius
		hi := lo + 1
		for hi < n && ix.cameras[order[hi]].Radius <= tierRatio*base {
			hi++
		}
		ix.tiers = append(ix.tiers, ix.buildTier(order[lo:hi]))
		lo = hi
	}
}

// buildTier lays the given cameras into one CSR bucket grid sized for
// the group's largest radius.
func (ix *Index) buildTier(members []int32) tier {
	maxR := 0.0
	for _, i := range members {
		if r := ix.cameras[i].Radius; r > maxR {
			maxR = r
		}
	}
	cells := cellsPerSide(ix.side, maxR, len(members))
	t := tier{
		maxR:     maxR,
		cells:    cells,
		cellSize: ix.side / float64(cells),
		starts:   make([]int32, cells*cells+1),
		camIdx:   make([]int32, len(members)),
	}
	// Counting sort into CSR: bucket sizes, prefix sums, then placement.
	for _, i := range members {
		t.starts[t.bucketOf(ix.posX[i], ix.posY[i])+1]++
	}
	for b := 1; b < len(t.starts); b++ {
		t.starts[b] += t.starts[b-1]
	}
	cursor := make([]int32, cells*cells)
	for _, i := range members {
		b := t.bucketOf(ix.posX[i], ix.posY[i])
		t.camIdx[t.starts[b]+cursor[b]] = i
		cursor[b]++
	}
	return t
}

// bucketOf maps an already-wrapped position to its bucket.
func (t *tier) bucketOf(x, y float64) int32 {
	cx := int(x / t.cellSize)
	cy := int(y / t.cellSize)
	// Guard against x/cellSize rounding up to t.cells.
	if cx >= t.cells {
		cx = t.cells - 1
	}
	if cy >= t.cells {
		cy = t.cells - 1
	}
	return int32(cy*t.cells + cx)
}

// cellsPerSide picks a tier's grid resolution: ideally one cell per
// sensing radius (so a query touches a 3×3 neighbourhood), but never more
// cells than roughly 2√n per side (so memory stays proportional to n) and
// never more than maxCellsPerSide.
func cellsPerSide(side, maxR float64, n int) int {
	if n == 0 || maxR <= 0 {
		return 1
	}
	cells := int(side / maxR)
	if byCount := int(2*math.Sqrt(float64(n))) + 1; cells > byCount {
		cells = byCount
	}
	if cells > maxCellsPerSide {
		cells = maxCellsPerSide
	}
	if cells < 1 {
		cells = 1
	}
	return cells
}

// Len returns the number of indexed cameras.
func (ix *Index) Len() int { return len(ix.cameras) }

// Camera returns the i-th indexed camera.
func (ix *Index) Camera(i int) sensor.Camera { return ix.cameras[i] }

// Torus returns the operational region.
func (ix *Index) Torus() geom.Torus { return ix.torus }

// delta returns the shortest toroidal displacement from a to b for
// coordinates already wrapped into [0, side) — bit-identical to
// geom.Torus.Delta's per-coordinate result, whose math.Mod is the
// identity on |b−a| < side.
func (ix *Index) delta(a, b float64) float64 {
	d := b - a
	if d < -ix.half {
		d += ix.side
	} else if d >= ix.half {
		d -= ix.side
	}
	return d
}

// covers reports whether camera i covers the wrapped point (px, py).
// The result is bit-identical to sensor.Camera.Covers: the radius test
// is the same arithmetic, and the angular test uses the algebraic form
// with a guard band that defers to the exact predicate when the margin
// is within coverGuard·|d| of the boundary.
func (ix *Index) covers(i int32, px, py float64) bool {
	dx := ix.delta(ix.posX[i], px)
	dy := ix.delta(ix.posY[i], py)
	n2 := dx*dx + dy*dy
	if n2 > ix.radius2[i] {
		return false
	}
	if dx == 0 && dy == 0 {
		return true
	}
	// ∠(d, f) ≤ φ/2  ⟺  d·f̂ ≥ |d|·cos(φ/2)   (cos is monotone on [0, π]).
	dot := dx*ix.cosOrient[i] + dy*ix.sinOrient[i]
	norm := math.Sqrt(n2)
	rhs := norm * ix.cosHalf[i]
	margin := coverGuard * norm
	if dot-rhs > margin {
		return true
	}
	if rhs-dot > margin {
		return false
	}
	return ix.coversExact(i, dx, dy)
}

// coversExact is the boundary fallback: the angular predicate exactly
// as sensor.Camera.Covers computes it. Kept out of covers so the hot
// path stays small enough to inline.
func (ix *Index) coversExact(i int32, dx, dy float64) bool {
	return geom.AngularDistance(geom.Vec{X: dx, Y: dy}.Angle(), ix.orient[i]) <= ix.halfAper[i]
}

// viewedDirection returns the viewed direction of wrapped point (px,
// py) with respect to camera i, bit-identical to
// sensor.Camera.ViewedDirection (the angle of the vector P→S).
func (ix *Index) viewedDirection(i int32, px, py float64) float64 {
	return geom.Vec{X: ix.delta(px, ix.posX[i]), Y: ix.delta(py, ix.posY[i])}.Angle()
}

// tierSpan yields the cell-range parameters of one tier for a wrapped
// query point: when all is true the whole tier must be scanned;
// otherwise the (pcx, pcy, reach) neighbourhood applies.
func (t *tier) span(px, py float64) (pcx, pcy, reach int, all bool) {
	if t.cells == 1 {
		return 0, 0, 0, true
	}
	reach = int(t.maxR/t.cellSize) + 1
	if 2*reach+1 >= t.cells {
		return 0, 0, 0, true
	}
	pcx = int(px / t.cellSize)
	pcy = int(py / t.cellSize)
	if pcx >= t.cells {
		pcx = t.cells - 1
	}
	if pcy >= t.cells {
		pcy = t.cells - 1
	}
	return pcx, pcy, reach, false
}

// AppendCovering appends the indices of every camera covering p to dst
// and returns the extended slice, in unspecified order. Passing a
// reused buffer makes the query allocation-free in the steady state.
func (ix *Index) AppendCovering(dst []int32, p geom.Vec) []int32 {
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if ix.covers(i, p.X, p.Y) {
					dst = append(dst, i)
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if ix.covers(i, p.X, p.Y) {
						dst = append(dst, i)
					}
				}
			}
		}
	}
	return dst
}

// AppendViewedDirections appends the viewed directions (angle of P→S)
// of every camera covering p to dst and returns the extended slice.
// Passing a reused buffer avoids per-point allocations in grid sweeps.
func (ix *Index) AppendViewedDirections(dst []float64, p geom.Vec) []float64 {
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if ix.covers(i, p.X, p.Y) {
					dst = append(dst, ix.viewedDirection(i, p.X, p.Y))
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if ix.covers(i, p.X, p.Y) {
						dst = append(dst, ix.viewedDirection(i, p.X, p.Y))
					}
				}
			}
		}
	}
	return dst
}

// CountCovering returns the number of cameras covering p — the point's
// traditional k-coverage multiplicity.
func (ix *Index) CountCovering(p geom.Vec) int {
	p = ix.torus.Wrap(p)
	count := 0
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if ix.covers(i, p.X, p.Y) {
					count++
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if ix.covers(i, p.X, p.Y) {
						count++
					}
				}
			}
		}
	}
	return count
}

// ForEachCovering calls fn for every camera that covers p, in
// unspecified order. fn must not retain the camera pointer past the
// call. Prefer the Append* forms on hot paths; this form exists for
// callers that need the full camera record.
func (ix *Index) ForEachCovering(p geom.Vec, fn func(cam *sensor.Camera)) {
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if ix.covers(i, p.X, p.Y) {
					fn(&ix.cameras[i])
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if ix.covers(i, p.X, p.Y) {
						fn(&ix.cameras[i])
					}
				}
			}
		}
	}
}

func wrapCell(c, cells int) int {
	if c < 0 {
		return c + cells
	}
	if c >= cells {
		return c - cells
	}
	return c
}
