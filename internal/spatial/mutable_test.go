package spatial

import (
	"math"
	"sort"
	"sync"
	"testing"

	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// randomCamera draws one valid camera with heterogeneous parameters.
func randomCamera(r *rng.PCG) sensor.Camera {
	return sensor.Camera{
		Pos:      geom.V(r.Float64()*1.4-0.2, r.Float64()*1.4-0.2), // some out of [0,1): exercises wrapping
		Orient:   (r.Float64() - 0.5) * 4 * math.Pi,                // exercises normalization
		Radius:   0.04 + 0.16*r.Float64(),
		Aperture: 0.2 + (math.Pi-0.25)*r.Float64(),
		Group:    int(r.Uint64() % 3),
	}
}

// baseCameras draws n random cameras already normalized the way
// NewNetwork leaves them.
func baseCameras(t *testing.T, n int, r *rng.PCG) []sensor.Camera {
	t.Helper()
	cams := make([]sensor.Camera, n)
	for i := range cams {
		cams[i] = randomCamera(r)
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	return net.Cameras()
}

// oracleMutation mirrors one MutableIndex mutation batch on a flat
// camera list with the documented live-list semantics.
type oracleMutation struct {
	reaim  []ReaimOp
	remove []int
	add    []sensor.Camera
}

// randomMutation draws a batch against the current live size. It may
// leave any (or every) group empty.
func randomMutation(live int, r *rng.PCG) oracleMutation {
	var mut oracleMutation
	if live > 0 {
		for k := int(r.Uint64() % 3); k > 0; k-- {
			mut.reaim = append(mut.reaim, ReaimOp{
				Index:  int(r.Uint64() % uint64(live)),
				Orient: (r.Float64() - 0.5) * 4 * math.Pi,
			})
		}
		nRemove := int(r.Uint64() % uint64(min(live, 4)))
		perm := r.Perm(live)
		mut.remove = append(mut.remove, perm[:nRemove]...)
	}
	for k := int(r.Uint64() % 4); k > 0; k-- {
		mut.add = append(mut.add, randomCamera(r))
	}
	return mut
}

// applyOracle applies the batch to the flat list exactly as the index
// documents: reaim in place (normalized), remove by descending index,
// add wrapped+normalized at the tail.
func applyOracle(cams []sensor.Camera, mut oracleMutation) []sensor.Camera {
	for _, op := range mut.reaim {
		cams[op.Index].Orient = geom.NormalizeAngle(op.Orient)
	}
	sorted := append([]int(nil), mut.remove...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	for _, i := range sorted {
		cams = append(cams[:i], cams[i+1:]...)
	}
	for _, c := range mut.add {
		c.Pos = geom.UnitTorus.Wrap(c.Pos)
		c.Orient = geom.NormalizeAngle(c.Orient)
		cams = append(cams, c)
	}
	return cams
}

// applyIndex applies the same batch to the MutableIndex in the server's
// fixed order (reaim, remove, add), counting the version bumps.
func applyIndex(t *testing.T, m *MutableIndex, mut oracleMutation) uint64 {
	t.Helper()
	bumps := uint64(0)
	if len(mut.reaim) > 0 {
		if _, err := m.Reaim(mut.reaim); err != nil {
			t.Fatalf("Reaim: %v", err)
		}
		bumps++
	}
	if len(mut.remove) > 0 {
		if _, err := m.Remove(mut.remove); err != nil {
			t.Fatalf("Remove(%v): %v", mut.remove, err)
		}
		bumps++
	}
	if len(mut.add) > 0 {
		if _, err := m.Add(mut.add); err != nil {
			t.Fatalf("Add: %v", err)
		}
		bumps++
	}
	return bumps
}

// camKey orders cameras for multiset comparison.
func camKey(a, b sensor.Camera) bool {
	if a.Pos.X != b.Pos.X {
		return a.Pos.X < b.Pos.X
	}
	if a.Pos.Y != b.Pos.Y {
		return a.Pos.Y < b.Pos.Y
	}
	return a.Orient < b.Orient
}

// assertSourceEqual compares every Source read of got against a fresh
// immutable index over the oracle list, bit for bit, at points points.
func assertSourceEqual(t *testing.T, tag string, got Source, oracle []sensor.Camera, points []geom.Vec) {
	t.Helper()
	net, err := sensor.NewNetwork(geom.UnitTorus, oracle)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewIndex(net)
	if got.Len() != fresh.Len() {
		t.Fatalf("%s: Len = %d, fresh index has %d", tag, got.Len(), fresh.Len())
	}
	var dirsG, dirsF []float64
	for pi, p := range points {
		if g, f := got.CountCovering(p), fresh.CountCovering(p); g != f {
			t.Fatalf("%s: point %d: CountCovering %d vs fresh %d", tag, pi, g, f)
		}
		dirsG = got.AppendViewedDirections(dirsG[:0], p)
		dirsF = fresh.AppendViewedDirections(dirsF[:0], p)
		if len(dirsG) != len(dirsF) {
			t.Fatalf("%s: point %d: %d directions vs fresh %d", tag, pi, len(dirsG), len(dirsF))
		}
		sort.Float64s(dirsG)
		sort.Float64s(dirsF)
		for i := range dirsG {
			if dirsG[i] != dirsF[i] { // exact float bits, not approximate
				t.Fatalf("%s: point %d: direction[%d] = %v vs fresh %v", tag, pi, i, dirsG[i], dirsF[i])
			}
		}
		if g, f := len(got.AppendCovering(nil, p)), len(fresh.AppendCovering(nil, p)); g != f {
			t.Fatalf("%s: point %d: AppendCovering %d ids vs fresh %d", tag, pi, g, f)
		}
		var camsG, camsF []sensor.Camera
		got.ForEachCovering(p, func(c *sensor.Camera) { camsG = append(camsG, *c) })
		fresh.ForEachCovering(p, func(c *sensor.Camera) { camsF = append(camsF, *c) })
		sort.Slice(camsG, func(i, j int) bool { return camKey(camsG[i], camsG[j]) })
		sort.Slice(camsF, func(i, j int) bool { return camKey(camsF[i], camsF[j]) })
		if len(camsG) != len(camsF) {
			t.Fatalf("%s: point %d: ForEachCovering %d cameras vs fresh %d", tag, pi, len(camsG), len(camsF))
		}
		for i := range camsG {
			if camsG[i] != camsF[i] {
				t.Fatalf("%s: point %d: covering camera %d differs: %+v vs %+v", tag, pi, i, camsG[i], camsF[i])
			}
		}
	}
}

// TestMutableEquivalenceRandomized is the keystone of the overlay
// design: across ≥ 100 random mutation sequences, a MutableIndex must
// answer every Source read bit-identically to a fresh immutable index
// built from the final camera list — through the overlay, after a
// mid-sequence rebuild with further mutations on top, and after a
// final forced rebuild.
func TestMutableEquivalenceRandomized(t *testing.T) {
	const sequences = 120
	for seq := 0; seq < sequences; seq++ {
		r := rng.New(0xC0FFEE, uint64(seq))
		n := int(r.Uint64() % 61) // 0..60: empty bases are legal
		oracle := baseCameras(t, n, r)
		net, err := sensor.NewNetwork(geom.UnitTorus, oracle)
		if err != nil {
			t.Fatal(err)
		}
		// Automatic rebuilds off: the suite drives them explicitly so it
		// deterministically covers both pre- and post-rebuild states.
		m := NewMutableIndex(net, MutableOptions{RebuildFraction: -1})

		wantVersion := uint64(0)
		batches := 1 + int(r.Uint64()%8)
		for b := 0; b < batches; b++ {
			mut := randomMutation(len(oracle), r)
			oracle = applyOracle(oracle, mut)
			wantVersion += applyIndex(t, m, mut)

			points := make([]geom.Vec, 30)
			for i := range points {
				points[i] = geom.V(r.Float64()*1.2-0.1, r.Float64()*1.2-0.1)
			}
			assertSourceEqual(t, "overlay", m, oracle, points)
			if got := m.Version(); got != wantVersion {
				t.Fatalf("seq %d batch %d: version %d, want %d", seq, b, got, wantVersion)
			}
			if b == batches/2 {
				// Mid-sequence rebuild; later batches mutate the rebuilt base.
				m.ForceRebuild()
				m.WaitRebuild()
				if m.OverlaySize() != 0 {
					t.Fatalf("seq %d: overlay not empty after rebuild: %d", seq, m.OverlaySize())
				}
				assertSourceEqual(t, "post-rebuild", m, oracle, points)
			}
		}

		// The live list itself must match the oracle exactly.
		live := m.Cameras()
		if len(live) != len(oracle) {
			t.Fatalf("seq %d: live list has %d cameras, oracle %d", seq, len(live), len(oracle))
		}
		for i := range live {
			if live[i] != oracle[i] {
				t.Fatalf("seq %d: live camera %d = %+v, oracle %+v", seq, i, live[i], oracle[i])
			}
		}

		// Final rebuild: representation changes, verdicts and version must
		// not.
		v := m.Version()
		m.ForceRebuild()
		m.WaitRebuild()
		if got := m.Version(); got != v {
			t.Fatalf("seq %d: rebuild bumped version %d → %d", seq, v, got)
		}
		points := make([]geom.Vec, 30)
		for i := range points {
			points[i] = geom.V(r.Float64(), r.Float64())
		}
		assertSourceEqual(t, "final-rebuild", m, oracle, points)
	}
}

// TestMutableThresholdRebuild checks that overlay growth past the
// configured fraction triggers the background rebuild and that the
// OnRebuild hook fires.
func TestMutableThresholdRebuild(t *testing.T) {
	r := rng.New(3, 0)
	oracle := baseCameras(t, 40, r)
	net, err := sensor.NewNetwork(geom.UnitTorus, oracle)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	hooks := 0
	m := NewMutableIndex(net, MutableOptions{
		RebuildFraction: 0.1,
		OnRebuild:       func() { mu.Lock(); hooks++; mu.Unlock() },
	})
	// 8 added cameras > 10% of 40: the rebuild must kick in by itself.
	var adds []sensor.Camera
	for i := 0; i < 8; i++ {
		adds = append(adds, randomCamera(r))
	}
	if _, err := m.Add(adds); err != nil {
		t.Fatal(err)
	}
	for _, c := range adds {
		c.Pos = geom.UnitTorus.Wrap(c.Pos)
		c.Orient = geom.NormalizeAngle(c.Orient)
		oracle = append(oracle, c)
	}
	m.WaitRebuild()
	if m.Rebuilds() == 0 {
		t.Fatal("overlay past threshold never rebuilt")
	}
	if m.OverlaySize() != 0 {
		t.Fatalf("overlay size %d after rebuild, want 0", m.OverlaySize())
	}
	mu.Lock()
	h := hooks
	mu.Unlock()
	if h == 0 {
		t.Fatal("OnRebuild hook never fired")
	}
	points := make([]geom.Vec, 50)
	for i := range points {
		points[i] = geom.V(r.Float64(), r.Float64())
	}
	assertSourceEqual(t, "threshold-rebuild", m, oracle, points)
}

// TestMutableValidation pins the all-or-nothing mutation contract:
// invalid batches error without changing state or version.
func TestMutableValidation(t *testing.T) {
	r := rng.New(5, 0)
	net, err := sensor.NewNetwork(geom.UnitTorus, baseCameras(t, 10, r))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutableIndex(net, MutableOptions{})
	v := m.Version()
	if _, err := m.Remove([]int{3, 3}); err == nil {
		t.Error("duplicate remove index accepted")
	}
	if _, err := m.Remove([]int{10}); err == nil {
		t.Error("out-of-range remove index accepted")
	}
	if _, err := m.Reaim([]ReaimOp{{Index: -1}}); err == nil {
		t.Error("negative reaim index accepted")
	}
	if _, err := m.Add([]sensor.Camera{{Radius: -1}}); err == nil {
		t.Error("invalid camera accepted")
	}
	if got := m.Version(); got != v {
		t.Fatalf("failed mutations bumped version %d → %d", v, got)
	}
	if got := m.Len(); got != 10 {
		t.Fatalf("failed mutations changed Len to %d", got)
	}
	// Empty batches are no-ops, not bumps.
	if ver, err := m.Reaim(nil); err != nil || ver != v {
		t.Fatalf("empty Reaim: version %d err %v, want %d and nil", ver, err, v)
	}
}

// TestMutableSnapshotPinning checks that a View is frozen: mutations
// and rebuilds after Snapshot never change its answers or version.
func TestMutableSnapshotPinning(t *testing.T) {
	r := rng.New(7, 0)
	oracle := baseCameras(t, 25, r)
	net, err := sensor.NewNetwork(geom.UnitTorus, oracle)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutableIndex(net, MutableOptions{RebuildFraction: -1})
	points := make([]geom.Vec, 40)
	for i := range points {
		points[i] = geom.V(r.Float64(), r.Float64())
	}
	view := m.Snapshot()
	pinned := append([]sensor.Camera(nil), oracle...)

	if _, err := m.Remove([]int{0, 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add([]sensor.Camera{randomCamera(r)}); err != nil {
		t.Fatal(err)
	}
	m.ForceRebuild()
	m.WaitRebuild()

	if view.Version() != 0 {
		t.Fatalf("pinned view version %d, want 0", view.Version())
	}
	assertSourceEqual(t, "pinned-view", view, pinned, points)
}

// TestMutableConcurrentReads races lock-free readers against mutations
// and rebuilds; correctness is bit-checked by the equivalence suite,
// this test exists for the race detector and for liveness.
func TestMutableConcurrentReads(t *testing.T) {
	r := rng.New(11, 0)
	net, err := sensor.NewNetwork(geom.UnitTorus, baseCameras(t, 50, r))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutableIndex(net, MutableOptions{RebuildFraction: 0.05})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := rng.New(13, uint64(g))
			var dirs []float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := geom.V(rr.Float64(), rr.Float64())
				dirs = m.AppendViewedDirections(dirs[:0], p)
				m.CountCovering(p)
				m.Snapshot().Len()
			}
		}(g)
	}
	for i := 0; i < 60; i++ {
		live := m.Len()
		if live > 1 && i%3 == 0 {
			if _, err := m.Remove([]int{int(r.Uint64() % uint64(live))}); err != nil {
				t.Error(err)
			}
		} else if live > 0 && i%3 == 1 {
			if _, err := m.Reaim([]ReaimOp{{Index: int(r.Uint64() % uint64(live)), Orient: r.Float64()}}); err != nil {
				t.Error(err)
			}
		} else {
			if _, err := m.Add([]sensor.Camera{randomCamera(r)}); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	m.WaitRebuild()
}
