// Mutable deployments: a versioned read-through overlay on top of the
// immutable CSR Index.
//
// A MutableIndex starts from a base Index and absorbs churn — cameras
// failing, being added, or re-aiming — as a Delta overlay: a bitmap of
// removed base cameras plus a flat list of added cameras consulted after
// the CSR gather. Every mutation publishes a fresh immutable snapshot
// (base, overlay, version) behind one atomic pointer, so readers never
// lock: the overlay-empty fast path is a single atomic load and a nil
// check before delegating to the base Index unchanged (the same shape
// faultinject uses for its inert path), which keeps Checker-level reads
// at zero allocations per point.
//
// Results remain bit-identical to a fresh NewIndex over the live camera
// list: overlay cameras are tested with the exact sensor.Camera
// predicates, which the Index's guard-banded algebraic test matches bit
// for bit by contract, and every verdict downstream depends only on the
// multiset of covering cameras' viewed directions, never their order.
//
// Once the overlay outgrows a configurable fraction of the base, a
// background rebuild folds it into a fresh CSR index and swaps it in
// atomically (re-checking the version so a rebuild racing a mutation
// installs nothing stale). Rebuilds change the representation, not the
// deployment: the version counter is bumped by mutations only.
package spatial

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// DefaultRebuildFraction is the overlay-to-base size ratio past which a
// background CSR rebuild is triggered when MutableOptions leaves
// RebuildFraction zero.
const DefaultRebuildFraction = 0.25

// Source is the read interface shared by the immutable *Index and the
// overlay-backed *MutableIndex (and its pinned *View). core.Checker and
// core.MultiChecker evaluate against a Source, so one checker code path
// serves both frozen and churning deployments.
type Source interface {
	// AppendCovering appends the indices of every camera covering p.
	// For a MutableIndex the indices are snapshot-scoped: base cameras
	// keep their base index, overlay-added cameras follow at
	// baseLen+j. Use AppendViewedDirections/ForEachCovering when camera
	// identity across mutations matters.
	AppendCovering(dst []int32, p geom.Vec) []int32
	// AppendViewedDirections appends the viewed directions of every
	// camera covering p.
	AppendViewedDirections(dst []float64, p geom.Vec) []float64
	// AppendCoveringBatch answers AppendCovering for a whole point batch
	// through the cell-sorted gather: cams[offs[i]:offs[i+1]] equals the
	// per-point AppendCovering output element for element. The returned
	// slices are owned by sc and valid until its next batch call.
	AppendCoveringBatch(sc *BatchScratch, points []geom.Vec) (cams []int32, offs []int32)
	// AppendViewedDirectionsBatch is AppendCoveringBatch for viewed
	// directions.
	AppendViewedDirectionsBatch(sc *BatchScratch, points []geom.Vec) (dirs []float64, offs []int32)
	// CountCovering returns the point's k-coverage multiplicity.
	CountCovering(p geom.Vec) int
	// ForEachCovering calls fn for every covering camera.
	ForEachCovering(p geom.Vec, fn func(cam *sensor.Camera))
	// Torus returns the operational region.
	Torus() geom.Torus
	// Len returns the number of live cameras.
	Len() int
	// Version returns the deployment version the reads reflect (0 for
	// an immutable Index).
	Version() uint64
}

// Version returns 0: an immutable Index is always the pristine
// registration state. It exists so *Index satisfies Source.
func (ix *Index) Version() uint64 { return 0 }

// Compile-time Source conformance.
var (
	_ Source = (*Index)(nil)
	_ Source = (*MutableIndex)(nil)
	_ Source = (*View)(nil)
)

// ReaimOp re-aims one live camera to a new orientation (radians,
// normalized on apply).
type ReaimOp struct {
	// Index addresses the camera in the current live list (Cameras()
	// order), exactly as journaled mutation records do.
	Index int
	// Orient is the new facing direction.
	Orient float64
}

// MutableOptions parameterises NewMutableIndex.
type MutableOptions struct {
	// RebuildFraction is the overlay-size / base-size ratio past which
	// a background rebuild folds the overlay into a fresh CSR index
	// (0 selects DefaultRebuildFraction; negative disables automatic
	// rebuilds — ForceRebuild still works).
	RebuildFraction float64
	// BaseVersion is the version the pristine base state carries.
	// Journal replay of a compaction-folded registration passes the
	// folded-in mutation count here so versions stay monotonic across
	// restarts.
	BaseVersion uint64
	// OnRebuild, when non-nil, runs (outside all index locks) after a
	// background or forced rebuild installs a fresh base. Telemetry
	// hook.
	OnRebuild func()
}

// overlay is the delta between the base Index and the live deployment.
// An overlay is immutable once published inside a snapshot; mutations
// copy-on-write a new one.
type overlay struct {
	// removed is a bitmap over base camera indices; removedCount is its
	// popcount.
	removed      []uint64
	removedCount int
	// added holds overlay cameras (already wrapped and normalized, like
	// Network construction would leave them).
	added []sensor.Camera
}

func (o *overlay) isRemoved(i int32) bool {
	return o.removed != nil && o.removed[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

func (o *overlay) size() int { return o.removedCount + len(o.added) }

// clone deep-copies the overlay (or conjures an empty one for nil) so
// the published snapshot's overlay is never written again.
func (o *overlay) clone(baseLen int) *overlay {
	c := &overlay{}
	if o != nil {
		c.removedCount = o.removedCount
		if o.removed != nil {
			c.removed = append([]uint64(nil), o.removed...)
		}
		c.added = append([]sensor.Camera(nil), o.added...)
	}
	if c.removed == nil {
		c.removed = make([]uint64, (baseLen+63)/64)
	}
	return c
}

func (o *overlay) setRemoved(i int32) {
	o.removed[uint(i)>>6] |= 1 << (uint(i) & 63)
	o.removedCount++
}

// mutSnapshot is one immutable published state of a MutableIndex.
type mutSnapshot struct {
	base    *Index
	delta   *overlay // nil ⇒ reads are pure base (the fast path)
	version uint64
}

// camLoc records where one live camera lives in the current snapshot:
// exactly one of base (index into the base Index) or add (index into
// the overlay's added list) is ≥ 0.
type camLoc struct {
	base, add int32
}

// MutableIndex is a spatial index that accepts mutations. Reads are
// lock-free and safe from any number of goroutines concurrently with
// mutations; mutations are serialized internally. See the package
// comment of this file for the design.
type MutableIndex struct {
	opts MutableOptions
	cur  atomic.Pointer[mutSnapshot]

	mu         sync.Mutex
	cams       []sensor.Camera // authoritative live list, mutation-order semantics
	locs       []camLoc        // parallel to cams
	rebuilding bool
	rebuilds   int64
	done       *sync.Cond // broadcast when a rebuild finishes
}

// NewMutableIndex builds a mutable index whose pristine state is the
// given network.
func NewMutableIndex(net *sensor.Network, opts MutableOptions) *MutableIndex {
	base := NewIndex(net)
	cams := net.Cameras()
	locs := make([]camLoc, len(cams))
	for i := range locs {
		locs[i] = camLoc{base: int32(i), add: -1}
	}
	m := &MutableIndex{opts: opts, cams: cams, locs: locs}
	m.done = sync.NewCond(&m.mu)
	m.cur.Store(&mutSnapshot{base: base, version: opts.BaseVersion})
	return m
}

// Reaim re-points the addressed live cameras and returns the new
// version. Indices address the current live list (Cameras() order); the
// same index may appear more than once (last orientation wins). An
// out-of-range index mutates nothing.
func (m *MutableIndex) Reaim(ops []ReaimOp) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ops) == 0 {
		return m.cur.Load().version, nil
	}
	for _, op := range ops {
		if op.Index < 0 || op.Index >= len(m.cams) {
			return 0, fmt.Errorf("spatial: reaim index %d out of range [0, %d)", op.Index, len(m.cams))
		}
	}
	s := m.cur.Load()
	d := s.delta.clone(s.base.Len())
	for _, op := range ops {
		cam := m.cams[op.Index]
		cam.Orient = geom.NormalizeAngle(op.Orient)
		m.cams[op.Index] = cam
		loc := m.locs[op.Index]
		if loc.base >= 0 {
			// Re-aim of a base camera = remove + add: hide the base slot
			// and serve the re-aimed copy from the overlay.
			d.setRemoved(loc.base)
			d.added = append(d.added, cam)
			m.locs[op.Index] = camLoc{base: -1, add: int32(len(d.added) - 1)}
		} else {
			d.added[loc.add] = cam
		}
	}
	return m.publishLocked(s, d), nil
}

// Remove deletes the addressed live cameras and returns the new
// version. Indices address the current live list and must be unique and
// in range; an invalid list mutates nothing.
func (m *MutableIndex) Remove(indices []int) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(indices) == 0 {
		return m.cur.Load().version, nil
	}
	sorted := append([]int(nil), indices...)
	insertionSortDesc(sorted)
	for k, i := range sorted {
		if i < 0 || i >= len(m.cams) {
			return 0, fmt.Errorf("spatial: remove index %d out of range [0, %d)", i, len(m.cams))
		}
		if k > 0 && sorted[k-1] == i {
			return 0, fmt.Errorf("spatial: remove index %d listed twice", i)
		}
	}
	s := m.cur.Load()
	d := s.delta.clone(s.base.Len())
	// Descending order keeps the not-yet-processed indices stable while
	// earlier entries are deleted.
	for _, i := range sorted {
		loc := m.locs[i]
		if loc.base >= 0 {
			d.setRemoved(loc.base)
		} else {
			d.added = append(d.added[:loc.add], d.added[loc.add+1:]...)
			for k := range m.locs {
				if m.locs[k].add > loc.add {
					m.locs[k].add--
				}
			}
		}
		m.cams = append(m.cams[:i], m.cams[i+1:]...)
		m.locs = append(m.locs[:i], m.locs[i+1:]...)
	}
	return m.publishLocked(s, d), nil
}

// Add appends validated cameras to the live list (positions wrapped,
// orientations normalized — exactly what sensor.NewNetwork would do)
// and returns the new version. An invalid camera mutates nothing.
func (m *MutableIndex) Add(cams []sensor.Camera) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(cams) == 0 {
		return m.cur.Load().version, nil
	}
	for i, c := range cams {
		if err := c.Validate(); err != nil {
			return 0, fmt.Errorf("spatial: add camera %d: %w", i, err)
		}
	}
	s := m.cur.Load()
	t := s.base.Torus()
	d := s.delta.clone(s.base.Len())
	for _, c := range cams {
		c.Pos = t.Wrap(c.Pos)
		c.Orient = geom.NormalizeAngle(c.Orient)
		d.added = append(d.added, c)
		m.cams = append(m.cams, c)
		m.locs = append(m.locs, camLoc{base: -1, add: int32(len(d.added) - 1)})
	}
	return m.publishLocked(s, d), nil
}

// publishLocked installs the mutated overlay as a new snapshot (version
// +1) and kicks the background rebuild when the overlay is past the
// threshold. Caller holds m.mu.
func (m *MutableIndex) publishLocked(prev *mutSnapshot, d *overlay) uint64 {
	if d.size() == 0 {
		// The mutation cancelled the whole overlay (e.g. removing a
		// previously added camera): publish the pure-base fast path.
		d = nil
	}
	next := &mutSnapshot{base: prev.base, delta: d, version: prev.version + 1}
	m.cur.Store(next)
	m.maybeRebuildLocked(next)
	return next.version
}

// maybeRebuildLocked starts the background fold of an oversized overlay
// into a fresh CSR base. Caller holds m.mu.
func (m *MutableIndex) maybeRebuildLocked(s *mutSnapshot) {
	frac := m.opts.RebuildFraction
	if frac < 0 {
		return
	}
	if frac == 0 {
		frac = DefaultRebuildFraction
	}
	if s.delta == nil || m.rebuilding {
		return
	}
	baseLen := s.base.Len()
	if baseLen < 1 {
		baseLen = 1
	}
	if float64(s.delta.size()) <= frac*float64(baseLen) {
		return
	}
	m.rebuilding = true
	cams := append([]sensor.Camera(nil), m.cams...)
	go m.rebuild(cams, s.version)
}

// rebuild constructs a fresh CSR index from the live camera list
// outside the lock and installs it only if the version is still the one
// it was built for; a mutation that raced the build restarts it from
// the newer list. Rebuilds never bump the version — they change the
// representation, not the deployment.
func (m *MutableIndex) rebuild(cams []sensor.Camera, version uint64) {
	t := m.cur.Load().base.Torus()
	for {
		fresh := newIndexFromLive(t, cams)
		if fresh == nil {
			m.mu.Lock()
			m.rebuilding = false
			m.done.Broadcast()
			m.mu.Unlock()
			return
		}
		m.mu.Lock()
		s := m.cur.Load()
		if s.version != version {
			// Stale build: retry against the current live list.
			cams = append(cams[:0], m.cams...)
			version = s.version
			m.mu.Unlock()
			continue
		}
		m.cur.Store(&mutSnapshot{base: fresh, version: version})
		for i := range m.locs {
			m.locs[i] = camLoc{base: int32(i), add: -1}
		}
		m.rebuilds++
		cb := m.opts.OnRebuild
		m.rebuilding = false
		m.done.Broadcast()
		m.mu.Unlock()
		if cb != nil {
			cb()
		}
		return
	}
}

// newIndexFromLive builds an Index straight from an already-normalized
// live camera list. The live list went through NewNetwork (or the
// equivalent wrap+normalize in Add/Reaim) already, and both operations
// are idempotent, so routing through NewNetwork again is bit-preserving
// — this helper only skips its re-validation.
func newIndexFromLive(t geom.Torus, cams []sensor.Camera) *Index {
	net, err := sensor.NewNetwork(t, cams)
	if err != nil {
		// Unreachable: every live camera was validated on entry. Keep
		// serving the overlay rather than panicking in a background
		// goroutine.
		return nil
	}
	return NewIndex(net)
}

// ForceRebuild synchronously folds the current overlay into a fresh
// base (a no-op when the overlay is empty). Tests use it to compare
// pre- and post-rebuild states deterministically.
func (m *MutableIndex) ForceRebuild() {
	m.mu.Lock()
	if m.rebuilding {
		m.mu.Unlock()
		m.WaitRebuild()
		return
	}
	s := m.cur.Load()
	if s.delta == nil {
		m.mu.Unlock()
		return
	}
	m.rebuilding = true
	cams := append([]sensor.Camera(nil), m.cams...)
	m.mu.Unlock()
	m.rebuild(cams, s.version)
}

// WaitRebuild blocks until no rebuild is in flight.
func (m *MutableIndex) WaitRebuild() {
	m.mu.Lock()
	for m.rebuilding {
		m.done.Wait()
	}
	m.mu.Unlock()
}

// Rebuilds returns how many rebuilds have been installed.
func (m *MutableIndex) Rebuilds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebuilds
}

// Version returns the current deployment version: BaseVersion at
// construction, +1 per applied mutation batch (Reaim/Remove/Add call).
func (m *MutableIndex) Version() uint64 { return m.cur.Load().version }

// OverlaySize returns the current overlay cost: removed + added
// cameras not yet folded into the base CSR index.
func (m *MutableIndex) OverlaySize() int {
	if s := m.cur.Load(); s.delta != nil {
		return s.delta.size()
	}
	return 0
}

// Len returns the number of live cameras.
func (m *MutableIndex) Len() int { return m.cur.Load().len() }

// Torus returns the operational region.
func (m *MutableIndex) Torus() geom.Torus { return m.cur.Load().base.Torus() }

// Cameras returns a copy of the live camera list, in mutation-order
// semantics: reaimed cameras keep their position, removed ones are
// deleted, added ones append. Mutation indices address this order.
func (m *MutableIndex) Cameras() []sensor.Camera {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]sensor.Camera(nil), m.cams...)
}

// Network materialises the live camera list as a sensor.Network.
func (m *MutableIndex) Network() (*sensor.Network, error) {
	return sensor.NewNetwork(m.Torus(), m.Cameras())
}

// MaxRadius returns the largest live sensing radius (0 when empty).
func (m *MutableIndex) MaxRadius() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := 0.0
	for _, c := range m.cams {
		if c.Radius > r {
			r = c.Radius
		}
	}
	return r
}

// TotalSensingArea returns Σ s_i over the live cameras.
func (m *MutableIndex) TotalSensingArea() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := 0.0
	for _, c := range m.cams {
		s += c.SensingArea()
	}
	return s
}

// Snapshot pins the current state as an immutable View, so a
// multi-point request (batch query, region survey) evaluates every
// point against one consistent version even while mutations land.
func (m *MutableIndex) Snapshot() *View { return &View{s: m.cur.Load()} }

// AppendCovering implements Source. See Source for the index semantics
// of overlay-added cameras.
func (m *MutableIndex) AppendCovering(dst []int32, p geom.Vec) []int32 {
	s := m.cur.Load()
	if s.delta == nil {
		return s.base.AppendCovering(dst, p)
	}
	return s.appendCovering(dst, p)
}

// AppendViewedDirections implements Source.
func (m *MutableIndex) AppendViewedDirections(dst []float64, p geom.Vec) []float64 {
	s := m.cur.Load()
	if s.delta == nil {
		return s.base.AppendViewedDirections(dst, p)
	}
	return s.appendViewedDirections(dst, p)
}

// CountCovering implements Source.
func (m *MutableIndex) CountCovering(p geom.Vec) int {
	s := m.cur.Load()
	if s.delta == nil {
		return s.base.CountCovering(p)
	}
	return s.countCovering(p)
}

// ForEachCovering implements Source.
func (m *MutableIndex) ForEachCovering(p geom.Vec, fn func(cam *sensor.Camera)) {
	s := m.cur.Load()
	if s.delta == nil {
		s.base.ForEachCovering(p, fn)
		return
	}
	s.forEachCovering(p, fn)
}

// View is one pinned snapshot of a MutableIndex: an immutable Source
// whose answers never change, regardless of later mutations or
// rebuilds. Obtain with MutableIndex.Snapshot.
type View struct {
	s *mutSnapshot
}

// Version returns the deployment version the view was pinned at.
func (v *View) Version() uint64 { return v.s.version }

// Len returns the view's live camera count.
func (v *View) Len() int { return v.s.len() }

// Torus returns the operational region.
func (v *View) Torus() geom.Torus { return v.s.base.Torus() }

// AppendCovering implements Source.
func (v *View) AppendCovering(dst []int32, p geom.Vec) []int32 {
	if v.s.delta == nil {
		return v.s.base.AppendCovering(dst, p)
	}
	return v.s.appendCovering(dst, p)
}

// AppendViewedDirections implements Source.
func (v *View) AppendViewedDirections(dst []float64, p geom.Vec) []float64 {
	if v.s.delta == nil {
		return v.s.base.AppendViewedDirections(dst, p)
	}
	return v.s.appendViewedDirections(dst, p)
}

// CountCovering implements Source.
func (v *View) CountCovering(p geom.Vec) int {
	if v.s.delta == nil {
		return v.s.base.CountCovering(p)
	}
	return v.s.countCovering(p)
}

// ForEachCovering implements Source.
func (v *View) ForEachCovering(p geom.Vec, fn func(cam *sensor.Camera)) {
	if v.s.delta == nil {
		v.s.base.ForEachCovering(p, fn)
		return
	}
	v.s.forEachCovering(p, fn)
}

func (s *mutSnapshot) len() int {
	n := s.base.Len()
	if s.delta != nil {
		n += len(s.delta.added) - s.delta.removedCount
	}
	return n
}

// The overlay read paths below repeat the base Index's CSR tier walk
// with a removed-bitmap check per candidate, then scan the added
// cameras with the exact sensor predicates — which the Index's
// algebraic+guard-band test is bit-identical to, so an added camera
// answers exactly as it would after a rebuild folds it into the CSR.

func (s *mutSnapshot) appendCovering(dst []int32, p geom.Vec) []int32 {
	ix, d := s.base, s.delta
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
					dst = append(dst, i)
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
						dst = append(dst, i)
					}
				}
			}
		}
	}
	for j := range d.added {
		if d.added[j].Covers(ix.torus, p) {
			dst = append(dst, int32(ix.Len()+j))
		}
	}
	return dst
}

func (s *mutSnapshot) appendViewedDirections(dst []float64, p geom.Vec) []float64 {
	ix, d := s.base, s.delta
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
					dst = append(dst, ix.viewedDirection(i, p.X, p.Y))
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
						dst = append(dst, ix.viewedDirection(i, p.X, p.Y))
					}
				}
			}
		}
	}
	for j := range d.added {
		if d.added[j].Covers(ix.torus, p) {
			dst = append(dst, d.added[j].ViewedDirection(ix.torus, p))
		}
	}
	return dst
}

func (s *mutSnapshot) countCovering(p geom.Vec) int {
	ix, d := s.base, s.delta
	p = ix.torus.Wrap(p)
	count := 0
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
					count++
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
						count++
					}
				}
			}
		}
	}
	for j := range d.added {
		if d.added[j].Covers(ix.torus, p) {
			count++
		}
	}
	return count
}

func (s *mutSnapshot) forEachCovering(p geom.Vec, fn func(cam *sensor.Camera)) {
	ix, d := s.base, s.delta
	p = ix.torus.Wrap(p)
	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		pcx, pcy, reach, all := t.span(p.X, p.Y)
		if all {
			for _, i := range t.camIdx {
				if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
					fn(&ix.cameras[i])
				}
			}
			continue
		}
		for dy := -reach; dy <= reach; dy++ {
			row := wrapCell(pcy+dy, t.cells) * t.cells
			for dx := -reach; dx <= reach; dx++ {
				b := row + wrapCell(pcx+dx, t.cells)
				for _, i := range t.camIdx[t.starts[b]:t.starts[b+1]] {
					if !d.isRemoved(i) && ix.covers(i, p.X, p.Y) {
						fn(&ix.cameras[i])
					}
				}
			}
		}
	}
	for j := range d.added {
		if d.added[j].Covers(ix.torus, p) {
			fn(&d.added[j])
		}
	}
}

// insertionSortDesc sorts a small index list descending without pulling
// in sort's comparator allocations on this path.
func insertionSortDesc(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] > a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
