// Batch gather: the cell-sorted execution path of the spatial index.
//
// Grid workloads — surveys, sweeps, job bands — evaluate dense point
// sets whose neighbours land in the same bucket of every tier grid. The
// point-at-a-time entry points re-derive that bucket, re-walk the same
// 3×3 cell neighbourhood, and re-scan the same CSR candidate rows for
// every single point. The batch path amortises all of that: points are
// sorted by grid cell once per tier (a single []int64 key sort over
// reusable scratch, zero allocations in the steady state), each occupied
// cell-neighbourhood is walked exactly once per batch, and every
// candidate row is scanned candidate-major — the camera's SoA columns
// (position, orientation sin/cos, radius², cos φ/2) are loaded into
// registers once and tested against the whole cell's points — instead of
// point-major.
//
// Two further savings fall out of the cell grouping:
//
//   - Per-tier span arithmetic (reach, whole-tier fallback) hoists from
//     per-point to per-batch, and the toroidal Wrap of each point runs
//     once per batch rather than once per call.
//   - A conservative cell-level prefilter rejects candidates whose disc
//     cannot reach any point of the group: the group's bounding box is
//     compared against the candidate's radius with a slack far larger
//     than the accumulated rounding error, so a skipped candidate is one
//     the exact per-point test would provably reject too (see
//     prefilterSlack). Bit-identity is preserved because skipping only
//     removes candidates whose covers() is false for every group point.
//
// Results are not merely the same multiset as the point-at-a-time path —
// they are the same per-point sequences. Tiers are processed in index
// order, buckets in the same (dy, dx) walk order, candidates in CSR row
// order, and overlay-added cameras last; the final counting-sort
// placement is stable in emission order, so each point's slice of the
// CSR result equals the corresponding AppendCovering /
// AppendViewedDirections output element for element. The overlay-aware
// Source path (MutableIndex, View) runs the identical engine with the
// removed-bitmap check hoisted to once per candidate.
package spatial

import (
	"math"
	"slices"

	"fullview/internal/geom"
)

// prefilterSlack is the absolute slack (as a fraction of the torus
// side) subtracted from the cell-level lower distance bound before it
// may reject a candidate. The bound is assembled from a handful of
// additions and one halving — each exact to ~1 ulp (≈2e-16 relative) —
// so a 1e-12·side margin exceeds the worst-case accumulated error by
// almost four orders of magnitude while remaining far below any sensing
// radius the index would ever bucket. A candidate rejected under this
// slack therefore provably fails the per-point radius test for every
// point of the group, keeping batch verdicts bit-identical to the
// point-at-a-time path.
const prefilterSlack = 1e-12

// BatchScratch owns every buffer the batch gather needs. The zero value
// is ready to use; buffers grow on first use and are reused by later
// batches, so a caller that keeps one scratch per worker pays zero
// allocations per point in the steady state. A BatchScratch must not be
// shared between goroutines.
type BatchScratch struct {
	wx, wy []float64 // wrapped point coordinates, indexed like the batch
	keys   []int64   // per-tier sort keys: bucket<<32 | point index
	gx, gy []float64 // current group's coordinates, unpacked contiguously
	gi     []int32   // current group's batch point indices, same order
	hitPt  []int32   // emission-ordered (point, camera) covering pairs
	hitCam []int32
	counts []int32 // per-point hit counts, then placement cursors
	offs   []int32 // CSR offsets over the batch (len = points+1)
	cams   []int32 // result storage for AppendCoveringBatch
	dirs   []float64
}

// growI32 returns a length-n slice, reusing s's storage when it is
// large enough.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// AppendCoveringBatch computes the covering-camera indices of every
// point in the batch through the cell-sorted gather. The result is CSR
// over the batch: cams[offs[i]:offs[i+1]] lists the cameras covering
// points[i], element for element equal to what AppendCovering appends
// for that point. Both returned slices are owned by sc and are valid
// until its next batch call.
func (ix *Index) AppendCoveringBatch(sc *BatchScratch, points []geom.Vec) (cams []int32, offs []int32) {
	ix.gatherBatch(sc, points, nil)
	return sc.placeCams(ix, nil)
}

// AppendViewedDirectionsBatch is AppendCoveringBatch for viewed
// directions: dirs[offs[i]:offs[i+1]] holds the viewed directions of
// the cameras covering points[i], element for element equal to the
// AppendViewedDirections output. Both returned slices are owned by sc
// and are valid until its next batch call.
func (ix *Index) AppendViewedDirectionsBatch(sc *BatchScratch, points []geom.Vec) (dirs []float64, offs []int32) {
	ix.gatherBatch(sc, points, nil)
	return sc.placeDirs(ix, nil)
}

// gatherBatch runs the cell-sorted candidate scan for the whole batch,
// leaving the emission-ordered (point, camera) pairs and per-point
// counts in sc. d is the mutation overlay (nil for a pure Index), whose
// removed bitmap is consulted once per candidate and whose added
// cameras are scanned last with the exact sensor predicates — the same
// order the point-at-a-time overlay path uses.
func (ix *Index) gatherBatch(sc *BatchScratch, points []geom.Vec, d *overlay) {
	n := len(points)
	sc.wx = growF64(sc.wx, n)
	sc.wy = growF64(sc.wy, n)
	sc.keys = growI64(sc.keys, n)
	sc.gx = growF64(sc.gx, n)
	sc.gy = growF64(sc.gy, n)
	sc.gi = growI32(sc.gi, n)
	sc.counts = growI32(sc.counts, n)
	sc.hitPt = sc.hitPt[:0]
	sc.hitCam = sc.hitCam[:0]
	for i := range sc.counts[:n] {
		sc.counts[i] = 0
	}
	if n == 0 {
		return
	}
	for i, p := range points {
		w := ix.torus.Wrap(p)
		sc.wx[i] = w.X
		sc.wy[i] = w.Y
	}

	for ti := range ix.tiers {
		t := &ix.tiers[ti]
		if t.cells == 1 || 2*(int(t.maxR/t.cellSize)+1)+1 >= t.cells {
			// Whole-tier scan (the span "all" case), hoisted to once per
			// batch: every candidate row is t.camIdx, every point is in
			// one group.
			sc.keys = sc.keys[:n]
			for i := 0; i < n; i++ {
				sc.keys[i] = int64(i)
			}
			g := sc.prepareGroup(sc.keys[:n])
			ix.scanCandidates(sc, d, t.camIdx, g)
			continue
		}
		reach := int(t.maxR/t.cellSize) + 1
		cells := t.cells
		// Sort the batch by bucket: key = bucket<<32 | index, so equal
		// buckets group together and ties keep batch order, making the
		// grouping deterministic.
		sc.keys = sc.keys[:n]
		for i := 0; i < n; i++ {
			cx := int(sc.wx[i] / t.cellSize)
			cy := int(sc.wy[i] / t.cellSize)
			if cx >= cells {
				cx = cells - 1
			}
			if cy >= cells {
				cy = cells - 1
			}
			sc.keys[i] = int64(cy*cells+cx)<<32 | int64(i)
		}
		slices.Sort(sc.keys)
		for lo := 0; lo < n; {
			bucket := sc.keys[lo] >> 32
			hi := lo + 1
			for hi < n && sc.keys[hi]>>32 == bucket {
				hi++
			}
			g := sc.prepareGroup(sc.keys[lo:hi])
			pcx := int(bucket) % cells
			pcy := int(bucket) / cells
			for dy := -reach; dy <= reach; dy++ {
				row := wrapCell(pcy+dy, cells) * cells
				for dx := -reach; dx <= reach; dx++ {
					b := row + wrapCell(pcx+dx, cells)
					ix.scanCandidates(sc, d, t.camIdx[t.starts[b]:t.starts[b+1]], g)
				}
			}
			lo = hi
		}
	}

	if d != nil {
		// Overlay-added cameras come last, exactly as in the point path,
		// via the exact sensor predicates the CSR test is bit-identical
		// to by contract.
		baseLen := int32(ix.Len())
		for j := range d.added {
			cam := &d.added[j]
			ci := baseLen + int32(j)
			for i := 0; i < n; i++ {
				if cam.Covers(ix.torus, geom.Vec{X: sc.wx[i], Y: sc.wy[i]}) {
					sc.hitPt = append(sc.hitPt, int32(i))
					sc.hitCam = append(sc.hitCam, ci)
					sc.counts[i]++
				}
			}
		}
	}
}

// groupView describes one prepared point group: its size (the leading
// n elements of sc.gx/gy/gi) and its bounding box in wrapped
// coordinates.
type groupView struct {
	n                      int
	minX, maxX, minY, maxY float64
}

// prepareGroup unpacks one sorted-key group into the contiguous gx/gy/gi
// scratch columns — so the candidate-major inner loops stream over dense
// memory instead of re-deriving indices from packed keys — and computes
// the group's bounding box. Points of one bucket never straddle the wrap
// seam (all coordinates live in [0, side)), so the box is a plain
// interval per axis; for the whole-tier case the box may span the whole
// domain and the prefilter simply stops rejecting.
func (sc *BatchScratch) prepareGroup(group []int64) groupView {
	n := len(group)
	gx, gy, gi := sc.gx[:n], sc.gy[:n], sc.gi[:n]
	i0 := int32(uint64(group[0]) & 0xffffffff)
	x0, y0 := sc.wx[i0], sc.wy[i0]
	gx[0], gy[0], gi[0] = x0, y0, i0
	g := groupView{n: n, minX: x0, maxX: x0, minY: y0, maxY: y0}
	for k := 1; k < n; k++ {
		i := int32(uint64(group[k]) & 0xffffffff)
		x, y := sc.wx[i], sc.wy[i]
		gx[k], gy[k], gi[k] = x, y, i
		if x < g.minX {
			g.minX = x
		} else if x > g.maxX {
			g.maxX = x
		}
		if y < g.minY {
			g.minY = y
		} else if y > g.maxY {
			g.maxY = y
		}
	}
	return g
}

// scanCandidates tests one candidate row against one prepared point
// group, candidate-major: each camera's SoA columns are loaded once and
// held across the whole group. The cell-level prefilter rejects a
// candidate only when its disc provably misses the group's bounding
// box; every surviving candidate runs the exact covers arithmetic, so
// emissions are bit-identical to per-point AppendCovering calls.
//
// Before the inner loop, the toroidal wrap of each axis is classified
// once per candidate against the group's bounding box: floating-point
// subtraction is monotone, so every computed difference gx[k]−px lies in
// [minX−px, maxX−px], and when that whole interval falls on one side of
// the ±half wrap boundaries the per-point branch outcome is uniform —
// the correction becomes a loop-invariant constant (±side or none) and
// the hot loop runs with a single data-dependent branch (the radius
// test) instead of five. The applied arithmetic is exactly the
// point-at-a-time path's (the same conditional ±side add on the same
// computed difference), so results stay bit-identical; groups whose
// interval straddles a wrap boundary (only possible near the torus
// seam) take the fully-branchy fallback, which is the oracle verbatim.
func (ix *Index) scanCandidates(sc *BatchScratch, d *overlay, cands []int32, g groupView) {
	if len(cands) == 0 || g.n == 0 {
		return
	}
	gx, gy, gi := sc.gx[:g.n], sc.gy[:g.n], sc.gi[:g.n]
	cx0 := (g.minX + g.maxX) / 2
	cy0 := (g.minY + g.maxY) / 2
	hx := (g.maxX-g.minX)/2 + prefilterSlack*ix.side
	hy := (g.maxY-g.minY)/2 + prefilterSlack*ix.side

	side, half := ix.side, ix.half
	for _, c := range cands {
		if d != nil && d.isRemoved(c) {
			continue
		}
		px, py := ix.posX[c], ix.posY[c]
		r2 := ix.radius2[c]

		// Conservative reject: circle-metric distance from the camera to
		// the box centre, minus the (slack-inflated) half extents, is a
		// lower bound on the distance to every group point; if even that
		// bound exceeds the radius, covers() is false for the whole
		// group.
		adx := cx0 - px
		if adx < -half {
			adx += side
		} else if adx >= half {
			adx -= side
		}
		if adx < 0 {
			adx = -adx
		}
		ady := cy0 - py
		if ady < -half {
			ady += side
		} else if ady >= half {
			ady -= side
		}
		if ady < 0 {
			ady = -ady
		}
		if adx -= hx; adx < 0 {
			adx = 0
		}
		if ady -= hy; ady < 0 {
			ady = 0
		}
		if adx*adx+ady*ady > r2 {
			continue
		}

		// Wrap classification: the computed differences for this
		// candidate span [lo, hi] per axis (monotone FP subtraction).
		var corrX, corrY float64
		mixed := false
		if lo, hi := g.minX-px, g.maxX-px; hi < -half {
			corrX = side
		} else if lo >= half {
			corrX = -side
		} else if lo < -half || hi >= half {
			mixed = true
		}
		if lo, hi := g.minY-py, g.maxY-py; hi < -half {
			corrY = side
		} else if lo >= half {
			corrY = -side
		} else if lo < -half || hi >= half {
			mixed = true
		}

		co, si := ix.cosOrient[c], ix.sinOrient[c]
		ch := ix.cosHalf[c]
		if mixed {
			// Seam-straddling group: per-point wrap branches, exactly the
			// point-at-a-time arithmetic.
			for k := 0; k < g.n; k++ {
				dxp := gx[k] - px
				if dxp < -half {
					dxp += side
				} else if dxp >= half {
					dxp -= side
				}
				dyp := gy[k] - py
				if dyp < -half {
					dyp += side
				} else if dyp >= half {
					dyp -= side
				}
				n2 := dxp*dxp + dyp*dyp
				if n2 > r2 {
					continue
				}
				if dxp != 0 || dyp != 0 {
					dot := dxp*co + dyp*si
					norm := math.Sqrt(n2)
					rhs := norm * ch
					margin := coverGuard * norm
					if dot-rhs > margin {
						// covered
					} else if rhs-dot > margin {
						continue
					} else if !ix.coversExact(c, dxp, dyp) {
						continue
					}
				}
				i := gi[k]
				sc.hitPt = append(sc.hitPt, i)
				sc.hitCam = append(sc.hitCam, c)
				sc.counts[i]++
			}
			continue
		}
		for k := 0; k < g.n; k++ {
			// Inline ix.covers with the camera columns held in locals and
			// the wrap correction hoisted; arithmetic and guard-band
			// fallback are identical. The corr != 0 guards preserve the
			// unwrapped difference bit for bit (including a −0.0 from a
			// point coincident with the camera) and predict perfectly —
			// they are loop-invariant.
			dxp := gx[k] - px
			if corrX != 0 {
				dxp += corrX
			}
			dyp := gy[k] - py
			if corrY != 0 {
				dyp += corrY
			}
			n2 := dxp*dxp + dyp*dyp
			if n2 > r2 {
				continue
			}
			if dxp != 0 || dyp != 0 {
				dot := dxp*co + dyp*si
				norm := math.Sqrt(n2)
				rhs := norm * ch
				margin := coverGuard * norm
				if dot-rhs > margin {
					// covered
				} else if rhs-dot > margin {
					continue
				} else if !ix.coversExact(c, dxp, dyp) {
					continue
				}
			}
			i := gi[k]
			sc.hitPt = append(sc.hitPt, i)
			sc.hitCam = append(sc.hitCam, c)
			sc.counts[i]++
		}
	}
}

// buildOffsets turns the per-point counts into CSR offsets and resets
// the counts to per-point placement cursors.
func (sc *BatchScratch) buildOffsets(n int) int {
	sc.offs = growI32(sc.offs, n+1)
	total := int32(0)
	sc.offs[0] = 0
	for i := 0; i < n; i++ {
		total += sc.counts[i]
		sc.offs[i+1] = total
		sc.counts[i] = sc.offs[i]
	}
	return int(total)
}

// placeCams materialises the CSR camera-index result from the emission
// stream. Placement walks hits in emission order and each point's
// cursor advances monotonically, so per-point order equals emission
// order — the point-at-a-time candidate order.
func (sc *BatchScratch) placeCams(ix *Index, d *overlay) ([]int32, []int32) {
	n := len(sc.wx)
	total := sc.buildOffsets(n)
	sc.cams = growI32(sc.cams, total)
	for h, p := range sc.hitPt {
		sc.cams[sc.counts[p]] = sc.hitCam[h]
		sc.counts[p]++
	}
	return sc.cams, sc.offs[:n+1]
}

// placeDirs is placeCams for viewed directions: base cameras go through
// the index's viewedDirection (bit-identical to the point path), overlay
// additions through the exact sensor predicate.
func (sc *BatchScratch) placeDirs(ix *Index, d *overlay) ([]float64, []int32) {
	n := len(sc.wx)
	total := sc.buildOffsets(n)
	sc.dirs = growF64(sc.dirs, total)
	baseLen := int32(ix.Len())
	for h, p := range sc.hitPt {
		c := sc.hitCam[h]
		var dir float64
		if c < baseLen {
			dir = ix.viewedDirection(c, sc.wx[p], sc.wy[p])
		} else {
			dir = d.added[c-baseLen].ViewedDirection(ix.torus, geom.Vec{X: sc.wx[p], Y: sc.wy[p]})
		}
		sc.dirs[sc.counts[p]] = dir
		sc.counts[p]++
	}
	return sc.dirs, sc.offs[:n+1]
}

// AppendCoveringBatch implements Source over the current snapshot; see
// Index.AppendCoveringBatch for the result contract and Source for the
// index semantics of overlay-added cameras.
func (m *MutableIndex) AppendCoveringBatch(sc *BatchScratch, points []geom.Vec) ([]int32, []int32) {
	return m.cur.Load().appendCoveringBatch(sc, points)
}

// AppendViewedDirectionsBatch implements Source over the current
// snapshot.
func (m *MutableIndex) AppendViewedDirectionsBatch(sc *BatchScratch, points []geom.Vec) ([]float64, []int32) {
	return m.cur.Load().appendViewedDirectionsBatch(sc, points)
}

// AppendCoveringBatch implements Source over the pinned snapshot.
func (v *View) AppendCoveringBatch(sc *BatchScratch, points []geom.Vec) ([]int32, []int32) {
	return v.s.appendCoveringBatch(sc, points)
}

// AppendViewedDirectionsBatch implements Source over the pinned
// snapshot.
func (v *View) AppendViewedDirectionsBatch(sc *BatchScratch, points []geom.Vec) ([]float64, []int32) {
	return v.s.appendViewedDirectionsBatch(sc, points)
}

func (s *mutSnapshot) appendCoveringBatch(sc *BatchScratch, points []geom.Vec) ([]int32, []int32) {
	s.base.gatherBatch(sc, points, s.delta)
	return sc.placeCams(s.base, s.delta)
}

func (s *mutSnapshot) appendViewedDirectionsBatch(sc *BatchScratch, points []geom.Vec) ([]float64, []int32) {
	s.base.gatherBatch(sc, points, s.delta)
	return sc.placeDirs(s.base, s.delta)
}
