// Package viz renders deployments and coverage as standalone SVG:
// camera sectors, a full-view multiplicity heatmap, coverage holes, and
// barrier polylines. Pure string generation over the stdlib — the
// output opens in any browser, which is the fastest way to understand
// why a particular deployment leaves the holes it does.
package viz

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Rendering errors.
var (
	ErrBadSize = errors.New("viz: canvas size must be positive")
	ErrBadGrid = errors.New("viz: heatmap grid side must be positive")
)

// Options controls a scene render.
type Options struct {
	// SizePx is the canvas edge in pixels (default 800).
	SizePx int
	// HeatmapSide draws a full-view multiplicity heatmap on a
	// HeatmapSide×HeatmapSide grid when positive.
	HeatmapSide int
	// ShowCameras draws the camera sensing sectors.
	ShowCameras bool
	// MarkHoles crosses out heatmap cells with multiplicity zero.
	MarkHoles bool
}

func (o Options) withDefaults() Options {
	if o.SizePx == 0 {
		o.SizePx = 800
	}
	return o
}

func (o Options) validate() error {
	if o.SizePx <= 0 {
		return fmt.Errorf("%w: got %d", ErrBadSize, o.SizePx)
	}
	if o.HeatmapSide < 0 {
		return fmt.Errorf("%w: got %d", ErrBadGrid, o.HeatmapSide)
	}
	return nil
}

// Scene accumulates SVG fragments for one network.
type Scene struct {
	net     *sensor.Network
	checker *core.Checker
	opts    Options
	extra   []string
}

// NewScene prepares a render of the network with the given effective
// angle (used for the heatmap's multiplicity sweep).
func NewScene(net *sensor.Network, theta float64, opts Options) (*Scene, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	checker, err := core.NewChecker(net, theta)
	if err != nil {
		return nil, err
	}
	return &Scene{net: net, checker: checker, opts: opts}, nil
}

// AddBarrier overlays a barrier polyline.
func (s *Scene) AddBarrier(waypoints []geom.Vec) {
	if len(waypoints) < 2 {
		return
	}
	var points []string
	for _, wp := range waypoints {
		x, y := s.toPx(wp)
		points = append(points, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	s.extra = append(s.extra, fmt.Sprintf(
		`<polyline points="%s" fill="none" stroke="#d62728" stroke-width="3" stroke-dasharray="8 4"/>`,
		strings.Join(points, " ")))
}

// AddMarker overlays a labelled point of interest.
func (s *Scene) AddMarker(p geom.Vec, label string) {
	x, y := s.toPx(p)
	s.extra = append(s.extra, fmt.Sprintf(
		`<circle cx="%.1f" cy="%.1f" r="6" fill="#9467bd"/><text x="%.1f" y="%.1f" font-size="14" fill="#9467bd">%s</text>`,
		x, y, x+9, y+5, escapeText(label)))
}

// toPx maps torus coordinates to pixels (y flipped so north is up).
func (s *Scene) toPx(p geom.Vec) (x, y float64) {
	side := s.net.Torus().Side()
	wrapped := s.net.Torus().Wrap(p)
	scale := float64(s.opts.SizePx) / side
	return wrapped.X * scale, (side - wrapped.Y) * scale
}

// WriteTo renders the scene as a complete SVG document.
func (s *Scene) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	size := s.opts.SizePx
	fmt.Fprintf(&b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	b.WriteString(`<rect width="100%" height="100%" fill="#fafafa"/>` + "\n")

	if s.opts.HeatmapSide > 0 {
		if err := s.writeHeatmap(&b); err != nil {
			return 0, err
		}
	}
	if s.opts.ShowCameras {
		s.writeCameras(&b)
	}
	for _, fragment := range s.extra {
		b.WriteString(fragment)
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// writeHeatmap colors each grid cell by full-view multiplicity.
func (s *Scene) writeHeatmap(b *strings.Builder) error {
	side := s.opts.HeatmapSide
	points, err := deploy.GridPoints(s.net.Torus(), side)
	if err != nil {
		return err
	}
	depths := make([]int, len(points))
	maxDepth := 1
	for i, p := range points {
		depths[i], _ = s.checker.FullViewMultiplicity(p)
		if depths[i] > maxDepth {
			maxDepth = depths[i]
		}
	}
	cell := float64(s.opts.SizePx) / float64(side)
	for i, p := range points {
		x, y := s.toPx(p)
		fmt.Fprintf(b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-cell/2, y-cell/2, cell, cell, heatColor(depths[i], maxDepth))
		if s.opts.MarkHoles && depths[i] == 0 {
			fmt.Fprintf(b,
				`<path d="M %.1f %.1f L %.1f %.1f M %.1f %.1f L %.1f %.1f" stroke="#d62728" stroke-width="1.5"/>`+"\n",
				x-cell/2, y-cell/2, x+cell/2, y+cell/2,
				x+cell/2, y-cell/2, x-cell/2, y+cell/2)
		}
	}
	return nil
}

// writeCameras draws each camera's sensing sector and orientation.
func (s *Scene) writeCameras(b *strings.Builder) {
	scale := float64(s.opts.SizePx) / s.net.Torus().Side()
	for i := 0; i < s.net.Len(); i++ {
		cam := s.net.Camera(i)
		cx, cy := s.toPx(cam.Pos)
		r := cam.Radius * scale
		// Sector outline: arc from orient−φ/2 to orient+φ/2 (y flipped,
		// so angles negate).
		a0 := -(cam.Orient - cam.Aperture/2)
		a1 := -(cam.Orient + cam.Aperture/2)
		x0, y0 := cx+r*math.Cos(a0), cy+r*math.Sin(a0)
		x1, y1 := cx+r*math.Cos(a1), cy+r*math.Sin(a1)
		large := 0
		if cam.Aperture > math.Pi {
			large = 1
		}
		fmt.Fprintf(b,
			`<path d="M %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 0 %.1f %.1f Z" fill="#1f77b4" fill-opacity="0.08" stroke="#1f77b4" stroke-opacity="0.35" stroke-width="0.6"/>`+"\n",
			cx, cy, x0, y0, r, r, large, x1, y1)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2" fill="#1f77b4"/>`+"\n", cx, cy)
	}
}

// heatColor maps multiplicity to a white→green ramp, with depth 0 in
// warning red.
func heatColor(depth, maxDepth int) string {
	if depth == 0 {
		return "#ffd6d6"
	}
	f := float64(depth) / float64(maxDepth)
	if f > 1 {
		f = 1
	}
	// Interpolate #e8f5e9 → #1b5e20.
	lerp := func(a, b int) int { return a + int(f*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(0xe8, 0x1b), lerp(0xf5, 0x5e), lerp(0xe9, 0x20))
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
