package viz

import (
	"encoding/xml"
	"errors"
	"math"
	"strings"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func testNetwork(t *testing.T, n int) *sensor.Network {
	t.Helper()
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func render(t *testing.T, s *Scene) string {
	t.Helper()
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// assertWellFormed parses the SVG as XML; malformed markup fails.
func assertWellFormed(t *testing.T, svg string) {
	t.Helper()
	decoder := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := decoder.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSceneValidation(t *testing.T) {
	net := testNetwork(t, 10)
	if _, err := NewScene(net, 0, Options{}); err == nil {
		t.Error("theta 0 accepted")
	}
	if _, err := NewScene(net, math.Pi/4, Options{SizePx: -5}); !errors.Is(err, ErrBadSize) {
		t.Errorf("error = %v, want ErrBadSize", err)
	}
	if _, err := NewScene(net, math.Pi/4, Options{HeatmapSide: -1}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("error = %v, want ErrBadGrid", err)
	}
}

func TestRenderCamerasOnly(t *testing.T) {
	net := testNetwork(t, 25)
	s, err := NewScene(net, math.Pi/4, Options{ShowCameras: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := render(t, s)
	assertWellFormed(t, svg)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("missing svg envelope")
	}
	// One sector path + one centre dot per camera.
	if got := strings.Count(svg, "<path"); got != 25 {
		t.Errorf("sector paths = %d, want 25", got)
	}
	if got := strings.Count(svg, "<circle"); got != 25 {
		t.Errorf("centre dots = %d, want 25", got)
	}
	if !strings.Contains(svg, `width="800"`) {
		t.Error("default size not applied")
	}
}

func TestRenderHeatmap(t *testing.T) {
	net := testNetwork(t, 200)
	s, err := NewScene(net, math.Pi/3, Options{HeatmapSide: 10, MarkHoles: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := render(t, s)
	assertWellFormed(t, svg)
	// 100 heatmap cells plus the background rect.
	if got := strings.Count(svg, "<rect"); got != 101 {
		t.Errorf("rects = %d, want 101", got)
	}
}

func TestRenderEmptyNetworkAllHoles(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScene(net, math.Pi/4, Options{HeatmapSide: 5, MarkHoles: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := render(t, s)
	assertWellFormed(t, svg)
	// Every cell is a hole: 25 cross-out paths, all cells in warning red.
	if got := strings.Count(svg, `stroke="#d62728"`); got != 25 {
		t.Errorf("hole crosses = %d, want 25", got)
	}
	if got := strings.Count(svg, `fill="#ffd6d6"`); got != 25 {
		t.Errorf("red cells = %d, want 25", got)
	}
}

func TestBarrierAndMarkerOverlays(t *testing.T) {
	net := testNetwork(t, 20)
	s, err := NewScene(net, math.Pi/4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.AddBarrier([]geom.Vec{geom.V(0, 0.5), geom.V(1, 0.5)})
	s.AddMarker(geom.V(0.3, 0.7), `watering <hole> & "spring"`)
	svg := render(t, s)
	assertWellFormed(t, svg)
	if !strings.Contains(svg, "<polyline") {
		t.Error("barrier polyline missing")
	}
	if !strings.Contains(svg, "&lt;hole&gt;") || !strings.Contains(svg, "&amp;") {
		t.Error("marker label not escaped")
	}
	// Degenerate barrier is ignored.
	s.AddBarrier([]geom.Vec{geom.V(0, 0)})
	svg2 := render(t, s)
	if strings.Count(svg2, "<polyline") != 1 {
		t.Error("single-waypoint barrier should be ignored")
	}
}

func TestYAxisFlipped(t *testing.T) {
	// A camera near the top of the torus (y ≈ 1) must render near pixel
	// y ≈ 0.
	cams := []sensor.Camera{{
		Pos: geom.V(0.5, 0.95), Orient: 0, Radius: 0.1, Aperture: math.Pi,
	}}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScene(net, math.Pi/4, Options{ShowCameras: true, SizePx: 100})
	if err != nil {
		t.Fatal(err)
	}
	svg := render(t, s)
	if !strings.Contains(svg, `<circle cx="50.0" cy="5.0"`) {
		t.Errorf("expected centre dot at (50, 5):\n%s", svg)
	}
}

func TestHeatColorRamp(t *testing.T) {
	if heatColor(0, 5) != "#ffd6d6" {
		t.Error("zero depth should be warning red")
	}
	if heatColor(5, 5) != "#1b5e20" {
		t.Errorf("max depth = %s, want #1b5e20", heatColor(5, 5))
	}
	mid := heatColor(2, 5)
	if mid == heatColor(0, 5) || mid == heatColor(5, 5) {
		t.Error("mid depth should interpolate")
	}
}
