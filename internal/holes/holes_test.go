package holes

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func checkerFor(t *testing.T, net *sensor.Network, theta float64) *core.Checker {
	t.Helper()
	c, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func denseNetwork(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFindNoHolesOnDenseNetwork(t *testing.T) {
	net := denseNetwork(t, 3000, 1)
	holes, err := Find(checkerFor(t, net, math.Pi/2), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(holes) != 0 {
		t.Errorf("dense network reported %d holes", len(holes))
	}
}

func TestFindAllHolesOnEmptyNetwork(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	holes, err := Find(checkerFor(t, net, math.Pi/2), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every point uncovered ⇒ one single connected hole spanning the grid.
	if len(holes) != 1 {
		t.Fatalf("got %d holes, want 1", len(holes))
	}
	if holes[0].Size() != 100 {
		t.Errorf("hole size = %d, want 100", holes[0].Size())
	}
}

func TestFindValidatesGridSide(t *testing.T) {
	net := denseNetwork(t, 10, 1)
	if _, err := Find(checkerFor(t, net, math.Pi/2), 0); !errors.Is(err, ErrBadGridSide) {
		t.Errorf("error = %v, want ErrBadGridSide", err)
	}
}

func TestFindClustersAcrossSeam(t *testing.T) {
	// Cover everything except a band straddling the x-seam; the
	// uncovered points must cluster into ONE hole, not two.
	var cams []sensor.Camera
	// Omnidirectional cameras cover x ∈ [0.15, 0.85] densely.
	for i := 0; i < 30; i++ {
		for j := 0; j < 10; j++ {
			cams = append(cams, sensor.Camera{
				Pos:      geom.V(0.15+0.7*float64(i)/29, float64(j)/10+0.05),
				Orient:   0,
				Radius:   0.09,
				Aperture: 2 * math.Pi,
			})
		}
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	holes, err := Find(checkerFor(t, net, math.Pi), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(holes) != 1 {
		t.Fatalf("seam band split into %d holes, want 1", len(holes))
	}
	// The hole's centroid sits on the seam band (x near 0 or near 1).
	cx := holes[0].Centroid.X
	if cx > 0.2 && cx < 0.8 {
		t.Errorf("hole centroid x = %v, expected near the seam", cx)
	}
}

func TestHolesSortedBySize(t *testing.T) {
	// Two separated uncovered pockets of different sizes: leave holes
	// around (0.2, 0.2) and (0.7, 0.7) in an otherwise covered region.
	var cams []sensor.Camera
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			p := geom.V(float64(i)/40+0.0125, float64(j)/40+0.0125)
			inBig := geom.UnitTorus.Dist(p, geom.V(0.2, 0.2)) < 0.15
			inSmall := geom.UnitTorus.Dist(p, geom.V(0.7, 0.7)) < 0.07
			if inBig || inSmall {
				continue
			}
			cams = append(cams, sensor.Camera{
				Pos: p, Orient: 0, Radius: 0.05, Aperture: 2 * math.Pi,
			})
		}
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	holes, err := Find(checkerFor(t, net, math.Pi), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(holes) < 2 {
		t.Fatalf("got %d holes, want ≥ 2", len(holes))
	}
	for i := 1; i < len(holes); i++ {
		if holes[i].Size() > holes[i-1].Size() {
			t.Errorf("holes not sorted by size: %d before %d", holes[i-1].Size(), holes[i].Size())
		}
	}
	// The biggest hole should be near the big pocket.
	if geom.UnitTorus.Dist(holes[0].Centroid, geom.V(0.2, 0.2)) > 0.15 {
		t.Errorf("largest hole centroid %v, want near (0.2, 0.2)", holes[0].Centroid)
	}
}

func TestPatchCoversHole(t *testing.T) {
	theta := math.Pi / 4
	hole := Hole{
		Points:   []geom.Vec{geom.V(0.48, 0.5), geom.V(0.52, 0.5), geom.V(0.5, 0.53)},
		Centroid: geom.V(0.5, 0.51),
		Radius:   0.03,
	}
	cams, err := Patch(geom.UnitTorus, hole, theta, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(cams) != geom.SectorCount(theta) {
		t.Fatalf("patch size = %d, want %d", len(cams), geom.SectorCount(theta))
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	checker := checkerFor(t, net, theta)
	for _, p := range hole.Points {
		if !checker.FullViewCovered(p) {
			t.Errorf("patch does not cover hole point %v", p)
		}
	}
	// Points inside the pad are covered too.
	if !checker.FullViewCovered(geom.V(0.5, 0.47)) {
		t.Error("patch should cover the padded neighbourhood")
	}
}

func TestPatchValidatesTheta(t *testing.T) {
	hole := Hole{Points: []geom.Vec{geom.V(0.5, 0.5)}, Centroid: geom.V(0.5, 0.5)}
	for _, theta := range []float64{0, -1, 4} {
		if _, err := Patch(geom.UnitTorus, hole, theta, 0); err == nil {
			t.Errorf("Patch(θ=%v) succeeded, want error", theta)
		}
	}
}

func TestPatchZeroRadiusHole(t *testing.T) {
	hole := Hole{Points: []geom.Vec{geom.V(0.3, 0.3)}, Centroid: geom.V(0.3, 0.3), Radius: 0}
	cams, err := Patch(geom.UnitTorus, hole, math.Pi/3, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	if !checkerFor(t, net, math.Pi/3).FullViewCovered(geom.V(0.3, 0.3)) {
		t.Error("zero-radius hole not covered by its patch")
	}
}

func TestHealSparseNetwork(t *testing.T) {
	// A sparse network with plenty of holes must come out fully covered.
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 150, rng.New(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 3
	res, err := Heal(net, theta, 20, 10)
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if len(res.Added) == 0 {
		t.Fatal("sparse network should have needed patches")
	}
	if res.Network.Len() != net.Len()+len(res.Added) {
		t.Errorf("network size %d, want %d", res.Network.Len(), net.Len()+len(res.Added))
	}
	// Verify on a finer grid than the healing sweep used.
	checker := checkerFor(t, res.Network, theta)
	grid, err := deploy.GridPoints(geom.UnitTorus, 20)
	if err != nil {
		t.Fatal(err)
	}
	stats := checker.SurveyRegion(grid)
	if !stats.AllFullView() {
		t.Errorf("healed network still has holes: %d/%d covered", stats.FullView, stats.Points)
	}
}

func TestHealAlreadyCovered(t *testing.T) {
	net := denseNetwork(t, 3000, 9)
	res, err := Heal(net, math.Pi/2, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 || res.Rounds != 0 {
		t.Errorf("covered network should need no patches: added=%d rounds=%d",
			len(res.Added), res.Rounds)
	}
}

func TestHealValidatesRounds(t *testing.T) {
	net := denseNetwork(t, 10, 1)
	if _, err := Heal(net, math.Pi/2, 10, 0); !errors.Is(err, ErrBadRounds) {
		t.Errorf("error = %v, want ErrBadRounds", err)
	}
}
