// Package holes locates and repairs full-view coverage holes in a
// deployed network: it sweeps a grid, clusters uncovered points into
// connected holes, and proposes patch cameras (an inward-facing ring per
// hole, sized by the same geometry as package construct) until the
// region is fully covered. This is the operational task the paper's
// theory motivates — a random deployment between the two CSAs "depends
// on the actual deployment", and an operator must find and fix whatever
// holes the dice rolled.
package holes

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/sensor"
	"fullview/internal/sweep"
)

// Validation errors.
var (
	ErrBadGridSide = errors.New("holes: grid side must be positive")
	ErrBadRounds   = errors.New("holes: max rounds must be positive")
	ErrNotHealed   = errors.New("holes: region still has holes after the round budget")
)

// Hole is a connected cluster of grid points that are not full-view
// covered.
type Hole struct {
	// Points are the uncovered grid points, in grid order.
	Points []geom.Vec
	// Centroid is the toroidal centroid of the points.
	Centroid geom.Vec
	// Radius is the maximum toroidal distance from the centroid to a
	// point of the hole.
	Radius float64
}

// Size returns the number of grid points in the hole.
func (h Hole) Size() int { return len(h.Points) }

// Find sweeps a gridSide×gridSide grid and clusters the points that are
// not full-view covered into connected holes (4-adjacency, wrapping
// across the torus seam). Holes are returned largest first. The grid
// labelling runs in parallel over all cores; use FindContext to bound
// the worker count or cancel mid-sweep.
func Find(checker *core.Checker, gridSide int) ([]Hole, error) {
	return FindContext(context.Background(), checker, gridSide, 0)
}

// FindContext is Find with an explicit worker count (GOMAXPROCS when
// workers ≤ 0) and context cancellation for the grid-labelling pass,
// which executes through the shared internal/sweep engine. The hole
// clustering itself is deterministic, so results are identical at any
// worker count.
func FindContext(ctx context.Context, checker *core.Checker, gridSide, workers int) ([]Hole, error) {
	if gridSide <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadGridSide, gridSide)
	}
	t := checker.Index().Torus()
	points, err := deploy.GridPoints(t, gridSide)
	if err != nil {
		return nil, err
	}
	// Label uncovered grid points in parallel; chunk-ordered merge keeps
	// the index list in grid order.
	badIdx, err := sweep.Run(ctx, points, workers,
		func() (*core.Checker, error) { return checker.Clone(), nil },
		func(worker *core.Checker, acc []int, i int, p geom.Vec) []int {
			if !worker.FullViewCovered(p) {
				acc = append(acc, i)
			}
			return acc
		},
		func(dst, src []int) []int { return append(dst, src...) },
	)
	if err != nil {
		return nil, err
	}
	if len(badIdx) == 0 {
		return nil, nil
	}
	uncovered := make([]bool, len(points))
	for _, i := range badIdx {
		uncovered[i] = true
	}

	// Union-find over uncovered grid cells.
	parent := make([]int, len(points))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	idx := func(i, j int) int {
		i = (i%gridSide + gridSide) % gridSide
		j = (j%gridSide + gridSide) % gridSide
		return i*gridSide + j
	}
	for i := 0; i < gridSide; i++ {
		for j := 0; j < gridSide; j++ {
			at := idx(i, j)
			if !uncovered[at] {
				continue
			}
			if right := idx(i+1, j); uncovered[right] {
				union(at, right)
			}
			if up := idx(i, j+1); uncovered[up] {
				union(at, up)
			}
		}
	}

	clusters := make(map[int][]geom.Vec)
	for i, bad := range uncovered {
		if bad {
			root := find(i)
			clusters[root] = append(clusters[root], points[i])
		}
	}
	holes := make([]Hole, 0, len(clusters))
	for _, pts := range clusters {
		centroid := toroidalCentroid(t, pts)
		radius := 0.0
		for _, p := range pts {
			if d := t.Dist(centroid, p); d > radius {
				radius = d
			}
		}
		holes = append(holes, Hole{Points: pts, Centroid: centroid, Radius: radius})
	}
	sort.Slice(holes, func(a, b int) bool {
		if len(holes[a].Points) != len(holes[b].Points) {
			return len(holes[a].Points) > len(holes[b].Points)
		}
		// Deterministic tiebreak for equal sizes.
		pa, pb := holes[a].Points[0], holes[b].Points[0]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	return holes, nil
}

// toroidalCentroid averages points on the torus by accumulating wrapped
// displacements from the first point. Exact for clusters smaller than
// half the torus, which coverage holes always are in practice.
func toroidalCentroid(t geom.Torus, pts []geom.Vec) geom.Vec {
	anchor := pts[0]
	var sum geom.Vec
	for _, p := range pts {
		sum = sum.Add(t.Delta(anchor, p))
	}
	return t.Translate(anchor, sum.Scale(1/float64(len(pts))))
}

// Patch proposes cameras that full-view cover the hole (with effective
// angle theta) when added to the network: a ring of ⌈2π/θ⌉ inward-facing
// cameras around the hole centroid. pad widens the protected disk beyond
// the sampled hole points — pass the grid spacing so the true hole
// between grid samples is enclosed too.
func Patch(t geom.Torus, h Hole, theta, pad float64) ([]sensor.Camera, error) {
	if !(theta > 0) || theta > math.Pi {
		return nil, fmt.Errorf("holes: effective angle θ must be in (0, π], got %v", theta)
	}
	if pad < 0 || math.IsNaN(pad) {
		pad = 0
	}
	const margin = 1.05
	protect := h.Radius + pad
	if protect <= 0 {
		protect = 0.01 * t.Side()
	}
	ring := margin * protect / math.Sin(theta/2)
	aperture := margin * 2 * math.Asin(protect/ring)
	if aperture > geom.TwoPi {
		aperture = geom.TwoPi
	}
	k := geom.SectorCount(theta)
	cameras := make([]sensor.Camera, 0, k)
	for i := 0; i < k; i++ {
		bearing := geom.TwoPi * float64(i) / float64(k)
		cameras = append(cameras, sensor.Camera{
			Pos:      t.Translate(h.Centroid, geom.FromPolar(ring, bearing)),
			Orient:   geom.NormalizeAngle(bearing + math.Pi),
			Radius:   margin * (ring + protect),
			Aperture: aperture,
		})
	}
	return cameras, nil
}

// maxProtect returns the largest protected-disk radius a ring patch can
// guarantee on torus t: the outermost patch geometry (ring plus sensing
// reach) must stay below half the torus side, or the planar ring
// argument breaks across the wrap-around.
func maxProtect(t geom.Torus, theta float64) float64 {
	const margin = 1.05
	// margin·(margin·P/sin(θ/2) + P) ≤ 0.45·side  ⇒  P ≤ bound.
	return 0.45 * t.Side() / (margin * (margin/math.Sin(theta/2) + 1))
}

// Result reports a healing run.
type Result struct {
	// Network is the healed network (original plus patch cameras).
	Network *sensor.Network
	// Added are the patch cameras, in the order proposed.
	Added []sensor.Camera
	// Rounds is the number of find-patch iterations performed.
	Rounds int
}

// Heal repeatedly finds holes on a gridSide×gridSide sweep and patches
// them until the grid is fully covered or maxRounds is exhausted (in
// which case ErrNotHealed is returned along with the best network so
// far).
func Heal(net *sensor.Network, theta float64, gridSide, maxRounds int) (Result, error) {
	if maxRounds <= 0 {
		return Result{}, fmt.Errorf("%w: got %d", ErrBadRounds, maxRounds)
	}
	t := net.Torus()
	pad := t.Side() / float64(gridSide)
	current := net
	var added []sensor.Camera
	for round := 1; round <= maxRounds; round++ {
		checker, err := core.NewChecker(current, theta)
		if err != nil {
			return Result{}, err
		}
		found, err := Find(checker, gridSide)
		if err != nil {
			return Result{}, err
		}
		if len(found) == 0 {
			return Result{Network: current, Added: added, Rounds: round - 1}, nil
		}
		maxP := maxProtect(t, theta)
		if pad > maxP {
			return Result{}, fmt.Errorf(
				"holes: θ = %v is too small for ring patches on a torus of side %v (needs protect ≤ %v, grid pad is %v)",
				theta, t.Side(), maxP, pad)
		}
		cameras := current.Cameras()
		for _, h := range found {
			// A hole too wide for one ring is patched point by point;
			// each mini-ring's geometry then stays planar on the torus.
			patches := []Hole{h}
			if h.Radius+pad > maxP {
				patches = patches[:0]
				for _, p := range h.Points {
					patches = append(patches, Hole{Points: []geom.Vec{p}, Centroid: p})
				}
			}
			for _, sub := range patches {
				patch, err := Patch(t, sub, theta, pad)
				if err != nil {
					return Result{}, err
				}
				added = append(added, patch...)
				cameras = append(cameras, patch...)
			}
		}
		current, err = sensor.NewNetwork(t, cameras)
		if err != nil {
			return Result{}, err
		}
	}
	// One final verification after the last round's patches.
	checker, err := core.NewChecker(current, theta)
	if err != nil {
		return Result{}, err
	}
	found, err := Find(checker, gridSide)
	if err != nil {
		return Result{}, err
	}
	res := Result{Network: current, Added: added, Rounds: maxRounds}
	if len(found) > 0 {
		return res, fmt.Errorf("%w: %d holes remain", ErrNotHealed, len(found))
	}
	return res, nil
}
