package lifetime

import (
	"context"
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func testNetwork(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSampleAwakeEdgeProbabilities(t *testing.T) {
	net := testNetwork(t, 100, 1)
	full, err := SampleAwake(net, 1, rng.New(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 100 {
		t.Errorf("p=1 kept %d cameras", full.Len())
	}
	empty, err := SampleAwake(net, 0, rng.New(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("p=0 kept %d cameras", empty.Len())
	}
}

func TestSampleAwakeBinomialMean(t *testing.T) {
	net := testNetwork(t, 200, 3)
	r := rng.New(4, 0)
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		sub, err := SampleAwake(net, 0.3, r)
		if err != nil {
			t.Fatal(err)
		}
		total += sub.Len()
	}
	mean := float64(total) / trials
	se := math.Sqrt(200 * 0.3 * 0.7 / trials)
	if math.Abs(mean-60) > 6*se {
		t.Errorf("mean awake = %v, want ≈ 60", mean)
	}
}

func TestSampleAwakeInvalidProbability(t *testing.T) {
	net := testNetwork(t, 10, 1)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := SampleAwake(net, p, rng.New(1, 0)); !errors.Is(err, ErrBadProbability) {
			t.Errorf("p=%v: error = %v, want ErrBadProbability", p, err)
		}
	}
}

func TestFailureScheduleExponentialMean(t *testing.T) {
	net := testNetwork(t, 2000, 5)
	fs, err := NewFailureSchedule(net, 10, rng.New(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	times := fs.FailureTimes()
	sum := 0.0
	for _, ft := range times {
		if ft < 0 {
			t.Fatalf("negative failure time %v", ft)
		}
		sum += ft
	}
	mean := sum / float64(len(times))
	if math.Abs(mean-10) > 1.5 { // se ≈ 10/√2000 ≈ 0.22; generous band
		t.Errorf("mean lifetime = %v, want ≈ 10", mean)
	}
}

func TestFailureScheduleInvalidMean(t *testing.T) {
	net := testNetwork(t, 10, 1)
	for _, mean := range []float64{0, -1, math.Inf(1)} {
		if _, err := NewFailureSchedule(net, mean, rng.New(1, 0)); !errors.Is(err, ErrBadMean) {
			t.Errorf("mean=%v: error = %v, want ErrBadMean", mean, err)
		}
	}
}

func TestAliveAtMonotone(t *testing.T) {
	net := testNetwork(t, 300, 7)
	fs, err := NewFailureSchedule(net, 5, rng.New(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	prev := net.Len() + 1
	for _, tm := range []float64{0, 1, 3, 5, 10, 50} {
		alive, err := fs.AliveAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		if alive.Len() >= prev {
			t.Errorf("t=%v: %d alive, expected strictly fewer than %d (w.h.p.)", tm, alive.Len(), prev)
		}
		prev = alive.Len()
	}
	if _, err := fs.AliveAt(-1); !errors.Is(err, ErrBadTime) {
		t.Errorf("negative time accepted")
	}
}

func TestAliveAtTimeZeroIsFullNetwork(t *testing.T) {
	net := testNetwork(t, 50, 9)
	fs, err := NewFailureSchedule(net, 5, rng.New(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	alive, err := fs.AliveAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if alive.Len() != 50 {
		t.Errorf("alive at t=0: %d, want 50", alive.Len())
	}
}

func TestCoverageLifetime(t *testing.T) {
	net := testNetwork(t, 2500, 11)
	fs, err := NewFailureSchedule(net, 10, rng.New(12, 0))
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 12)
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 2
	life, err := fs.CoverageLifetime(theta, points, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if life <= 0 || math.IsInf(life, 1) {
		t.Fatalf("lifetime = %v, want finite positive", life)
	}
	// Just before the lifetime, coverage holds; just after, it doesn't.
	before, err := fs.coverageAt(context.Background(), life*(1-1e-9), theta, points, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before < 0.9 {
		t.Errorf("coverage %v below threshold just before the lifetime", before)
	}
	after, err := fs.coverageAt(context.Background(), life, theta, points, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after >= 0.9 {
		t.Errorf("coverage %v still meets threshold at the lifetime instant", after)
	}
}

func TestCoverageLifetimeSparseStartsDead(t *testing.T) {
	net := testNetwork(t, 5, 13)
	fs, err := NewFailureSchedule(net, 10, rng.New(14, 0))
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 10)
	if err != nil {
		t.Fatal(err)
	}
	life, err := fs.CoverageLifetime(math.Pi/4, points, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if life != 0 {
		t.Errorf("lifetime = %v, want 0 for an undersized network", life)
	}
}

func TestCoverageLifetimeValidation(t *testing.T) {
	net := testNetwork(t, 10, 15)
	fs, err := NewFailureSchedule(net, 10, rng.New(16, 0))
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{0, -0.5, 1.5} {
		if _, err := fs.CoverageLifetime(math.Pi/4, points, th); !errors.Is(err, ErrBadThreshold) {
			t.Errorf("threshold %v: error = %v, want ErrBadThreshold", th, err)
		}
	}
}

// TestDutyCycleCoverageMatchesReducedN validates the Section VII-B
// reading of Kumar's sleep parameter: a duty-cycled network with awake
// probability p behaves like a full deployment of ≈ n·p sensors.
func TestDutyCycleCoverageMatchesReducedN(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	const p = 0.5
	theta := math.Pi / 3
	points, err := deploy.GridPoints(geom.UnitTorus, 15)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(20, 0)
	fracDuty, fracReduced := 0.0, 0.0
	const trials = 30
	for i := 0; i < trials; i++ {
		full, err := deploy.Uniform(geom.UnitTorus, profile, n, r)
		if err != nil {
			t.Fatal(err)
		}
		duty, err := SampleAwake(full, p, r)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := core.NewChecker(duty, theta)
		if err != nil {
			t.Fatal(err)
		}
		fracDuty += dc.SurveyRegion(points).FullViewFraction()

		reduced, err := deploy.Uniform(geom.UnitTorus, profile, n/2, r)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := core.NewChecker(reduced, theta)
		if err != nil {
			t.Fatal(err)
		}
		fracReduced += rc.SurveyRegion(points).FullViewFraction()
	}
	fracDuty /= trials
	fracReduced /= trials
	if math.Abs(fracDuty-fracReduced) > 0.05 {
		t.Errorf("duty-cycled coverage %v vs reduced-n coverage %v", fracDuty, fracReduced)
	}
}
