// Package lifetime models the temporal side of camera networks: duty
// cycling (each camera awake with probability p per epoch — the sleep
// parameter of Kumar et al. [6] that Section VII-B quotes) and battery
// failure processes (i.i.d. exponential lifetimes), with the induced
// decay of full-view coverage over time.
package lifetime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrBadProbability = errors.New("lifetime: awake probability must be in [0, 1]")
	ErrBadMean        = errors.New("lifetime: mean lifetime must be positive")
	ErrBadThreshold   = errors.New("lifetime: coverage threshold must be in (0, 1]")
	ErrBadTime        = errors.New("lifetime: time must be non-negative")
)

// SampleAwake returns the sub-network of cameras awake this epoch: each
// camera independently stays on with probability p. With p = 1 the full
// network is returned (fresh copy); with p = 0 the network is empty.
func SampleAwake(net *sensor.Network, p float64, r *rng.PCG) (*sensor.Network, error) {
	if !(p >= 0) || p > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadProbability, p)
	}
	awake := make([]sensor.Camera, 0, net.Len())
	for i := 0; i < net.Len(); i++ {
		if r.Bool(p) {
			awake = append(awake, net.Camera(i))
		}
	}
	return sensor.NewNetwork(net.Torus(), awake)
}

// FailureSchedule fixes one realization of the battery-failure process:
// camera i dies at time Times[i], drawn i.i.d. Exponential(1/mean).
type FailureSchedule struct {
	net   *sensor.Network
	times []float64
}

// NewFailureSchedule draws a failure time for every camera.
func NewFailureSchedule(net *sensor.Network, meanLifetime float64, r *rng.PCG) (*FailureSchedule, error) {
	if !(meanLifetime > 0) || math.IsInf(meanLifetime, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBadMean, meanLifetime)
	}
	times := make([]float64, net.Len())
	for i := range times {
		// Inverse-CDF exponential draw; 1−U avoids log(0).
		times[i] = -meanLifetime * math.Log(1-r.Float64())
	}
	return &FailureSchedule{net: net, times: times}, nil
}

// FailureTimes returns a copy of the per-camera failure times.
func (fs *FailureSchedule) FailureTimes() []float64 {
	out := make([]float64, len(fs.times))
	copy(out, fs.times)
	return out
}

// AliveAt returns the sub-network of cameras still alive at time t
// (cameras fail exactly at their failure time).
func (fs *FailureSchedule) AliveAt(t float64) (*sensor.Network, error) {
	if t < 0 || math.IsNaN(t) {
		return nil, fmt.Errorf("%w: got %v", ErrBadTime, t)
	}
	alive := make([]sensor.Camera, 0, fs.net.Len())
	for i := 0; i < fs.net.Len(); i++ {
		if fs.times[i] > t {
			alive = append(alive, fs.net.Camera(i))
		}
	}
	return sensor.NewNetwork(fs.net.Torus(), alive)
}

// coverageAt returns the full-view-covered fraction of points at time t,
// sweeping the grid with the given number of workers.
func (fs *FailureSchedule) coverageAt(ctx context.Context, t, theta float64, points []geom.Vec, workers int) (float64, error) {
	net, err := fs.AliveAt(t)
	if err != nil {
		return 0, err
	}
	checker, err := core.NewChecker(net, theta)
	if err != nil {
		return 0, err
	}
	stats, err := checker.SurveyRegionContext(ctx, points, workers)
	if err != nil {
		return 0, err
	}
	return stats.FullViewFraction(), nil
}

// CoverageLifetime returns the time at which the full-view-covered
// fraction of the sample points first drops below threshold — the
// network's coverage lifetime under this failure realization. Coverage
// only changes at failure instants and never recovers, so the answer is
// found by bisecting the sorted failure times (O(log n) grid sweeps).
// Returns 0 if coverage is below threshold from the start, and +Inf if
// it never drops (e.g. threshold met by the empty network is impossible,
// so +Inf only occurs for unreachable thresholds).
func (fs *FailureSchedule) CoverageLifetime(theta float64, points []geom.Vec, threshold float64) (float64, error) {
	return fs.CoverageLifetimeContext(context.Background(), theta, points, threshold, 1)
}

// CoverageLifetimeContext is CoverageLifetime with cancellation and
// parallel grid sweeps: each of the O(log n) bisection sweeps runs
// through the sweep engine with the given number of workers (GOMAXPROCS
// when workers ≤ 0). The lifetime found is identical at any worker
// count.
func (fs *FailureSchedule) CoverageLifetimeContext(ctx context.Context, theta float64, points []geom.Vec, threshold float64, workers int) (float64, error) {
	if !(threshold > 0) || threshold > 1 {
		return 0, fmt.Errorf("%w: got %v", ErrBadThreshold, threshold)
	}
	initial, err := fs.coverageAt(ctx, 0, theta, points, workers)
	if err != nil {
		return 0, err
	}
	if initial < threshold {
		return 0, nil
	}
	// Event times, ascending. Coverage just after event k is constant
	// until event k+1.
	events := fs.FailureTimes()
	sort.Float64s(events)
	// Find the first event index whose post-failure coverage is below
	// threshold. Coverage is non-increasing in the event index, so
	// binary search applies.
	lo, hi := 0, len(events) // lo: known ≥ threshold before event lo
	for lo < hi {
		mid := (lo + hi) / 2
		cov, err := fs.coverageAt(ctx, events[mid], theta, points, workers)
		if err != nil {
			return 0, err
		}
		if cov < threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(events) {
		return math.Inf(1), nil
	}
	return events[lo], nil
}
