package depcache

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// testNetwork deploys a small heterogeneous network from a seed.
func testNetwork(t *testing.T, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.ParseProfile("0.3:0.2:0.4,0.7:0.1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 60, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestFingerprintDeterministic checks that equal content fingerprints
// equally and different content differently.
func TestFingerprintDeterministic(t *testing.T) {
	a := testNetwork(t, 1)
	b := testNetwork(t, 1) // same seed ⇒ same cameras
	c := testNetwork(t, 2)
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical deployments fingerprint differently")
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("different deployments share a fingerprint")
	}

	// A one-ulp orientation change must change the fingerprint: the
	// fingerprint promises bit-identical indexes, not approximate ones.
	cams := a.Cameras()
	cams[0].Orient = math.Nextafter(cams[0].Orient, 4)
	mutated, err := sensor.NewNetwork(a.Torus(), cams)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(mutated) {
		t.Error("one-ulp mutation did not change the fingerprint")
	}
}

func buildEntry(net *sensor.Network) func() (*Entry, error) {
	return func() (*Entry, error) {
		return &Entry{Fingerprint: Fingerprint(net), Net: net, Index: spatial.NewMutableIndex(net, spatial.MutableOptions{})}, nil
	}
}

// TestHitMissEviction walks the cache through its whole counter life:
// build miss, repeat hit, LRU eviction, re-build of the evicted entry.
func TestHitMissEviction(t *testing.T) {
	c := New(2)
	nets := []*sensor.Network{testNetwork(t, 1), testNetwork(t, 2), testNetwork(t, 3)}
	fps := make([]string, len(nets))
	for i, n := range nets {
		fps[i] = Fingerprint(n)
	}

	if _, hit, err := c.GetOrBuild(fps[0], buildEntry(nets[0])); err != nil || hit {
		t.Fatalf("first build: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := c.GetOrBuild(fps[0], buildEntry(nets[0])); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
	if _, hit, _ := c.GetOrBuild(fps[1], buildEntry(nets[1])); hit {
		t.Fatal("distinct fingerprint reported as hit")
	}
	// Touch 0 so 1 is the LRU victim, then insert 2.
	if _, ok := c.Get(fps[0]); !ok {
		t.Fatal("entry 0 vanished")
	}
	if _, hit, _ := c.GetOrBuild(fps[2], buildEntry(nets[2])); hit {
		t.Fatal("entry 2 reported as hit before first build")
	}
	if _, ok := c.Get(fps[1]); ok {
		t.Fatal("LRU victim still cached after eviction")
	}
	if _, ok := c.Get(fps[0]); !ok {
		t.Fatal("recently-used entry was evicted")
	}

	s := c.Stats()
	if s.Len != 2 || s.Cap != 2 {
		t.Errorf("Len/Cap = %d/%d, want 2/2", s.Len, s.Cap)
	}
	if s.Misses != 3 || s.Evictions != 1 {
		t.Errorf("Misses=%d Evictions=%d, want 3 and 1", s.Misses, s.Evictions)
	}
	if s.Hits != 3 { // one GetOrBuild hit + two Get hits
		t.Errorf("Hits=%d, want 3", s.Hits)
	}
	if got, want := s.HitRatio(), 3.0/6.0; got != want {
		t.Errorf("HitRatio=%v, want %v", got, want)
	}
}

// TestBuildErrorNotCached checks that a failed build caches nothing and
// the next lookup retries.
func TestBuildErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrBuild("fp", func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("fp"); ok {
		t.Fatal("failed build left an entry behind")
	}
	net := testNetwork(t, 1)
	if _, hit, err := c.GetOrBuild("fp", buildEntry(net)); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v, want clean miss", hit, err)
	}
}

// TestSingleFlight launches many concurrent registrations of one
// fingerprint and asserts the expensive build ran exactly once while
// every caller got the same entry.
func TestSingleFlight(t *testing.T) {
	c := New(4)
	net := testNetwork(t, 1)
	fp := Fingerprint(net)

	var builds atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	entries := make([]*Entry, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			e, _, err := c.GetOrBuild(fp, func() (*Entry, error) {
				builds.Add(1)
				return buildEntry(net)()
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			entries[i] = e
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1 (single-flight)", got)
	}
	for i, e := range entries {
		if e != entries[0] {
			t.Fatalf("caller %d received a different entry", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("Misses=%d Hits=%d, want 1 and %d", s.Misses, s.Hits, callers-1)
	}
}

// TestConcurrentMixedUse exercises overlapping builds, hits, and
// evictions under the race detector.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(2)
	nets := make([]*sensor.Network, 4)
	fps := make([]string, 4)
	for i := range nets {
		nets[i] = testNetwork(t, uint64(i+1))
		fps[i] = Fingerprint(nets[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % 4
				if _, _, err := c.GetOrBuild(fps[k], buildEntry(nets[k])); err != nil {
					t.Errorf("GetOrBuild: %v", err)
					return
				}
				c.Get(fps[(k+1)%4])
				c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 2 {
		t.Fatalf("cache grew past its cap: %d", n)
	}
}

// TestCapFloor checks the minimum capacity of one entry.
func TestCapFloor(t *testing.T) {
	c := New(0)
	for i := 0; i < 3; i++ {
		net := testNetwork(t, uint64(i+1))
		if _, _, err := c.GetOrBuild(Fingerprint(net), buildEntry(net)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", s.Evictions)
	}
}

// TestFingerprintFormat pins the id shape clients see.
func TestFingerprintFormat(t *testing.T) {
	fp := Fingerprint(testNetwork(t, 1))
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q has length %d, want 32 hex chars", fp, len(fp))
	}
	if _, err := fmt.Sscanf(fp, "%x", new([]byte)); err != nil {
		t.Fatalf("fingerprint %q is not hex: %v", fp, err)
	}
}
