package depcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"fullview/internal/spatial"
)

// TestMutateResolveAndCount pins Mutate's contract: a cached entry is
// mutated in place, a missing one is revived through resolve, a
// genuinely unknown one reports found=false without running apply, and
// only nil-error applies count in Stats.
func TestMutateResolveAndCount(t *testing.T) {
	c := New(4)
	net := testNetwork(t, 1)
	fp := Fingerprint(net)

	applied := 0
	found, err := c.Mutate("missing", nil, func(*Entry) error { applied++; return nil })
	if found || err != nil || applied != 0 {
		t.Fatalf("unknown fp: found=%v err=%v applied=%d", found, err, applied)
	}

	// Revive through resolve.
	revived := 0
	resolve := func() (*Entry, bool) {
		revived++
		e, err := buildEntry(net)()
		if err != nil {
			t.Fatal(err)
		}
		// Mirror the server: resolve inserts into the cache.
		got, _, _ := c.GetOrBuild(fp, func() (*Entry, error) { return e, nil })
		return got, true
	}
	found, err = c.Mutate(fp, resolve, func(e *Entry) error {
		_, err := e.Index.Remove([]int{0})
		return err
	})
	if !found || err != nil || revived != 1 {
		t.Fatalf("revived mutate: found=%v err=%v revived=%d", found, err, revived)
	}
	e, ok := c.Get(fp)
	if !ok || e.Index.Version() != 1 || e.Index.Len() != net.Len()-1 {
		t.Fatalf("mutation did not stick: ok=%v entry=%+v", ok, e)
	}

	// A failing apply reports found=true, returns the error, and does
	// not count as a mutation.
	boom := errors.New("boom")
	found, err = c.Mutate(fp, nil, func(*Entry) error { return boom })
	if !found || !errors.Is(err, boom) {
		t.Fatalf("failing apply: found=%v err=%v", found, err)
	}
	if s := c.Stats(); s.Mutations != 1 {
		t.Fatalf("Stats.Mutations = %d, want 1 (failed applies must not count)", s.Mutations)
	}
	if c.OverlayCameras() == 0 {
		t.Fatal("OverlayCameras sees no overlay after a remove")
	}
}

// TestMutateSerializesPerDeployment checks that concurrent Mutate calls
// on one fingerprint never overlap (journal order == apply order relies
// on this).
func TestMutateSerializesPerDeployment(t *testing.T) {
	c := New(4)
	net := testNetwork(t, 1)
	fp := Fingerprint(net)
	if _, _, err := c.GetOrBuild(fp, buildEntry(net)); err != nil {
		t.Fatal(err)
	}

	var inside atomic.Int32
	var overlap atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _ = c.Mutate(fp, nil, func(e *Entry) error {
					if inside.Add(1) != 1 {
						overlap.Store(true)
					}
					defer inside.Add(-1)
					_, err := e.Index.Reaim([]spatial.ReaimOp{{Index: 0, Orient: float64(i)}})
					return err
				})
			}
		}()
	}
	wg.Wait()
	if overlap.Load() {
		t.Fatal("two apply closures ran concurrently for one deployment")
	}
	if got := c.Stats().Mutations; got != 160 {
		t.Fatalf("Stats.Mutations = %d, want 160", got)
	}
}
