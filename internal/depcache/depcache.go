// Package depcache keeps built deployments warm for the query service:
// an LRU cache from a content fingerprint of the camera network to the
// expensive artefact built from it — the CSR spatial index — so that
// registering the same network twice reuses the index instead of
// rebuilding it.
//
// Construction is single-flight: when several requests register the
// same fingerprint concurrently, exactly one builds the index and the
// rest wait for that build and share its result. Hit, miss, and
// eviction counts are tracked for the /metrics endpoint.
//
// Deployments are mutable: the cached index is a spatial.MutableIndex
// and the Mutate path refreshes an entry in place under a per-entry
// mutation lock. The cache key stays the registration fingerprint (the
// stable lineage id); the pair (fingerprint, Index.Version()) is what
// identifies the served state, and every mutation bumps the version.
package depcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/maphash"
	"math"
	"sync"

	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// Entry is one cached deployment: the registered base network, the
// mutable spatial index serving it, and the fingerprint it is stored
// under. Entries are shared between requests; reads go through the
// lock-free Index and per-request checkers are derived from it
// (core.NewCheckerFromSource / NewMultiCheckerFromSource). Mutations
// must go through Cache.Mutate so they serialize per deployment.
type Entry struct {
	// Fingerprint is the content hash the entry is cached under — the
	// fingerprint of the *base* registration; mutations advance
	// Index.Version() without changing the id.
	Fingerprint string
	// Net is the network as registered (the base of the mutation
	// lineage; Index.Cameras() is the live list).
	Net *sensor.Network
	// Index is the mutable CSR spatial index — the artefact whose
	// reconstruction the cache amortises, and the target of Mutate.
	Index *spatial.MutableIndex
}

// Fingerprint returns the content fingerprint of a deployed network:
// a hash over the torus side and every camera's position, orientation,
// radius, aperture, and group, all as exact float64 bits. Two networks
// fingerprint equally iff they would build bit-identical spatial
// indexes, so a deterministic re-deployment (same profile, count, and
// seed) or a re-registration of the same explicit camera list lands on
// the same cache entry.
func Fingerprint(net *sensor.Network) string {
	h := sha256.New()
	var buf [8 * 6]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(net.Torus().Side()))
	h.Write(buf[:8])
	for i := 0; i < net.Len(); i++ {
		c := net.Camera(i)
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(c.Pos.X))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(c.Pos.Y))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(c.Orient))
		binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(c.Radius))
		binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(c.Aperture))
		binary.LittleEndian.PutUint64(buf[40:], uint64(int64(c.Group)))
		h.Write(buf[:])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered from the cache, including waiters
	// that shared a single-flight build.
	Hits int64
	// Misses counts lookups that had to build.
	Misses int64
	// Evictions counts entries dropped by the LRU size cap.
	Evictions int64
	// Mutations counts deployment mutations applied through Mutate.
	Mutations int64
	// Len and Cap are the current and maximum entry counts.
	Len, Cap int
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// buildCall is one in-flight single-flight construction.
type buildCall struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Cache is a fixed-capacity LRU of built deployments with single-flight
// construction. Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used; values are *Entry
	entries   map[string]*list.Element
	building  map[string]*buildCall
	hits      int64
	misses    int64
	evictions int64
	mutations int64

	// mutLocks serializes Mutate calls per deployment (striped by
	// fingerprint hash, so the lock survives eviction and revival of
	// the entry it guards). mutSeed keys the stripe hash.
	mutLocks [64]sync.Mutex
	mutSeed  maphash.Seed
}

// New returns a cache holding at most capacity deployments (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:      capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		building: make(map[string]*buildCall),
		mutSeed:  maphash.MakeSeed(),
	}
}

// Mutate runs apply on the entry for fp under the deployment's mutation
// lock, so concurrent mutations of one deployment serialize (and their
// journal order matches their apply order). When fp is not cached,
// resolve is called — still under the lock — to revive it (typically
// from the durable journal); resolve returning false means the
// deployment does not exist and Mutate reports found == false without
// running apply. A nil resolve skips revival. apply's error is returned
// verbatim; only a nil error counts as an applied mutation in Stats.
func (c *Cache) Mutate(fp string, resolve func() (*Entry, bool), apply func(*Entry) error) (found bool, err error) {
	l := c.mutLock(fp)
	l.Lock()
	defer l.Unlock()
	e, ok := c.Get(fp)
	if !ok && resolve != nil {
		e, ok = resolve()
	}
	if !ok {
		return false, nil
	}
	if err := apply(e); err != nil {
		return true, err
	}
	c.mu.Lock()
	c.mutations++
	c.mu.Unlock()
	return true, nil
}

// mutLock maps a fingerprint to its mutation-lock stripe.
func (c *Cache) mutLock(fp string) *sync.Mutex {
	h := maphash.String(c.mutSeed, fp)
	return &c.mutLocks[h%uint64(len(c.mutLocks))]
}

// OverlayCameras sums the overlay sizes (removed + added cameras not
// yet folded into a CSR base) across all cached deployments — the
// overlay-size gauge for /metrics.
func (c *Cache) OverlayCameras() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		total += el.Value.(*Entry).Index.OverlaySize()
	}
	return total
}

// Get returns the cached entry for fp, marking it most recently used.
// A found entry counts as a hit; a missing one counts nothing — absent
// deployments are the caller's 404, not a build miss.
func (c *Cache) Get(fp string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*Entry), true
}

// GetOrBuild returns the entry for fp, building it with build on a
// miss. Concurrent calls for one fingerprint build once: the first
// caller runs build (without holding the cache lock), the rest block
// until it finishes and share the result. hit reports whether this
// caller was served without running build. A failed build caches
// nothing; every waiter receives the build error.
func (c *Cache) GetOrBuild(fp string, build func() (*Entry, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*Entry), true, nil
	}
	if call, ok := c.building[fp]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, call.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return call.entry, true, nil
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[fp] = call
	c.misses++
	c.mu.Unlock()

	call.entry, call.err = build()

	c.mu.Lock()
	delete(c.building, fp)
	if call.err == nil {
		c.insertLocked(fp, call.entry)
	}
	c.mu.Unlock()
	close(call.done)
	return call.entry, false, call.err
}

// insertLocked stores an entry and enforces the size cap. The caller
// holds c.mu.
func (c *Cache) insertLocked(fp string, e *Entry) {
	if el, ok := c.entries[fp]; ok {
		// A racing Get/GetOrBuild cannot have inserted fp (single-flight
		// holds the building slot), but be idempotent regardless.
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.entries[fp] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*Entry).Fingerprint)
		c.evictions++
	}
}

// Invalidate drops the cached entry for fp, if any, and reports
// whether one was dropped. The next use rebuilds from the durable
// journal. Used by the cluster journal mirror: a mirrored record means
// a peer advanced this deployment's state, so a locally cached entry —
// typically left behind by a mis-routed or pre-rebalance request — is
// stale. Dropping (rather than patching) keeps the mirror path trivial
// and correct: the journal is the source of truth either way. An
// in-flight single-flight build is not affected; callers racing a
// build may re-Invalidate after it lands.
func (c *Cache) Invalidate(fp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.entries, fp)
	return true
}

// Len returns the number of cached deployments.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Mutations: c.mutations,
		Len:       c.ll.Len(),
		Cap:       c.cap,
	}
}
