package analytic

import (
	"errors"
	"math"
	"testing"
)

func TestKNecessaryKSufficient(t *testing.T) {
	tests := []struct {
		name  string
		theta float64
		wantN int
		wantS int
	}{
		{name: "theta pi", theta: math.Pi, wantN: 1, wantS: 2},
		{name: "theta half pi", theta: math.Pi / 2, wantN: 2, wantS: 4},
		{name: "theta quarter pi", theta: math.Pi / 4, wantN: 4, wantS: 8},
		{name: "theta 0.3 pi", theta: 0.3 * math.Pi, wantN: 4, wantS: 7},
		{name: "theta 0.1 pi", theta: 0.1 * math.Pi, wantN: 10, wantS: 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := KNecessary(tt.theta); got != tt.wantN {
				t.Errorf("KNecessary(%v) = %d, want %d", tt.theta, got, tt.wantN)
			}
			if got := KSufficient(tt.theta); got != tt.wantS {
				t.Errorf("KSufficient(%v) = %d, want %d", tt.theta, got, tt.wantS)
			}
		})
	}
}

func TestCSAValidation(t *testing.T) {
	if _, err := CSANecessary(1, math.Pi/4); !errors.Is(err, ErrSmallN) {
		t.Errorf("n=1: error = %v, want ErrSmallN", err)
	}
	for _, theta := range []float64{0, -1, math.Pi + 0.1, math.NaN()} {
		if _, err := CSANecessary(100, theta); !errors.Is(err, ErrBadTheta) {
			t.Errorf("theta=%v: error = %v, want ErrBadTheta", theta, err)
		}
		if _, err := CSASufficient(100, theta); !errors.Is(err, ErrBadTheta) {
			t.Errorf("sufficient theta=%v: error = %v, want ErrBadTheta", theta, err)
		}
	}
}

// TestCSANecessaryDegeneratesToOneCoverage checks equation (19): at
// θ = π the necessary CSA is exactly the 1-coverage critical sensing
// area (ln n + ln ln n)/n.
func TestCSANecessaryDegeneratesToOneCoverage(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 100000} {
		got, err := CSANecessary(n, math.Pi)
		if err != nil {
			t.Fatal(err)
		}
		want, err := OneCoverageCSA(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("n=%d: CSANecessary(π) = %v, OneCoverageCSA = %v", n, got, want)
		}
	}
}

// TestSufficientRoughlyTwiceNecessary checks Section VI-C: s_Sc ≈ 2·s_Nc,
// "mainly due to the difference of their coefficient".
func TestSufficientRoughlyTwiceNecessary(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		for _, theta := range []float64{math.Pi / 4, math.Pi / 3, math.Pi / 2} {
			nec, err := CSANecessary(n, theta)
			if err != nil {
				t.Fatal(err)
			}
			suf, err := CSASufficient(n, theta)
			if err != nil {
				t.Fatal(err)
			}
			if suf <= nec {
				t.Errorf("n=%d θ=%v: sufficient CSA %v not above necessary %v", n, theta, suf, nec)
			}
			ratio := suf / nec
			if ratio < 1.5 || ratio > 2.5 {
				t.Errorf("n=%d θ=%v: ratio = %v, want ≈ 2", n, theta, ratio)
			}
		}
	}
}

// TestCSAFig7Shape checks Figure 7's qualitative claims: for fixed
// n = 1000 both CSAs decrease as θ grows from 0.1π to 0.5π, roughly
// like 1/θ.
func TestCSAFig7Shape(t *testing.T) {
	const n = 1000
	thetas := []float64{0.1 * math.Pi, 0.2 * math.Pi, 0.3 * math.Pi, 0.4 * math.Pi, 0.5 * math.Pi}
	var prevNec, prevSuf float64
	for i, theta := range thetas {
		nec, err := CSANecessary(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		suf, err := CSASufficient(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if nec >= prevNec {
				t.Errorf("necessary CSA not decreasing at θ=%v: %v ≥ %v", theta, nec, prevNec)
			}
			if suf >= prevSuf {
				t.Errorf("sufficient CSA not decreasing at θ=%v: %v ≥ %v", theta, suf, prevSuf)
			}
		}
		prevNec, prevSuf = nec, suf
	}
	// ∝ 1/θ: CSA(0.1π)/CSA(0.5π) should be near 5 (the radical term only
	// contributes second-order corrections at n = 1000).
	nec01, _ := CSANecessary(n, 0.1*math.Pi)
	nec05, _ := CSANecessary(n, 0.5*math.Pi)
	if ratio := nec01 / nec05; ratio < 3.5 || ratio > 7 {
		t.Errorf("1/θ proportionality: ratio = %v, want ≈ 5", ratio)
	}
}

// TestCSAFig8Shape checks Figure 8's claims at θ = π/4: s_Sc(100) is
// about 0.5 ("half the area of the unit square"), CSAs decrease with n,
// and the decline flattens past n = 1000.
func TestCSAFig8Shape(t *testing.T) {
	theta := math.Pi / 4
	suf100, err := CSASufficient(100, theta)
	if err != nil {
		t.Fatal(err)
	}
	if suf100 < 0.4 || suf100 > 0.75 {
		t.Errorf("s_Sc(100) = %v, paper reports ≈ 0.5", suf100)
	}
	var prev float64 = math.Inf(1)
	for _, n := range []int{100, 200, 500, 1000, 2000, 5000, 10000} {
		suf, err := CSASufficient(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		if suf >= prev {
			t.Errorf("s_Sc not decreasing at n=%d", n)
		}
		prev = suf
	}
	// Flattening: absolute drop from 100→1000 far exceeds 1000→10000.
	s100, _ := CSASufficient(100, theta)
	s1000, _ := CSASufficient(1000, theta)
	s10000, _ := CSASufficient(10000, theta)
	if (s100 - s1000) < 5*(s1000-s10000) {
		t.Errorf("decline should flatten: drops %v then %v", s100-s1000, s1000-s10000)
	}
}

// TestNecessaryCSADominatesKCoverage checks Section VII-B: with
// k = ⌈π/θ⌉, s_Nc(n) ≥ s_K(n) — full-view coverage is more demanding
// than k-coverage.
func TestNecessaryCSADominatesKCoverage(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		for _, theta := range []float64{0.1 * math.Pi, math.Pi / 4, math.Pi / 3, math.Pi / 2, math.Pi} {
			nec, err := CSANecessary(n, theta)
			if err != nil {
				t.Fatal(err)
			}
			sk, err := KCoverageSufficientArea(n, KNecessary(theta))
			if err != nil {
				t.Fatal(err)
			}
			if nec < sk*(1-1e-9) {
				t.Errorf("n=%d θ=%v: s_Nc=%v < s_K=%v", n, theta, nec, sk)
			}
		}
	}
}

func TestOneCoverageCSA(t *testing.T) {
	got, err := OneCoverageCSA(1000)
	if err != nil {
		t.Fatal(err)
	}
	ln := math.Log(1000)
	want := (ln + math.Log(ln)) / 1000
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("OneCoverageCSA(1000) = %v, want %v", got, want)
	}
	if _, err := OneCoverageCSA(1); !errors.Is(err, ErrSmallN) {
		t.Errorf("n=1: error = %v, want ErrSmallN", err)
	}
}

func TestCriticalESRMatchesCSA(t *testing.T) {
	// πR*² must equal the 1-coverage CSA (the Section VII-A conversion).
	for _, n := range []int{10, 1000, 100000} {
		r, err := CriticalESR(n)
		if err != nil {
			t.Fatal(err)
		}
		csa, err := OneCoverageCSA(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Pi*r*r-csa) > 1e-15 {
			t.Errorf("n=%d: πR*² = %v, CSA = %v", n, math.Pi*r*r, csa)
		}
	}
}

func TestKCoverageSufficientArea(t *testing.T) {
	got, err := KCoverageSufficientArea(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ln := math.Log(1000)
	want := (ln + 3*math.Log(ln)) / 1000
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("s_K = %v, want %v", got, want)
	}
	if _, err := KCoverageSufficientArea(1000, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: error = %v, want ErrBadK", err)
	}
	if _, err := KCoverageSufficientArea(1, 1); !errors.Is(err, ErrSmallN) {
		t.Errorf("n=1: error = %v, want ErrSmallN", err)
	}
	// k-coverage demand grows with k.
	s1, _ := KCoverageSufficientArea(1000, 1)
	s5, _ := KCoverageSufficientArea(1000, 5)
	if s5 <= s1 {
		t.Errorf("s_K should grow with k: s1=%v s5=%v", s1, s5)
	}
}

func TestOneMinusPowNumericalStability(t *testing.T) {
	// Naive 1-(1-x)^(1/k) loses all precision at x = 1e-12, k = 8; the
	// stable form must stay within 1e-6 relative error of the series
	// expansion x/k·(1 + (k-1)/(2k)·x + …) ≈ x/k for tiny x.
	for _, x := range []float64{1e-6, 1e-9, 1e-12} {
		for _, k := range []int{1, 2, 8, 20} {
			got := oneMinusPow(x, k)
			approx := x / float64(k)
			if math.Abs(got-approx) > 1e-3*approx {
				t.Errorf("oneMinusPow(%v, %d) = %v, want ≈ %v", x, k, got, approx)
			}
		}
	}
	// Exactness for k = 1.
	if got := oneMinusPow(0.25, 1); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("oneMinusPow(0.25, 1) = %v", got)
	}
}
