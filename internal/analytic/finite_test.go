package analytic

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/numeric"
	"fullview/internal/sensor"
)

func TestKCheckedValidRange(t *testing.T) {
	for _, theta := range []float64{math.Pi, math.Pi / 2, math.Pi / 4, 0.01} {
		kn, err := KNecessaryChecked(theta)
		if err != nil {
			t.Fatalf("KNecessaryChecked(%v): %v", theta, err)
		}
		if kn != KNecessary(theta) {
			t.Errorf("KNecessaryChecked(%v) = %d, unchecked = %d", theta, kn, KNecessary(theta))
		}
		ks, err := KSufficientChecked(theta)
		if err != nil {
			t.Fatalf("KSufficientChecked(%v): %v", theta, err)
		}
		if ks != KSufficient(theta) {
			t.Errorf("KSufficientChecked(%v) = %d, unchecked = %d", theta, ks, KSufficient(theta))
		}
	}
}

func TestKCheckedRejectsBadTheta(t *testing.T) {
	for _, theta := range []float64{0, -1, math.Pi * 1.001, math.NaN(), math.Inf(1),
		1e-300, // ⌈π/θ⌉ overflows int: unchecked K returns garbage here
	} {
		if _, err := KNecessaryChecked(theta); !errors.Is(err, ErrBadTheta) {
			t.Errorf("KNecessaryChecked(%v) err = %v, want ErrBadTheta", theta, err)
		}
		if _, err := KSufficientChecked(theta); !errors.Is(err, ErrBadTheta) {
			t.Errorf("KSufficientChecked(%v) err = %v, want ErrBadTheta", theta, err)
		}
	}
}

// TestCSAExtremeThetaStructuredError pins the numeric-health contract:
// θ small enough to overflow the sector count used to reach the
// formulas and poison results with NaN; now it fails with a structured
// validation or non-finite error, never a silent NaN.
func TestCSAExtremeThetaStructuredError(t *testing.T) {
	for _, theta := range []float64{1e-300, 1e-19} {
		for name, f := range map[string]func(int, float64) (float64, error){
			"CSANecessary":  CSANecessary,
			"CSASufficient": CSASufficient,
		} {
			v, err := f(1000, theta)
			if err == nil {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s(1000, %v) leaked non-finite %v without error", name, theta, v)
				}
				continue
			}
			if !errors.Is(err, ErrBadTheta) && !errors.Is(err, numeric.ErrNonFinite) {
				t.Errorf("%s(1000, %v) err = %v, want ErrBadTheta or ErrNonFinite", name, theta, err)
			}
		}
	}
}

func TestTheoremFormulasNeverReturnNonFinite(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	thetas := []float64{1e-6, 0.01, math.Pi / 4, math.Pi / 2, math.Pi}
	ns := []int{2, 3, 100, 1 << 20, 1 << 40}
	for _, theta := range thetas {
		for _, n := range ns {
			checkFiniteOrError := func(name string, v float64, err error) {
				if err != nil {
					return // structured refusal is fine
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s(n=%d, θ=%v) = %v with nil error", name, n, theta, v)
				}
			}
			v, err := CSANecessary(n, theta)
			checkFiniteOrError("CSANecessary", v, err)
			v, err = CSASufficient(n, theta)
			checkFiniteOrError("CSASufficient", v, err)
			v, err = UniformNecessaryFailure(profile, n, theta)
			checkFiniteOrError("UniformNecessaryFailure", v, err)
			v, err = UniformSufficientFailure(profile, n, theta)
			checkFiniteOrError("UniformSufficientFailure", v, err)
			v, err = PoissonPN(profile, float64(n), theta)
			checkFiniteOrError("PoissonPN", v, err)
			v, err = PoissonPS(profile, float64(n), theta)
			checkFiniteOrError("PoissonPS", v, err)
		}
	}
}
