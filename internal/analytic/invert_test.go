package analytic

import (
	"errors"
	"math"
	"testing"
)

func TestRequiredNSufficientInvertsCSA(t *testing.T) {
	theta := math.Pi / 4
	for _, n := range []int{100, 1000, 10000} {
		csa, err := CSASufficient(n, theta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RequiredNSufficient(csa, theta)
		if err != nil {
			t.Fatal(err)
		}
		// s_Sc is strictly decreasing, so the inverse of its own value
		// is the original n (within a rounding neighbour).
		if got < n-1 || got > n+1 {
			t.Errorf("RequiredNSufficient(s_Sc(%d)) = %d", n, got)
		}
	}
}

func TestRequiredNSufficientMinimality(t *testing.T) {
	theta := math.Pi / 3
	s := 0.02
	n, err := RequiredNSufficient(s, theta)
	if err != nil {
		t.Fatal(err)
	}
	atN, err := CSASufficient(n, theta)
	if err != nil {
		t.Fatal(err)
	}
	if s < atN {
		t.Errorf("n = %d does not satisfy s ≥ s_Sc(n): %v < %v", n, s, atN)
	}
	if n > 2 {
		below, err := CSASufficient(n-1, theta)
		if err != nil {
			t.Fatal(err)
		}
		if s >= below {
			t.Errorf("n−1 = %d already satisfies the bound: s=%v ≥ s_Sc=%v", n-1, s, below)
		}
	}
}

func TestRequiredNSufficientHugeArea(t *testing.T) {
	// An absurdly large sensing area is sufficient at the minimum n.
	n, err := RequiredNSufficient(100, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
}

func TestRequiredNSufficientMonotone(t *testing.T) {
	theta := math.Pi / 4
	prev := 0
	for _, s := range []float64{0.5, 0.1, 0.02, 0.004, 0.0008} {
		n, err := RequiredNSufficient(s, theta)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Errorf("smaller area %v needs fewer cameras (%d < %d)", s, n, prev)
		}
		prev = n
	}
}

func TestRequiredNSufficientValidation(t *testing.T) {
	if _, err := RequiredNSufficient(0.01, 0); !errors.Is(err, ErrBadTheta) {
		t.Errorf("error = %v, want ErrBadTheta", err)
	}
	for _, s := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := RequiredNSufficient(s, math.Pi/4); err == nil {
			t.Errorf("RequiredNSufficient(s=%v) succeeded", s)
		}
	}
}
