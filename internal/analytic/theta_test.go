package analytic

import (
	"errors"
	"math"
	"testing"
)

func TestBestGuaranteedThetaInvertsCSA(t *testing.T) {
	// For s = s_Sc(n, θ₀) the best guaranteed θ is θ₀ itself.
	n := 1000
	for _, theta0 := range []float64{math.Pi / 4, math.Pi / 3, math.Pi / 2} {
		s, err := CSASufficient(n, theta0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BestGuaranteedTheta(s, n)
		if err != nil {
			t.Fatal(err)
		}
		// The sector-count ceilings make s_Sc piecewise in θ, so the
		// inverse can land anywhere inside θ₀'s plateau; it must never
		// exceed θ₀ (the quality it returns is at least as good).
		if got > theta0+1e-9 {
			t.Errorf("θ₀=%v: BestGuaranteedTheta = %v exceeds θ₀", theta0, got)
		}
		// And s must indeed be sufficient at the returned θ.
		csaAt, err := CSASufficient(n, got)
		if err != nil {
			t.Fatal(err)
		}
		if s < csaAt {
			t.Errorf("θ₀=%v: returned θ=%v not actually sufficient", theta0, got)
		}
	}
}

func TestBestGuaranteedThetaMonotoneInArea(t *testing.T) {
	// More sensing area buys a tighter (better) quality guarantee.
	n := 1000
	prev := math.Pi + 1
	for _, s := range []float64{0.05, 0.1, 0.2, 0.4} {
		theta, err := BestGuaranteedTheta(s, n)
		if err != nil {
			t.Fatalf("s=%v: %v", s, err)
		}
		if theta >= prev {
			t.Errorf("s=%v: θ=%v did not improve on %v", s, theta, prev)
		}
		prev = theta
	}
}

func TestBestGuaranteedThetaInfeasible(t *testing.T) {
	// A microscopic fleet guarantees nothing, even at θ = π.
	if _, err := BestGuaranteedTheta(1e-9, 100); !errors.Is(err, ErrNoFeasibleTheta) {
		t.Errorf("error = %v, want ErrNoFeasibleTheta", err)
	}
}

func TestBestGuaranteedThetaValidation(t *testing.T) {
	if _, err := BestGuaranteedTheta(0.1, 1); !errors.Is(err, ErrSmallN) {
		t.Errorf("error = %v, want ErrSmallN", err)
	}
	for _, s := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := BestGuaranteedTheta(s, 100); err == nil {
			t.Errorf("s=%v accepted", s)
		}
	}
}
