package analytic

import (
	"fmt"
	"math"
)

// This file implements the quantitative lemmas and proposition-level
// bounds from the paper's proofs (Section III-B). They are exported so
// the test suite can verify the inequalities the proofs rely on, and so
// users can evaluate the sharper ξ-parameterised forms of the CSA.

// LogBounds returns the paper's Lemma 1 bracket for ln(1−x) with
// 0 < x < 1/2:
//
//	−(x + 5x²/6) < ln(1−x) < −(x + x²/2).
//
// The returned values satisfy lower < ln(1−x) < upper.
func LogBounds(x float64) (lower, upper float64, err error) {
	if !(x > 0) || x >= 0.5 {
		return 0, 0, fmt.Errorf("analytic: Lemma 1 needs 0 < x < 1/2, got %v", x)
	}
	return -(x + 5*x*x/6), -(x + x*x/2), nil
}

// ExpApproxError quantifies Lemma 2: for 0 < x < 1/2 and y > 0,
// (1−x)^y ~ e^(−xy) whenever x²·y → 0. It returns the exact ratio
// (1−x)^y / e^(−xy), which tends to 1 as x²y tends to 0; tests assert
// |ratio − 1| = O(x²y).
func ExpApproxError(x, y float64) (ratio float64, err error) {
	if !(x > 0) || x >= 0.5 || !(y > 0) {
		return 0, fmt.Errorf("analytic: Lemma 2 needs 0 < x < 1/2 and y > 0, got x=%v y=%v", x, y)
	}
	logRatio := y*math.Log1p(-x) + x*y
	return math.Exp(logRatio), nil
}

// CSANecessaryXi returns the ξ-parameterised sensing area of
// Proposition 1:
//
//	s_c(ξ) = −(π/(θn))·ln(1 − (1 − e^(−ξ)/(n·ln n))^(1/⌈π/θ⌉)),
//
// the operating point at which the probability that the dense grid
// fails the necessary condition is asymptotically at least
// e^(−ξ) − e^(−2ξ). CSANecessary is the special case ξ = 0.
func CSANecessaryXi(n int, theta, xi float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	if xi < 0 || math.IsNaN(xi) {
		return 0, fmt.Errorf("analytic: ξ must be non-negative, got %v", xi)
	}
	x := math.Exp(-xi) / (float64(n) * math.Log(float64(n)))
	inner := oneMinusPow(x, KNecessary(theta))
	return -math.Pi / (theta * float64(n)) * math.Log(inner), nil
}

// CSASufficientXi is the ξ-parameterised form of Proposition 3, the
// sufficient-condition analogue of CSANecessaryXi.
func CSASufficientXi(n int, theta, xi float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	if xi < 0 || math.IsNaN(xi) {
		return 0, fmt.Errorf("analytic: ξ must be non-negative, got %v", xi)
	}
	x := math.Exp(-xi) / (float64(n) * math.Log(float64(n)))
	inner := oneMinusPow(x, KSufficient(theta))
	return -2 * math.Pi / (theta * float64(n)) * math.Log(inner), nil
}

// PropositionFailureLowerBound returns e^(−ξ) − e^(−2ξ), the asymptotic
// lower bound Propositions 1 and 3 place on the grid failure probability
// at the ξ-parameterised sensing area. It is maximised at ξ = ln 2 where
// it equals 1/4.
func PropositionFailureLowerBound(xi float64) (float64, error) {
	if xi < 0 || math.IsNaN(xi) {
		return 0, fmt.Errorf("analytic: ξ must be non-negative, got %v", xi)
	}
	return math.Exp(-xi) - math.Exp(-2*xi), nil
}

// GridFailureUpperBound evaluates the Proposition 2 chain at finite n:
// with s_c = q·s_Nc(n) for q > 1, the union bound gives
//
//	P(H̄_N) ≤ m·(1 − [1 − (1/(m))^q …]) ≈ m^(1−q),
//
// where m = n·ln n. The returned value m^(1−q) is the paper's final
// bound (equation 12), which tends to 0 as n grows.
func GridFailureUpperBound(n int, q float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrSmallN, n)
	}
	if !(q > 1) || math.IsInf(q, 0) {
		return 0, fmt.Errorf("analytic: Proposition 2 needs q > 1, got %v", q)
	}
	m := float64(n) * math.Log(float64(n))
	return math.Pow(m, 1-q), nil
}
