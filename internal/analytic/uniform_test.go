package analytic

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/sensor"
)

func homogeneous(t *testing.T, r, phi float64) sensor.Profile {
	t.Helper()
	p, err := sensor.Homogeneous(r, phi)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func heterogeneous(t *testing.T) sensor.Profile {
	t.Helper()
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.15, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUniformNecessaryFailureHomogeneousFormula(t *testing.T) {
	// Direct evaluation of Eq. (2) for a homogeneous network.
	prof := homogeneous(t, 0.1, math.Pi/2)
	n, theta := 1000, math.Pi/4
	got, err := UniformNecessaryFailure(prof, n, theta)
	if err != nil {
		t.Fatal(err)
	}
	s := math.Pi / 2 * 0.01 / 2
	q := theta * s / math.Pi
	miss := math.Pow(1-q, float64(n))
	want := 1 - math.Pow(1-miss, float64(KNecessary(theta)))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUniformSufficientFailureHomogeneousFormula(t *testing.T) {
	prof := homogeneous(t, 0.1, math.Pi/2)
	n, theta := 1000, math.Pi/4
	got, err := UniformSufficientFailure(prof, n, theta)
	if err != nil {
		t.Fatal(err)
	}
	s := math.Pi / 2 * 0.01 / 2
	q := theta * s / (2 * math.Pi)
	miss := math.Pow(1-q, float64(n))
	want := 1 - math.Pow(1-miss, float64(KSufficient(theta)))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUniformFailureBounds(t *testing.T) {
	prof := heterogeneous(t)
	for _, n := range []int{2, 100, 10000} {
		for _, theta := range []float64{0.1 * math.Pi, math.Pi / 4, math.Pi} {
			for _, f := range []func(sensor.Profile, int, float64) (float64, error){
				UniformNecessaryFailure, UniformSufficientFailure,
			} {
				p, err := f(prof, n, theta)
				if err != nil {
					t.Fatal(err)
				}
				if p < 0 || p > 1 {
					t.Errorf("n=%d θ=%v: probability %v out of [0,1]", n, theta, p)
				}
			}
		}
	}
}

func TestUniformFailureMonotoneInN(t *testing.T) {
	prof := heterogeneous(t)
	theta := math.Pi / 4
	prev := 1.1
	for _, n := range []int{100, 500, 1000, 5000, 20000} {
		p, err := UniformNecessaryFailure(prof, n, theta)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("failure should decrease with n: P(%d) = %v ≥ %v", n, p, prev)
		}
		prev = p
	}
}

func TestUniformSufficientFailureAboveNecessary(t *testing.T) {
	// The sufficient condition is strictly harder to satisfy, so its
	// failure probability dominates.
	prof := heterogeneous(t)
	for _, n := range []int{100, 1000} {
		for _, theta := range []float64{math.Pi / 4, math.Pi / 2, math.Pi} {
			nec, err := UniformNecessaryFailure(prof, n, theta)
			if err != nil {
				t.Fatal(err)
			}
			suf, err := UniformSufficientFailure(prof, n, theta)
			if err != nil {
				t.Fatal(err)
			}
			if suf < nec {
				t.Errorf("n=%d θ=%v: P(F_S)=%v < P(F_N)=%v", n, theta, suf, nec)
			}
		}
	}
}

func TestUniformFailureSaturatingSensor(t *testing.T) {
	// θ·s/π ≥ 1: every sensor covers its sector event almost surely, so
	// failure collapses to 0 as soon as a group has one sensor.
	prof := homogeneous(t, 2, 2*math.Pi) // s = 4π·... large
	p, err := UniformNecessaryFailure(prof, 10, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("failure = %v, want 0 for saturating sensing areas", p)
	}
}

func TestUniformFailureValidation(t *testing.T) {
	prof := homogeneous(t, 0.1, 1)
	if _, err := UniformNecessaryFailure(prof, 1, math.Pi/4); !errors.Is(err, ErrSmallN) {
		t.Errorf("error = %v, want ErrSmallN", err)
	}
	if _, err := UniformSufficientFailure(prof, 100, 0); !errors.Is(err, ErrBadTheta) {
		t.Errorf("error = %v, want ErrBadTheta", err)
	}
}

func TestExpectedCoverageCount(t *testing.T) {
	prof := homogeneous(t, 0.1, math.Pi/2)
	// n·s with s = (π/2)(0.01)/2 = π/400.
	want := 1000 * math.Pi / 400
	if got := ExpectedCoverageCount(prof, 1000); math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedCoverageCount = %v, want %v", got, want)
	}
	// Heterogeneous: Σ n_y·s_y.
	het := heterogeneous(t)
	counts := het.Counts(1000)
	wantHet := 0.0
	for y, g := range het.Groups() {
		wantHet += float64(counts[y]) * g.SensingArea()
	}
	if got := ExpectedCoverageCount(het, 1000); math.Abs(got-wantHet) > 1e-12 {
		t.Errorf("heterogeneous ExpectedCoverageCount = %v, want %v", got, wantHet)
	}
}

// TestSensingAreaDecisiveAnalytically checks Section VI-A at the formula
// level: two profiles with different (r, φ) but identical s produce
// identical failure probabilities.
func TestSensingAreaDecisiveAnalytically(t *testing.T) {
	longThin := homogeneous(t, 0.2, math.Pi/8)  // s = π/8·0.04/2
	shortWide := homogeneous(t, 0.1, math.Pi/2) // s = π/2·0.01/2 — equal
	if math.Abs(longThin.WeightedSensingArea()-shortWide.WeightedSensingArea()) > 1e-15 {
		t.Fatal("test setup: sensing areas should match")
	}
	for _, theta := range []float64{math.Pi / 4, math.Pi / 2} {
		a, err := UniformNecessaryFailure(longThin, 1000, theta)
		if err != nil {
			t.Fatal(err)
		}
		b, err := UniformNecessaryFailure(shortWide, 1000, theta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("θ=%v: failure probabilities differ for equal sensing area: %v vs %v", theta, a, b)
		}
	}
}
