package analytic

import (
	"math"

	"fullview/internal/numeric"
	"fullview/internal/sensor"
)

// UniformNecessaryFailure returns P(F_N,P) — equation (2): the
// probability that an arbitrary point P fails the geometric necessary
// condition when n sensors with the given heterogeneity profile are
// uniformly deployed on the unit torus.
//
// For one sensor of group y, the probability that it lands in a given
// 2θ sector of C(P, r_y) *and* is oriented to cover P is
// (2θ/2π)·πr_y²·(φ_y/2π) = θ·s_y/π. The condition fails if any of the
// ⌈π/θ⌉ sectors ends up empty; sector events are treated as independent
// as in the paper's asymptotic argument.
func UniformNecessaryFailure(profile sensor.Profile, n int, theta float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	k, err := KNecessaryChecked(theta)
	if err != nil {
		return 0, err
	}
	v := uniformFailure(profile, n, theta/math.Pi, k)
	return numeric.Checked("UniformNecessaryFailure", v, nil, "n", n, "θ", theta)
}

// UniformSufficientFailure returns P(F_S,P) — equation (13): the
// probability that an arbitrary point fails the geometric sufficient
// condition under uniform deployment. Per-sensor per-sector coverage
// probability is θ·s_y/(2π); the exponent is ⌈2π/θ⌉.
func UniformSufficientFailure(profile sensor.Profile, n int, theta float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	k, err := KSufficientChecked(theta)
	if err != nil {
		return 0, err
	}
	v := uniformFailure(profile, n, theta/(2*math.Pi), k)
	return numeric.Checked("UniformSufficientFailure", v, nil, "n", n, "θ", theta)
}

// uniformFailure evaluates 1 − [1 − Π_y (1 − areaCoeff·s_y)^(n_y)]^k.
// Counts n_y follow the profile's largest-remainder apportioning so the
// formula matches what the simulator actually deploys at finite n.
func uniformFailure(profile sensor.Profile, n int, areaCoeff float64, k int) float64 {
	counts := profile.Counts(n)
	// Work in log space: log Π (1-q_y)^{n_y} = Σ n_y·log1p(-q_y).
	logMiss := 0.0
	for y, g := range profile.Groups() {
		q := areaCoeff * g.SensingArea()
		if q >= 1 {
			// A sensor in this group covers the sector event almost
			// surely; the sector can only be empty if the group is empty.
			if counts[y] > 0 {
				return 0
			}
			continue
		}
		logMiss += float64(counts[y]) * math.Log1p(-q)
	}
	missAll := math.Exp(logMiss) // Π_y (1-q_y)^{n_y}: one sector stays empty
	// 1 - (1 - missAll)^k, computed stably.
	return -math.Expm1(float64(k) * math.Log1p(-missAll))
}

// ExpectedCoverageCount returns the expected number of sensors covering
// an arbitrary point under uniform deployment: n·s_c for the unit torus
// (each sensor covers P with probability equal to its sensing area —
// Section VI-A's "decisive role of sensing area").
func ExpectedCoverageCount(profile sensor.Profile, n int) float64 {
	counts := profile.Counts(n)
	e := 0.0
	for y, g := range profile.Groups() {
		e += float64(counts[y]) * g.SensingArea()
	}
	return e
}
