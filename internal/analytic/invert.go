package analytic

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnreachableArea reports a sensing area no population size can make
// sufficient within the search bound.
var ErrUnreachableArea = errors.New("analytic: no n ≤ bound makes this sensing area sufficient")

// requiredNBound caps the inversion search; s_Sc at this n is ≈ 10⁻⁸,
// far below any practical camera.
const requiredNBound = 1 << 31

// RequiredNSufficient returns the smallest n such that a homogeneous
// per-camera sensing area s meets the sufficient CSA: s ≥ s_Sc(n). It
// answers the designer's inverse question — "my cameras have sensing
// area s; how many must I scatter before full-view coverage is
// guaranteed w.h.p.?" — by bisecting the strictly decreasing s_Sc.
func RequiredNSufficient(s, theta float64) (int, error) {
	if !(theta > 0) || theta > math.Pi {
		return 0, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if !(s > 0) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("analytic: sensing area must be positive, got %v", s)
	}
	meets := func(n int) bool {
		csa, err := CSASufficient(n, theta)
		if err != nil {
			return false
		}
		return s >= csa
	}
	if meets(2) {
		return 2, nil
	}
	lo, hi := 2, 4
	for !meets(hi) {
		if hi >= requiredNBound {
			return 0, fmt.Errorf("%w: s = %v, θ = %v", ErrUnreachableArea, s, theta)
		}
		lo = hi
		hi *= 2
	}
	// Invariant: !meets(lo), meets(hi).
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
