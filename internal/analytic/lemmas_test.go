package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// TestLemma1Bracket verifies the paper's Lemma 1 numerically across its
// whole domain: −(x + 5x²/6) < ln(1−x) < −(x + x²/2) for 0 < x < 1/2.
func TestLemma1Bracket(t *testing.T) {
	// Start above 5·10⁻⁴ so the x³/3 separation from the upper bound
	// exceeds float64 rounding of ln(1−x).
	for x := 0.0005; x < 0.5; x += 0.0007 {
		lower, upper, err := LogBounds(x)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		actual := math.Log1p(-x)
		if !(lower < actual && actual < upper) {
			t.Fatalf("x=%v: bracket violated: %v < %v < %v", x, lower, actual, upper)
		}
	}
}

func TestLogBoundsDomain(t *testing.T) {
	for _, x := range []float64{0, -0.1, 0.5, 0.9, math.NaN()} {
		if _, _, err := LogBounds(x); err == nil {
			t.Errorf("LogBounds(%v) accepted", x)
		}
	}
}

// TestLemma2Convergence verifies that the (1−x)^y ≈ e^(−xy) ratio
// deviates from 1 by O(x²y): halving x at fixed x²y-scale must shrink
// the error quadratically.
func TestLemma2Convergence(t *testing.T) {
	y := 1000.0
	var prevErr float64 = math.Inf(1)
	for _, x := range []float64{0.02, 0.01, 0.005, 0.0025} {
		ratio, err := ExpApproxError(x, y)
		if err != nil {
			t.Fatal(err)
		}
		dev := math.Abs(ratio - 1)
		// x²y here is ≤ 0.4, so the deviation is small and shrinking
		// ~4× per halving of x.
		if dev >= prevErr/3 {
			t.Errorf("x=%v: deviation %v did not shrink quadratically (prev %v)", x, dev, prevErr)
		}
		prevErr = dev
	}
}

func TestExpApproxErrorDomain(t *testing.T) {
	cases := [][2]float64{{0, 1}, {0.6, 1}, {0.1, 0}, {0.1, -2}}
	for _, c := range cases {
		if _, err := ExpApproxError(c[0], c[1]); err == nil {
			t.Errorf("ExpApproxError(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestCSAXiReducesToTheoremAtZero(t *testing.T) {
	for _, n := range []int{100, 1000} {
		for _, theta := range []float64{math.Pi / 4, math.Pi / 2} {
			base, err := CSANecessary(n, theta)
			if err != nil {
				t.Fatal(err)
			}
			xi0, err := CSANecessaryXi(n, theta, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(base-xi0) > 1e-15 {
				t.Errorf("CSANecessaryXi(ξ=0) = %v, CSANecessary = %v", xi0, base)
			}
			baseS, err := CSASufficient(n, theta)
			if err != nil {
				t.Fatal(err)
			}
			xi0S, err := CSASufficientXi(n, theta, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(baseS-xi0S) > 1e-15 {
				t.Errorf("CSASufficientXi(ξ=0) = %v, CSASufficient = %v", xi0S, baseS)
			}
		}
	}
}

func TestCSAXiMonotoneInXi(t *testing.T) {
	// Larger ξ shrinks the target failure mass e^(−ξ)/(n ln n), which
	// demands *more* sensing area.
	prev := 0.0
	for _, xi := range []float64{0, 0.5, 1, 2, 4} {
		v, err := CSANecessaryXi(1000, math.Pi/4, xi)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Errorf("ξ=%v: CSA %v not increasing (prev %v)", xi, v, prev)
		}
		prev = v
	}
}

func TestCSAXiValidation(t *testing.T) {
	if _, err := CSANecessaryXi(1000, math.Pi/4, -1); err == nil {
		t.Error("negative ξ accepted")
	}
	if _, err := CSASufficientXi(1000, math.Pi/4, math.NaN()); err == nil {
		t.Error("NaN ξ accepted")
	}
	if _, err := CSANecessaryXi(1, math.Pi/4, 0); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestPropositionFailureLowerBound(t *testing.T) {
	// Maximum 1/4 at ξ = ln 2; zero at ξ = 0 and as ξ → ∞.
	atLn2, err := PropositionFailureLowerBound(math.Ln2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(atLn2-0.25) > 1e-15 {
		t.Errorf("bound at ln2 = %v, want 0.25", atLn2)
	}
	atZero, err := PropositionFailureLowerBound(0)
	if err != nil {
		t.Fatal(err)
	}
	if atZero != 0 {
		t.Errorf("bound at 0 = %v", atZero)
	}
	f := func(raw float64) bool {
		xi := math.Abs(raw)
		if math.IsNaN(xi) || math.IsInf(xi, 0) {
			return true
		}
		v, err := PropositionFailureLowerBound(xi)
		return err == nil && v >= 0 && v <= 0.25+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := PropositionFailureLowerBound(-1); err == nil {
		t.Error("negative ξ accepted")
	}
}

func TestGridFailureUpperBound(t *testing.T) {
	// The bound m^(1−q) vanishes as n grows, faster for larger q.
	prev := math.Inf(1)
	for _, n := range []int{100, 1000, 10000} {
		v, err := GridFailureUpperBound(n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Errorf("bound not decreasing at n=%d: %v", n, v)
		}
		prev = v
	}
	q2, _ := GridFailureUpperBound(1000, 2)
	q3, _ := GridFailureUpperBound(1000, 3)
	if q3 >= q2 {
		t.Errorf("larger q should tighten the bound: q2=%v q3=%v", q2, q3)
	}
	if _, err := GridFailureUpperBound(1000, 1); err == nil {
		t.Error("q=1 accepted (needs q > 1)")
	}
	if _, err := GridFailureUpperBound(1, 2); err == nil {
		t.Error("n=1 accepted")
	}
}

// TestPropositionBoundObservedInSimulationRange sanity-checks that the
// E3 measurements recorded in EXPERIMENTS.md are consistent with the
// proposition bounds: at q = 1 (ξ = 0 ⇒ lower bound 0) anything goes,
// while at the ξ = ln 2 operating point the failure probability must be
// able to reach ≥ 1/4 — our measured transition values (0.23–0.40) sit
// exactly in that regime.
func TestPropositionBoundObservedInSimulationRange(t *testing.T) {
	bound, err := PropositionFailureLowerBound(math.Ln2)
	if err != nil {
		t.Fatal(err)
	}
	measured := []float64{0.30, 0.40, 0.23, 0.35} // E3, q = 1 column
	for _, m := range measured {
		if m < bound-0.05 {
			t.Errorf("measured transition failure %v far below the ξ=ln2 lower bound %v", m, bound)
		}
	}
}
