package analytic

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoFeasibleTheta reports that even the loosest quality target
// (θ = π) is not guaranteed by the given fleet.
var ErrNoFeasibleTheta = errors.New("analytic: no θ in (0, π] is sufficient for this fleet")

// thetaBisectionIters fixes the precision of the θ search: 2⁻⁴⁰·π is far
// below any physically meaningful angular resolution.
const thetaBisectionIters = 40

// BestGuaranteedTheta answers the inverse design question of Theorem 2
// in the quality direction: given a fleet of n cameras with per-camera
// sensing area s, what is the smallest effective angle θ (the best
// face-capture quality) at which s still meets the sufficient CSA, so
// full-view coverage is guaranteed w.h.p.?
//
// s_Sc(n, θ) decreases in θ, so the feasible set is an interval [θ*, π];
// the function bisects for θ*. It returns ErrNoFeasibleTheta when even
// θ = π (plain 1-coverage quality) is not guaranteed.
func BestGuaranteedTheta(s float64, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrSmallN, n)
	}
	if !(s > 0) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("analytic: sensing area must be positive, got %v", s)
	}
	feasible := func(theta float64) bool {
		csa, err := CSASufficient(n, theta)
		if err != nil {
			return false
		}
		return s >= csa
	}
	if !feasible(math.Pi) {
		return 0, fmt.Errorf("%w: s = %v, n = %d", ErrNoFeasibleTheta, s, n)
	}
	lo, hi := 0.0, math.Pi // invariant: !feasible(lo) (limit), feasible(hi)
	for i := 0; i < thetaBisectionIters; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
