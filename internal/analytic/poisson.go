package analytic

import (
	"fmt"
	"math"

	"fullview/internal/numeric"
	"fullview/internal/sensor"
)

// PoissonQNecessary returns Q_N,y of Theorem 3: the probability that, in
// group y with Poisson density groupDensity (= n_y on the unit square),
// at least one sensor falls inside a given 2θ sector of C(P, r_y) and is
// oriented to cover P. The sector has area (2θ/2π)·πr² = θ·r², so the
// sensor count in it is Poisson(groupDensity·θ·r²); each such sensor
// covers P independently with probability φ/(2π).
//
// The paper states the truncated sum
//
//	Q_N,y = Σ_{k≥1} Pois(k; λ)·[1 − (1 − φ/2π)^k],  λ = n_y·θ·r²,
//
// whose closed form is 1 − exp(−λ·φ/(2π)) (Poisson thinning). This
// function evaluates the closed form; PoissonQSum evaluates the paper's
// sum for cross-validation.
func PoissonQNecessary(groupDensity float64, g sensor.GroupSpec, theta float64) (float64, error) {
	if err := validateTheta(theta); err != nil {
		return 0, err
	}
	lambda := groupDensity * theta * g.Radius * g.Radius
	return poissonQClosed(lambda, g.Aperture), nil
}

// PoissonQSufficient returns Q_S,y of Theorem 4: as PoissonQNecessary
// but for a θ sector, whose area is θ·r²/2.
func PoissonQSufficient(groupDensity float64, g sensor.GroupSpec, theta float64) (float64, error) {
	if err := validateTheta(theta); err != nil {
		return 0, err
	}
	lambda := groupDensity * theta * g.Radius * g.Radius / 2
	return poissonQClosed(lambda, g.Aperture), nil
}

// poissonQClosed computes 1 − exp(−λ·φ/(2π)).
func poissonQClosed(lambda, aperture float64) float64 {
	return -math.Expm1(-lambda * aperture / (2 * math.Pi))
}

// PoissonQSum evaluates the paper's truncated series
// Σ_{k=1}^{kMax} Pois(k; λ)·[1 − (1 − φ/2π)^k] directly. With kMax well
// above λ it converges to the closed form; the test suite checks the
// agreement. kMax ≤ 0 selects an adaptive cutoff (λ + 12√λ + 30).
func PoissonQSum(lambda, aperture float64, kMax int) (float64, error) {
	if !(lambda >= 0) || math.IsInf(lambda, 0) {
		return 0, fmt.Errorf("analytic: invalid Poisson mean %v", lambda)
	}
	if kMax <= 0 {
		kMax = int(lambda+12*math.Sqrt(lambda)) + 30
	}
	missOrient := 1 - aperture/(2*math.Pi)
	pmf := math.Exp(-lambda) // Pois(0; λ)
	missPow := 1.0           // (1 - φ/2π)^k
	sum := 0.0
	for k := 1; k <= kMax; k++ {
		pmf *= lambda / float64(k)
		missPow *= missOrient
		sum += pmf * (1 - missPow)
	}
	return sum, nil
}

func validateTheta(theta float64) error {
	if !(theta > 0) || theta > math.Pi {
		return fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	return nil
}

// PoissonPN returns P_N of Theorem 3: the probability that an arbitrary
// point meets the necessary condition of full-view coverage when sensors
// are deployed by a 2-D Poisson process of total density `density` (the
// paper's λ = n on the unit square) with the given heterogeneity
// profile:
//
//	P_N = [1 − Π_y (1 − Q_N,y)]^⌈π/θ⌉.
func PoissonPN(profile sensor.Profile, density, theta float64) (float64, error) {
	k, err := KNecessaryChecked(theta)
	if err != nil {
		return 0, err
	}
	v, err := poissonP(profile, density, theta, PoissonQNecessary, k)
	return numeric.Checked("PoissonPN", v, err, "density", density, "θ", theta)
}

// PoissonPS returns P_S of Theorem 4: the probability that an arbitrary
// point meets the sufficient condition (and is therefore full-view
// covered), with exponent ⌈2π/θ⌉ and θ-sector Q values.
func PoissonPS(profile sensor.Profile, density, theta float64) (float64, error) {
	k, err := KSufficientChecked(theta)
	if err != nil {
		return 0, err
	}
	v, err := poissonP(profile, density, theta, PoissonQSufficient, k)
	return numeric.Checked("PoissonPS", v, err, "density", density, "θ", theta)
}

func poissonP(
	profile sensor.Profile,
	density, theta float64,
	qFunc func(float64, sensor.GroupSpec, float64) (float64, error),
	k int,
) (float64, error) {
	if err := validateTheta(theta); err != nil {
		return 0, err
	}
	if !(density >= 0) || math.IsInf(density, 0) {
		return 0, fmt.Errorf("analytic: invalid density %v", density)
	}
	logMiss := 0.0 // log Π_y (1 - Q_y)
	for _, g := range profile.Groups() {
		q, err := qFunc(g.Fraction*density, g, theta)
		if err != nil {
			return 0, err
		}
		if q >= 1 {
			logMiss = math.Inf(-1)
			break
		}
		logMiss += math.Log1p(-q)
	}
	miss := math.Exp(logMiss)
	// (1 - miss)^k computed stably.
	return math.Exp(float64(k) * math.Log1p(-miss)), nil
}
