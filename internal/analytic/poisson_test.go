package analytic

import (
	"math"
	"testing"

	"fullview/internal/sensor"
)

func TestPoissonQClosedMatchesPaperSum(t *testing.T) {
	// The paper's truncated series must agree with the closed form
	// 1 − exp(−λφ/2π) once the cutoff clears the mean.
	cases := []struct {
		lambda, aperture float64
	}{
		{lambda: 0.5, aperture: math.Pi / 2},
		{lambda: 5, aperture: math.Pi / 4},
		{lambda: 31.4, aperture: math.Pi},
		{lambda: 200, aperture: 2 * math.Pi},
		{lambda: 0, aperture: math.Pi},
	}
	for _, tc := range cases {
		sum, err := PoissonQSum(tc.lambda, tc.aperture, 0)
		if err != nil {
			t.Fatal(err)
		}
		closed := poissonQClosed(tc.lambda, tc.aperture)
		if math.Abs(sum-closed) > 1e-10 {
			t.Errorf("λ=%v φ=%v: sum %v vs closed %v", tc.lambda, tc.aperture, sum, closed)
		}
	}
}

func TestPoissonQSumTruncationLoss(t *testing.T) {
	// A cutoff far below λ must *under*-estimate (all omitted terms are
	// non-negative).
	full, err := PoissonQSum(100, math.Pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := PoissonQSum(100, math.Pi, 50)
	if err != nil {
		t.Fatal(err)
	}
	if trunc > full {
		t.Errorf("truncated sum %v above full sum %v", trunc, full)
	}
}

func TestPoissonQSumInvalidLambda(t *testing.T) {
	for _, l := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := PoissonQSum(l, math.Pi, 0); err == nil {
			t.Errorf("PoissonQSum(λ=%v) succeeded, want error", l)
		}
	}
}

func TestPoissonQNecessaryVsSufficient(t *testing.T) {
	// The necessary-condition sector (2θ) is twice the sufficient one
	// (θ), so Q_N ≥ Q_S for the same group.
	g := sensor.GroupSpec{Fraction: 1, Radius: 0.1, Aperture: math.Pi / 2}
	for _, theta := range []float64{0.2, math.Pi / 4, math.Pi} {
		qn, err := PoissonQNecessary(1000, g, theta)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := PoissonQSufficient(1000, g, theta)
		if err != nil {
			t.Fatal(err)
		}
		if qn < qs {
			t.Errorf("θ=%v: Q_N=%v < Q_S=%v", theta, qn, qs)
		}
		if qn < 0 || qn > 1 || qs < 0 || qs > 1 {
			t.Errorf("θ=%v: Q out of range: %v %v", theta, qn, qs)
		}
	}
}

func TestPoissonQValidatesTheta(t *testing.T) {
	g := sensor.GroupSpec{Fraction: 1, Radius: 0.1, Aperture: 1}
	for _, theta := range []float64{0, -0.5, math.Pi + 0.1} {
		if _, err := PoissonQNecessary(100, g, theta); err == nil {
			t.Errorf("PoissonQNecessary(θ=%v) succeeded", theta)
		}
		if _, err := PoissonQSufficient(100, g, theta); err == nil {
			t.Errorf("PoissonQSufficient(θ=%v) succeeded", theta)
		}
	}
}

func TestPoissonPNHomogeneousFormula(t *testing.T) {
	// Direct evaluation of Theorem 3 for one group.
	prof := homogeneous(t, 0.1, math.Pi/2)
	density, theta := 2000.0, math.Pi/4
	got, err := PoissonPN(prof, density, theta)
	if err != nil {
		t.Fatal(err)
	}
	lambda := density * theta * 0.01
	q := 1 - math.Exp(-lambda*(math.Pi/2)/(2*math.Pi))
	want := math.Pow(q, float64(KNecessary(theta)))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P_N = %v, want %v", got, want)
	}
}

func TestPoissonPSHomogeneousFormula(t *testing.T) {
	prof := homogeneous(t, 0.1, math.Pi/2)
	density, theta := 2000.0, math.Pi/4
	got, err := PoissonPS(prof, density, theta)
	if err != nil {
		t.Fatal(err)
	}
	lambda := density * theta * 0.01 / 2
	q := 1 - math.Exp(-lambda*(math.Pi/2)/(2*math.Pi))
	want := math.Pow(q, float64(KSufficient(theta)))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P_S = %v, want %v", got, want)
	}
}

func TestPoissonPNPSBoundsAndOrdering(t *testing.T) {
	prof := heterogeneous(t)
	for _, density := range []float64{0, 100, 1000, 50000} {
		for _, theta := range []float64{0.15 * math.Pi, math.Pi / 4, math.Pi} {
			pn, err := PoissonPN(prof, density, theta)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := PoissonPS(prof, density, theta)
			if err != nil {
				t.Fatal(err)
			}
			if pn < 0 || pn > 1 || ps < 0 || ps > 1 {
				t.Errorf("density=%v θ=%v: out of range: P_N=%v P_S=%v", density, theta, pn, ps)
			}
			if ps > pn+1e-12 {
				t.Errorf("density=%v θ=%v: P_S=%v > P_N=%v", density, theta, ps, pn)
			}
		}
	}
}

func TestPoissonPNIncreasesWithDensity(t *testing.T) {
	prof := heterogeneous(t)
	theta := math.Pi / 4
	prev := -1.0
	for _, density := range []float64{100, 500, 1000, 5000, 20000} {
		pn, err := PoissonPN(prof, density, theta)
		if err != nil {
			t.Fatal(err)
		}
		if pn <= prev {
			t.Errorf("P_N should increase with density: P(%v) = %v ≤ %v", density, pn, prev)
		}
		prev = pn
	}
}

func TestPoissonPZeroDensity(t *testing.T) {
	prof := homogeneous(t, 0.1, 1)
	pn, err := PoissonPN(prof, 0, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	if pn != 0 {
		t.Errorf("P_N at zero density = %v, want 0", pn)
	}
}

func TestPoissonPInvalidInputs(t *testing.T) {
	prof := homogeneous(t, 0.1, 1)
	if _, err := PoissonPN(prof, -1, math.Pi/4); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := PoissonPS(prof, 100, 0); err == nil {
		t.Error("zero theta accepted")
	}
}

// TestPoissonVsUniformAgreeAsymptotically cross-checks the two
// deployment models: for the same expected sensor count the Poisson
// per-point success probability 1−P(F_N,P) and P_N agree closely (the
// binomial sector count converges to Poisson).
func TestPoissonVsUniformAgreeAsymptotically(t *testing.T) {
	prof := homogeneous(t, 0.08, math.Pi/2)
	theta := math.Pi / 4
	n := 20000
	fail, err := UniformNecessaryFailure(prof, n, theta)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := PoissonPN(prof, float64(n), theta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((1-fail)-pn) > 0.01 {
		t.Errorf("uniform success %v vs Poisson P_N %v", 1-fail, pn)
	}
}
