// Package analytic implements the paper's closed-form results: the
// critical sensing areas of Theorems 1 and 2, the per-point condition
// probabilities under uniform deployment (Equations 2 and 13), the
// Poisson-deployment probabilities of Theorems 3 and 4, and the
// 1-coverage / k-coverage baselines of Section VII.
package analytic

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/numeric"
)

// Validation errors.
var (
	ErrBadTheta = errors.New("analytic: effective angle θ must be in (0, π]")
	ErrSmallN   = errors.New("analytic: n must be at least 2")
	ErrBadK     = errors.New("analytic: k must be at least 1")
)

// KNecessary returns ⌈π/θ⌉ — the number of sectors (and the exponent in
// the necessary-condition probability) for effective angle θ. Exact
// divisors of the circle are handled robustly (θ = π/4 gives exactly 4).
//
// KNecessary forwards θ to the sector partition unvalidated; a θ
// outside (0, π] (or small enough for ⌈π/θ⌉ to overflow int) yields a
// meaningless count. Use KNecessaryChecked where θ comes from input.
func KNecessary(theta float64) int {
	return geom.SectorCount(2 * theta)
}

// KSufficient returns ⌈2π/θ⌉ — the sector count and exponent for the
// sufficient condition. See KNecessary for the validation caveat;
// KSufficientChecked is the validating variant.
func KSufficient(theta float64) int {
	return geom.SectorCount(theta)
}

// sectorCountChecked validates θ ∈ (0, π] and that the sector count for
// width w is representable (⌈2π/w⌉ overflows int once θ drops below
// ~1e-18, turning the downstream formulas into NaN factories).
func sectorCountChecked(theta, w float64) (int, error) {
	if !(theta > 0) || theta > math.Pi {
		return 0, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	k := geom.SectorCount(w)
	if k < 1 {
		return 0, fmt.Errorf("%w: sector count for θ=%v overflows", ErrBadTheta, theta)
	}
	return k, nil
}

// KNecessaryChecked is KNecessary with the same θ validation as the
// theorem formulas: θ must lie in (0, π] and the count must fit an int.
func KNecessaryChecked(theta float64) (int, error) {
	return sectorCountChecked(theta, 2*theta)
}

// KSufficientChecked is KSufficient with θ validation.
func KSufficientChecked(theta float64) (int, error) {
	return sectorCountChecked(theta, theta)
}

func validateThetaN(n int, theta float64) error {
	if !(theta > 0) || theta > math.Pi {
		return fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if n < 2 {
		return fmt.Errorf("%w: got %d", ErrSmallN, n)
	}
	return nil
}

// oneMinusPow returns 1 − (1 − x)^(1/k) without catastrophic
// cancellation for tiny x: (1−x)^(1/k) = exp(log1p(−x)/k), and
// 1 − exp(y) = −expm1(y).
func oneMinusPow(x float64, k int) float64 {
	return -math.Expm1(math.Log1p(-x) / float64(k))
}

// CSANecessary returns s_Nc(n), the critical sensing area for the
// necessary condition of full-view coverage under uniform deployment
// (Theorem 1):
//
//	s_Nc(n) = −(π/(θn)) · ln( 1 − (1 − 1/(n·ln n))^(1/⌈π/θ⌉) )
//
// When the weighted sensing area s_c = Σ c_y s_y falls below this order,
// some dense-grid point fails the necessary condition with probability
// bounded away from zero; above it, all points meet the condition w.h.p.
func CSANecessary(n int, theta float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	k, err := KNecessaryChecked(theta)
	if err != nil {
		return 0, err
	}
	x := 1 / (float64(n) * math.Log(float64(n)))
	inner := oneMinusPow(x, k)
	v := -math.Pi / (theta * float64(n)) * math.Log(inner)
	return numeric.Checked("CSANecessary", v, nil, "n", n, "θ", theta)
}

// CSASufficient returns s_Sc(n), the critical sensing area for the
// sufficient condition of full-view coverage under uniform deployment
// (Theorem 2):
//
//	s_Sc(n) = −(2π/(θn)) · ln( 1 − (1 − 1/(n·ln n))^(1/⌈2π/θ⌉) )
//
// A network whose weighted sensing area exceeds this order full-view
// covers the region w.h.p.
func CSASufficient(n int, theta float64) (float64, error) {
	if err := validateThetaN(n, theta); err != nil {
		return 0, err
	}
	k, err := KSufficientChecked(theta)
	if err != nil {
		return 0, err
	}
	x := 1 / (float64(n) * math.Log(float64(n)))
	inner := oneMinusPow(x, k)
	v := -2 * math.Pi / (theta * float64(n)) * math.Log(inner)
	return numeric.Checked("CSASufficient", v, nil, "n", n, "θ", theta)
}

// OneCoverageCSA returns the critical sensing area for traditional
// 1-coverage under uniform deployment, (ln n + ln ln n)/n — equation
// (19): the θ = π degeneration of CSANecessary, matching the critical
// effective sensing radius of Wang et al. [18] via πR*² .
func OneCoverageCSA(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrSmallN, n)
	}
	ln := math.Log(float64(n))
	return (ln + math.Log(ln)) / float64(n), nil
}

// CriticalESR returns R*(n) = √((ln n + ln ln n)/(π n)), the critical
// effective sensing radius for 1-coverage of disk sensors (Wang et al.
// [18], Theorem 4.1), quoted in Section VII-A.
func CriticalESR(n int) (float64, error) {
	csa, err := OneCoverageCSA(n)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(csa / math.Pi), nil
}

// KCoverageSufficientArea returns s_K(n) = (ln n + k·ln ln n)/n, the
// per-sensor sensing area sufficient for asymptotic k-coverage of
// uniformly deployed disk sensors (Kumar et al. [6], as reduced in
// Section VII-B with p = 1 and u(n) ignored).
func KCoverageSufficientArea(n, k int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: got %d", ErrSmallN, n)
	}
	if k < 1 {
		return 0, fmt.Errorf("%w: got %d", ErrBadK, k)
	}
	ln := math.Log(float64(n))
	return (ln + float64(k)*math.Log(ln)) / float64(n), nil
}
