package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeExport checks the text rendering of plain counters
// and gauges: HELP/TYPE headers, sorted label sets, and values.
func TestCounterGaugeExport(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "Total requests.", L("route", "query"), L("code", "200"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g := r.Gauge("queue_depth", "Waiting requests.")
	g.Set(3)
	g.Dec()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{code="200",route="query"} 3`, // labels sorted by key
		"# TYPE queue_depth gauge",
		"queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistrationIdempotent checks that re-registering (name, labels)
// returns the same series, so lazy per-request lookups accumulate into
// one counter.
func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("hits_total", "h", L("k", "v"))
	b := r.Counter("hits_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) produced distinct counters")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("shared counter value = %d, want 1", got)
	}
	if c := r.Counter("hits_total", "h", L("k", "other")); c == a {
		t.Fatal("different label value must make a distinct series")
	}
}

// TestKindMismatchPanics checks that reusing a name with another metric
// kind fails loudly — it is always a wiring bug.
func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "h")
}

// TestHistogramExport checks cumulative bucket counts, the +Inf bucket,
// and sum/count lines.
func TestHistogramExport(t *testing.T) {
	r := New()
	h := r.Histogram("latency_ns", "Latency.", []int64{10, 100, 1000}, L("route", "query"))
	for _, v := range []int64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5125 {
		t.Fatalf("Sum = %d, want 5125", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_ns histogram",
		`latency_ns_bucket{route="query",le="10"} 2`,   // 5, 10 (le is inclusive)
		`latency_ns_bucket{route="query",le="100"} 4`,  // + 11, 99
		`latency_ns_bucket{route="query",le="1000"} 4`, // cumulative
		`latency_ns_bucket{route="query",le="+Inf"} 5`, // + 5000
		`latency_ns_sum{route="query"} 5125`,
		`latency_ns_count{route="query"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFuncMetrics checks callback-backed series.
func TestFuncMetrics(t *testing.T) {
	r := New()
	r.CounterFunc("cache_hits_total", "Hits.", func() int64 { return 7 })
	r.GaugeFunc("hit_ratio", "Ratio.", func() float64 { return 0.875 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cache_hits_total 7") {
		t.Errorf("missing func counter:\n%s", out)
	}
	if !strings.Contains(out, "hit_ratio 0.875") {
		t.Errorf("missing func gauge:\n%s", out)
	}
}

// TestLabelEscaping checks exposition-format escaping of label values.
func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("m_total", "h", L("path", `a"b\c`+"\n"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `m_total{path="a\"b\\c\n"} 0`; !strings.Contains(b.String(), want) {
		t.Errorf("escaping wrong, want %q in:\n%s", want, b.String())
	}
}

// TestConcurrentUse hammers one registry from many goroutines; the race
// detector is the assertion.
func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("requests_total", "h", L("w", string(rune('a'+w%4)))).Inc()
				r.Histogram("lat_ns", "h", nil).Observe(int64(i))
				var b strings.Builder
				_ = r.WritePrometheus(&b)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Histogram("lat_ns", "h", nil).Count(); got != 8*200 {
		t.Fatalf("histogram count = %d, want %d", got, 8*200)
	}
}
