// Package telemetry is the service layer's dependency-free metrics
// registry: counters, gauges, and nanosecond-bucket histograms, exposed
// in the Prometheus text exposition format. It exists so the fvcd query
// daemon can be scraped by standard tooling without pulling a client
// library into a repository whose only dependency is the Go standard
// library.
//
// All value types are safe for concurrent use (lock-free atomics on the
// hot path); the registry itself serialises only registration and
// export. Registration is idempotent: asking for an already-registered
// (name, labels) series returns the existing value, so request paths may
// look series up lazily. Registering one name with two different metric
// kinds is a programming error and panics.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a series.
type Label struct{ Key, Value string }

// L constructs a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DurationBuckets are the default histogram bounds for request
// latencies, in nanoseconds: 1µs to 10s with 1-2.5-5 steps per decade.
// The per-point coverage kernel answers in microseconds and a saturated
// survey may run for seconds, so the range brackets both extremes.
var DurationBuckets = []int64{
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000,
	10_000_000_000,
}

// PointCostBuckets are histogram bounds for per-point kernel cost, in
// nanoseconds per point: 10ns to 100µs with 1-2.5-5 steps per decade.
// The batch coverage kernel answers dense-grid points in tens of
// nanoseconds; a degenerate deployment (one giant tier, overlay-heavy
// snapshot) can push a point into the tens of microseconds, so the
// range brackets both.
var PointCostBuckets = []int64{
	10, 25, 50,
	100, 250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000,
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be ≥ 0 to keep the counter
// monotone; negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations
// (conventionally nanoseconds). Buckets are cumulative at export time,
// matching Prometheus histogram semantics; the implicit +Inf bucket is
// always present.
type Histogram struct {
	bounds []int64        // upper bounds, strictly increasing
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Nanoseconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// series is one exported time series inside a family.
type series struct {
	labels []Label // sorted by key
	value  any     // *Counter, *Gauge, *Histogram, func() float64, func() int64
}

// family groups every series sharing one metric name.
type family struct {
	name, help, kind string // kind: "counter", "gauge", "histogram"
	series           map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text format. The zero value is not usable; construct with New.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{families: make(map[string]*family)} }

// Counter returns the counter for (name, labels), registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "counter", labels, func() any { return &Counter{} })
	return s.value.(*Counter)
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "gauge", labels, func() any { return &Gauge{} })
	return s.value.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time — the natural shape for derived quantities such as a cache hit
// ratio.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func() any { return fn })
}

// CounterFunc registers a counter whose value is read from fn at export
// time; fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, "counter", labels, func() any { return fn })
}

// Histogram returns the histogram for (name, labels) with the given
// upper bounds (strictly increasing; DurationBuckets when nil),
// registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	s := r.register(name, help, "histogram", labels, func() any {
		b := append([]int64(nil), bounds...)
		return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	})
	return s.value.(*Histogram)
}

// register finds or creates the series for (name, labels). It panics
// when the name is already registered with a different kind — a wiring
// bug, not a runtime condition.
func (r *Registry) register(name, help, kind string, labels []Label, mk func() any) *series {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelString(sorted, "")

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: sorted, value: mk()}
		f.series[key] = s
	}
	return s
}

// familySnapshot is a point-in-time copy of one family's series list,
// taken under the registry lock so export can render without it.
type familySnapshot struct {
	name, help, kind string
	series           []*series // in sorted label-key order
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families and series in sorted order so the
// output is deterministic. The family and series maps are snapshotted
// under the registry lock — lazy registration on a concurrent request
// may mutate them mid-scrape — and only the lock-free atomic values are
// read afterwards.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make([]familySnapshot, len(names))
	for i, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ss := make([]*series, len(keys))
		for j, k := range keys {
			ss[j] = f.series[k]
		}
		snaps[i] = familySnapshot{name: f.name, help: f.help, kind: f.kind, series: ss}
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range snaps {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.series {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series (several lines for a histogram).
func writeSeries(b *strings.Builder, f familySnapshot, s *series) {
	switch v := s.value.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels, ""), v.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels, ""), v.Value())
	case func() int64:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels, ""), v())
	case func() float64:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels, ""),
			strconv.FormatFloat(v(), 'g', -1, 64))
	case *Histogram:
		cum := int64(0)
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			le := strconv.FormatFloat(float64(bound), 'g', -1, 64)
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, le), cum)
		}
		cum += v.counts[len(v.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %d\n", f.name, labelString(s.labels, ""), v.Sum())
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(s.labels, ""), cum)
	}
}

// labelString renders sorted labels as {k="v",…}; le, when non-empty,
// is appended as the histogram bucket bound. Empty label sets render as
// the empty string. Go's %q escaping (backslash, quote, \n) coincides
// with the exposition format's label-value escaping.
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}
