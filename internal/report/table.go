// Package report renders the benchmark harness's output: aligned ASCII
// tables, CSV export, and ASCII line charts for the figure
// reproductions. Everything writes to an io.Writer so CLIs and tests
// share the same rendering path.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ErrColumnMismatch reports a row whose cell count differs from the
// header.
var ErrColumnMismatch = errors.New("report: row length does not match header")

// Table is an aligned text table with a title and fixed headers.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	h := make([]string, len(headers))
	copy(h, headers)
	return &Table{title: title, headers: h}
}

// AddRow appends a row; its length must match the header.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("%w: got %d cells, want %d", ErrColumnMismatch, len(cells), len(t.headers))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow for construction paths where a mismatch is a
// programming error.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, wdt := range widths {
		total += wdt + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// WriteCSV emits the table (header + rows, no title) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for i, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flush csv: %w", err)
	}
	return nil
}

// F formats a float compactly for table cells (6 significant digits).
func F(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// F4 formats a float with 4 decimal places (for probabilities).
func F4(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// I formats an int.
func I(v int) string {
	return strconv.Itoa(v)
}
