package report

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown emits the table as GitHub-flavoured Markdown: an
// optional bold title paragraph, then a pipe table. Cell content is
// escaped so stray pipes cannot break the table structure.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", escapeMarkdownCell(t.title))
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, cell := range cells {
			b.WriteByte(' ')
			b.WriteString(escapeMarkdownCell(cell))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	b.WriteByte('|')
	for range t.headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeMarkdownCell(s string) string {
	return strings.ReplaceAll(s, "|", `\|`)
}
