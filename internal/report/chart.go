package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart rendering errors.
var (
	ErrNoSeries  = errors.New("report: chart needs at least one series with data")
	ErrBadExtent = errors.New("report: chart dimensions must be at least 2×2")
)

// Series is one line of an ASCII chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// seriesMarkers are cycled across series.
var seriesMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// RenderChart draws the series as an ASCII scatter/line chart of the
// given dimensions (plot area in characters). Axes are labelled with the
// data extents; each series gets a marker from a fixed cycle and a
// legend line. Points are nearest-cell rasterised; later series
// overwrite earlier ones where they collide.
func RenderChart(w io.Writer, title string, series []Series, width, height int) error {
	if width < 2 || height < 2 {
		return fmt.Errorf("%w: got %d×%d", ErrBadExtent, width, height)
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
			yMin, yMax = math.Min(yMin, y), math.Max(yMax, y)
		}
	}
	if points == 0 {
		return ErrNoSeries
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-yMin)/(yMax-yMin)*float64(height-1)))
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	yTop := fmt.Sprintf("%.4g", yMax)
	yBot := fmt.Sprintf("%.4g", yMin)
	labelWidth := len(yTop)
	if len(yBot) > labelWidth {
		labelWidth = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", labelWidth), width/2, xMin, width-width/2, xMax)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
