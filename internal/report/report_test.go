package report

import (
	"errors"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "n", "value")
	if err := tab.AddRow("100", "0.5"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("10000", "0.001"); err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"Demo", "n", "value", "100", "10000", "0.001", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	if tab.Title() != "Demo" {
		t.Errorf("Title = %q", tab.Title())
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.MustAddRow("xxxxxx", "1")
	tab.MustAddRow("y", "2")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	// Header, separator, two rows.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), tab.String())
	}
	// Column "b" starts at the same offset on both data rows.
	if strings.Index(lines[2], "1") != strings.Index(lines[3], "2") {
		t.Errorf("columns not aligned:\n%s", tab.String())
	}
}

func TestTableAlignmentWithMultibyteRunes(t *testing.T) {
	tab := NewTable("", "name", "v")
	tab.MustAddRow("s_Nc — θ", "1")
	tab.MustAddRow("plain", "2")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Rune-aware padding: the second column starts at the same *visual*
	// column, i.e. same rune offset, on both rows.
	runeIndex := func(s, sub string) int {
		i := strings.Index(s, sub)
		if i < 0 {
			return -1
		}
		return len([]rune(s[:i]))
	}
	if runeIndex(lines[2], "1") != runeIndex(lines[3], "2") {
		t.Errorf("multibyte rows misaligned:\n%s", tab.String())
	}
}

func TestTableRowMismatch(t *testing.T) {
	tab := NewTable("t", "a", "b")
	if err := tab.AddRow("only-one"); !errors.Is(err, ErrColumnMismatch) {
		t.Errorf("error = %v, want ErrColumnMismatch", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on mismatch")
		}
	}()
	tab.MustAddRow("x", "y", "z")
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored title", "n", "csa")
	tab.MustAddRow("100", "0.5")
	tab.MustAddRow("1000", "0.08")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "n,csa\n100,0.5\n1000,0.08\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("", "name", "v")
	tab.MustAddRow("needs, quoting", "1")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"needs, quoting"`) {
		t.Errorf("CSV should quote commas: %q", b.String())
	}
}

func TestFormatters(t *testing.T) {
	if got := F(0.125); got != "0.125" {
		t.Errorf("F = %q", got)
	}
	if got := F4(0.12345); got != "0.1235" {
		t.Errorf("F4 = %q", got)
	}
	if got := I(42); got != "42" {
		t.Errorf("I = %q", got)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tab := NewTable("Results", "n", "value")
	tab.MustAddRow("100", "0.5")
	tab.MustAddRow("with|pipe", "1")
	var b strings.Builder
	if err := tab.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"**Results**",
		"| n | value |",
		"|---|---|",
		"| 100 | 0.5 |",
		`| with\|pipe | 1 |`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdownNoTitle(t *testing.T) {
	tab := NewTable("", "a")
	tab.MustAddRow("1")
	var b strings.Builder
	if err := tab.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "**") {
		t.Error("untitled table should have no bold paragraph")
	}
}

func TestRenderChart(t *testing.T) {
	var b strings.Builder
	err := RenderChart(&b, "CSA vs n", []Series{
		{Name: "necessary", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
		{Name: "sufficient", X: []float64{1, 2, 3}, Y: []float64{6, 4, 2}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"CSA vs n", "necessary", "sufficient", "*", "+", "|", "6", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChartErrors(t *testing.T) {
	var b strings.Builder
	if err := RenderChart(&b, "t", nil, 40, 10); !errors.Is(err, ErrNoSeries) {
		t.Errorf("empty series: error = %v, want ErrNoSeries", err)
	}
	if err := RenderChart(&b, "t", []Series{{X: []float64{1}, Y: []float64{1}}}, 1, 10); !errors.Is(err, ErrBadExtent) {
		t.Errorf("bad extent: error = %v, want ErrBadExtent", err)
	}
}

func TestRenderChartConstantSeries(t *testing.T) {
	// Degenerate extents (all x equal, all y equal) must not divide by
	// zero.
	var b strings.Builder
	err := RenderChart(&b, "flat", []Series{
		{Name: "s", X: []float64{5, 5}, Y: []float64{2, 2}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("flat chart should still plot the point")
	}
}

func TestRenderChartSkipsNonFinite(t *testing.T) {
	var b strings.Builder
	err := RenderChart(&b, "nan", []Series{
		{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
	}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
}
