package kernelbench

import (
	"strings"
	"testing"
)

func report(pairs ...any) Report {
	var r Report
	for i := 0; i < len(pairs); i += 2 {
		r.Results = append(r.Results, Result{
			Name:       pairs[i].(string),
			NsPerPoint: pairs[i+1].(float64),
		})
	}
	return r
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report("A", 100.0, "B", 200.0, "C", 50.0)
	curr := report("B", 225.0, "A", 105.0, "C", 40.0) // order must not matter
	deltas, err := Compare(base, curr)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	// Baseline order preserved; only B is past the 10% gate.
	if deltas[0].Name != "A" || deltas[1].Name != "B" || deltas[2].Name != "C" {
		t.Fatalf("delta order %v", deltas)
	}
	for _, d := range deltas {
		want := d.Name == "B"
		if got := d.Regressed(0.10); got != want {
			t.Errorf("%s: Regressed(0.10) = %v (ratio %+.3f), want %v", d.Name, got, d.Ratio, want)
		}
	}
	// Exactly at the gate clears it (strictly-greater contract); the
	// values are binary-exact so the ratio is exactly 0.125.
	exact := Delta{Name: "X", BaselineNs: 128, CurrentNs: 144, Ratio: 144.0/128.0 - 1}
	if exact.Regressed(0.125) {
		t.Errorf("case at exactly the gate flagged as regression (ratio %+.4f)", exact.Ratio)
	}
}

func TestCompareRefusesMissingCase(t *testing.T) {
	// Both directions are hard failures: a dropped case must not read
	// as "no regression", and a new (or renamed) case must not run
	// ungated until someone re-baselines.
	_, err := Compare(report("A", 100.0, "B", 90.0), report("A", 100.0))
	if err == nil {
		t.Fatal("baseline case missing from current run was accepted")
	}
	if !strings.Contains(err.Error(), "B") || !strings.Contains(err.Error(), "missing from the current run") {
		t.Fatalf("dropped-case error does not name the case and direction: %v", err)
	}
	_, err = Compare(report("A", 100.0), report("A", 100.0, "New", 50.0))
	if err == nil {
		t.Fatal("current case missing from the baseline was accepted")
	}
	if !strings.Contains(err.Error(), "New") || !strings.Contains(err.Error(), "missing from the baseline") {
		t.Fatalf("new-case error does not name the case and direction: %v", err)
	}
	// A rename is both at once; either direction may fire, but it must
	// not pass.
	if _, err := Compare(report("A", 100.0), report("B", 100.0)); err == nil {
		t.Fatal("renamed case was accepted")
	}
	if _, err := Compare(report("A", 0.0), report("A", 100.0)); err == nil {
		t.Fatal("non-positive baseline was accepted")
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	var b strings.Builder
	orig := Report{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
		Results: []Result{{Name: "A", Iterations: 10, NsPerPoint: 123.5}}}
	if err := orig.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0] != orig.Results[0] || got.GOARCH != orig.GOARCH {
		t.Fatalf("round trip drifted: %+v", got)
	}
	if _, err := ReadReport(strings.NewReader(`{"results":[]}`)); err == nil {
		t.Fatal("empty report was accepted")
	}
}

func TestWriteDeltasMarksRegressions(t *testing.T) {
	deltas := []Delta{
		{Name: "fine", BaselineNs: 100, CurrentNs: 101, Ratio: 0.01},
		{Name: "slow", BaselineNs: 100, CurrentNs: 150, Ratio: 0.50},
	}
	var b strings.Builder
	if err := WriteDeltas(&b, deltas, 0.10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "slow") {
		t.Fatalf("worst case not first:\n%s", out)
	}
	if !strings.Contains(lines[0], "REGRESSION") || strings.Contains(lines[1], "REGRESSION") {
		t.Fatalf("regression marking wrong:\n%s", out)
	}
}
