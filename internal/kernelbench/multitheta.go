package kernelbench

import (
	"fullview/internal/core"
)

// multiThetaSetup builds the fused θ-sweep case: evaluate the full
// per-point diagnosis for every θ in Thetas over one fixed deployment.
// This is the per-point shape of the θ-sweep experiments in
// internal/figures (pointprob, gap, thetasweep).
//
// Implementation under measurement: core.MultiChecker — one candidate
// gather, one sort, and one max-gap scan per point serving the whole
// θ-list, plus two O(m) sector-occupancy passes per θ. The baseline this
// replaced (BENCH_baseline.json) ran one Checker per θ over a shared
// spatial index, re-gathering and re-sorting the viewed directions per θ.
func multiThetaSetup() (func(int), error) {
	net, err := homogNetwork(1000)
	if err != nil {
		return nil, err
	}
	checker, err := core.NewMultiChecker(net, Thetas)
	if err != nil {
		return nil, err
	}
	pts := samplePoints(9)
	return func(i int) {
		p := pts[i&(pointPool-1)]
		rep := checker.Evaluate(p)
		sink += rep.NumCovering
	}, nil
}
