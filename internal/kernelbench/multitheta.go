package kernelbench

import (
	"fullview/internal/core"
	"fullview/internal/sweep"
)

// multiThetaSetup builds the fused θ-sweep case: evaluate the full
// per-point diagnosis for every θ in Thetas over one fixed deployment.
// This is the per-point shape of the θ-sweep experiments in
// internal/figures (pointprob, gap, thetasweep).
//
// Implementation under measurement: core.MultiChecker — one candidate
// gather, one sort, and one max-gap scan per point serving the whole
// θ-list, plus two O(m) sector-occupancy passes per θ. The baseline this
// replaced (BENCH_baseline.json) ran one Checker per θ over a shared
// spatial index, re-gathering and re-sorting the viewed directions per θ.
func multiThetaSetup() (func(int), error) {
	net, err := homogNetwork(1000)
	if err != nil {
		return nil, err
	}
	checker, err := core.NewMultiChecker(net, Thetas)
	if err != nil {
		return nil, err
	}
	pts := samplePoints(9)
	return func(i int) {
		p := pts[i&(pointPool-1)]
		rep := checker.Evaluate(p)
		sink += rep.NumCovering
	}, nil
}

// multiThetaBatchSetup is multiThetaSetup through the batch kernel:
// identical network, θ-list, and point pool, evaluated sweep.BatchSize
// points per iteration by MultiChecker.EvaluateBatch. Reports are
// bit-identical to Evaluate per point; the case exists to measure the
// cell-sorted gather's amortisation against its point-at-a-time twin.
func multiThetaBatchSetup() (func(int), error) {
	net, err := homogNetwork(1000)
	if err != nil {
		return nil, err
	}
	checker, err := core.NewMultiChecker(net, Thetas)
	if err != nil {
		return nil, err
	}
	pts := samplePoints(9)
	return func(i int) {
		lo := (i * sweep.BatchSize) & (pointPool - 1)
		checker.EvaluateBatch(pts[lo:lo+sweep.BatchSize], func(_ int, rep core.MultiReport) {
			sink += rep.NumCovering
		})
	}, nil
}
