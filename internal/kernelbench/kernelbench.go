// Package kernelbench defines the micro-benchmarks of the per-point
// coverage kernel — the gather → max-gap → sector-occupancy pipeline
// every experiment executes hundreds of thousands of times — in a form
// runnable both as ordinary `go test -bench` benchmarks (see the
// repository-root kernel_bench_test.go) and as a standalone harness
// (`fvcbench -kernelbench`) that emits machine-readable results, so the
// repository carries a perf trajectory across PRs (BENCH_baseline.json,
// BENCH_kernel.json).
//
// Point-at-a-time cases evaluate exactly one sample point per
// iteration, so ns/op, B/op, and allocs/op read directly as ns/point,
// B/point, allocs/point. Batch cases (names ending in "Batch") evaluate
// Points samples per iteration through the cell-sorted batch kernel;
// the harness divides by iterations × Points, so every reported figure
// is still per point and batch cases compare directly against their
// point-at-a-time twins.
package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/sweep"
)

// pointPool is the number of pre-drawn sample points a case cycles
// through; a power of two so the per-iteration index is a mask, not a
// division.
const pointPool = 4096

// sink defeats dead-code elimination of benchmark kernels.
var sink int

// Thetas is the effective-angle list of the fused multi-θ case,
// mirroring a theorem-sweep θ-loop.
var Thetas = []float64{0.15 * math.Pi, 0.25 * math.Pi, math.Pi / 3, 0.5 * math.Pi}

// Case is one kernel micro-benchmark.
type Case struct {
	// Name is the stable benchmark identifier ("FullViewHomog1000", …).
	// The `go test` benchmark is named Benchmark<Name>. Batch-kernel
	// cases end in "Batch" — the convention `fvcbench -batch` filters
	// on.
	Name string
	// Points is the number of sample points one fn(i) call evaluates
	// (0 and 1 both mean one). Per-point figures divide by it.
	Points int
	// Setup builds the fixture (network, checker, point pool) and
	// returns the per-iteration kernel; fn(i) evaluates the i-th point
	// (or point batch) of the cycled pool. Setup cost is excluded from
	// measurement.
	Setup func() (fn func(i int), err error)
}

// PointsPerOp returns the number of sample points one iteration of the
// case evaluates (at least 1).
func (c Case) PointsPerOp() int {
	if c.Points > 1 {
		return c.Points
	}
	return 1
}

// samplePoints draws the shared pool of uniform sample points.
func samplePoints(seed uint64) []geom.Vec {
	r := rng.New(seed, 17)
	pts := make([]geom.Vec, pointPool)
	for i := range pts {
		pts[i] = geom.V(r.Float64(), r.Float64())
	}
	return pts
}

// homogNetwork is the homogeneous fixture: n cameras, r = 0.15, φ = π/2
// (the bench_test.go micro-benchmark configuration).
func homogNetwork(n int) (*sensor.Network, error) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		return nil, err
	}
	return deploy.Uniform(geom.UnitTorus, profile, n, rng.New(1, 0))
}

// hetNetwork is the heterogeneous fixture: three groups whose sensing
// radii span 100× (0.002 … 0.2) — the paper's heterogeneity regime where
// a single global max-radius query reach over-scans badly.
func hetNetwork(n int) (*sensor.Network, error) {
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.002, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.02, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		return nil, err
	}
	return deploy.Uniform(geom.UnitTorus, profile, n, rng.New(2, 0))
}

// Cases returns the kernel micro-benchmark suite.
func Cases() []Case {
	return []Case{
		{
			// The exact full-view test (Definition 1) on a homogeneous
			// 1000-camera network.
			Name: "FullViewHomog1000",
			Setup: func() (func(int), error) {
				net, err := homogNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(3)
				return func(i int) {
					if checker.FullViewCovered(pts[i&(pointPool-1)]) {
						sink++
					}
				}, nil
			},
		},
		{
			// The same test on the 100×-radius-span heterogeneous
			// network, where query reach per radius group matters.
			Name: "FullViewHet1000",
			Setup: func() (func(int), error) {
				net, err := hetNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(5)
				return func(i int) {
					if checker.FullViewCovered(pts[i&(pointPool-1)]) {
						sink++
					}
				}, nil
			},
		},
		{
			// The fused per-point diagnosis: gather once, max gap +
			// 2θ-sector + θ-sector occupancy + covering count.
			Name: "FullViewReport1000",
			Setup: func() (func(int), error) {
				net, err := homogNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(7)
				return func(i int) {
					rep := checker.Report(pts[i&(pointPool-1)])
					sink += rep.NumCovering
				}, nil
			},
		},
		{
			// A θ-sweep over one deployment: FullView / Necessary /
			// Sufficient for every θ in Thetas at each point.
			Name:  "FullViewMultiTheta1000",
			Setup: multiThetaSetup,
		},
		{
			// The geometric conditions alone (anchored 2θ- and θ-sector
			// occupancy, paper §III–IV).
			Name: "SectorOccupancy1000",
			Setup: func() (func(int), error) {
				net, err := homogNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(11)
				return func(i int) {
					p := pts[i&(pointPool-1)]
					if checker.MeetsNecessary(p) {
						sink++
					}
					if checker.MeetsSufficient(p) {
						sink++
					}
				}, nil
			},
		},
		{
			// The batch twin of FullViewMultiTheta1000: the same network,
			// θ-list, and point pool, evaluated sweep.BatchSize points per
			// iteration through MultiChecker.EvaluateBatch (cell-sorted
			// gather, candidate reuse, hoisted 2θ thresholds). Verdicts
			// are bit-identical; only the grouping differs.
			Name:   "FullViewMultiTheta1000Batch",
			Points: sweep.BatchSize,
			Setup:  multiThetaBatchSetup,
		},
		{
			// The batch twin of SectorOccupancy1000 on the same network
			// and point pool. The point case pays two gathers per point
			// (MeetsNecessary + MeetsSufficient); the batch kernel
			// (Checker.SurveyBatch) answers both conditions — plus the
			// max-gap verdict the point case skips — from one cell-sorted
			// gather per batch.
			Name:   "SectorOccupancy1000Batch",
			Points: sweep.BatchSize,
			Setup: func() (func(int), error) {
				net, err := homogNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(11)
				return func(i int) {
					lo := (i * sweep.BatchSize) & (pointPool - 1)
					stats := checker.SurveyBatch(pts[lo : lo+sweep.BatchSize])
					sink += stats.Necessary + stats.Sufficient
				}, nil
			},
		},
		{
			// The full survey kernel (the /survey and job-band hot path)
			// on the 100×-radius-span heterogeneous network, batch-at-a-
			// time: per-tier cell sort + candidate-major scan where tier
			// reach per radius group matters most.
			Name:   "SurveyHet1000Batch",
			Points: sweep.BatchSize,
			Setup: func() (func(int), error) {
				net, err := hetNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(5)
				return func(i int) {
					lo := (i * sweep.BatchSize) & (pointPool - 1)
					stats := checker.SurveyBatch(pts[lo : lo+sweep.BatchSize])
					sink += stats.FullView
				}, nil
			},
		},
		{
			// k-coverage multiplicity on the heterogeneous network.
			Name: "CountCoveringHet1000",
			Setup: func() (func(int), error) {
				net, err := hetNetwork(1000)
				if err != nil {
					return nil, err
				}
				checker, err := core.NewChecker(net, math.Pi/4)
				if err != nil {
					return nil, err
				}
				pts := samplePoints(13)
				return func(i int) {
					sink += checker.CoverageCount(pts[i&(pointPool-1)])
				}, nil
			},
		},
	}
}

// Result is the measurement of one case. All figures are per point:
// point-at-a-time cases evaluate one point per iteration, batch cases
// divide by iterations × PointsPerOp.
type Result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	PointsPerOp    int     `json:"pointsPerOp,omitempty"`
	NsPerPoint     float64 `json:"nsPerPoint"`
	BytesPerPoint  float64 `json:"bytesPerPoint"`
	AllocsPerPoint float64 `json:"allocsPerPoint"`
}

// Report is the serialized form of a full harness run.
type Report struct {
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// Run measures every case. Each case warms up once, then runs batches
// of doubling size until the measured batch lasts at least benchtime
// (one single batch when benchtime ≤ 0 — the -benchtime=1x smoke mode).
func Run(benchtime time.Duration) (Report, error) {
	return RunFiltered(benchtime, nil)
}

// RunFiltered is Run restricted to the cases keep accepts (nil keeps
// every case) — the engine behind `fvcbench -batch point|batch` A/B
// profiling. Filtered reports must not be compared against the full
// committed baseline: Compare treats the missing cases as a gate
// failure.
func RunFiltered(benchtime time.Duration, keep func(Case) bool) (Report, error) {
	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range Cases() {
		if keep != nil && !keep(c) {
			continue
		}
		res, err := measure(c, benchtime)
		if err != nil {
			return Report{}, fmt.Errorf("kernelbench %s: %w", c.Name, err)
		}
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		return Report{}, fmt.Errorf("kernelbench: the case filter kept no cases")
	}
	return report, nil
}

// bestOf is how many equal-size batches a full measurement runs; the
// fastest one is reported. Shared machines inject multi-10% scheduling
// noise between batches, and the minimum over a few batches is the
// standard estimator of the uncontended cost — without it a perf gate
// on these numbers would be a coin flip.
const bestOf = 5

// measure times one case with the doubling schedule, then reports the
// fastest of bestOf batches at the final size. Per-point figures divide
// by iterations × PointsPerOp, so batch and point cases read on the
// same scale.
func measure(c Case, benchtime time.Duration) (Result, error) {
	fn, err := c.Setup()
	if err != nil {
		return Result{}, err
	}
	fn(0) // warm-up: fault in scratch buffers, reach steady state
	perOp := float64(c.PointsPerOp())

	n := 64
	for {
		iters, elapsed, mallocs, bytes := timeBatch(fn, n)
		if elapsed >= benchtime || n >= 1<<28 {
			points := float64(iters) * perOp
			res := Result{
				Name:           c.Name,
				Iterations:     iters,
				PointsPerOp:    c.Points,
				NsPerPoint:     float64(elapsed.Nanoseconds()) / points,
				BytesPerPoint:  float64(bytes) / points,
				AllocsPerPoint: float64(mallocs) / points,
			}
			// The smoke mode (benchtime ≤ 0) stays single-batch; a full
			// run re-times the chosen size and keeps the fastest batch.
			for extra := 1; benchtime > 0 && extra < bestOf; extra++ {
				iters, elapsed, mallocs, bytes = timeBatch(fn, n)
				points = float64(iters) * perOp
				if ns := float64(elapsed.Nanoseconds()) / points; ns < res.NsPerPoint {
					res.NsPerPoint = ns
					res.Iterations = iters
					res.BytesPerPoint = float64(bytes) / points
					res.AllocsPerPoint = float64(mallocs) / points
				}
			}
			return res, nil
		}
		// Grow toward the target the way testing.B does: aim past
		// benchtime, at most 100× at a step.
		next := n * 100
		if elapsed > 0 {
			if predicted := int(float64(n) * 1.2 * float64(benchtime) / float64(elapsed)); predicted < next {
				next = predicted
			}
		}
		if next <= n {
			next = n * 2
		}
		n = next
	}
}

// timeBatch runs fn n times, returning wall time and the exact malloc
// deltas from runtime.MemStats.
func timeBatch(fn func(int), n int) (iters int, elapsed time.Duration, mallocs, bytes uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	return n, elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBenchstat writes the report in benchstat-compatible text form
// ("BenchmarkX   N   ns/op   B/op   allocs/op").
func (r Report) WriteBenchstat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "goos: %s\ngoarch: %s\n", r.GOOS, r.GOARCH); err != nil {
		return err
	}
	for _, res := range r.Results {
		if _, err := fmt.Fprintf(w, "Benchmark%s\t%d\t%.1f ns/op\t%.0f B/op\t%.0f allocs/op\n",
			res.Name, res.Iterations, res.NsPerPoint, res.BytesPerPoint, res.AllocsPerPoint); err != nil {
			return err
		}
	}
	return nil
}
