package kernelbench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadReport parses a JSON report previously written by WriteJSON
// (e.g. the committed BENCH_kernel.json).
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("benchmark report: %w", err)
	}
	if len(rep.Results) == 0 {
		return Report{}, fmt.Errorf("benchmark report has no results")
	}
	return rep, nil
}

// Delta is one case's baseline-vs-current comparison. Ratio is
// current/baseline − 1, so +0.12 reads "12% slower than baseline".
type Delta struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64
}

// Regressed reports whether the case slowed down by more than
// maxRegress (a fraction: 0.10 = 10%).
func (d Delta) Regressed(maxRegress float64) bool {
	return d.Ratio > maxRegress
}

// Compare matches current results against a baseline by case name and
// returns one Delta per baseline case, in baseline order. Any mismatch
// in case coverage is an error, in both directions: a baseline case
// missing from the current run means a benchmark was silently dropped
// (which must not read as "no regression"), and a current case missing
// from the baseline means the suite grew (or a case was renamed)
// without re-baselining — the new case would run ungated forever.
func Compare(baseline, current Report) ([]Delta, error) {
	inBaseline := make(map[string]bool, len(baseline.Results))
	for _, b := range baseline.Results {
		inBaseline[b.Name] = true
	}
	byName := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		if !inBaseline[r.Name] {
			return nil, fmt.Errorf("case %s is in the current run but missing from the baseline — re-baseline with `fvcbench -kernelbench -benchout <baseline>`", r.Name)
		}
		byName[r.Name] = r
	}
	deltas := make([]Delta, 0, len(baseline.Results))
	for _, b := range baseline.Results {
		c, ok := byName[b.Name]
		if !ok {
			return nil, fmt.Errorf("case %s is in the baseline but missing from the current run", b.Name)
		}
		if !(b.NsPerPoint > 0) {
			return nil, fmt.Errorf("case %s has a non-positive baseline (%g ns/point)", b.Name, b.NsPerPoint)
		}
		deltas = append(deltas, Delta{
			Name:       b.Name,
			BaselineNs: b.NsPerPoint,
			CurrentNs:  c.NsPerPoint,
			Ratio:      c.NsPerPoint/b.NsPerPoint - 1,
		})
	}
	return deltas, nil
}

// WriteDeltas renders a comparison table, worst ratio first, marking
// every case beyond maxRegress.
func WriteDeltas(w io.Writer, deltas []Delta, maxRegress float64) error {
	sorted := make([]Delta, len(deltas))
	copy(sorted, deltas)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ratio > sorted[j].Ratio })
	for _, d := range sorted {
		mark := ""
		if d.Regressed(maxRegress) {
			mark = "  REGRESSION"
		}
		if _, err := fmt.Fprintf(w, "%-28s %10.1f ns/point  baseline %10.1f  %+6.1f%%%s\n",
			d.Name, d.CurrentNs, d.BaselineNs, 100*d.Ratio, mark); err != nil {
			return err
		}
	}
	return nil
}
