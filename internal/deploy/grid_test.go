package deploy

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/geom"
)

func TestGridPoints(t *testing.T) {
	pts, err := GridPoints(geom.UnitTorus, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("len = %d, want 16", len(pts))
	}
	// All points strictly inside, aligned to cell centres.
	seen := make(map[geom.Vec]bool)
	for _, p := range pts {
		if p.X <= 0 || p.X >= 1 || p.Y <= 0 || p.Y >= 1 {
			t.Errorf("point on boundary: %v", p)
		}
		if seen[p] {
			t.Errorf("duplicate point %v", p)
		}
		seen[p] = true
	}
	if !seen[geom.V(0.125, 0.125)] || !seen[geom.V(0.875, 0.875)] {
		t.Error("expected cell-centre alignment at 1/8 offsets")
	}
}

func TestGridPointsSpacing(t *testing.T) {
	pts, err := GridPoints(geom.UnitTorus, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbouring points along a row are 0.1 apart.
	if d := geom.UnitTorus.Dist(pts[0], pts[1]); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("row spacing = %v, want 0.1", d)
	}
}

func TestGridPointsInvalid(t *testing.T) {
	for _, k := range []int{0, -3} {
		if _, err := GridPoints(geom.UnitTorus, k); !errors.Is(err, ErrBadGridSide) {
			t.Errorf("GridPoints(%d) error = %v, want ErrBadGridSide", k, err)
		}
	}
}

func TestDenseGridSide(t *testing.T) {
	tests := []struct {
		name string
		n    int
		want int
	}{
		// k = ⌈√(n·ln n)⌉
		{name: "n=100", n: 100, want: 22},   // √460.5 ≈ 21.46
		{name: "n=1000", n: 1000, want: 84}, // √6907.8 ≈ 83.1
		{name: "n=2", n: 2, want: 2},        // √1.386 ≈ 1.18 → 2? ceil(1.18)=2
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := DenseGridSide(tt.n)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("DenseGridSide(%d) = %d, want %d", tt.n, got, tt.want)
			}
		})
	}
}

func TestDenseGridSideHasEnoughPoints(t *testing.T) {
	for _, n := range []int{2, 10, 100, 1000, 50000} {
		k, err := DenseGridSide(n)
		if err != nil {
			t.Fatal(err)
		}
		m := float64(n) * math.Log(float64(n))
		if float64(k*k) < m {
			t.Errorf("n=%d: k²=%d < n·ln n=%v", n, k*k, m)
		}
	}
}

func TestDenseGridRejectsTinyN(t *testing.T) {
	for _, n := range []int{-5, 0, 1} {
		if _, err := DenseGrid(geom.UnitTorus, n); !errors.Is(err, ErrSmallPopulation) {
			t.Errorf("DenseGrid(n=%d) error = %v, want ErrSmallPopulation", n, err)
		}
	}
}

func TestDenseGrid(t *testing.T) {
	pts, err := DenseGrid(geom.UnitTorus, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 22*22 {
		t.Errorf("len = %d, want %d", len(pts), 22*22)
	}
}
