// Package deploy builds camera networks under the paper's deployment
// schemes: random uniform deployment, 2-D Poisson point process
// deployment, and the deterministic lattices used for comparison, plus
// the dense-grid construction that reduces area coverage to point
// coverage (Section III-A, m = n·log n grid points).
package deploy

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrNegativeCount   = errors.New("deploy: sensor count must be non-negative")
	ErrBadDensity      = errors.New("deploy: density must be non-negative and finite")
	ErrBadGridSide     = errors.New("deploy: grid side must be positive")
	ErrBadSpacing      = errors.New("deploy: lattice spacing must be in (0, side]")
	ErrSmallPopulation = errors.New("deploy: dense grid needs n ≥ 2")
)

// Uniform deploys exactly n sensors on torus t: positions i.i.d. uniform
// over the region, orientations i.i.d. uniform over [0, 2π), counts per
// heterogeneity group apportioned by profile.Counts. This is the paper's
// "randomly, uniformly and independently" scheme.
func Uniform(t geom.Torus, profile sensor.Profile, n int, r *rng.PCG) (*sensor.Network, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrNegativeCount, n)
	}
	counts := profile.Counts(n)
	cameras := make([]sensor.Camera, 0, n)
	for y, g := range profile.Groups() {
		for i := 0; i < counts[y]; i++ {
			cameras = append(cameras, randomCamera(t, g, y, r))
		}
	}
	return sensor.NewNetwork(t, cameras)
}

// Poisson deploys sensors according to a 2-D Poisson point process of the
// given density (expected sensors per unit area). Each group y is an
// independent Poisson process of density c_y·density; the superposition
// has the requested total density. On the unit torus with density = n
// this is exactly the paper's Section V model (λ = n).
func Poisson(t geom.Torus, profile sensor.Profile, density float64, r *rng.PCG) (*sensor.Network, error) {
	if !(density >= 0) || math.IsInf(density, 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBadDensity, density)
	}
	var cameras []sensor.Camera
	for y, g := range profile.Groups() {
		count := r.Poisson(g.Fraction * density * t.Area())
		for i := 0; i < count; i++ {
			cameras = append(cameras, randomCamera(t, g, y, r))
		}
	}
	return sensor.NewNetwork(t, cameras)
}

func randomCamera(t geom.Torus, g sensor.GroupSpec, group int, r *rng.PCG) sensor.Camera {
	return sensor.Camera{
		Pos:      geom.V(r.Float64()*t.Side(), r.Float64()*t.Side()),
		Orient:   r.Angle(),
		Radius:   g.Radius,
		Aperture: g.Aperture,
		Group:    group,
	}
}
