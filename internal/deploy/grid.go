package deploy

import (
	"fmt"
	"math"

	"fullview/internal/geom"
)

// GridPoints returns the k×k square lattice of points on torus t, cell
// centres at ((i+½)·side/k, (j+½)·side/k). Centre alignment keeps all
// points interior so no point coincides with its wrapped image.
func GridPoints(t geom.Torus, k int) ([]geom.Vec, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadGridSide, k)
	}
	step := t.Side() / float64(k)
	points := make([]geom.Vec, 0, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			points = append(points, geom.V(
				(float64(i)+0.5)*step,
				(float64(j)+0.5)*step,
			))
		}
	}
	return points, nil
}

// DenseGridSide returns the side k of the smallest k×k grid with at
// least m = n·ln n points — the paper's dense grid M (Section III-A,
// following Kumar et al. [6]: m ≥ n log n grid points suffice to carry
// area coverage over to the whole square).
func DenseGridSide(n int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: got n = %d", ErrSmallPopulation, n)
	}
	m := float64(n) * math.Log(float64(n))
	return int(math.Ceil(math.Sqrt(m))), nil
}

// DenseGrid returns the paper's √m×√m dense grid for a deployment of n
// sensors on torus t.
func DenseGrid(t geom.Torus, n int) ([]geom.Vec, error) {
	k, err := DenseGridSide(n)
	if err != nil {
		return nil, err
	}
	return GridPoints(t, k)
}
