package deploy

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func testProfile(t *testing.T) sensor.Profile {
	t.Helper()
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.6, Radius: 0.1, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUniformCountAndGroups(t *testing.T) {
	p := testProfile(t)
	net, err := Uniform(geom.UnitTorus, p, 100, rng.New(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 100 {
		t.Fatalf("Len = %d, want 100", net.Len())
	}
	counts := net.GroupCounts()
	if counts[0] != 60 || counts[1] != 40 {
		t.Errorf("group counts = %v, want [60 40]", counts)
	}
	for i := 0; i < net.Len(); i++ {
		c := net.Camera(i)
		if c.Pos.X < 0 || c.Pos.X >= 1 || c.Pos.Y < 0 || c.Pos.Y >= 1 {
			t.Fatalf("camera %d out of region: %v", i, c.Pos)
		}
		if c.Orient < 0 || c.Orient >= geom.TwoPi {
			t.Fatalf("camera %d orientation out of range: %v", i, c.Orient)
		}
		g := p.Groups()[c.Group]
		if c.Radius != g.Radius || c.Aperture != g.Aperture {
			t.Fatalf("camera %d parameters do not match its group", i)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	p := testProfile(t)
	a, err := Uniform(geom.UnitTorus, p, 50, rng.New(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(geom.UnitTorus, p, 50, rng.New(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Camera(i) != b.Camera(i) {
			t.Fatalf("camera %d differs between identical seeds", i)
		}
	}
}

func TestUniformNegativeCount(t *testing.T) {
	p := testProfile(t)
	if _, err := Uniform(geom.UnitTorus, p, -1, rng.New(1, 0)); !errors.Is(err, ErrNegativeCount) {
		t.Errorf("error = %v, want ErrNegativeCount", err)
	}
}

func TestUniformZeroCount(t *testing.T) {
	p := testProfile(t)
	net, err := Uniform(geom.UnitTorus, p, 0, rng.New(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 0 {
		t.Errorf("Len = %d", net.Len())
	}
}

func TestUniformPositionsLookUniform(t *testing.T) {
	// Chi-square-ish sanity check: quadrant occupancy of 4000 sensors.
	p := testProfile(t)
	net, err := Uniform(geom.UnitTorus, p, 4000, rng.New(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	var quad [4]int
	for i := 0; i < net.Len(); i++ {
		c := net.Camera(i)
		idx := 0
		if c.Pos.X >= 0.5 {
			idx++
		}
		if c.Pos.Y >= 0.5 {
			idx += 2
		}
		quad[idx]++
	}
	for q, n := range quad {
		if math.Abs(float64(n)-1000) > 150 { // ~5σ for binomial(4000, ¼)
			t.Errorf("quadrant %d holds %d sensors, want ≈1000", q, n)
		}
	}
}

func TestPoissonMeanCount(t *testing.T) {
	p := testProfile(t)
	const density = 200.0
	const trials = 300.0
	total := 0
	r := rng.New(11, 0)
	for i := 0; i < trials; i++ {
		net, err := Poisson(geom.UnitTorus, p, density, r)
		if err != nil {
			t.Fatal(err)
		}
		total += net.Len()
	}
	mean := float64(total) / trials
	se := math.Sqrt(density / trials)
	if math.Abs(mean-density) > 6*se {
		t.Errorf("mean count = %v, want ≈ %v (se %v)", mean, density, se)
	}
}

func TestPoissonGroupDensities(t *testing.T) {
	p := testProfile(t)
	const density = 500.0
	const trials = 200.0
	groupTotals := make([]int, 2)
	r := rng.New(13, 0)
	for i := 0; i < trials; i++ {
		net, err := Poisson(geom.UnitTorus, p, density, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range net.Cameras() {
			groupTotals[c.Group]++
		}
	}
	for y, frac := range []float64{0.6, 0.4} {
		mean := float64(groupTotals[y]) / trials
		want := frac * density
		se := math.Sqrt(want / trials)
		if math.Abs(mean-want) > 6*se {
			t.Errorf("group %d mean = %v, want ≈ %v", y, mean, want)
		}
	}
}

func TestPoissonScaledTorusUsesArea(t *testing.T) {
	tor, err := geom.NewTorus(2) // area 4
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile(t)
	const density = 100
	const trials = 200
	total := 0
	r := rng.New(17, 0)
	for i := 0; i < trials; i++ {
		net, err := Poisson(tor, p, density, r)
		if err != nil {
			t.Fatal(err)
		}
		total += net.Len()
	}
	mean := float64(total) / trials
	want := density * tor.Area()
	se := math.Sqrt(want / trials)
	if math.Abs(mean-want) > 6*se {
		t.Errorf("mean = %v, want ≈ %v", mean, want)
	}
}

func TestPoissonInvalidDensity(t *testing.T) {
	p := testProfile(t)
	for _, d := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := Poisson(geom.UnitTorus, p, d, rng.New(1, 0)); !errors.Is(err, ErrBadDensity) {
			t.Errorf("Poisson(density=%v) error = %v, want ErrBadDensity", d, err)
		}
	}
}

func TestPoissonZeroDensity(t *testing.T) {
	p := testProfile(t)
	net, err := Poisson(geom.UnitTorus, p, 0, rng.New(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 0 {
		t.Errorf("Len = %d", net.Len())
	}
}
