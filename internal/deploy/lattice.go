package deploy

import (
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// SquareLattice deploys one camera of each lattice cell's group at the
// k×k grid points, with orientations chosen uniformly at random (the
// deterministic-position, random-orientation baseline). A single-group
// profile places identical cameras everywhere; multi-group profiles
// cycle through the groups in row-major order so group fractions are
// approximated deterministically.
func SquareLattice(t geom.Torus, profile sensor.Profile, k int, r *rng.PCG) (*sensor.Network, error) {
	points, err := GridPoints(t, k)
	if err != nil {
		return nil, err
	}
	return latticeNetwork(t, profile, points, r)
}

// TriangularLattice deploys cameras at the vertices of a triangular
// lattice with the given horizontal spacing, the deployment pattern of
// Wang & Cao [4] used for comparison in Section VII-C. Rows are
// vertically separated by spacing·√3/2 and alternately offset by half
// the spacing; row counts are chosen so the pattern wraps onto the torus
// as evenly as possible.
func TriangularLattice(t geom.Torus, profile sensor.Profile, spacing float64, r *rng.PCG) (*sensor.Network, error) {
	if !(spacing > 0) || spacing > t.Side() {
		return nil, fmt.Errorf("%w: got %v", ErrBadSpacing, spacing)
	}
	cols := int(math.Round(t.Side() / spacing))
	if cols < 1 {
		cols = 1
	}
	rowHeight := spacing * math.Sqrt(3) / 2
	rows := int(math.Round(t.Side() / rowHeight))
	if rows < 1 {
		rows = 1
	}
	dx := t.Side() / float64(cols)
	dy := t.Side() / float64(rows)

	points := make([]geom.Vec, 0, rows*cols)
	for j := 0; j < rows; j++ {
		offset := 0.0
		if j%2 == 1 {
			offset = dx / 2
		}
		for i := 0; i < cols; i++ {
			points = append(points, t.Wrap(geom.V(
				float64(i)*dx+offset,
				(float64(j)+0.5)*dy,
			)))
		}
	}
	return latticeNetwork(t, profile, points, r)
}

func latticeNetwork(t geom.Torus, profile sensor.Profile, points []geom.Vec, r *rng.PCG) (*sensor.Network, error) {
	groups := profile.Groups()
	counts := profile.Counts(len(points))
	cameras := make([]sensor.Camera, 0, len(points))
	y, used := 0, 0
	for _, p := range points {
		for y < len(groups)-1 && used >= counts[y] {
			y, used = y+1, 0
		}
		g := groups[y]
		cameras = append(cameras, sensor.Camera{
			Pos:      p,
			Orient:   r.Angle(),
			Radius:   g.Radius,
			Aperture: g.Aperture,
			Group:    y,
		})
		used++
	}
	return sensor.NewNetwork(t, cameras)
}
