package deploy

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func homogeneousProfile(t *testing.T) sensor.Profile {
	t.Helper()
	p, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSquareLattice(t *testing.T) {
	p := homogeneousProfile(t)
	net, err := SquareLattice(geom.UnitTorus, p, 5, rng.New(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 25 {
		t.Fatalf("Len = %d, want 25", net.Len())
	}
	// Positions must form the 5×5 grid.
	pts, err := GridPoints(geom.UnitTorus, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pts {
		if got := net.Camera(i).Pos; got != want {
			t.Fatalf("camera %d at %v, want %v", i, got, want)
		}
	}
}

func TestSquareLatticeGroupCycling(t *testing.T) {
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: 1},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := SquareLattice(geom.UnitTorus, p, 4, rng.New(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	counts := net.GroupCounts()
	if counts[0] != 8 || counts[1] != 8 {
		t.Errorf("group counts = %v, want [8 8]", counts)
	}
}

func TestSquareLatticeInvalidSide(t *testing.T) {
	p := homogeneousProfile(t)
	if _, err := SquareLattice(geom.UnitTorus, p, 0, rng.New(1, 0)); !errors.Is(err, ErrBadGridSide) {
		t.Errorf("error = %v, want ErrBadGridSide", err)
	}
}

func TestTriangularLattice(t *testing.T) {
	p := homogeneousProfile(t)
	net, err := TriangularLattice(geom.UnitTorus, p, 0.1, rng.New(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	// ~10 columns × ~12 rows (row height 0.0866).
	if net.Len() < 100 || net.Len() > 140 {
		t.Errorf("Len = %d, want ≈120", net.Len())
	}
	for i := 0; i < net.Len(); i++ {
		pos := net.Camera(i).Pos
		if pos.X < 0 || pos.X >= 1 || pos.Y < 0 || pos.Y >= 1 {
			t.Fatalf("camera %d outside region: %v", i, pos)
		}
	}
}

func TestTriangularLatticeAlternatingOffset(t *testing.T) {
	p := homogeneousProfile(t)
	net, err := TriangularLattice(geom.UnitTorus, p, 0.25, rng.New(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 4 columns; row 0 starts at x=0, row 1 is offset by dx/2 = 0.125.
	row0x := net.Camera(0).Pos.X
	row1x := net.Camera(4).Pos.X
	if math.Abs(row1x-row0x-0.125) > 1e-9 {
		t.Errorf("row offset = %v, want 0.125", row1x-row0x)
	}
}

func TestTriangularLatticeInvalidSpacing(t *testing.T) {
	p := homogeneousProfile(t)
	for _, s := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := TriangularLattice(geom.UnitTorus, p, s, rng.New(1, 0)); !errors.Is(err, ErrBadSpacing) {
			t.Errorf("spacing %v: error = %v, want ErrBadSpacing", s, err)
		}
	}
}

func TestTriangularLatticeDeterministicPositions(t *testing.T) {
	p := homogeneousProfile(t)
	a, err := TriangularLattice(geom.UnitTorus, p, 0.2, rng.New(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TriangularLattice(geom.UnitTorus, p, 0.2, rng.New(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Camera(i).Pos != b.Camera(i).Pos {
			t.Fatalf("positions differ at %d (only orientations should be random)", i)
		}
	}
}
