// Package stats provides the estimators the experiment harness reports:
// moment summaries with normal confidence intervals for real-valued
// observations, and Wilson score intervals for the coverage proportions
// that dominate the paper's evaluation.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadZ reports a non-positive z-score.
var ErrBadZ = errors.New("stats: z must be positive")

// Z95 is the two-sided 95% normal quantile.
const Z95 = 1.959963984540054

// Summary holds the moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n−1 denominator); 0 when N < 2
	Min      float64
	Max      float64
}

// Summarize computes the sample summary in one pass (Welford's update,
// stable for long near-constant streams).
func Summarize(xs []float64) Summary {
	var s Summary
	var m2 float64
	for _, x := range xs {
		s.N++
		if s.N == 1 {
			s.Mean, s.Min, s.Max = x, x, x
			continue
		}
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - s.Mean
		s.Mean += delta / float64(s.N)
		m2 += delta * (x - s.Mean)
	}
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean, 0 for empty samples.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.N))
}

// CI95 returns the normal-approximation 95% confidence interval for the
// mean.
func (s Summary) CI95() (lo, hi float64) {
	half := Z95 * s.StdErr()
	return s.Mean - half, s.Mean + half
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.3g min=%.6g max=%.6g",
		s.N, s.Mean, s.StdDev(), s.Min, s.Max)
}

// Proportion returns successes/n, or 0 when n == 0.
func Proportion(successes, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(successes) / float64(n)
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion at the given z (e.g. Z95). Unlike the Wald interval it
// behaves sensibly at proportions near 0 and 1 — exactly where full-view
// coverage experiments live.
func WilsonInterval(successes, n int, z float64) (lo, hi float64, err error) {
	if !(z > 0) || math.IsInf(z, 0) {
		return 0, 0, fmt.Errorf("%w: got %v", ErrBadZ, z)
	}
	if n <= 0 {
		return 0, 1, nil
	}
	if successes < 0 {
		successes = 0
	}
	if successes > n {
		successes = n
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// Counter accumulates Bernoulli observations.
type Counter struct {
	successes int
	total     int
}

// Add records one observation.
func (c *Counter) Add(success bool) {
	c.total++
	if success {
		c.successes++
	}
}

// AddN records n observations with the given number of successes.
func (c *Counter) AddN(successes, n int) {
	c.successes += successes
	c.total += n
}

// Successes returns the success count.
func (c *Counter) Successes() int { return c.successes }

// Total returns the observation count.
func (c *Counter) Total() int { return c.total }

// Fraction returns the empirical success proportion.
func (c *Counter) Fraction() float64 { return Proportion(c.successes, c.total) }

// Wilson95 returns the 95% Wilson interval for the proportion.
func (c *Counter) Wilson95() (lo, hi float64) {
	lo, hi, _ = WilsonInterval(c.successes, c.total, Z95)
	return lo, hi
}

// String implements fmt.Stringer.
func (c *Counter) String() string {
	lo, hi := c.Wilson95()
	return fmt.Sprintf("%d/%d = %.4f [%.4f, %.4f]", c.successes, c.total, c.Fraction(), lo, hi)
}
