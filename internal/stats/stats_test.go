package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Variance != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s.StdErr() != 0 {
		t.Errorf("StdErr of empty = %v", s.StdErr())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.Variance != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Σ(x−5)² = 32; unbiased variance = 32/7.
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeStability(t *testing.T) {
	// Large offset with tiny variance: naive two-pass Σx² would lose
	// everything; Welford must not.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 1e9 + float64(i%2) // alternates 1e9, 1e9+1
	}
	s := Summarize(xs)
	if math.Abs(s.Variance-0.25025) > 1e-3 {
		t.Errorf("Variance = %v, want ≈ 0.2503", s.Variance)
	}
}

func TestCI95ContainsMean(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	lo, hi := s.CI95()
	if lo > s.Mean || hi < s.Mean {
		t.Errorf("CI [%v, %v] excludes mean %v", lo, hi, s.Mean)
	}
	if lo >= hi {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestSummaryMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N != len(clean) {
			return false
		}
		for _, x := range clean {
			if x < s.Min || x > s.Max {
				return false
			}
		}
		return len(clean) == 0 || (s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	if got := Proportion(3, 4); got != 0.75 {
		t.Errorf("Proportion = %v", got)
	}
	if got := Proportion(0, 0); got != 0 {
		t.Errorf("Proportion(0,0) = %v", got)
	}
}

func TestWilsonIntervalKnownValue(t *testing.T) {
	// 8/10 successes at 95%: Wilson interval ≈ [0.490, 0.943].
	lo, hi, err := WilsonInterval(8, 10, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-0.4901) > 0.005 || math.Abs(hi-0.9433) > 0.005 {
		t.Errorf("Wilson(8/10) = [%v, %v], want ≈ [0.490, 0.943]", lo, hi)
	}
}

func TestWilsonIntervalEdges(t *testing.T) {
	// All failures: lower bound exactly 0, upper bound strictly above 0.
	lo, hi, err := WilsonInterval(0, 20, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 || hi > 0.3 {
		t.Errorf("Wilson(0/20) = [%v, %v]", lo, hi)
	}
	// All successes: upper bound 1 (after clamping center+half), lower < 1.
	lo, hi, err = WilsonInterval(20, 20, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if hi > 1 || lo >= 1 || lo < 0.7 {
		t.Errorf("Wilson(20/20) = [%v, %v]", lo, hi)
	}
	// Empty sample: the non-informative [0, 1].
	lo, hi, err = WilsonInterval(0, 0, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson(0/0) = [%v, %v]", lo, hi)
	}
}

func TestWilsonIntervalClampsSuccesses(t *testing.T) {
	lo, hi, err := WilsonInterval(25, 20, Z95)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := WilsonInterval(20, 20, Z95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != lo2 || hi != hi2 {
		t.Error("overflowing successes should clamp to n")
	}
}

func TestWilsonIntervalInvalidZ(t *testing.T) {
	for _, z := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, _, err := WilsonInterval(1, 2, z); !errors.Is(err, ErrBadZ) {
			t.Errorf("z=%v: error = %v, want ErrBadZ", z, err)
		}
	}
}

func TestWilsonIntervalContainsProportionProperty(t *testing.T) {
	f := func(rawS, rawN uint16) bool {
		n := int(rawN%1000) + 1
		s := int(rawS) % (n + 1)
		lo, hi, err := WilsonInterval(s, n, Z95)
		if err != nil {
			return false
		}
		p := float64(s) / float64(n)
		return lo <= p+1e-12 && hi >= p-1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	for i := 0; i < 10; i++ {
		c.Add(i < 7)
	}
	if c.Successes() != 7 || c.Total() != 10 {
		t.Errorf("counter = %d/%d", c.Successes(), c.Total())
	}
	if c.Fraction() != 0.7 {
		t.Errorf("Fraction = %v", c.Fraction())
	}
	lo, hi := c.Wilson95()
	if lo >= 0.7 || hi <= 0.7 {
		t.Errorf("Wilson95 = [%v, %v] excludes 0.7", lo, hi)
	}
	c.AddN(3, 5)
	if c.Successes() != 10 || c.Total() != 15 {
		t.Errorf("after AddN: %d/%d", c.Successes(), c.Total())
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}
