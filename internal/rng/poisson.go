package rng

import "math"

// poissonPTRSThreshold is the mean above which the transformed-rejection
// sampler takes over from Knuth's product method. Knuth's method costs
// O(λ) per draw and loses accuracy once exp(-λ) underflows.
const poissonPTRSThreshold = 10

// Poisson returns a draw from the Poisson distribution with the given
// mean. It panics if mean is negative or not finite. A mean of zero
// always returns 0.
//
// Small means use Knuth's product method; large means use Hörmann's
// transformed rejection with squeeze (PTRS, 1993), which is exact and
// O(1) expected time.
func (p *PCG) Poisson(mean float64) int {
	switch {
	case math.IsNaN(mean) || math.IsInf(mean, 0) || mean < 0:
		panic("rng: Poisson with invalid mean")
	case mean == 0:
		return 0
	case mean < poissonPTRSThreshold:
		return p.poissonKnuth(mean)
	default:
		return p.poissonPTRS(mean)
	}
}

// poissonKnuth multiplies uniforms until the product drops below
// exp(-mean).
func (p *PCG) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	k := 0
	prod := p.Float64()
	for prod > limit {
		k++
		prod *= p.Float64()
	}
	return k
}

// poissonPTRS is Hörmann's transformed rejection sampler ("The
// transformed rejection method for generating Poisson random variables",
// 1993), valid for mean ≥ 10.
func (p *PCG) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)

	for {
		u := p.Float64() - 0.5
		v := p.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)

		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lhs := math.Log(v * invAlpha / (a/(us*us) + b))
		lg, _ := math.Lgamma(k + 1)
		if lhs <= k*logMean-mean-lg {
			return int(k)
		}
	}
}
