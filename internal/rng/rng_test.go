package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 0)
	b := New(42, 0)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("sequence diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

func TestDistinctStreamsDiffer(t *testing.T) {
	a := New(42, 0)
	b := New(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical values across distinct streams", same)
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical values across distinct seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(7, 0)
	for i := 0; i < 100000; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(11, 3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	// Standard error ≈ 1/sqrt(12n) ≈ 0.00065; allow 6σ.
	if math.Abs(mean-0.5) > 0.004 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	p := New(13, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := p.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		// Expect 10000 each; binomial σ ≈ 95.
		if math.Abs(float64(c)-draws/10) > 600 {
			t.Errorf("digit %d count %d deviates from uniform", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	p := New(1, 1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			p.Intn(n)
		}()
	}
}

func TestAngleRange(t *testing.T) {
	p := New(17, 0)
	for i := 0; i < 10000; i++ {
		a := p.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("Angle out of range: %v", a)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	p := New(19, 0)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if p.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
	if p.Bool(0) {
		// Single draw of probability 0 must never hit (Float64 < 0 impossible).
		t.Error("Bool(0) returned true")
	}
}

func TestPerm(t *testing.T) {
	p := New(23, 0)
	perm := p.Perm(50)
	if len(perm) != 50 {
		t.Fatalf("len = %d", len(perm))
	}
	seen := make(map[int]bool, 50)
	for _, v := range perm {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", perm)
		}
		seen[v] = true
	}
	if got := p.Perm(0); len(got) != 0 {
		t.Errorf("Perm(0) = %v", got)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64.c
	// (Vigna); first three outputs.
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	var s uint64
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64Stateless(t *testing.T) {
	if Mix64(12345) != Mix64(12345) {
		t.Error("Mix64 not deterministic")
	}
	if Mix64(1) == Mix64(2) {
		t.Error("Mix64 collision on adjacent inputs")
	}
}

func TestUint32Uniformity(t *testing.T) {
	// Count set bits across many draws; each bit should be ~50%.
	p := New(29, 0)
	const draws = 50000
	var bitCounts [32]int
	for i := 0; i < draws; i++ {
		v := p.Uint32()
		for b := 0; b < 32; b++ {
			if v&(1<<b) != 0 {
				bitCounts[b]++
			}
		}
	}
	for b, c := range bitCounts {
		if math.Abs(float64(c)-draws/2) > 1000 {
			t.Errorf("bit %d set in %d/%d draws", b, c, draws)
		}
	}
}

func TestFloat64SequenceStability(t *testing.T) {
	// Pin the first few outputs so accidental algorithm changes are
	// caught: experiment results must stay reproducible across versions.
	p := New(2024, 7)
	got := []float64{p.Float64(), p.Float64(), p.Float64()}
	p2 := New(2024, 7)
	for i, g := range got {
		if w := p2.Float64(); g != w {
			t.Errorf("replay mismatch at %d: %v vs %v", i, g, w)
		}
	}
}

func TestIntnAcceptsLargeN(t *testing.T) {
	p := New(31, 0)
	n := int(1) << 40
	for i := 0; i < 1000; i++ {
		v := p.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(2^40) out of range: %d", v)
		}
	}
}

func TestNewStreamsQuickProperty(t *testing.T) {
	f := func(seed, stream uint64) bool {
		a := New(seed, stream)
		b := New(seed, stream)
		return a.Uint64() == b.Uint64() && a.Float64() == b.Float64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
