// Package rng provides the deterministic pseudo-random substrate for all
// deployment and Monte-Carlo code: a from-scratch PCG-XSH-RR 64/32
// generator, SplitMix64 seed expansion, and the variate samplers the
// experiments need (uniform floats, integers, angles, Poisson counts).
//
// Determinism contract: a generator constructed with New(seed, stream)
// produces the same sequence on every platform and Go version, and
// distinct stream identifiers yield independent sequences. Experiment
// runners derive one stream per trial so parallel execution is
// reproducible regardless of goroutine scheduling.
package rng

import "math"

const (
	pcgMultiplier = 6364136223846793005

	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMixA  = 0xBF58476D1CE4E5B9
	splitmixMixB  = 0x94D049BB133111EB
)

// SplitMix64 advances the SplitMix64 state x by one step and returns the
// mixed output. It is the standard seed-expansion function: feeding it a
// counter yields well-distributed, independent 64-bit values.
func SplitMix64(x *uint64) uint64 {
	*x += splitmixGamma
	z := *x
	z = (z ^ (z >> 30)) * splitmixMixA
	z = (z ^ (z >> 27)) * splitmixMixB
	return z ^ (z >> 31)
}

// Mix64 returns a single SplitMix64 mix of x without maintaining state.
// Useful for hashing (seed, index) pairs into stream identifiers.
func Mix64(x uint64) uint64 {
	s := x
	return SplitMix64(&s)
}

// PCG is a PCG-XSH-RR 64/32 generator (O'Neill 2014): 64-bit LCG state
// with a 32-bit xorshift-high / random-rotation output function. The
// stream increment selects one of 2^63 independent sequences.
//
// The zero value is not a valid generator; construct with New.
type PCG struct {
	state uint64
	inc   uint64 // always odd
}

// New returns a PCG generator seeded from (seed, stream). Generators with
// equal arguments produce identical sequences; distinct streams are
// statistically independent.
func New(seed, stream uint64) *PCG {
	// Expand the two inputs through SplitMix64 so that nearby seeds and
	// consecutive stream ids still yield unrelated state.
	s := seed
	a := SplitMix64(&s)
	s ^= Mix64(stream)
	b := SplitMix64(&s)

	p := &PCG{inc: b<<1 | 1}
	p.state = 0
	p.Uint32()
	p.state += a
	p.Uint32()
	return p
}

// Uint32 returns the next 32 pseudo-random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMultiplier + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 pseudo-random bits (two Uint32 draws).
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. Rejection
// sampling removes modulo bias.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	// Threshold below which values would be biased.
	threshold := (-bound) % bound
	for {
		v := p.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Angle returns a uniform direction in [0, 2π).
func (p *PCG) Angle() float64 {
	return p.Float64() * 2 * math.Pi
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}
