package rng

import (
	"math"
	"testing"
)

// poissonMoments draws n samples and returns their mean and variance.
func poissonMoments(t *testing.T, p *PCG, mean float64, n int) (sampleMean, sampleVar float64) {
	t.Helper()
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		k := p.Poisson(mean)
		if k < 0 {
			t.Fatalf("Poisson(%v) returned negative %d", mean, k)
		}
		f := float64(k)
		sum += f
		sumSq += f * f
	}
	sampleMean = sum / float64(n)
	sampleVar = sumSq/float64(n) - sampleMean*sampleMean
	return sampleMean, sampleVar
}

func TestPoissonZeroMean(t *testing.T) {
	p := New(1, 0)
	for i := 0; i < 100; i++ {
		if k := p.Poisson(0); k != 0 {
			t.Fatalf("Poisson(0) = %d", k)
		}
	}
}

func TestPoissonInvalidMeanPanics(t *testing.T) {
	p := New(1, 0)
	for _, mean := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Poisson(%v) did not panic", mean)
				}
			}()
			p.Poisson(mean)
		}()
	}
}

func TestPoissonMomentsSmallMean(t *testing.T) {
	// Exercises the Knuth path (mean < 10).
	for _, mean := range []float64{0.1, 0.5, 1, 3, 7.5} {
		p := New(101, uint64(mean*1000))
		const n = 100000
		m, v := poissonMoments(t, p, mean, n)
		se := math.Sqrt(mean / n)
		if math.Abs(m-mean) > 6*se {
			t.Errorf("mean %v: sample mean %v (se %v)", mean, m, se)
		}
		// Poisson variance equals the mean; allow a loose band.
		if math.Abs(v-mean) > 0.1*mean+6*se {
			t.Errorf("mean %v: sample variance %v, want ≈ %v", mean, v, mean)
		}
	}
}

func TestPoissonMomentsLargeMean(t *testing.T) {
	// Exercises the PTRS path (mean ≥ 10).
	for _, mean := range []float64{10, 25, 100, 1000, 10000} {
		p := New(202, uint64(mean))
		const n = 50000
		m, v := poissonMoments(t, p, mean, n)
		se := math.Sqrt(mean / n)
		if math.Abs(m-mean) > 6*se {
			t.Errorf("mean %v: sample mean %v (se %v)", mean, m, se)
		}
		if math.Abs(v-mean) > 0.1*mean {
			t.Errorf("mean %v: sample variance %v, want ≈ %v", mean, v, mean)
		}
	}
}

func TestPoissonPMFSmallMean(t *testing.T) {
	// Compare empirical frequencies of k = 0..4 against the exact pmf
	// for mean 2.
	const mean = 2.0
	p := New(303, 0)
	const n = 200000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[p.Poisson(mean)]++
	}
	for k := 0; k <= 4; k++ {
		lg, _ := math.Lgamma(float64(k) + 1)
		want := math.Exp(float64(k)*math.Log(mean) - mean - lg)
		got := float64(counts[k]) / n
		se := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 8*se {
			t.Errorf("P(X=%d): got %v, want %v (se %v)", k, got, want, se)
		}
	}
}

func TestPoissonPMFLargeMeanTail(t *testing.T) {
	// For mean 50, ~95% of mass lies within mean ± 2√mean.
	const mean = 50.0
	p := New(404, 0)
	const n = 50000
	within := 0
	lo, hi := mean-2*math.Sqrt(mean), mean+2*math.Sqrt(mean)
	for i := 0; i < n; i++ {
		k := float64(p.Poisson(mean))
		if k >= lo && k <= hi {
			within++
		}
	}
	frac := float64(within) / n
	if frac < 0.92 || frac > 0.98 {
		t.Errorf("fraction within ±2σ = %v, want ≈ 0.95", frac)
	}
}

func TestPoissonDeterministicAcrossEqualGenerators(t *testing.T) {
	a := New(7, 9)
	b := New(7, 9)
	for i := 0; i < 100; i++ {
		if av, bv := a.Poisson(42), b.Poisson(42); av != bv {
			t.Fatalf("diverged at %d: %d vs %d", i, av, bv)
		}
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	p := New(1, 0)
	for i := 0; i < b.N; i++ {
		p.Poisson(3)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	p := New(1, 0)
	for i := 0; i < b.N; i++ {
		p.Poisson(5000)
	}
}
