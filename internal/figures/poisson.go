package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "poisson",
		ID:          "E05",
		Description: "Theorems 3–4: analytic P_N/P_S vs simulated Poisson deployment",
		Run:         runPoisson,
	})
}

// runPoisson validates Theorems 3 and 4 (E5): for a heterogeneous
// two-group network under 2-D Poisson deployment, the analytic per-point
// probabilities P_N and P_S must match the simulated fraction of random
// points meeting the necessary / sufficient condition.
func runPoisson(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.6, Radius: 0.12, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.2, Aperture: math.Pi / 3},
	)
	if err != nil {
		return err
	}
	densities := pick(opts, []int{200, 500, 1000, 2000, 4000}, []int{200, 500})
	trials := opts.trials(120, 15)
	pointsPerTrial := pick(opts, 60, 25)

	table := report.NewTable(
		fmt.Sprintf("Theorems 3–4 — Poisson deployment, θ = π/4, 2 groups, %d trials × %d points",
			trials, pointsPerTrial),
		"density", "P_N analytic", "P_N simulated", "P_S analytic", "P_S simulated",
	)
	for di, density := range densities {
		pn, err := analytic.PoissonPN(profile, float64(density), theta)
		if err != nil {
			return err
		}
		ps, err := analytic.PoissonPS(profile, float64(density), theta)
		if err != nil {
			return err
		}
		cfg := experiment.Config{
			N: density, Theta: theta, Profile: profile,
			Deployment: experiment.DeployPoisson,
		}
		out, err := runPoints(opts, fmt.Sprintf("poisson-d%d", density), cfg, pointsPerTrial, trials,
			rng.Mix64(opts.Seed^uint64(di+1)))
		if err != nil {
			return err
		}
		if err := table.AddRow(
			report.I(density),
			report.F4(pn), report.F4(out.Necessary.Fraction()),
			report.F4(ps), report.F4(out.Sufficient.Fraction()),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
