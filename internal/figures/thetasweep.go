package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "thetasweep",
		ID:          "E19",
		Description: "Effective-angle sweep: per-point condition probabilities vs θ from one fused simulation",
		Run:         runThetaSweep,
	})
}

// runThetaSweep traces how the per-point probabilities of the necessary
// condition, full-view coverage, and the sufficient condition move with
// the effective angle θ on a fixed heterogeneous deployment regime
// (E19). The whole θ-list is diagnosed from one simulation — one
// deployment, one spatial index, and one candidate gather per sample
// point (core.MultiChecker via RunPointsThetas) — so the sweep costs
// barely more than a single-θ experiment; a per-θ loop of RunPoints
// would redo the deployment and gather work |θ| times for identical
// results. Analytic overlays are Equations 2 and 13 per θ.
func runThetaSweep(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	thetas := []float64{math.Pi / 6, math.Pi / 5, math.Pi / 4, math.Pi / 3, math.Pi / 2}
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.15, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		return err
	}
	n := pick(opts, 1200, 300)
	trials := opts.trials(120, 15)
	pointsPerTrial := pick(opts, 60, 25)

	cfg := experiment.Config{N: n, Profile: profile}
	outs, err := runPointsThetas(opts, "thetasweep", cfg, thetas, pointsPerTrial, trials,
		rng.Mix64(opts.Seed^uint64(19)))
	if err != nil {
		return err
	}

	table := report.NewTable(
		fmt.Sprintf("Effective-angle sweep — 3-group heterogeneous network, n = %d, %d trials × %d points, one fused simulation",
			n, trials, pointsPerTrial),
		"θ", "1-P(F_N) analytic", "P(nec)", "P(full-view)", "P(suf)", "1-P(F_S) analytic",
	)
	for ti, theta := range thetas {
		necFail, err := analytic.UniformNecessaryFailure(profile, n, theta)
		if err != nil {
			return err
		}
		sufFail, err := analytic.UniformSufficientFailure(profile, n, theta)
		if err != nil {
			return err
		}
		out := outs[ti]
		if err := table.AddRow(
			report.F4(theta),
			report.F4(1-necFail),
			report.F4(out.Necessary.Fraction()),
			report.F4(out.FullView.Fraction()),
			report.F4(out.Sufficient.Fraction()),
			report.F4(1-sufFail),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
