package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/report"
)

func init() {
	register(Experiment{
		Name:        "fig8",
		ID:          "E02",
		Description: "Figure 8: critical sensing areas vs number of cameras n (θ = π/4)",
		Run:         runFig8,
	})
}

// runFig8 reproduces Figure 8: s_Nc and s_Sc as n grows from 100 to
// 10000 at θ = π/4. The paper's qualitative claims: s_Sc(100) ≈ 0.5
// (half the unit square), both curves fall with n, and the decline
// flattens beyond n ≈ 1000.
func runFig8(w io.Writer, opts Options) error {
	theta := math.Pi / 4
	ns := []int{100, 200, 300, 500, 700, 1000, 1500, 2000, 3000, 5000, 7000, 10000}
	table := report.NewTable(
		"Figure 8 — CSA vs n (θ = π/4)",
		"n", "s_Nc(n)", "s_Sc(n)", "n*s_Nc/log(n)",
	)
	var (
		xs      []float64
		necVals []float64
		sufVals []float64
	)
	for _, n := range ns {
		nec, err := analytic.CSANecessary(n, theta)
		if err != nil {
			return err
		}
		suf, err := analytic.CSASufficient(n, theta)
		if err != nil {
			return err
		}
		xs = append(xs, math.Log10(float64(n)))
		necVals = append(necVals, nec)
		sufVals = append(sufVals, suf)
		if err := table.AddRow(
			report.I(n), report.F(nec), report.F(suf),
			report.F4(float64(n)*nec/math.Log(float64(n))),
		); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return report.RenderChart(w, "CSA vs log10(n) (θ = π/4)", []report.Series{
		{Name: "s_Nc (necessary)", X: xs, Y: necVals},
		{Name: "s_Sc (sufficient)", X: xs, Y: sufVals},
	}, 60, 16)
}
