package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/construct"
	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/report"
)

func init() {
	register(Experiment{
		Name:        "construct",
		ID:          "E13",
		Description: "Deterministic ring construction vs random deployment cost",
		Run:         runConstruct,
	})
}

// runConstruct quantifies the price of randomness (E13), in the spirit
// of the paper's Section VII-C comparison with Wang & Cao's
// lattice-based deployment: for each θ, build the deterministic ring
// deployment, verify it full-view covers a dense grid, and ask how many
// *randomly scattered* cameras with the same per-camera sensing area the
// sufficient CSA demands instead.
func runConstruct(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	cells := pick(opts, 8, 5)
	gridSide := pick(opts, 50, 30)

	table := report.NewTable(
		fmt.Sprintf("Deterministic rings vs random deployment (tiling %d×%d)", cells, cells),
		"theta/pi", "det. cameras", "per-camera s", "covered (grid)", "random n for same s", "random/det",
	)
	for _, t := range []float64{0.2, 0.25, 1.0 / 3, 0.5} {
		theta := t * math.Pi
		plan, err := construct.NewPlan(geom.UnitTorus, theta, cells)
		if err != nil {
			return err
		}
		net, err := plan.Build(geom.UnitTorus)
		if err != nil {
			return err
		}
		checker, err := core.NewChecker(net, theta)
		if err != nil {
			return err
		}
		grid, err := deploy.GridPoints(geom.UnitTorus, gridSide)
		if err != nil {
			return err
		}
		// One deterministic deployment per θ — no trials to parallelise
		// over, so the verification sweep itself takes the workers.
		stats := checker.SurveyRegionParallel(grid, opts.Parallelism)
		if !stats.AllFullView() {
			return fmt.Errorf("construct: plan θ=%.3gπ left %d/%d grid points uncovered",
				t, stats.Points-stats.FullView, stats.Points)
		}
		randomN, err := analytic.RequiredNSufficient(plan.SensingArea(), theta)
		if err != nil {
			return err
		}
		if err := table.AddRow(
			report.F4(t),
			report.I(plan.TotalCameras()),
			report.F(plan.SensingArea()),
			"yes",
			report.I(randomN),
			report.F4(float64(randomN)/float64(plan.TotalCameras())),
		); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\nThe ratio is the density premium random scattering pays over careful\n"+
		"placement for the same camera hardware (cf. Section VII-C).")
	return err
}
