package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "pointprob",
		ID:          "E10",
		Description: "Equations 2 & 13: analytic point probabilities vs uniform-deployment simulation",
		Run:         runPointProb,
	})
}

// runPointProb validates Equations 2 and 13 (E10) for a three-group
// heterogeneous network under uniform deployment: the simulated fraction
// of points meeting the necessary (resp. sufficient) condition must
// track 1 − P(F_N,P) (resp. 1 − P(F_S,P)) across n. Both effective
// angles are evaluated from the same deployments and candidate gathers
// (core.MultiChecker via RunPointsThetas), so adding a θ costs two
// sector-occupancy passes per point instead of a whole re-simulation.
func runPointProb(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	thetas := []float64{math.Pi / 4, math.Pi / 3}
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.15, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{300, 600, 1200, 2400}, []int{200, 400})
	trials := opts.trials(120, 15)
	pointsPerTrial := pick(opts, 60, 25)

	table := report.NewTable(
		fmt.Sprintf("Equations 2 & 13 — 3-group heterogeneous network, θ ∈ {π/4, π/3}, %d trials × %d points",
			trials, pointsPerTrial),
		"n", "θ", "1-P(F_N) analytic", "P(nec) simulated", "1-P(F_S) analytic", "P(suf) simulated",
	)
	for ci, n := range ns {
		cfg := experiment.Config{N: n, Profile: profile}
		outs, err := runPointsThetas(opts, fmt.Sprintf("pointprob-n%d", n), cfg, thetas, pointsPerTrial, trials,
			rng.Mix64(opts.Seed^uint64(ci+67)))
		if err != nil {
			return err
		}
		for ti, theta := range thetas {
			necFail, err := analytic.UniformNecessaryFailure(profile, n, theta)
			if err != nil {
				return err
			}
			sufFail, err := analytic.UniformSufficientFailure(profile, n, theta)
			if err != nil {
				return err
			}
			out := outs[ti]
			if err := table.AddRow(
				report.I(n), report.F4(theta),
				report.F4(1-necFail), report.F4(out.Necessary.Fraction()),
				report.F4(1-sufFail), report.F4(out.Sufficient.Fraction()),
			); err != nil {
				return err
			}
		}
	}
	_, err = table.WriteTo(w)
	return err
}
