package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/experiment"
	"fullview/internal/probsense"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "probsense",
		ID:          "E12",
		Description: "Extension: probabilistic sensing — full-view guarantees under detection decay",
		Run:         runProbSense,
	})
}

// runProbSense explores the paper's probabilistic-sensing extension
// (E12): the binary model's boolean full-view verdict becomes a
// worst-direction detection probability. The sweep shows the guarantee
// eroding as the exponential decay sharpens, with the binary model as
// the λ → 0 reference.
func runProbSense(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 3
	n := pick(opts, 1500, 400)
	trials := opts.trials(40, 8)
	pointsPerTrial := pick(opts, 25, 10)
	steps := pick(opts, 180, 90)

	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		return err
	}
	models := []struct {
		name  string
		model probsense.Model
	}{
		{name: "binary (paper model)", model: probsense.Binary{}},
		{name: "exp decay λ=0.5", model: probsense.ExpDecay{CertainFraction: 0.5, Decay: 0.5}},
		{name: "exp decay λ=1", model: probsense.ExpDecay{CertainFraction: 0.5, Decay: 1}},
		{name: "exp decay λ=2", model: probsense.ExpDecay{CertainFraction: 0.5, Decay: 2}},
		{name: "exp decay λ=4", model: probsense.ExpDecay{CertainFraction: 0.5, Decay: 4}},
	}

	table := report.NewTable(
		fmt.Sprintf("Probabilistic sensing — n = %d, θ = π/3, r_c = r/2, %d trials × %d points",
			n, trials, pointsPerTrial),
		"model", "mean worst-dir prob", "mean mean-dir prob", "P(worst ≥ 0.9)",
	)
	for mi, m := range models {
		type trialOut struct {
			worst, mean []float64
			strong      int
		}
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(mi+97)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				net, err := deployUniform(profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				eval, err := probsense.NewEvaluator(net, m.model, theta)
				if err != nil {
					return trialOut{}, err
				}
				var out trialOut
				for i := 0; i < pointsPerTrial; i++ {
					p := vec(r.Float64(), r.Float64())
					prof, err := eval.Evaluate(p, steps)
					if err != nil {
						return trialOut{}, err
					}
					out.worst = append(out.worst, prof.WorstProb)
					out.mean = append(out.mean, prof.MeanProb)
					if prof.WorstProb >= 0.9 {
						out.strong++
					}
				}
				return out, nil
			})
		if err != nil {
			return err
		}
		var worst, mean []float64
		strong, total := 0, 0
		for _, tr := range results {
			worst = append(worst, tr.worst...)
			mean = append(mean, tr.mean...)
			strong += tr.strong
			total += len(tr.worst)
		}
		if err := table.AddRow(
			m.name,
			report.F4(stats.Summarize(worst).Mean),
			report.F4(stats.Summarize(mean).Mean),
			report.F4(stats.Proportion(strong, total)),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
