package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "area",
		ID:          "E08",
		Description: "Section VI-A: sensing area, not shape, decides coverage",
		Run:         runArea,
	})
}

// runArea validates Section VI-A (E8): "cameras with different r and φ
// but own the same s = φr²/2 will perform all the same in the network."
// Three networks with identical weighted sensing area but very different
// sector shapes must produce statistically indistinguishable coverage
// fractions.
func runArea(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4

	// All shapes share s = π/400 ≈ 0.00785.
	longThin, err := sensor.Homogeneous(0.2, math.Pi/8)
	if err != nil {
		return err
	}
	shortWide, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return err
	}
	mixed, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: math.Pi / 8},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
	)
	if err != nil {
		return err
	}
	shapes := []struct {
		name    string
		profile sensor.Profile
	}{
		{name: "long-thin (r=0.2, phi=pi/8)", profile: longThin},
		{name: "short-wide (r=0.1, phi=pi/2)", profile: shortWide},
		{name: "50/50 mixture", profile: mixed},
	}

	n := pick(opts, 1000, 300)
	trials := opts.trials(150, 15)
	pointsPerTrial := pick(opts, 60, 25)
	table := report.NewTable(
		fmt.Sprintf("Section VI-A — equal sensing area, different shapes (n = %d, θ = π/4)", n),
		"profile", "s_c", "P(necessary)", "P(full-view)", "P(sufficient)", "mean covering",
	)
	for si, shape := range shapes {
		cfg := experiment.Config{N: n, Theta: theta, Profile: shape.profile}
		out, err := runPoints(opts, fmt.Sprintf("area-s%d", si), cfg, pointsPerTrial, trials,
			rng.Mix64(opts.Seed^uint64(si+41)))
		if err != nil {
			return err
		}
		if err := table.AddRow(
			shape.name,
			report.F(shape.profile.WeightedSensingArea()),
			report.F4(out.Necessary.Fraction()),
			report.F4(out.FullView.Fraction()),
			report.F4(out.Sufficient.Fraction()),
			report.F4(out.CoveringCount.Mean),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
