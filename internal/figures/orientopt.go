package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/orient"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "orientopt",
		ID:          "E15",
		Description: "Aiming matters: random vs optimized orientations at fixed positions",
		Run:         runOrientOpt,
	})
}

// runOrientOpt quantifies how much coverage the paper's random
// orientations give away (E15): positions stay where the uniform
// deployment dropped them, but a greedy aiming pass re-orients cameras
// before they freeze. The gap between the two columns is the price of
// not being able to aim.
func runOrientOpt(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 3
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{100, 200, 300}, []int{60, 120})
	trials := opts.trials(15, 5)
	probeSide := pick(opts, 20, 12)
	budget := pick(opts, 50, 25)

	table := report.NewTable(
		fmt.Sprintf("Random vs optimized aiming — θ = π/3, r = 0.2, φ = π/2, %d trials, %d×%d probes",
			trials, probeSide, probeSide),
		"n", "covered (random aim)", "covered (optimized)", "gain", "mean re-aims",
	)
	for ci, n := range ns {
		type trialOut struct {
			before, after float64
			moves         int
		}
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(ci+131)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				net, err := deploy.Uniform(geom.UnitTorus, profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				res, err := orient.Optimize(net, theta, probeSide, budget)
				if err != nil {
					return trialOut{}, err
				}
				probes := float64(res.Probes)
				return trialOut{
					before: float64(res.Before) / probes,
					after:  float64(res.After) / probes,
					moves:  res.Moves,
				}, nil
			})
		if err != nil {
			return err
		}
		var before, after, moves []float64
		for _, tr := range results {
			before = append(before, tr.before)
			after = append(after, tr.after)
			moves = append(moves, float64(tr.moves))
		}
		b := stats.Summarize(before).Mean
		a := stats.Summarize(after).Mean
		if err := table.AddRow(
			report.I(n), report.F4(b), report.F4(a), report.F4(a-b),
			report.F4(stats.Summarize(moves).Mean),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
