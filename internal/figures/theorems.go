package figures

import (
	"errors"
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/numeric"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "thm1",
		ID:          "E03",
		Description: "Theorem 1: grid necessary-condition failure around s_Nc under uniform deployment",
		Run:         runThm1,
	})
	register(Experiment{
		Name:        "thm2",
		ID:          "E04",
		Description: "Theorem 2: grid sufficient-condition failure and full-view coverage around s_Sc",
		Run:         runThm2,
	})
}

// theoremCell is one (n, q) cell of a Theorem 1/2 validation sweep.
type theoremCell struct {
	n   int
	q   float64
	csa float64
	out experiment.GridOutcome
}

// runTheoremSweep deploys uniform networks with weighted sensing area
// q·csa(n) and measures how often the dense grid fails the target
// condition.
//
// Unlike the fused multi-θ figures (pointprob, gap, thetasweep), this
// sweep cannot share deployments across effective angles: the sensing
// area q·csa(n, θ) — and therefore the deployed profile itself — is a
// function of θ, so each θ needs its own networks. Each trial still
// builds the spatial index exactly once per deployment (the grid sweep's
// workers share it via Checker.Clone), and all three conditions are
// evaluated from a single candidate gather per grid point.
//
// Degraded mode: a cell whose analytic value or Monte-Carlo aggregate
// is non-finite (numeric.ErrNonFinite) is skipped and reported in the
// returned skipped list rather than aborting the whole sweep — one
// pathological cell must not discard hours of healthy ones. Any other
// error still aborts.
func runTheoremSweep(
	opts Options,
	name string,
	theta float64,
	csaFunc func(int, float64) (float64, error),
	ns []int,
	qs []float64,
	trials int,
) (cells []theoremCell, skipped []string, err error) {
	base, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return nil, nil, err
	}
	for ci, n := range ns {
		csa, err := csaFunc(n, theta)
		if err != nil {
			if errors.Is(err, numeric.ErrNonFinite) {
				skipped = append(skipped, fmt.Sprintf("n=%d: analytic value non-finite: %v", n, err))
				continue
			}
			return nil, nil, err
		}
		for qi, q := range qs {
			profile, err := base.ScaleToArea(q * csa)
			if err != nil {
				return nil, nil, err
			}
			cfg := experiment.Config{N: n, Theta: theta, Profile: profile}
			seed := rng.Mix64(opts.Seed ^ uint64(ci*101+qi+1))
			cell := fmt.Sprintf("%s-n%d-q%02.0f", name, n, q*100)
			out, err := runGrid(opts, cell, cfg, 0, trials, seed)
			if err != nil {
				if errors.Is(err, numeric.ErrNonFinite) {
					skipped = append(skipped, fmt.Sprintf("n=%d q=%g: %v", n, q, err))
					continue
				}
				return nil, nil, err
			}
			cells = append(cells, theoremCell{n: n, q: q, csa: csa, out: out})
		}
	}
	return cells, skipped, nil
}

// reportSkipped appends a note per degraded-mode skipped cell.
func reportSkipped(w io.Writer, skipped []string) error {
	for _, s := range skipped {
		if _, err := fmt.Fprintf(w, "skipped (non-finite): %s\n", s); err != nil {
			return err
		}
	}
	return nil
}

// runThm1 validates Theorem 1 (E3): with s_c = q·s_Nc(n), the
// probability that some dense-grid point fails the *necessary* condition
// should head to 0 for q > 1 and stay bounded away from 0 for q < 1 as
// n grows.
func runThm1(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	ns := pick(opts, []int{200, 400, 800, 1600}, []int{100, 200})
	qs := []float64{0.5, 1.0, 2.0}
	trials := opts.trials(60, 8)

	cells, skipped, err := runTheoremSweep(opts, "thm1", theta, analytic.CSANecessary, ns, qs, trials)
	if err != nil {
		return err
	}
	table := report.NewTable(
		fmt.Sprintf("Theorem 1 — P(grid fails necessary condition), θ = π/4, %d trials/cell", trials),
		"n", "q", "s_c = q*s_Nc", "P(fail H_N)", "95% CI", "mean point fraction",
	)
	for _, c := range cells {
		fails := c.out.Trials - c.out.AllNecessary.Successes()
		lo, hi := wilson(fails, c.out.Trials)
		if err := table.AddRow(
			report.I(c.n), report.F4(c.q), report.F(c.q*c.csa),
			report.F4(float64(fails)/float64(c.out.Trials)),
			fmt.Sprintf("[%s, %s]", report.F4(lo), report.F4(hi)),
			report.F4(c.out.NecessaryFraction.Mean),
		); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	return reportSkipped(w, skipped)
}

// runThm2 validates Theorem 2 (E4): with s_c = q·s_Sc(n), the grid
// should fail the *sufficient* condition (and hence possibly full-view
// coverage) with vanishing probability for q > 1. Full-view failure is
// reported alongside, showing the sufficient condition really does imply
// coverage.
func runThm2(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	ns := pick(opts, []int{200, 400, 800, 1600}, []int{100, 200})
	qs := []float64{0.5, 1.0, 2.0}
	trials := opts.trials(60, 8)

	cells, skipped, err := runTheoremSweep(opts, "thm2", theta, analytic.CSASufficient, ns, qs, trials)
	if err != nil {
		return err
	}
	table := report.NewTable(
		fmt.Sprintf("Theorem 2 — P(grid fails sufficient condition), θ = π/4, %d trials/cell", trials),
		"n", "q", "s_c = q*s_Sc", "P(fail H_S)", "P(fail full-view)", "mean point fraction",
	)
	for _, c := range cells {
		failsSuf := c.out.Trials - c.out.AllSufficient.Successes()
		failsFV := c.out.Trials - c.out.AllFullView.Successes()
		if failsFV > failsSuf {
			return fmt.Errorf("thm2: full-view failures (%d) exceed sufficient failures (%d)", failsFV, failsSuf)
		}
		if err := table.AddRow(
			report.I(c.n), report.F4(c.q), report.F(c.q*c.csa),
			report.F4(float64(failsSuf)/float64(c.out.Trials)),
			report.F4(float64(failsFV)/float64(c.out.Trials)),
			report.F4(c.out.SufficientFraction.Mean),
		); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	return reportSkipped(w, skipped)
}
