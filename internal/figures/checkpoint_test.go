package figures

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointedRunBitIdentical pins the Options.CheckpointDir
// contract: a checkpointed run writes journals but produces the exact
// same bytes of output as an uncheckpointed run, and re-running against
// the completed journals (everything resumed, nothing recomputed)
// reproduces them again.
func TestCheckpointedRunBitIdentical(t *testing.T) {
	for _, name := range []string{"thm1", "poisson"} {
		t.Run(name, func(t *testing.T) {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			var plain strings.Builder
			if err := e.Run(&plain, quickOpts()); err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			opts := quickOpts()
			opts.CheckpointDir = dir
			var ckpt strings.Builder
			if err := e.Run(&ckpt, opts); err != nil {
				t.Fatal(err)
			}
			if ckpt.String() != plain.String() {
				t.Errorf("checkpointed output differs from plain run:\n--- plain ---\n%s\n--- checkpointed ---\n%s",
					plain.String(), ckpt.String())
			}
			journals, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			if len(journals) == 0 {
				t.Fatal("no journals written")
			}
			before := make(map[string][]byte, len(journals))
			for _, j := range journals {
				data, err := os.ReadFile(j)
				if err != nil {
					t.Fatal(err)
				}
				before[j] = data
			}

			// Resume against complete journals: same output, journals
			// untouched byte for byte.
			var resumed strings.Builder
			if err := e.Run(&resumed, opts); err != nil {
				t.Fatal(err)
			}
			if resumed.String() != plain.String() {
				t.Error("resumed output differs from plain run")
			}
			for j, want := range before {
				got, err := os.ReadFile(j)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("journal %s rewritten on full resume", filepath.Base(j))
				}
			}
		})
	}
}
