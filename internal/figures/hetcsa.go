package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "hetcsa",
		ID:          "E18",
		Description: "Heterogeneity: the CSA dichotomy driven by the weighted sum s_c alone",
		Run:         runHetCSA,
	})
}

// runHetCSA validates the paper's central heterogeneous claim (E18):
// the critical sensing area governs coverage through the *weighted sum*
// s_c = Σ c_y·s_y alone. Three profiles with wildly different group
// structure — homogeneous, mild two-group, extreme three-group — are
// each scaled to the same multiples of s_Nc(n); their grid failure
// probabilities must exhibit the same dichotomy at the same q.
func runHetCSA(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	n := pick(opts, 800, 200)
	trials := opts.trials(60, 8)

	homogeneous, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return err
	}
	// Group shapes differ strongly; per-sensor sensing areas stay
	// comparable so the q = 2 scaling keeps radii well inside the torus
	// (profiles whose weighted area concentrates in a narrow-aperture
	// minority need radii beyond the region at simulable n — the same
	// finite-size boundary noted for E4's n = 200 column).
	twoGroup, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.08, Aperture: math.Pi},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.16, Aperture: math.Pi / 4},
	)
	if err != nil {
		return err
	}
	threeGroup, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.09, Aperture: math.Pi},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.13, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.18, Aperture: math.Pi / 4},
	)
	if err != nil {
		return err
	}
	profiles := []struct {
		name    string
		profile sensor.Profile
	}{
		{name: "homogeneous", profile: homogeneous},
		{name: "2 groups (wide+narrow)", profile: twoGroup},
		{name: "3 groups (mixed shapes)", profile: threeGroup},
	}

	csa, err := analytic.CSANecessary(n, theta)
	if err != nil {
		return err
	}
	table := report.NewTable(
		fmt.Sprintf("Heterogeneity and the CSA — n = %d, θ = π/4, s_Nc = %s, %d trials/cell",
			n, report.F(csa), trials),
		"profile", "q", "P(grid fails H_N)", "mean point fraction",
	)
	for pi, prof := range profiles {
		for qi, q := range []float64{0.5, 2.0} {
			scaled, err := prof.profile.ScaleToArea(q * csa)
			if err != nil {
				return err
			}
			cfg := experiment.Config{N: n, Theta: theta, Profile: scaled}
			out, err := runGrid(opts, fmt.Sprintf("hetcsa-p%d-q%d", pi, qi), cfg, 0, trials,
				rng.Mix64(opts.Seed^uint64(pi*10+qi+211)))
			if err != nil {
				return err
			}
			fails := out.Trials - out.AllNecessary.Successes()
			if err := table.AddRow(
				prof.name, report.F4(q),
				report.F4(float64(fails)/float64(out.Trials)),
				report.F4(out.NecessaryFraction.Mean),
			); err != nil {
				return err
			}
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "\nAll profiles share the dichotomy at the same q: only the weighted sum\n"+
		"s_c matters, not how the area is split across groups (Definition 2).")
	return err
}
