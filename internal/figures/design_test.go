package figures

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDesignDocumentMatchesRegistry keeps DESIGN.md's per-experiment
// index and the code registry in lock-step: every experiment row in the
// document must name a registered fvcbench subcommand, and every
// registered experiment must appear in the document.
func TestDesignDocumentMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	doc := string(raw)

	subcommand := regexp.MustCompile("`fvcbench ([a-z0-9]+)`")
	documented := make(map[string]bool)
	for _, m := range subcommand.FindAllStringSubmatch(doc, -1) {
		documented[m[1]] = true
	}

	for _, e := range All() {
		if !documented[e.Name] {
			t.Errorf("experiment %q (%s) missing from DESIGN.md's index", e.Name, e.ID)
		}
		delete(documented, e.Name)
	}
	for name := range documented {
		t.Errorf("DESIGN.md references unregistered experiment %q", name)
	}

	// Every registered ID must appear as a table row "| Exx |" (the
	// document drops the zero padding on single digits: E1 vs E01).
	for _, e := range All() {
		id := strings.TrimPrefix(e.ID, "E0")
		if id == e.ID {
			id = strings.TrimPrefix(e.ID, "E")
		}
		if !strings.Contains(doc, "| E"+id+" |") {
			t.Errorf("DESIGN.md has no row for experiment %s (%s)", e.ID, e.Name)
		}
	}
}
