package figures

import (
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

// deployUniform is shorthand for a uniform deployment on the unit torus.
func deployUniform(profile sensor.Profile, n int, r *rng.PCG) (*sensor.Network, error) {
	return deploy.Uniform(geom.UnitTorus, profile, n, r)
}

// vec is shorthand for geom.V.
func vec(x, y float64) geom.Vec { return geom.V(x, y) }

// wilson returns the 95% Wilson interval for successes/n, swallowing the
// impossible z-validation error (Z95 is a fixed valid constant).
func wilson(successes, n int) (lo, hi float64) {
	lo, hi, _ = stats.WilsonInterval(successes, n, stats.Z95)
	return lo, hi
}
