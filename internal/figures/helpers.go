package figures

import (
	"context"
	"path/filepath"

	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

// deployUniform is shorthand for a uniform deployment on the unit torus.
func deployUniform(profile sensor.Profile, n int, r *rng.PCG) (*sensor.Network, error) {
	return deploy.Uniform(geom.UnitTorus, profile, n, r)
}

// vec is shorthand for geom.V.
func vec(x, y float64) geom.Vec { return geom.V(x, y) }

// wilson returns the 95% Wilson interval for successes/n, swallowing the
// impossible z-validation error (Z95 is a fixed valid constant).
func wilson(successes, n int) (lo, hi float64) {
	lo, hi, _ = stats.WilsonInterval(successes, n, stats.Z95)
	return lo, hi
}

// runGrid routes a grid experiment through the checkpoint layer when
// Options.CheckpointDir is set. cell must uniquely name the experiment
// cell (it becomes the journal file name); results are bit-identical
// either way.
func runGrid(opts Options, cell string, cfg experiment.Config, gridSide, trials int, seed uint64) (experiment.GridOutcome, error) {
	if opts.CheckpointDir == "" {
		return experiment.RunGrid(cfg, gridSide, trials, opts.Parallelism, seed)
	}
	path := filepath.Join(opts.CheckpointDir, cell+".jsonl")
	return experiment.RunGridCheckpoint(context.Background(), path, cfg, gridSide, trials, opts.Parallelism, seed)
}

// runPoints is runGrid's counterpart for point experiments.
func runPoints(opts Options, cell string, cfg experiment.Config, pointsPerTrial, trials int, seed uint64) (experiment.PointOutcome, error) {
	if opts.CheckpointDir == "" {
		return experiment.RunPoints(cfg, pointsPerTrial, trials, opts.Parallelism, seed)
	}
	path := filepath.Join(opts.CheckpointDir, cell+".jsonl")
	return experiment.RunPointsCheckpoint(context.Background(), path, cfg, pointsPerTrial, trials, opts.Parallelism, seed)
}

// runPointsThetas is runPoints for a whole θ-list at once: one
// deployment, spatial index, and candidate gather per trial serves every
// θ (core.MultiChecker), and outcome k is bit-identical to runPoints
// with cfg.Theta = thetas[k] under the same seed.
func runPointsThetas(opts Options, cell string, cfg experiment.Config, thetas []float64, pointsPerTrial, trials int, seed uint64) ([]experiment.PointOutcome, error) {
	if opts.CheckpointDir == "" {
		return experiment.RunPointsThetas(cfg, thetas, pointsPerTrial, trials, opts.Parallelism, seed)
	}
	path := filepath.Join(opts.CheckpointDir, cell+".jsonl")
	return experiment.RunPointsThetasCheckpoint(context.Background(), path, cfg, thetas, pointsPerTrial, trials, opts.Parallelism, seed)
}
