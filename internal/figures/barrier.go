package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/barrier"
	"fullview/internal/core"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "barrier",
		ID:          "E11",
		Description: "Extension: full-view barrier coverage vs deployment density",
		Run:         runBarrier,
	})
}

// runBarrier explores the paper's future-work extension (E11): how many
// uniformly deployed cameras does it take to full-view cover a belt
// barrier across the region? The sweep reports the covered fraction of
// the barrier and the probability the whole barrier is covered.
func runBarrier(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		return err
	}
	line := barrier.Horizontal(0.5)
	spacing := 0.02
	ns := pick(opts, []int{500, 1000, 2000, 4000, 8000}, []int{300, 800})
	trials := opts.trials(60, 10)

	table := report.NewTable(
		fmt.Sprintf("Barrier full-view coverage — horizontal belt, θ = π/4, r = 0.15, φ = π/2, %d trials", trials),
		"n", "mean covered fraction", "mean weak fraction", "P(barrier covered)",
	)
	for ci, n := range ns {
		type trialOut struct {
			fullFrac, weakFrac float64
			covered            bool
		}
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(ci+79)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				net, err := deployUniform(profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				checker, err := core.NewChecker(net, theta)
				if err != nil {
					return trialOut{}, err
				}
				s, err := barrier.Survey(checker, line, spacing)
				if err != nil {
					return trialOut{}, err
				}
				return trialOut{
					fullFrac: s.FullViewFraction(),
					weakFrac: s.WeakFraction(),
					covered:  s.Covered,
				}, nil
			})
		if err != nil {
			return err
		}
		var covered stats.Counter
		full := make([]float64, 0, len(results))
		weak := make([]float64, 0, len(results))
		for _, tr := range results {
			covered.Add(tr.covered)
			full = append(full, tr.fullFrac)
			weak = append(weak, tr.weakFrac)
		}
		if err := table.AddRow(
			report.I(n),
			report.F4(stats.Summarize(full).Mean),
			report.F4(stats.Summarize(weak).Mean),
			report.F4(covered.Fraction()),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
