package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/lifetime"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "dutycycle",
		ID:          "E16",
		Description: "Duty cycling and lifetime: awake probability p behaves like n→n·p",
		Run:         runDutyCycle,
	})
}

// runDutyCycle operationalises the sleep parameter p that Section VII-B
// imports from Kumar et al. (E16): a duty-cycled network with awake
// probability p should match the analytic point probability of a full
// deployment of n·p sensors, and exponential battery failures give the
// network a measurable full-view coverage lifetime.
func runDutyCycle(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 3
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		return err
	}
	n := pick(opts, 1500, 600)
	trials := opts.trials(60, 10)
	gridSide := pick(opts, 25, 12)

	points, err := deploy.GridPoints(geom.UnitTorus, gridSide)
	if err != nil {
		return err
	}

	duty := report.NewTable(
		fmt.Sprintf("Duty cycling — n = %d, θ = π/3, %d trials per p", n, trials),
		"p", "simulated P(necessary)", "analytic at n*p", "simulated P(full-view)",
	)
	for pi, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		type trialOut struct{ nec, fv float64 }
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(pi+151)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				full, err := deploy.Uniform(geom.UnitTorus, profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				awake, err := lifetime.SampleAwake(full, p, r)
				if err != nil {
					return trialOut{}, err
				}
				checker, err := core.NewChecker(awake, theta)
				if err != nil {
					return trialOut{}, err
				}
				s := checker.SurveyRegion(points)
				return trialOut{nec: s.NecessaryFraction(), fv: s.FullViewFraction()}, nil
			})
		if err != nil {
			return err
		}
		var nec, fv []float64
		for _, tr := range results {
			nec = append(nec, tr.nec)
			fv = append(fv, tr.fv)
		}
		reducedN := int(math.Round(p * float64(n)))
		fail, err := analytic.UniformNecessaryFailure(profile, reducedN, theta)
		if err != nil {
			return err
		}
		if err := duty.AddRow(
			report.F4(p),
			report.F4(stats.Summarize(nec).Mean),
			report.F4(1-fail),
			report.F4(stats.Summarize(fv).Mean),
		); err != nil {
			return err
		}
	}
	if _, err := duty.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	// Coverage lifetime under exponential battery failures.
	life := report.NewTable(
		fmt.Sprintf("Coverage lifetime — exponential failures (mean 10), threshold 90%%, %d trials", trials),
		"n", "mean lifetime", "min", "max",
	)
	for ci, nn := range pick(opts, []int{2000, 4000, 8000}, []int{1200, 2400}) {
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(ci+173)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (float64, error) {
				net, err := deploy.Uniform(geom.UnitTorus, profile, nn, r)
				if err != nil {
					return 0, err
				}
				fs, err := lifetime.NewFailureSchedule(net, 10, r)
				if err != nil {
					return 0, err
				}
				return fs.CoverageLifetime(theta, points, 0.9)
			})
		if err != nil {
			return err
		}
		s := stats.Summarize(results)
		if err := life.AddRow(
			report.I(nn), report.F4(s.Mean), report.F4(s.Min), report.F4(s.Max),
		); err != nil {
			return err
		}
	}
	_, err = life.WriteTo(w)
	return err
}
