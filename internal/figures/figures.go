// Package figures regenerates every table and figure of the paper's
// evaluation, plus the validation experiments DESIGN.md enumerates
// (E1–E18). Each experiment builds report tables from the analytic
// formulas and/or Monte-Carlo runs; cmd/fvcbench and the repository
// benchmarks are thin wrappers over this package.
package figures

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrUnknownExperiment reports a name with no registered experiment.
var ErrUnknownExperiment = errors.New("figures: unknown experiment")

// Options tunes an experiment run.
type Options struct {
	// Seed is the master RNG seed (default 2012, the paper's year).
	Seed uint64
	// Trials overrides the per-cell Monte-Carlo trial count when > 0.
	Trials int
	// Parallelism caps worker goroutines (GOMAXPROCS when ≤ 0).
	Parallelism int
	// Quick shrinks population sizes and trial counts so a full pass
	// finishes in seconds; used by CI and the benchmark harness.
	Quick bool
	// CheckpointDir, when non-empty, journals every completed
	// Monte-Carlo trial of the grid/point experiments to
	// "<CheckpointDir>/<cell>.jsonl" and resumes from those journals on
	// restart, so a killed `fvcbench` run re-executes only unfinished
	// trials. Results are bit-identical to an uncheckpointed run.
	CheckpointDir string
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 2012
	}
	return o
}

// trials picks the trial count: explicit override, else quick/full
// defaults.
func (o Options) trials(full, quick int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return quick
	}
	return full
}

// pick returns full or quick depending on Options.Quick; used for
// population sizes and sweep lengths.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	// Name is the CLI subcommand (e.g. "fig7").
	Name string
	// ID is the DESIGN.md experiment id (e.g. "E1").
	ID string
	// Description is a one-line summary.
	Description string
	// Run executes the experiment and writes its tables to w.
	Run func(w io.Writer, opts Options) error
}

// registry holds all experiments keyed by name.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.Name] = e
}

// Lookup returns the experiment registered under name.
func Lookup(name string) (Experiment, error) {
	e, ok := registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, name)
	}
	return e, nil
}

// All returns every registered experiment sorted by ID then name.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RunAll executes every experiment in ID order, separating outputs with
// a banner line.
func RunAll(w io.Writer, opts Options) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "=== %s %s — %s ===\n", e.ID, e.Name, e.Description); err != nil {
			return err
		}
		if err := e.Run(w, opts); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
