package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "onecov",
		ID:          "E06",
		Description: "Equation 19: θ = π degeneracy to 1-coverage, analytic and simulated",
		Run:         runOneCov,
	})
}

// runOneCov validates Section VII-A (E6). Analytically, s_Nc(n, π) must
// equal the 1-coverage critical sensing area (ln n + ln ln n)/n. In
// simulation, at θ = π the necessary condition degenerates to plain
// 1-coverage, so deploying q·CSA should 1-cover the whole grid for q > 1
// and fail for q < 1.
func runOneCov(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	analytical := report.NewTable(
		"Equation 19 — θ = π degeneracy (analytic)",
		"n", "s_Nc(n, π)", "(ln n + ln ln n)/n", "relative diff",
	)
	for _, n := range []int{100, 1000, 10000, 100000} {
		nec, err := analytic.CSANecessary(n, math.Pi)
		if err != nil {
			return err
		}
		one, err := analytic.OneCoverageCSA(n)
		if err != nil {
			return err
		}
		if err := analytical.AddRow(
			report.I(n), report.F(nec), report.F(one),
			report.F(math.Abs(nec-one)/one),
		); err != nil {
			return err
		}
	}
	if _, err := analytical.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	base, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{200, 400, 800}, []int{100, 200})
	trials := opts.trials(60, 8)
	simulated := report.NewTable(
		fmt.Sprintf("θ = π simulation — P(grid fully 1-covered), %d trials/cell", trials),
		"n", "q", "P(grid 1-covered)", "min covering count (mean frac)",
	)
	for ci, n := range ns {
		csa, err := analytic.OneCoverageCSA(n)
		if err != nil {
			return err
		}
		for qi, q := range []float64{0.5, 2.0} {
			profile, err := base.ScaleToArea(q * csa)
			if err != nil {
				return err
			}
			cfg := experiment.Config{N: n, Theta: math.Pi, Profile: profile}
			out, err := runGrid(opts, fmt.Sprintf("onecov-n%d-q%d", n, qi), cfg, 0, trials,
				rng.Mix64(opts.Seed^uint64(ci*10+qi+3)))
			if err != nil {
				return err
			}
			// At θ = π the necessary condition is exactly 1-coverage.
			if err := simulated.AddRow(
				report.I(n), report.F4(q),
				report.F4(out.AllNecessary.Fraction()),
				report.F4(out.NecessaryFraction.Mean),
			); err != nil {
				return err
			}
		}
	}
	_, err = simulated.WriteTo(w)
	return err
}
