package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "gap",
		ID:          "E09",
		Description: "Section VI-C / Figure 9: the gap between necessary and sufficient conditions",
		Run:         runGap,
	})
}

// runGap quantifies Section VI-C (E9): between s_Nc and s_Sc coverage is
// genuinely random. The table sweeps the weighted sensing area from
// 0.5·s_Nc to 1.5·s_Sc and reports, per point, how often the necessary
// condition holds without full-view coverage (Figure 9 left — the
// necessary condition is not sufficient) and how often full-view
// coverage holds without the sufficient condition (Figure 9 right — the
// sufficient condition is not necessary).
func runGap(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	// The area schedule is anchored at θ = π/4 (the paper's running
	// choice); the flanking angles show how the condition gap widens as θ
	// shrinks. All three θ are diagnosed from the same deployments and
	// candidate gathers (core.MultiChecker via RunPointsThetas).
	const anchorTheta = math.Pi / 4
	thetas := []float64{math.Pi / 6, anchorTheta, math.Pi / 3}
	n := pick(opts, 800, 300)
	trials := opts.trials(120, 15)
	pointsPerTrial := pick(opts, 60, 25)

	nec, err := analytic.CSANecessary(n, anchorTheta)
	if err != nil {
		return err
	}
	suf, err := analytic.CSASufficient(n, anchorTheta)
	if err != nil {
		return err
	}
	base, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return err
	}

	table := report.NewTable(
		fmt.Sprintf("Section VI-C — condition gap per point (n = %d, θ ∈ {π/6, π/4, π/3}; at θ = π/4: s_Nc = %s, s_Sc = %s)",
			n, report.F(nec), report.F(suf)),
		"s_c", "s_c/s_Nc", "θ", "P(nec)", "P(full-view)", "P(suf)", "P(nec & !fv)", "P(fv & !suf)",
	)
	areas := []float64{0.5 * nec, nec, 0.5 * (nec + suf), suf, 1.5 * suf}
	for ai, sc := range areas {
		profile, err := base.ScaleToArea(sc)
		if err != nil {
			return err
		}
		cfg := experiment.Config{N: n, Profile: profile}
		outs, err := runPointsThetas(opts, fmt.Sprintf("gap-a%d", ai), cfg, thetas, pointsPerTrial, trials,
			rng.Mix64(opts.Seed^uint64(ai+53)))
		if err != nil {
			return err
		}
		for ti, theta := range thetas {
			out := outs[ti]
			if err := table.AddRow(
				report.F(sc), report.F4(sc/nec), report.F4(theta),
				report.F4(out.Necessary.Fraction()),
				report.F4(out.FullView.Fraction()),
				report.F4(out.Sufficient.Fraction()),
				report.F4(out.NecessaryNotFullView.Fraction()),
				report.F4(out.FullViewNotSufficient.Fraction()),
			); err != nil {
				return err
			}
		}
	}
	_, err = table.WriteTo(w)
	return err
}
