package figures

import (
	"errors"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Seed: 7, Quick: true}
}

func runByName(t *testing.T, name string) string {
	t.Helper()
	e, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := e.Run(&b, quickOpts()); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return b.String()
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("error = %v, want ErrUnknownExperiment", err)
	}
}

func TestAllRegistered(t *testing.T) {
	all := All()
	want := []string{"fig7", "fig8", "thm1", "thm2", "poisson", "onecov",
		"kcov", "area", "gap", "pointprob", "barrier", "probsense",
		"construct", "fault", "orientopt", "dutycycle", "schedule", "hetcsa",
		"thetasweep"}
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	// All() sorts by ID; E01..E12 must appear in order.
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, name)
		}
		if all[i].ID == "" || all[i].Description == "" || all[i].Run == nil {
			t.Errorf("experiment %s incompletely registered", name)
		}
	}
}

func TestFig7Output(t *testing.T) {
	out := runByName(t, "fig7")
	for _, want := range []string{"Figure 7", "s_Nc", "s_Sc", "0.1000", "0.5000", "necessary", "sufficient"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q", want)
		}
	}
}

func TestFig8Output(t *testing.T) {
	out := runByName(t, "fig8")
	for _, want := range []string{"Figure 8", "100", "10000", "s_Nc", "s_Sc"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 output missing %q", want)
		}
	}
}

func TestThm1Output(t *testing.T) {
	out := runByName(t, "thm1")
	for _, want := range []string{"Theorem 1", "P(fail H_N)", "0.5000", "2.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("thm1 output missing %q", want)
		}
	}
}

func TestThm2Output(t *testing.T) {
	out := runByName(t, "thm2")
	for _, want := range []string{"Theorem 2", "P(fail H_S)", "P(fail full-view)"} {
		if !strings.Contains(out, want) {
			t.Errorf("thm2 output missing %q", want)
		}
	}
}

func TestPoissonOutput(t *testing.T) {
	out := runByName(t, "poisson")
	for _, want := range []string{"Theorems 3–4", "P_N analytic", "P_S simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("poisson output missing %q", want)
		}
	}
}

func TestOneCovOutput(t *testing.T) {
	out := runByName(t, "onecov")
	for _, want := range []string{"Equation 19", "relative diff", "P(grid 1-covered)"} {
		if !strings.Contains(out, want) {
			t.Errorf("onecov output missing %q", want)
		}
	}
}

func TestKCovOutput(t *testing.T) {
	out := runByName(t, "kcov")
	for _, want := range []string{"Section VII-B", "s_Nc/s_K", "P(k-covered)"} {
		if !strings.Contains(out, want) {
			t.Errorf("kcov output missing %q", want)
		}
	}
}

func TestAreaOutput(t *testing.T) {
	out := runByName(t, "area")
	for _, want := range []string{"Section VI-A", "long-thin", "short-wide", "mixture"} {
		if !strings.Contains(out, want) {
			t.Errorf("area output missing %q", want)
		}
	}
}

func TestGapOutput(t *testing.T) {
	out := runByName(t, "gap")
	for _, want := range []string{"Section VI-C", "P(nec & !fv)", "P(fv & !suf)"} {
		if !strings.Contains(out, want) {
			t.Errorf("gap output missing %q", want)
		}
	}
}

func TestPointProbOutput(t *testing.T) {
	out := runByName(t, "pointprob")
	for _, want := range []string{"Equations 2 & 13", "1-P(F_N) analytic", "P(suf) simulated"} {
		if !strings.Contains(out, want) {
			t.Errorf("pointprob output missing %q", want)
		}
	}
}

func TestBarrierOutput(t *testing.T) {
	out := runByName(t, "barrier")
	for _, want := range []string{"Barrier full-view coverage", "P(barrier covered)"} {
		if !strings.Contains(out, want) {
			t.Errorf("barrier output missing %q", want)
		}
	}
}

func TestProbSenseOutput(t *testing.T) {
	out := runByName(t, "probsense")
	for _, want := range []string{"Probabilistic sensing", "binary (paper model)", "λ=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("probsense output missing %q", want)
		}
	}
}

func TestConstructOutput(t *testing.T) {
	out := runByName(t, "construct")
	for _, want := range []string{"Deterministic rings", "random n for same s", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("construct output missing %q", want)
		}
	}
}

func TestFaultOutput(t *testing.T) {
	out := runByName(t, "fault")
	for _, want := range []string{"Full-view multiplicity", "P(tolerate 1 loss)", "P(tolerate 3 losses)"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault output missing %q", want)
		}
	}
}

func TestOrientOptOutput(t *testing.T) {
	out := runByName(t, "orientopt")
	for _, want := range []string{"Random vs optimized aiming", "gain", "mean re-aims"} {
		if !strings.Contains(out, want) {
			t.Errorf("orientopt output missing %q", want)
		}
	}
}

func TestDutyCycleOutput(t *testing.T) {
	out := runByName(t, "dutycycle")
	for _, want := range []string{"Duty cycling", "analytic at n*p", "Coverage lifetime"} {
		if !strings.Contains(out, want) {
			t.Errorf("dutycycle output missing %q", want)
		}
	}
}

func TestScheduleOutput(t *testing.T) {
	out := runByName(t, "schedule")
	for _, want := range []string{"Activation scheduling", "awake fraction", "lifetime multiplier"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule output missing %q", want)
		}
	}
}

func TestHetCSAOutput(t *testing.T) {
	out := runByName(t, "hetcsa")
	for _, want := range []string{"Heterogeneity and the CSA", "homogeneous", "3 groups (mixed shapes)", "weighted sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("hetcsa output missing %q", want)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll covers every experiment; skipped in -short")
	}
	var b strings.Builder
	if err := RunAll(&b, quickOpts()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+" "+e.Name) {
			t.Errorf("RunAll output missing banner for %s", e.Name)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 2012 {
		t.Errorf("default seed = %d", o.Seed)
	}
	if got := (Options{Trials: 5}).trials(100, 10); got != 5 {
		t.Errorf("explicit trials = %d", got)
	}
	if got := (Options{Quick: true}).trials(100, 10); got != 10 {
		t.Errorf("quick trials = %d", got)
	}
	if got := (Options{}).trials(100, 10); got != 100 {
		t.Errorf("full trials = %d", got)
	}
	if got := pick(Options{Quick: true}, 1, 2); got != 2 {
		t.Errorf("pick quick = %d", got)
	}
	if got := pick(Options{}, 1, 2); got != 1 {
		t.Errorf("pick full = %d", got)
	}
}

// TestDeterministicOutput pins reproducibility across runs: identical
// options must render byte-identical tables.
func TestDeterministicOutput(t *testing.T) {
	a := runByName(t, "gap")
	b := runByName(t, "gap")
	if a != b {
		t.Error("gap experiment output differs between identical runs")
	}
}
