package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "fault",
		ID:          "E14",
		Description: "Fault tolerance: full-view multiplicity vs deployment density",
		Run:         runFault,
	})
}

// runFault studies the fault-tolerance extension (E14): the full-view
// multiplicity of a point is the number of camera failures it survives
// plus one. The sweep shows how much density buys each extra level of
// tolerance — the full-view analogue of the k-coverage robustness the
// paper's introduction motivates.
func runFault(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 4
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{1000, 2000, 4000, 8000}, []int{600, 1500})
	trials := opts.trials(40, 8)
	gridSide := pick(opts, 30, 15)

	grid, err := deploy.GridPoints(geom.UnitTorus, gridSide)
	if err != nil {
		return err
	}
	table := report.NewTable(
		fmt.Sprintf("Full-view multiplicity — θ = π/4, r = 0.15, φ = π/2, %d trials × %d grid",
			trials, len(grid)),
		"n", "mean multiplicity", "min multiplicity", "P(tolerate 1 loss)", "P(tolerate 3 losses)",
	)
	for ci, n := range ns {
		type trialOut struct {
			mean       float64
			min        int
			tol1, tol3 float64
		}
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(ci+113)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				net, err := deploy.Uniform(geom.UnitTorus, profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				checker, err := core.NewChecker(net, theta)
				if err != nil {
					return trialOut{}, err
				}
				ms := checker.SurveyMultiplicity(grid)
				return trialOut{
					mean: ms.Mean,
					min:  ms.Min,
					tol1: ms.FaultTolerantFraction(1),
					tol3: ms.FaultTolerantFraction(3),
				}, nil
			})
		if err != nil {
			return err
		}
		var means, tol1s, tol3s []float64
		minAll := -1
		for _, tr := range results {
			means = append(means, tr.mean)
			tol1s = append(tol1s, tr.tol1)
			tol3s = append(tol3s, tr.tol3)
			if minAll < 0 || tr.min < minAll {
				minAll = tr.min
			}
		}
		if err := table.AddRow(
			report.I(n),
			report.F4(stats.Summarize(means).Mean),
			report.I(minAll),
			report.F4(stats.Summarize(tol1s).Mean),
			report.F4(stats.Summarize(tol3s).Mean),
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
