package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/geom"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/schedule"
	"fullview/internal/sensor"
	"fullview/internal/stats"
)

func init() {
	register(Experiment{
		Name:        "schedule",
		ID:          "E17",
		Description: "Activation scheduling: minimal covers and disjoint shifts vs deployment size",
		Run:         runSchedule,
	})
}

// runSchedule measures how much an over-provisioned random deployment
// can save by activation scheduling (E17): the greedy minimal cover size
// (cameras that must be awake for guaranteed full-view coverage of the
// grid) and the number of disjoint shifts (the lifetime multiplier when
// shifts rotate).
func runSchedule(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	theta := math.Pi / 2
	profile, err := sensor.Homogeneous(0.25, 2*math.Pi/3)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{1000, 2000, 4000, 8000}, []int{800, 1600})
	trials := opts.trials(15, 4)
	gridSide := pick(opts, 12, 9)

	table := report.NewTable(
		fmt.Sprintf("Activation scheduling — θ = π/2, r = 0.25, φ = 2π/3, grid %d×%d, %d trials",
			gridSide, gridSide, trials),
		"n", "mean cover size", "awake fraction", "mean shifts", "lifetime multiplier",
	)
	for ci, n := range ns {
		type trialOut struct {
			cover  int
			shifts int
		}
		results, err := experiment.Run(rng.Mix64(opts.Seed^uint64(ci+191)), trials, opts.Parallelism,
			func(_ int, r *rng.PCG) (trialOut, error) {
				net, err := deploy.Uniform(geom.UnitTorus, profile, n, r)
				if err != nil {
					return trialOut{}, err
				}
				cover, err := schedule.MinimalCover(net, theta, gridSide)
				if err != nil {
					return trialOut{}, err
				}
				shifts, err := schedule.Shifts(net, theta, gridSide)
				if err != nil {
					return trialOut{}, err
				}
				return trialOut{cover: len(cover), shifts: len(shifts)}, nil
			})
		if err != nil {
			return err
		}
		var covers, shifts []float64
		for _, tr := range results {
			covers = append(covers, float64(tr.cover))
			shifts = append(shifts, float64(tr.shifts))
		}
		meanCover := stats.Summarize(covers).Mean
		meanShifts := stats.Summarize(shifts).Mean
		if err := table.AddRow(
			report.I(n),
			report.F4(meanCover),
			report.F4(meanCover/float64(n)),
			report.F4(meanShifts),
			report.F4(meanShifts), // one shift awake at a time ⇒ lifetime ×shifts
		); err != nil {
			return err
		}
	}
	_, err = table.WriteTo(w)
	return err
}
