package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/experiment"
	"fullview/internal/report"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func init() {
	register(Experiment{
		Name:        "kcov",
		ID:          "E07",
		Description: "Section VII-B: full-view coverage vs k-coverage with k = ⌈π/θ⌉",
		Run:         runKCov,
	})
}

// runKCov reproduces the Section VII-B comparison (E7). Analytically,
// s_Nc(n) ≥ s_K(n) for k = ⌈π/θ⌉ at every n and θ. In simulation,
// deploying exactly s_Nc(n) of sensing area yields near-total k-coverage
// while the (harder) necessary and full-view conditions lag behind —
// full-view coverage demands more than k-coverage.
func runKCov(w io.Writer, opts Options) error {
	opts = opts.withDefaults()
	analytical := report.NewTable(
		"Section VII-B — s_Nc(n) vs s_K(n), k = ⌈π/θ⌉ (analytic)",
		"n", "theta/pi", "k", "s_Nc(n)", "s_K(n)", "s_Nc/s_K",
	)
	for _, n := range []int{100, 1000, 10000} {
		for _, t := range []float64{0.1, 0.25, 0.5} {
			theta := t * math.Pi
			k := analytic.KNecessary(theta)
			nec, err := analytic.CSANecessary(n, theta)
			if err != nil {
				return err
			}
			sk, err := analytic.KCoverageSufficientArea(n, k)
			if err != nil {
				return err
			}
			if nec < sk {
				return fmt.Errorf("kcov: s_Nc(%d, %.2fπ) = %v below s_K = %v", n, t, nec, sk)
			}
			if err := analytical.AddRow(
				report.I(n), report.F4(t), report.I(k),
				report.F(nec), report.F(sk), report.F4(nec/sk),
			); err != nil {
				return err
			}
		}
	}
	if _, err := analytical.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	theta := math.Pi / 4
	k := analytic.KNecessary(theta)
	base, err := sensor.Homogeneous(0.1, math.Pi/2)
	if err != nil {
		return err
	}
	ns := pick(opts, []int{400, 800, 1600}, []int{200, 400})
	trials := opts.trials(100, 12)
	pointsPerTrial := pick(opts, 60, 25)
	simulated := report.NewTable(
		fmt.Sprintf("Simulation at s_c = s_Nc(n), θ = π/4, k = %d — point fractions", k),
		"n", "P(k-covered)", "P(necessary)", "P(full-view)",
	)
	for ci, n := range ns {
		csa, err := analytic.CSANecessary(n, theta)
		if err != nil {
			return err
		}
		profile, err := base.ScaleToArea(csa)
		if err != nil {
			return err
		}
		cfg := experiment.Config{N: n, Theta: theta, Profile: profile, KTarget: k}
		out, err := runPoints(opts, fmt.Sprintf("kcov-n%d", n), cfg, pointsPerTrial, trials,
			rng.Mix64(opts.Seed^uint64(ci+31)))
		if err != nil {
			return err
		}
		if out.KCovered.Successes() < out.Necessary.Successes() {
			return fmt.Errorf("kcov: necessary points (%d) exceed k-covered points (%d)",
				out.Necessary.Successes(), out.KCovered.Successes())
		}
		if err := simulated.AddRow(
			report.I(n),
			report.F4(out.KCovered.Fraction()),
			report.F4(out.Necessary.Fraction()),
			report.F4(out.FullView.Fraction()),
		); err != nil {
			return err
		}
	}
	_, err = simulated.WriteTo(w)
	return err
}
