package figures

import (
	"fmt"
	"io"
	"math"

	"fullview/internal/analytic"
	"fullview/internal/report"
)

func init() {
	register(Experiment{
		Name:        "fig7",
		ID:          "E01",
		Description: "Figure 7: critical sensing areas vs effective angle θ (n = 1000)",
		Run:         runFig7,
	})
}

// runFig7 reproduces Figure 7: s_Nc and s_Sc for θ from 0.1π to 0.5π at
// n = 1000, plus the 1/θ proportionality diagnostic the paper discusses
// in Section VI-B (θ·s_c(n) should be nearly constant).
func runFig7(w io.Writer, opts Options) error {
	const n = 1000
	table := report.NewTable(
		fmt.Sprintf("Figure 7 — CSA vs θ (n = %d)", n),
		"theta/pi", "s_Nc(n)", "s_Sc(n)", "ratio s_Sc/s_Nc", "theta*s_Nc",
	)
	var (
		thetas  []float64
		necVals []float64
		sufVals []float64
	)
	for t := 0.10; t <= 0.501; t += 0.05 {
		theta := t * math.Pi
		nec, err := analytic.CSANecessary(n, theta)
		if err != nil {
			return err
		}
		suf, err := analytic.CSASufficient(n, theta)
		if err != nil {
			return err
		}
		thetas = append(thetas, t)
		necVals = append(necVals, nec)
		sufVals = append(sufVals, suf)
		if err := table.AddRow(
			report.F4(t), report.F(nec), report.F(suf),
			report.F4(suf/nec), report.F(theta*nec),
		); err != nil {
			return err
		}
	}
	if _, err := table.WriteTo(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return report.RenderChart(w, "CSA vs θ/π (n = 1000)", []report.Series{
		{Name: "s_Nc (necessary)", X: thetas, Y: necVals},
		{Name: "s_Sc (sufficient)", X: thetas, Y: sufVals},
	}, 60, 16)
}
