package probsense

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestExpDecayValidate(t *testing.T) {
	good := ExpDecay{CertainFraction: 0.5, Decay: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []ExpDecay{
		{CertainFraction: -0.1, Decay: 1},
		{CertainFraction: 1.1, Decay: 1},
		{CertainFraction: 0.5, Decay: 0},
		{CertainFraction: 0.5, Decay: math.Inf(1)},
	}
	for _, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("%+v: error = %v, want ErrBadModel", m, err)
		}
	}
}

func TestExpDecayDetectionProb(t *testing.T) {
	cam := sensor.Camera{Radius: 0.2, Aperture: math.Pi}
	m := ExpDecay{CertainFraction: 0.5, Decay: 2}
	tests := []struct {
		name string
		dist float64
		want float64
	}{
		{name: "inside certain radius", dist: 0.05, want: 1},
		{name: "at certain radius", dist: 0.1, want: 1},
		{name: "halfway through decay", dist: 0.15, want: math.Exp(-1)},
		{name: "at full radius", dist: 0.2, want: math.Exp(-2)},
		{name: "beyond radius", dist: 0.25, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.DetectionProb(cam, tt.dist); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DetectionProb(%v) = %v, want %v", tt.dist, got, tt.want)
			}
		})
	}
}

func TestExpDecayDegenerateCertainFraction(t *testing.T) {
	cam := sensor.Camera{Radius: 0.2, Aperture: math.Pi}
	m := ExpDecay{CertainFraction: 1, Decay: 3}
	if got := m.DetectionProb(cam, 0.2); got != 1 {
		t.Errorf("certain everywhere: DetectionProb at boundary = %v", got)
	}
	if got := m.DetectionProb(cam, 0.21); got != 0 {
		t.Errorf("beyond radius = %v", got)
	}
}

func TestBinaryModel(t *testing.T) {
	cam := sensor.Camera{Radius: 0.2, Aperture: math.Pi}
	var m Binary
	if m.DetectionProb(cam, 0.2) != 1 || m.DetectionProb(cam, 0.0) != 1 {
		t.Error("binary model should detect everywhere inside the radius")
	}
	if m.DetectionProb(cam, 0.200001) != 0 {
		t.Error("binary model should not detect beyond the radius")
	}
}

func evalFor(t *testing.T, cams []sensor.Camera, model Model, theta float64) *Evaluator {
	t.Helper()
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(net, model, theta)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEvaluatorValidation(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(net, Binary{}, 0); !errors.Is(err, ErrBadTheta) {
		t.Errorf("theta 0: error = %v, want ErrBadTheta", err)
	}
	if _, err := NewEvaluator(net, ExpDecay{CertainFraction: 2, Decay: 1}, math.Pi/2); !errors.Is(err, ErrBadModel) {
		t.Errorf("invalid model: error = %v, want ErrBadModel", err)
	}
}

func TestDirectionProbSingleCamera(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Camera due east of p at distance 0.15, looking west.
	cam := sensor.Camera{
		Pos:      geom.V(0.65, 0.5),
		Orient:   math.Pi,
		Radius:   0.2,
		Aperture: math.Pi,
	}
	m := ExpDecay{CertainFraction: 0.5, Decay: 2}
	e := evalFor(t, []sensor.Camera{cam}, m, math.Pi/4)

	// Facing east (toward the camera): viewed direction is 0, within θ.
	want := m.DetectionProb(cam, 0.15)
	if got := e.DirectionProb(p, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("facing camera: prob = %v, want %v", got, want)
	}
	// Facing west: no camera within θ of that direction.
	if got := e.DirectionProb(p, math.Pi); got != 0 {
		t.Errorf("facing away: prob = %v, want 0", got)
	}
}

func TestDirectionProbIndependentCameras(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Two cameras stacked due east, both seeing p frontally.
	cams := []sensor.Camera{
		{Pos: geom.V(0.65, 0.5), Orient: math.Pi, Radius: 0.2, Aperture: math.Pi},
		{Pos: geom.V(0.68, 0.5), Orient: math.Pi, Radius: 0.2, Aperture: math.Pi},
	}
	m := ExpDecay{CertainFraction: 0.5, Decay: 2}
	e := evalFor(t, cams, m, math.Pi/4)
	p1 := m.DetectionProb(cams[0], 0.15)
	p2 := m.DetectionProb(cams[1], 0.18)
	want := 1 - (1-p1)*(1-p2)
	if got := e.DirectionProb(p, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("combined prob = %v, want %v", got, want)
	}
}

func TestDirectionProbRespectsAperture(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Camera east of p but looking north: p is outside its field of view.
	cam := sensor.Camera{
		Pos:      geom.V(0.6, 0.5),
		Orient:   math.Pi / 2,
		Radius:   0.2,
		Aperture: math.Pi / 4,
	}
	e := evalFor(t, []sensor.Camera{cam}, Binary{}, math.Pi)
	if got := e.DirectionProb(p, 0); got != 0 {
		t.Errorf("camera not viewing p should contribute 0, got %v", got)
	}
}

func TestEvaluateProfile(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Cameras surrounding p at the certain radius: every direction safe
	// with probability 1 under Binary and θ=π/2.
	var cams []sensor.Camera
	for i := 0; i < 4; i++ {
		beta := float64(i) * math.Pi / 2
		cams = append(cams, sensor.Camera{
			Pos:      geom.UnitTorus.Translate(p, geom.FromPolar(0.1, beta)),
			Orient:   geom.NormalizeAngle(beta + math.Pi),
			Radius:   0.2,
			Aperture: math.Pi,
		})
	}
	e := evalFor(t, cams, Binary{}, math.Pi/2)
	prof, err := e.Evaluate(p, 360)
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorstProb != 1 || prof.MeanProb != 1 {
		t.Errorf("surrounded point: profile = %+v, want all 1", prof)
	}

	// Remove one side: worst direction drops to 0, mean in (0, 1).
	e2 := evalFor(t, cams[:2], Binary{}, math.Pi/4)
	prof2, err := e2.Evaluate(p, 360)
	if err != nil {
		t.Fatal(err)
	}
	if prof2.WorstProb != 0 {
		t.Errorf("half-covered point worst prob = %v, want 0", prof2.WorstProb)
	}
	if prof2.MeanProb <= 0 || prof2.MeanProb >= 1 {
		t.Errorf("half-covered point mean prob = %v", prof2.MeanProb)
	}
}

func TestEvaluateStepsValidation(t *testing.T) {
	e := evalFor(t, nil, Binary{}, math.Pi/2)
	if _, err := e.Evaluate(geom.V(0.5, 0.5), 3); !errors.Is(err, ErrBadSteps) {
		t.Errorf("error = %v, want ErrBadSteps", err)
	}
}

// TestBinaryModelMatchesCoreChecker ties the extension back to the
// paper's model: under Binary sensing, WorstProb == 1 exactly when the
// core checker declares the point full-view covered (up to direction
// discretisation, which 720 steps makes finer than the test geometry).
func TestBinaryModelMatchesCoreChecker(t *testing.T) {
	profile, err := sensor.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 400, rng.New(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	theta := math.Pi / 3
	checker, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(net, Binary{}, theta)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4, 0)
	agree := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		p := geom.V(r.Float64(), r.Float64())
		prof, err := e.Evaluate(p, 720)
		if err != nil {
			t.Fatal(err)
		}
		if (prof.WorstProb == 1) == checker.FullViewCovered(p) {
			agree++
		}
	}
	// Discretisation can disagree only within ~2π/720 of a gap boundary;
	// demand near-perfect agreement.
	if agree < trials-2 {
		t.Errorf("binary probsense agrees with core checker on %d/%d points", agree, trials)
	}
}
