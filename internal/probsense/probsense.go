// Package probsense extends the binary sector model to probabilistic
// sensing, the second extension the paper's conclusion proposes
// ("extending our results in probabilistic sensing models"): detection
// inside the sensing sector is certain only up to a confident radius and
// decays exponentially beyond it, so full-view coverage becomes a
// probability per facing direction rather than a boolean.
package probsense

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrBadModel = errors.New("probsense: certain radius must be in [0, 1] of the sensing radius and decay must be positive")
	ErrBadTheta = errors.New("probsense: effective angle θ must be in (0, π]")
	ErrBadSteps = errors.New("probsense: direction steps must be at least 4")
)

// Model maps a camera and a target distance to a detection probability.
type Model interface {
	// DetectionProb returns the probability that cam detects a target at
	// the given distance, assuming the target lies inside the camera's
	// angular field of view. Implementations return 0 beyond the sensing
	// radius.
	DetectionProb(cam sensor.Camera, dist float64) float64
}

// ExpDecay is the standard probabilistic sensing model: detection is
// certain within CertainFraction·r and decays as
// exp(−Decay·(d − r_c)/(r − r_c)) between the confident radius r_c and
// the full sensing radius r.
type ExpDecay struct {
	// CertainFraction is r_c/r ∈ [0, 1].
	CertainFraction float64
	// Decay is the exponential rate λ > 0; detection probability at the
	// sector boundary is exp(−Decay).
	Decay float64
}

// Validate checks the model parameters.
func (m ExpDecay) Validate() error {
	if m.CertainFraction < 0 || m.CertainFraction > 1 ||
		!(m.Decay > 0) || math.IsInf(m.Decay, 0) {
		return fmt.Errorf("%w: got %+v", ErrBadModel, m)
	}
	return nil
}

// DetectionProb implements Model.
func (m ExpDecay) DetectionProb(cam sensor.Camera, dist float64) float64 {
	if dist > cam.Radius {
		return 0
	}
	rc := m.CertainFraction * cam.Radius
	if dist <= rc {
		return 1
	}
	span := cam.Radius - rc
	if span == 0 {
		return 0
	}
	return math.Exp(-m.Decay * (dist - rc) / span)
}

// Binary reproduces the paper's binary sector model as a Model:
// detection probability 1 anywhere inside the sector.
type Binary struct{}

// DetectionProb implements Model.
func (Binary) DetectionProb(cam sensor.Camera, dist float64) float64 {
	if dist > cam.Radius {
		return 0
	}
	return 1
}

// Evaluator computes probabilistic full-view coverage for one network.
type Evaluator struct {
	torus   geom.Torus
	cameras []sensor.Camera
	model   Model
	theta   float64
}

// NewEvaluator builds an evaluator over the network's cameras.
func NewEvaluator(net *sensor.Network, model Model, theta float64) (*Evaluator, error) {
	if !(theta > 0) || theta > math.Pi {
		return nil, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if v, ok := model.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return &Evaluator{
		torus:   net.Torus(),
		cameras: net.Cameras(),
		model:   model,
		theta:   theta,
	}, nil
}

// DirectionProb returns the probability that facing direction dir at
// point p is "safe": at least one camera whose viewed direction is
// within θ of dir detects the target. Cameras detect independently, so
// the probability is 1 − Π(1 − p_i).
func (e *Evaluator) DirectionProb(p geom.Vec, dir float64) float64 {
	missAll := 1.0
	for _, cam := range e.cameras {
		d := e.torus.Delta(cam.Pos, p)
		dist := d.Norm()
		if dist > cam.Radius {
			continue
		}
		if dist > 0 && geom.AngularDistance(d.Angle(), cam.Orient) > cam.Aperture/2 {
			continue // outside the camera's field of view
		}
		viewed := e.torus.Delta(p, cam.Pos).Angle()
		if geom.AngularDistance(viewed, dir) > e.theta {
			continue // not a frontal enough viewpoint
		}
		missAll *= 1 - e.model.DetectionProb(cam, dist)
		if missAll == 0 {
			return 1
		}
	}
	return 1 - missAll
}

// PointProfile is the probabilistic full-view diagnosis of a point.
type PointProfile struct {
	// WorstProb is the minimum safe-direction probability over the
	// evaluated directions — the guarantee against an adversarial
	// intruder who knows the layout.
	WorstProb float64
	// WorstDir is a direction attaining WorstProb.
	WorstDir float64
	// MeanProb is the average safe-direction probability — the guarantee
	// against an oblivious intruder.
	MeanProb float64
}

// Evaluate sweeps steps evenly spaced facing directions at p.
func (e *Evaluator) Evaluate(p geom.Vec, steps int) (PointProfile, error) {
	if steps < 4 {
		return PointProfile{}, fmt.Errorf("%w: got %d", ErrBadSteps, steps)
	}
	prof := PointProfile{WorstProb: math.Inf(1)}
	sum := 0.0
	for i := 0; i < steps; i++ {
		dir := geom.TwoPi * float64(i) / float64(steps)
		prob := e.DirectionProb(p, dir)
		sum += prob
		if prob < prof.WorstProb {
			prof.WorstProb = prob
			prof.WorstDir = dir
		}
	}
	prof.MeanProb = sum / float64(steps)
	return prof, nil
}
