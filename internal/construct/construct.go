// Package construct builds *deterministic* deployments with a provable
// full-view coverage guarantee, the counterpart to the paper's random
// deployments (and the spirit of the triangular-lattice construction of
// Wang & Cao [4] that Section VII-C compares against).
//
// The construction tiles the region into square cells and surrounds each
// cell centre with a ring of k = ⌈2π/θ⌉ cameras facing inward. For a
// cell of half-diagonal D and ring radius ρ:
//
//   - every ring camera sees the whole cell when its radius reaches
//     ρ + D and its aperture reaches 2·asin(D/ρ);
//   - for any point Q in the cell, the viewed direction of ring camera i
//     deviates from its nominal bearing by at most asin(D/ρ), so the
//     maximum circular gap between viewed directions is at most
//     2π/k + 2·asin(D/ρ) ≤ θ + θ = 2θ once ρ ≥ D/sin(θ/2) —
//     exactly the full-view condition.
//
// A small safety margin keeps every inequality strict, so the guarantee
// survives floating-point evaluation; the tests verify it over dense
// grids.
package construct

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Validation errors.
var (
	ErrBadTheta = errors.New("construct: effective angle θ must be in (0, π]")
	ErrBadCells = errors.New("construct: cells per side must be positive")
)

// margin keeps the geometric inequalities strictly satisfied.
const margin = 1.05

// Plan is a sized deterministic deployment.
type Plan struct {
	// Theta is the effective angle the plan guarantees.
	Theta float64
	// CellsPerSide is the tiling resolution.
	CellsPerSide int
	// CellSide is the side length of one cell.
	CellSide float64
	// CamerasPerCell is k = ⌈2π/θ⌉, the ring size.
	CamerasPerCell int
	// RingRadius is ρ, the distance from cell centre to each camera.
	RingRadius float64
	// Radius is the sensing radius every camera needs.
	Radius float64
	// Aperture is the angle of view every camera needs.
	Aperture float64
}

// NewPlan sizes a deterministic full-view deployment for torus t with
// effective angle theta and the given tiling resolution.
func NewPlan(t geom.Torus, theta float64, cellsPerSide int) (Plan, error) {
	if !(theta > 0) || theta > math.Pi {
		return Plan{}, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if cellsPerSide <= 0 {
		return Plan{}, fmt.Errorf("%w: got %d", ErrBadCells, cellsPerSide)
	}
	cellSide := t.Side() / float64(cellsPerSide)
	halfDiag := cellSide * math.Sqrt2 / 2
	ring := margin * halfDiag / math.Sin(theta/2)
	aperture := margin * 2 * math.Asin(halfDiag/ring)
	if aperture > geom.TwoPi {
		aperture = geom.TwoPi
	}
	return Plan{
		Theta:          theta,
		CellsPerSide:   cellsPerSide,
		CellSide:       cellSide,
		CamerasPerCell: geom.SectorCount(theta),
		RingRadius:     ring,
		Radius:         margin * (ring + halfDiag),
		Aperture:       aperture,
	}, nil
}

// TotalCameras returns the number of cameras the plan deploys.
func (p Plan) TotalCameras() int {
	return p.CamerasPerCell * p.CellsPerSide * p.CellsPerSide
}

// Density returns cameras per unit area.
func (p Plan) Density() float64 {
	side := p.CellSide * float64(p.CellsPerSide)
	return float64(p.TotalCameras()) / (side * side)
}

// SensingArea returns the per-camera sensing area φ·r²/2 the plan
// demands.
func (p Plan) SensingArea() float64 {
	return p.Aperture * p.Radius * p.Radius / 2
}

// Build places the cameras on torus t: for each cell, CamerasPerCell
// cameras evenly spaced on the ring around the cell centre, oriented at
// the centre. The resulting network full-view covers the whole torus
// with effective angle Theta.
func (p Plan) Build(t geom.Torus) (*sensor.Network, error) {
	centers, err := cellCenters(t, p.CellsPerSide)
	if err != nil {
		return nil, err
	}
	cameras := make([]sensor.Camera, 0, p.TotalCameras())
	for _, c := range centers {
		for i := 0; i < p.CamerasPerCell; i++ {
			bearing := geom.TwoPi * float64(i) / float64(p.CamerasPerCell)
			pos := t.Translate(c, geom.FromPolar(p.RingRadius, bearing))
			cameras = append(cameras, sensor.Camera{
				Pos: pos,
				// Face back toward the cell centre.
				Orient:   geom.NormalizeAngle(bearing + math.Pi),
				Radius:   p.Radius,
				Aperture: p.Aperture,
			})
		}
	}
	return sensor.NewNetwork(t, cameras)
}

func cellCenters(t geom.Torus, cells int) ([]geom.Vec, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadCells, cells)
	}
	step := t.Side() / float64(cells)
	centers := make([]geom.Vec, 0, cells*cells)
	for i := 0; i < cells; i++ {
		for j := 0; j < cells; j++ {
			centers = append(centers, geom.V(
				(float64(i)+0.5)*step,
				(float64(j)+0.5)*step,
			))
		}
	}
	return centers, nil
}
