package construct

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
)

func TestNewPlanValidation(t *testing.T) {
	for _, theta := range []float64{0, -1, math.Pi + 0.1, math.NaN()} {
		if _, err := NewPlan(geom.UnitTorus, theta, 4); !errors.Is(err, ErrBadTheta) {
			t.Errorf("theta %v: error = %v, want ErrBadTheta", theta, err)
		}
	}
	for _, cells := range []int{0, -2} {
		if _, err := NewPlan(geom.UnitTorus, math.Pi/4, cells); !errors.Is(err, ErrBadCells) {
			t.Errorf("cells %d: error = %v, want ErrBadCells", cells, err)
		}
	}
}

func TestPlanGeometry(t *testing.T) {
	plan, err := NewPlan(geom.UnitTorus, math.Pi/4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CamerasPerCell != 8 { // ⌈2π/(π/4)⌉
		t.Errorf("CamerasPerCell = %d, want 8", plan.CamerasPerCell)
	}
	if plan.TotalCameras() != 8*25 {
		t.Errorf("TotalCameras = %d", plan.TotalCameras())
	}
	if plan.CellSide != 0.2 {
		t.Errorf("CellSide = %v", plan.CellSide)
	}
	// The sizing inequalities must hold with margin.
	halfDiag := plan.CellSide * math.Sqrt2 / 2
	if plan.RingRadius <= halfDiag/math.Sin(plan.Theta/2) {
		t.Error("ring radius below the full-view bound")
	}
	if plan.Radius <= plan.RingRadius+halfDiag {
		t.Error("sensing radius below ring + half-diagonal")
	}
	if plan.Aperture <= 2*math.Asin(halfDiag/plan.RingRadius) {
		t.Error("aperture below the visibility bound")
	}
	if plan.Density() != float64(plan.TotalCameras()) {
		t.Errorf("Density on the unit torus = %v, want %v", plan.Density(), plan.TotalCameras())
	}
	if plan.SensingArea() <= 0 {
		t.Error("SensingArea must be positive")
	}
}

// TestBuildGuaranteesFullViewCoverage is the package's core promise: the
// built network full-view covers a dense grid for several θ and tiling
// resolutions.
func TestBuildGuaranteesFullViewCoverage(t *testing.T) {
	cases := []struct {
		theta float64
		cells int
	}{
		{theta: math.Pi / 4, cells: 4},
		{theta: math.Pi / 4, cells: 7},
		{theta: math.Pi / 3, cells: 5},
		{theta: math.Pi / 2, cells: 3},
		{theta: 0.9 * math.Pi, cells: 2},
	}
	for _, tc := range cases {
		plan, err := NewPlan(geom.UnitTorus, tc.theta, tc.cells)
		if err != nil {
			t.Fatalf("θ=%v cells=%d: %v", tc.theta, tc.cells, err)
		}
		net, err := plan.Build(geom.UnitTorus)
		if err != nil {
			t.Fatal(err)
		}
		if net.Len() != plan.TotalCameras() {
			t.Fatalf("built %d cameras, plan says %d", net.Len(), plan.TotalCameras())
		}
		checker, err := core.NewChecker(net, tc.theta)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := deploy.GridPoints(geom.UnitTorus, 40)
		if err != nil {
			t.Fatal(err)
		}
		stats := checker.SurveyRegion(grid)
		if !stats.AllFullView() {
			p, dir, _ := checker.FirstFullViewGap(grid)
			t.Errorf("θ=%v cells=%d: grid not fully covered (%d/%d); gap at %v facing %v",
				tc.theta, tc.cells, stats.FullView, stats.Points, p, dir)
		}
	}
}

// TestBuildCoversRandomPoints probes off-grid points too.
func TestBuildCoversRandomPoints(t *testing.T) {
	plan, err := NewPlan(geom.UnitTorus, math.Pi/4, 6)
	if err != nil {
		t.Fatal(err)
	}
	net, err := plan.Build(geom.UnitTorus)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic pseudo-random walk over the region.
	x, y := 0.123, 0.456
	for i := 0; i < 500; i++ {
		x = math.Mod(x+0.137, 1)
		y = math.Mod(y+0.719, 1)
		if !checker.FullViewCovered(geom.V(x, y)) {
			t.Fatalf("point (%v, %v) not covered by deterministic plan", x, y)
		}
	}
}

func TestPlanScalesWithCells(t *testing.T) {
	coarse, err := NewPlan(geom.UnitTorus, math.Pi/4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewPlan(geom.UnitTorus, math.Pi/4, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Finer tiling: more cameras, each individually weaker (smaller
	// radius and sensing area).
	if fine.TotalCameras() <= coarse.TotalCameras() {
		t.Error("finer tiling should need more cameras")
	}
	if fine.Radius >= coarse.Radius {
		t.Error("finer tiling should need smaller radii")
	}
	if fine.SensingArea() >= coarse.SensingArea() {
		t.Error("finer tiling should need smaller sensing areas")
	}
}

func TestPlanOnScaledTorus(t *testing.T) {
	tor, err := geom.NewTorus(3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tor, math.Pi/3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.CellSide-0.5) > 1e-12 {
		t.Errorf("CellSide = %v, want 0.5", plan.CellSide)
	}
	net, err := plan.Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := deploy.GridPoints(tor, 30)
	if err != nil {
		t.Fatal(err)
	}
	if stats := checker.SurveyRegion(grid); !stats.AllFullView() {
		t.Errorf("scaled torus not fully covered: %d/%d", stats.FullView, stats.Points)
	}
}
