package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the journal loader: it must never
// panic, and whatever it accepts must re-serialize into an image that
// parses back to the same header and record set (load/store round-trip).
func FuzzParse(f *testing.F) {
	valid := "{\"version\":1,\"kind\":\"test/grid\",\"seed\":2012,\"trials\":3,\"params\":\"n=5\"}\n" +
		"{\"trial\":0,\"result\":{\"hits\":3}}\n" +
		"{\"trial\":2,\"result\":[1,2,3]}\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)-7])) // torn final line
	f.Add([]byte("{\"version\":1,\"kind\":\"k\",\"seed\":0,\"trials\":1}\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(""))
	f.Add([]byte("{\"version\":99}\n"))
	f.Add([]byte("{\"version\":1,\"kind\":\"k\",\"seed\":0,\"trials\":1}\n{\"trial\":0,\"result\":1}{\"trial\":0,\"result\":2}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, results, err := parse(data)
		if err != nil {
			return
		}
		// Accepted journals must round-trip: rebuild the image through the
		// same writer the journal uses and parse it again.
		j := &Journal{header: h, results: results}
		if h.Trials <= 0 {
			// Open would reject this header; parse alone has no floor.
			return
		}
		var buf bytes.Buffer
		if _, err := j.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo on accepted journal: %v", err)
		}
		h2, results2, err := parse(buf.Bytes())
		if err != nil {
			t.Fatalf("re-parse of serialized journal: %v\nimage:\n%s", err, buf.Bytes())
		}
		if h2 != h {
			t.Fatalf("header round-trip: %+v -> %+v", h, h2)
		}
		// Records outside [0, Trials) are dropped by WriteTo (Open would
		// reject the journal); in-range ones must survive byte-for-byte.
		for trial, raw := range results {
			if trial < 0 || trial >= h.Trials {
				continue
			}
			got, ok := results2[trial]
			if !ok {
				t.Fatalf("trial %d lost in round-trip", trial)
			}
			if !bytes.Equal(got, raw) {
				t.Fatalf("trial %d result changed: %s -> %s", trial, raw, got)
			}
		}
	})
}
