package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testHeader(trials int) Header {
	return Header{Kind: "test/grid", Seed: 2012, Trials: trials, Params: "n=100 theta=0.25pi"}
}

func TestOpenFreshJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(5))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("fresh journal Len = %d", j.Len())
	}
	if got := j.Missing(); len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Errorf("Missing = %v", got)
	}
	// Opening never creates the file; only Record flushes.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("journal file created on Open: %v", err)
	}
}

func TestRecordAndResume(t *testing.T) {
	type result struct {
		Hits int     `json:"hits"`
		Mean float64 `json:"mean"`
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(4))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]result{
		0: {Hits: 3, Mean: 0.1 + 0.2}, // a value whose shortest decimal must round-trip exactly
		2: {Hits: 7, Mean: math.Pi},
	}
	for trial, res := range want {
		if err := j.Record(trial, res); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := Open(path, testHeader(4))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() != 2 {
		t.Fatalf("resumed Len = %d, want 2", resumed.Len())
	}
	if got := resumed.Missing(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Missing = %v, want [1 3]", got)
	}
	for trial, res := range want {
		var got result
		ok, err := resumed.Get(trial, &got)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v, %v", trial, ok, err)
		}
		if got != res {
			t.Errorf("trial %d round-trip = %+v, want %+v", trial, got, res)
		}
	}
	if resumed.Complete() {
		t.Error("Complete with missing trials")
	}
	resumed.Record(1, result{})
	resumed.Record(3, result{})
	if !resumed.Complete() {
		t.Error("not Complete after all trials journaled")
	}
}

func TestOpenMismatchedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, 1); err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]Header{
		"seed":   {Kind: "test/grid", Seed: 99, Trials: 3, Params: "n=100 theta=0.25pi"},
		"trials": {Kind: "test/grid", Seed: 2012, Trials: 4, Params: "n=100 theta=0.25pi"},
		"kind":   {Kind: "test/point", Seed: 2012, Trials: 3, Params: "n=100 theta=0.25pi"},
		"params": {Kind: "test/grid", Seed: 2012, Trials: 3, Params: "n=200 theta=0.25pi"},
	} {
		if _, err := Open(path, h); !errors.Is(err, ErrMismatch) {
			t.Errorf("%s mismatch: err = %v, want ErrMismatch", name, err)
		}
	}
}

func TestRecordConflicts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(1, "a"); err != nil {
		t.Errorf("identical re-record: %v", err)
	}
	if err := j.Record(1, "b"); err == nil {
		t.Error("conflicting re-record succeeded")
	}
	if err := j.Record(3, "x"); !errors.Is(err, ErrBadTrial) {
		t.Errorf("out-of-range trial: %v", err)
	}
	if err := j.Record(0, math.NaN()); err == nil {
		t.Error("NaN result journaled; want a marshal error")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(0, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("record after Close: %v", err)
	}
}

func TestTornFinalLineDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatal(err)
	}
	j.Record(0, 10)
	j.Record(1, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: cut the file mid-way through the last line.
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	if resumed.Len() != 1 || !resumed.Done(0) || resumed.Done(1) {
		t.Errorf("torn journal kept %d records (done0=%v done1=%v), want intact prefix only",
			resumed.Len(), resumed.Done(0), resumed.Done(1))
	}
	// The dropped trial can be re-journaled.
	if err := resumed.Record(1, 20); err != nil {
		t.Errorf("re-record dropped trial: %v", err)
	}
}

func TestInteriorCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatal(err)
	}
	j.Record(0, 10)
	j.Record(1, 20)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	lines[1] = []byte(`{"trial": garbage`)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, testHeader(3)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("interior corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty":       "",
		"not-json":    "hello world\n",
		"bad-version": `{"version":99,"kind":"test/grid","seed":2012,"trials":3}` + "\n",
	} {
		path := filepath.Join(dir, name+".jsonl")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, testHeader(3)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	const trials = 64
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(trials))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Record(i, i*i); err != nil {
				t.Errorf("Record(%d): %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if !j.Complete() {
		t.Fatalf("Len = %d after %d concurrent records", j.Len(), trials)
	}
	resumed, err := Open(path, testHeader(trials))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		var v int
		if ok, err := resumed.Get(i, &v); !ok || err != nil || v != i*i {
			t.Fatalf("Get(%d) = %v, %v, %d", i, ok, err, v)
		}
	}
}

func TestWriteToMatchesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(3))
	if err != nil {
		t.Fatal(err)
	}
	j.Record(2, "z")
	j.Record(0, "a")
	var buf strings.Builder
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(onDisk) {
		t.Errorf("WriteTo = %q, file = %q", buf.String(), onDisk)
	}
	if !strings.HasPrefix(buf.String(), `{"version":1`) {
		t.Errorf("missing header line: %q", buf.String())
	}
}

func TestRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := Open(path, testHeader(2))
	if err != nil {
		t.Fatal(err)
	}
	j.Record(0, 1)
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("journal file survives Remove")
	}
	// Removing an unflushed journal is fine too.
	j2, _ := Open(filepath.Join(t.TempDir(), "never.jsonl"), testHeader(2))
	if err := j2.Remove(); err != nil {
		t.Errorf("Remove of unflushed journal: %v", err)
	}
}
