// Package checkpoint persists completed Monte-Carlo trial results so an
// interrupted experiment can resume without redoing finished work.
//
// A Journal is a JSONL file: one header line identifying the run (kind,
// seed, trial count, and a free-form parameter fingerprint) followed by
// one line per completed trial. Because trial i of every experiment
// runner draws its randomness from the dedicated (seed, i) RNG stream,
// a resumed run that re-executes only the missing trials produces
// results bit-identical to an uninterrupted run.
//
// # Durability
//
// Every write replaces the journal atomically: the full contents go to
// a temporary file in the same directory, the file is fsynced, and the
// temporary is renamed over the journal (rename within a directory is
// atomic on POSIX filesystems). A crash or kill at any instant
// therefore leaves either the previous journal or the new one — never a
// torn line. Loading additionally tolerates a truncated final line, so
// journals written by foreign tools or damaged by filesystem loss still
// resume from their intact prefix.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Version is the journal format version written to new headers.
const Version = 1

// Journal errors.
var (
	// ErrMismatch reports a journal whose header does not match the run
	// trying to resume from it (different seed, trial count, kind, or
	// parameter fingerprint).
	ErrMismatch = errors.New("checkpoint: journal belongs to a different run")
	// ErrCorrupt reports a journal whose prefix cannot be parsed (a bad
	// header or a malformed interior record).
	ErrCorrupt = errors.New("checkpoint: journal is corrupt")
	// ErrBadTrial reports a record with a trial index outside [0, Trials).
	ErrBadTrial = errors.New("checkpoint: trial index out of range")
	// ErrClosed reports use of a closed journal.
	ErrClosed = errors.New("checkpoint: journal is closed")
)

// Header identifies the run a journal belongs to. Open refuses to
// resume when any field of the stored header differs from the caller's,
// so results from one configuration can never leak into another.
type Header struct {
	// Version is the journal format version.
	Version int `json:"version"`
	// Kind names the experiment family (e.g. "experiment/grid").
	Kind string `json:"kind"`
	// Seed is the master RNG seed of the run.
	Seed uint64 `json:"seed"`
	// Trials is the total number of trials the run will execute.
	Trials int `json:"trials"`
	// Params is a free-form fingerprint of the experiment parameters
	// (population, θ, profile, …) in any stable textual form.
	Params string `json:"params,omitempty"`
}

// record is one journaled trial result.
type record struct {
	Trial  int             `json:"trial"`
	Result json.RawMessage `json:"result"`
}

// Journal is an append-only store of completed trial results backed by
// an atomically rewritten JSONL file. It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	path    string
	header  Header
	results map[int]json.RawMessage
	closed  bool
}

// Open creates the journal at path, or resumes from an existing one.
// The header (Version filled in automatically) must match an existing
// journal's exactly; otherwise Open fails with ErrMismatch and leaves
// the file untouched. Records beyond a truncated final line are
// dropped; malformed interior lines fail with ErrCorrupt.
func Open(path string, h Header) (*Journal, error) {
	if h.Trials <= 0 {
		return nil, fmt.Errorf("checkpoint: trials must be positive, got %d", h.Trials)
	}
	h.Version = Version
	j := &Journal{path: path, header: h, results: make(map[int]json.RawMessage)}

	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return j, nil
	case err != nil:
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	stored, results, err := parse(data)
	if err != nil {
		return nil, err
	}
	if stored != h {
		return nil, fmt.Errorf("%w: journal %+v, run %+v", ErrMismatch, stored, h)
	}
	for trial := range results {
		if trial < 0 || trial >= h.Trials {
			return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrBadTrial, trial, h.Trials)
		}
	}
	j.results = results
	return j, nil
}

// parse decodes a journal image into its header and records. The final
// line is allowed to be torn (truncated mid-write by a foreign writer);
// any earlier malformed line is ErrCorrupt.
func parse(data []byte) (Header, map[int]json.RawMessage, error) {
	var h Header
	results := make(map[int]json.RawMessage)
	if len(data) == 0 {
		return h, nil, fmt.Errorf("%w: empty journal", ErrCorrupt)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20)
	lineEnd := 0 // byte offset just past the last line consumed
	if !sc.Scan() {
		return h, nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	headerLine := sc.Bytes()
	lineEnd += len(headerLine) + 1
	if err := strictUnmarshal(headerLine, &h); err != nil {
		return h, nil, fmt.Errorf("%w: bad header: %v", ErrCorrupt, err)
	}
	if h.Version != Version {
		return h, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, h.Version)
	}
	line := 1
	for sc.Scan() {
		raw := sc.Bytes()
		lineEnd += len(raw) + 1
		line++
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var rec record
		if err := strictUnmarshal(raw, &rec); err != nil {
			// A defective *final* line is a torn write: drop it and keep
			// the intact prefix. Interior damage is real corruption.
			if lineEnd >= len(data) {
				break
			}
			return h, nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, line+1, err)
		}
		if rec.Result == nil {
			if lineEnd >= len(data) {
				break
			}
			return h, nil, fmt.Errorf("%w: line %d: record without result", ErrCorrupt, line+1)
		}
		results[rec.Trial] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return h, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return h, results, nil
}

// strictUnmarshal decodes one JSON document and rejects trailing data,
// so a line holding two concatenated objects cannot pass as valid.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Header returns the run identity this journal stores.
func (j *Journal) Header() Header {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.header
}

// Len returns the number of journaled trials.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.results)
}

// Done reports whether the trial's result is journaled.
func (j *Journal) Done(trial int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.results[trial]
	return ok
}

// Missing returns the ascending list of trial indices not yet
// journaled.
func (j *Journal) Missing() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	missing := make([]int, 0, j.header.Trials-len(j.results))
	for i := 0; i < j.header.Trials; i++ {
		if _, ok := j.results[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// Get decodes the journaled result of a trial into out and reports
// whether the trial was journaled.
func (j *Journal) Get(trial int, out any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.results[trial]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("checkpoint: decode trial %d: %w", trial, err)
	}
	return true, nil
}

// Record journals a completed trial's result and flushes the journal
// atomically (temp file in the target directory, fsync, rename).
// Results must round-trip through encoding/json; non-finite floats are
// rejected by Marshal, which is intentional — run numeric-health checks
// before journaling. Re-recording an already-journaled trial with an
// identical result is a no-op.
func (j *Journal) Record(trial int, result any) error {
	if trial < 0 || trial >= j.header.Trials {
		return fmt.Errorf("%w: %d not in [0, %d)", ErrBadTrial, trial, j.header.Trials)
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("checkpoint: encode trial %d: %w", trial, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if prev, ok := j.results[trial]; ok {
		if bytes.Equal(prev, raw) {
			return nil
		}
		return fmt.Errorf("checkpoint: trial %d already journaled with a different result", trial)
	}
	j.results[trial] = raw
	if err := j.flushLocked(); err != nil {
		delete(j.results, trial)
		return err
	}
	return nil
}

// flushLocked writes the full journal image atomically. Callers hold
// j.mu.
func (j *Journal) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(j.header); err != nil {
		return fmt.Errorf("checkpoint: encode header: %w", err)
	}
	// Deterministic record order: ascending trial index.
	for i := 0; i < j.header.Trials; i++ {
		raw, ok := j.results[i]
		if !ok {
			continue
		}
		if err := enc.Encode(record{Trial: i, Result: raw}); err != nil {
			return fmt.Errorf("checkpoint: encode trial %d: %w", i, err)
		}
	}
	return writeAtomic(j.path, buf.Bytes())
}

// writeAtomic replaces path with data via temp-file + fsync + rename in
// the destination directory.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Persist the directory entry so the rename survives power loss.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Complete reports whether every trial is journaled.
func (j *Journal) Complete() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.results) == j.header.Trials
}

// Close marks the journal closed; subsequent Records fail with
// ErrClosed. The file stays on disk so the run can be inspected or
// resumed later; use Remove to delete it.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}

// Remove closes the journal and deletes its file. Removing a journal
// that was never flushed is not an error.
func (j *Journal) Remove() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	if err := os.Remove(j.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: remove journal: %w", err)
	}
	return nil
}

// WriteTo serializes the journal's current image (header plus records
// in trial order); it is the exact byte content flushes write.
func (j *Journal) WriteTo(w io.Writer) (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(j.header); err != nil {
		return 0, err
	}
	for i := 0; i < j.header.Trials; i++ {
		if raw, ok := j.results[i]; ok {
			if err := enc.Encode(record{Trial: i, Result: raw}); err != nil {
				return 0, err
			}
		}
	}
	return buf.WriteTo(w)
}
