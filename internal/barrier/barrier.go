// Package barrier implements full-view *barrier* coverage, the extension
// the paper names as future work ("the critical condition to reach
// barrier full view coverage will be an absorbing topic as well"): an
// intruder crossing a barrier polyline must be full-view captured at
// every point of the barrier, so its face is guaranteed to be recorded
// no matter where it crosses or which way it faces.
package barrier

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fullview/internal/core"
	"fullview/internal/geom"
	"fullview/internal/sweep"
)

// Validation errors.
var (
	ErrTooFewWaypoints = errors.New("barrier: need at least two waypoints")
	ErrBadSpacing      = errors.New("barrier: sample spacing must be positive")
	ErrZeroLength      = errors.New("barrier: barrier has zero length")
)

// Barrier is a polyline through the operational region. Waypoints are
// interpreted in the plane (segments do not wrap); sample points are
// wrapped onto the torus when evaluated.
type Barrier struct {
	waypoints []geom.Vec
}

// New builds a barrier from at least two waypoints.
func New(waypoints ...geom.Vec) (Barrier, error) {
	if len(waypoints) < 2 {
		return Barrier{}, fmt.Errorf("%w: got %d", ErrTooFewWaypoints, len(waypoints))
	}
	length := 0.0
	for i := 1; i < len(waypoints); i++ {
		length += waypoints[i].Sub(waypoints[i-1]).Norm()
	}
	if length == 0 {
		return Barrier{}, ErrZeroLength
	}
	pts := make([]geom.Vec, len(waypoints))
	copy(pts, waypoints)
	return Barrier{waypoints: pts}, nil
}

// Horizontal returns the straight barrier crossing the full width of the
// unit torus at height y — the canonical "belt" barrier.
func Horizontal(y float64) Barrier {
	b, err := New(geom.V(0, y), geom.V(1, y))
	if err != nil {
		// Unreachable: the two waypoints are fixed and distinct.
		panic(err)
	}
	return b
}

// Waypoints returns a copy of the waypoint list.
func (b Barrier) Waypoints() []geom.Vec {
	out := make([]geom.Vec, len(b.waypoints))
	copy(out, b.waypoints)
	return out
}

// Length returns the total polyline length.
func (b Barrier) Length() float64 {
	length := 0.0
	for i := 1; i < len(b.waypoints); i++ {
		length += b.waypoints[i].Sub(b.waypoints[i-1]).Norm()
	}
	return length
}

// Sample returns points along the barrier at intervals of at most
// spacing, always including segment endpoints.
func (b Barrier) Sample(spacing float64) ([]geom.Vec, error) {
	if !(spacing > 0) {
		return nil, fmt.Errorf("%w: got %v", ErrBadSpacing, spacing)
	}
	var out []geom.Vec
	for i := 1; i < len(b.waypoints); i++ {
		a, c := b.waypoints[i-1], b.waypoints[i]
		seg := c.Sub(a)
		segLen := seg.Norm()
		steps := int(math.Ceil(segLen / spacing))
		if steps < 1 {
			steps = 1
		}
		from := 0
		if i > 1 {
			from = 1 // segment start equals previous segment's end
		}
		for s := from; s <= steps; s++ {
			out = append(out, a.Add(seg.Scale(float64(s)/float64(steps))))
		}
	}
	return out, nil
}

// Stats summarizes barrier coverage.
type Stats struct {
	// Samples is the number of barrier points evaluated.
	Samples int
	// FullView counts samples that are full-view covered.
	FullView int
	// Weak counts samples that are at least 1-covered (detection without
	// the full-view guarantee — classic weak barrier coverage).
	Weak int
	// GapPoint is the first barrier point that is not full-view covered
	// (meaningful only when Covered is false).
	GapPoint geom.Vec
	// GapDirection is a facing direction an intruder could adopt at
	// GapPoint to avoid a frontal capture.
	GapDirection float64
	// Covered reports whether the whole barrier is full-view covered.
	Covered bool
}

// FullViewFraction returns the covered fraction of barrier samples.
func (s Stats) FullViewFraction() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.FullView) / float64(s.Samples)
}

// WeakFraction returns the 1-covered fraction of barrier samples.
func (s Stats) WeakFraction() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.Weak) / float64(s.Samples)
}

// surveyAcc is the mergeable aggregate of a barrier sweep chunk. Counts
// are additive; the gap witness of the earliest chunk (in barrier
// order) wins, so merged results match the sequential scan exactly.
type surveyAcc struct {
	fullView, weak int
	gapFound       bool
	gapPoint       geom.Vec
	gapDirection   float64
}

// merge combines the aggregate of a later chunk into this one.
func (a surveyAcc) merge(b surveyAcc) surveyAcc {
	a.fullView += b.fullView
	a.weak += b.weak
	if !a.gapFound && b.gapFound {
		a.gapFound = true
		a.gapPoint = b.gapPoint
		a.gapDirection = b.gapDirection
	}
	return a
}

// Survey evaluates full-view coverage along the barrier with the given
// sample spacing. It is the single-worker case of SurveyContext.
func Survey(checker *core.Checker, b Barrier, spacing float64) (Stats, error) {
	return SurveyContext(context.Background(), checker, b, spacing, 1)
}

// SurveyContext evaluates full-view coverage along the barrier with the
// given number of workers (GOMAXPROCS when workers ≤ 0), executing
// through the shared internal/sweep engine. Results are bit-identical
// to the sequential Survey at any worker count: the reported gap point
// is always the first uncovered sample in barrier order. A cancelled
// context aborts the sweep and returns ctx.Err().
func SurveyContext(ctx context.Context, checker *core.Checker, b Barrier, spacing float64, workers int) (Stats, error) {
	points, err := b.Sample(spacing)
	if err != nil {
		return Stats{}, err
	}
	acc, err := sweep.Run(ctx, points, workers,
		func() (*core.Checker, error) { return checker.Clone(), nil },
		func(worker *core.Checker, acc surveyAcc, _ int, p geom.Vec) surveyAcc {
			rep := worker.Report(p)
			if rep.NumCovering > 0 {
				acc.weak++
			}
			if rep.FullView {
				acc.fullView++
			} else if !acc.gapFound {
				acc.gapFound = true
				acc.gapPoint = p
				dir, _ := worker.UnsafeDirection(p)
				acc.gapDirection = dir
			}
			return acc
		},
		surveyAcc.merge,
	)
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Samples:      len(points),
		FullView:     acc.fullView,
		Weak:         acc.weak,
		Covered:      !acc.gapFound,
		GapPoint:     acc.gapPoint,
		GapDirection: acc.gapDirection,
	}, nil
}
