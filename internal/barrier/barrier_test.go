package barrier

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.V(0, 0)); !errors.Is(err, ErrTooFewWaypoints) {
		t.Errorf("single waypoint: error = %v, want ErrTooFewWaypoints", err)
	}
	if _, err := New(geom.V(0.5, 0.5), geom.V(0.5, 0.5)); !errors.Is(err, ErrZeroLength) {
		t.Errorf("coincident waypoints: error = %v, want ErrZeroLength", err)
	}
	if _, err := New(geom.V(0, 0), geom.V(1, 0)); err != nil {
		t.Errorf("valid barrier rejected: %v", err)
	}
}

func TestLength(t *testing.T) {
	b, err := New(geom.V(0, 0), geom.V(0.3, 0), geom.V(0.3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Length(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Length = %v, want 0.7", got)
	}
}

func TestHorizontal(t *testing.T) {
	b := Horizontal(0.5)
	if got := b.Length(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Length = %v, want 1", got)
	}
	wp := b.Waypoints()
	if len(wp) != 2 || wp[0].Y != 0.5 || wp[1].Y != 0.5 {
		t.Errorf("Waypoints = %v", wp)
	}
}

func TestSampleSpacing(t *testing.T) {
	b := Horizontal(0.5)
	pts, err := b.Sample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("got %d samples, want 11", len(pts))
	}
	if pts[0] != (geom.V(0, 0.5)) || pts[10] != (geom.V(1, 0.5)) {
		t.Errorf("endpoints missing: %v … %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Sub(pts[i-1]).Norm(); d > 0.1+1e-12 {
			t.Errorf("gap %v exceeds spacing", d)
		}
	}
}

func TestSampleMultiSegmentNoDuplicates(t *testing.T) {
	b, err := New(geom.V(0, 0), geom.V(0.2, 0), geom.V(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := b.Sample(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] == pts[i-1] {
			t.Fatalf("duplicate consecutive sample at %d: %v", i, pts[i])
		}
	}
}

func TestSampleInvalidSpacing(t *testing.T) {
	b := Horizontal(0.5)
	for _, s := range []float64{0, -0.1, math.NaN()} {
		if _, err := b.Sample(s); !errors.Is(err, ErrBadSpacing) {
			t.Errorf("spacing %v: error = %v, want ErrBadSpacing", s, err)
		}
	}
}

func denseChecker(t *testing.T, n int, theta float64) *core.Checker {
	t.Helper()
	profile, err := sensor.Homogeneous(0.25, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSurveyDenseNetworkCoversBarrier(t *testing.T) {
	checker := denseChecker(t, 3000, math.Pi/2)
	stats, err := Survey(checker, Horizontal(0.5), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Covered {
		t.Errorf("dense network should cover the barrier; gap at %v facing %v",
			stats.GapPoint, stats.GapDirection)
	}
	if stats.FullViewFraction() != 1 || stats.WeakFraction() != 1 {
		t.Errorf("fractions = %v / %v, want 1 / 1",
			stats.FullViewFraction(), stats.WeakFraction())
	}
}

func TestSurveySparseNetworkReportsGap(t *testing.T) {
	checker := denseChecker(t, 5, math.Pi/4)
	stats, err := Survey(checker, Horizontal(0.5), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Covered {
		t.Fatal("5 cameras cannot full-view cover a unit barrier at θ=π/4")
	}
	if stats.FullView >= stats.Samples {
		t.Errorf("FullView = %d of %d", stats.FullView, stats.Samples)
	}
	// Weak coverage is implied by full-view coverage.
	if stats.Weak < stats.FullView {
		t.Errorf("weak %d < full-view %d", stats.Weak, stats.FullView)
	}
	// The reported gap point must really be uncovered.
	if checker.FullViewCovered(stats.GapPoint) {
		t.Errorf("gap point %v is actually covered", stats.GapPoint)
	}
}

func TestSurveyEmptyNetwork(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Survey(checker, Horizontal(0.3), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Covered || stats.FullView != 0 || stats.Weak != 0 {
		t.Errorf("empty network stats = %+v", stats)
	}
	if stats.FullViewFraction() != 0 {
		t.Error("fraction should be 0")
	}
}

func TestStatsZeroSamples(t *testing.T) {
	var s Stats
	if s.FullViewFraction() != 0 || s.WeakFraction() != 0 {
		t.Error("zero-sample fractions should be 0")
	}
}
