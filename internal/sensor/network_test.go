package sensor

import (
	"math"
	"testing"

	"fullview/internal/geom"
)

func testCameras() []Camera {
	return []Camera{
		{Pos: geom.V(0.3, 0.5), Orient: 0, Radius: 0.3, Aperture: math.Pi / 2, Group: 0},
		{Pos: geom.V(0.7, 0.5), Orient: math.Pi, Radius: 0.3, Aperture: math.Pi / 2, Group: 1},
		{Pos: geom.V(0.5, 0.8), Orient: 3 * math.Pi / 2, Radius: 0.1, Aperture: math.Pi, Group: 0},
	}
}

func TestNewNetwork(t *testing.T) {
	n, err := NewNetwork(geom.UnitTorus, testCameras())
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 {
		t.Errorf("Len = %d", n.Len())
	}
	if n.Torus() != geom.UnitTorus {
		t.Error("Torus mismatch")
	}
}

func TestNewNetworkRejectsInvalidCamera(t *testing.T) {
	cams := testCameras()
	cams[1].Radius = -1
	if _, err := NewNetwork(geom.UnitTorus, cams); err == nil {
		t.Error("NewNetwork accepted invalid camera")
	}
}

func TestNewNetworkNormalizes(t *testing.T) {
	cams := []Camera{{
		Pos:      geom.V(1.3, -0.5),
		Orient:   -math.Pi / 2,
		Radius:   0.1,
		Aperture: 1,
	}}
	n, err := NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Camera(0)
	if math.Abs(c.Pos.X-0.3) > 1e-12 || math.Abs(c.Pos.Y-0.5) > 1e-12 {
		t.Errorf("position not wrapped: %v", c.Pos)
	}
	if math.Abs(c.Orient-3*math.Pi/2) > 1e-12 {
		t.Errorf("orientation not normalized: %v", c.Orient)
	}
}

func TestNewNetworkCopiesInput(t *testing.T) {
	cams := testCameras()
	n, err := NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	cams[0].Radius = 99
	if n.Camera(0).Radius == 99 {
		t.Error("network aliases the caller's slice")
	}
	out := n.Cameras()
	out[0].Radius = 77
	if n.Camera(0).Radius == 77 {
		t.Error("Cameras() aliases internal storage")
	}
}

func TestNetworkEmpty(t *testing.T) {
	n, err := NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 0 || n.MaxRadius() != 0 || n.TotalSensingArea() != 0 || n.MeanSensingArea() != 0 {
		t.Error("empty network aggregate values should be zero")
	}
	if n.GroupCounts() != nil {
		t.Error("empty network GroupCounts should be nil")
	}
	if got := n.CoveringIndices(geom.V(0.5, 0.5)); got != nil {
		t.Errorf("CoveringIndices on empty = %v", got)
	}
}

func TestNetworkAggregates(t *testing.T) {
	n, err := NewNetwork(geom.UnitTorus, testCameras())
	if err != nil {
		t.Fatal(err)
	}
	if got := n.MaxRadius(); got != 0.3 {
		t.Errorf("MaxRadius = %v", got)
	}
	wantTotal := math.Pi/2*0.09/2 + math.Pi/2*0.09/2 + math.Pi*0.01/2
	if got := n.TotalSensingArea(); math.Abs(got-wantTotal) > 1e-12 {
		t.Errorf("TotalSensingArea = %v, want %v", got, wantTotal)
	}
	if got := n.MeanSensingArea(); math.Abs(got-wantTotal/3) > 1e-12 {
		t.Errorf("MeanSensingArea = %v", got)
	}
	counts := n.GroupCounts()
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Errorf("GroupCounts = %v", counts)
	}
}

func TestCoveringIndicesAndViewedDirections(t *testing.T) {
	n, err := NewNetwork(geom.UnitTorus, testCameras())
	if err != nil {
		t.Fatal(err)
	}
	p := geom.V(0.5, 0.5)
	// Camera 0 looks east from (0.3, 0.5): covers p.
	// Camera 1 looks west from (0.7, 0.5): covers p.
	// Camera 2 looks south from (0.5, 0.8) with radius 0.1: too far.
	idx := n.CoveringIndices(p)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("CoveringIndices = %v, want [0 1]", idx)
	}
	dirs := n.ViewedDirections(p)
	if len(dirs) != 2 {
		t.Fatalf("ViewedDirections = %v", dirs)
	}
	// Viewed direction of camera 0 (west of p) is π; camera 1 is 0.
	if geom.AngularDistance(dirs[0], math.Pi) > 1e-12 {
		t.Errorf("dirs[0] = %v, want π", dirs[0])
	}
	if geom.AngularDistance(dirs[1], 0) > 1e-12 {
		t.Errorf("dirs[1] = %v, want 0", dirs[1])
	}
}
