package sensor

import (
	"fmt"

	"fullview/internal/geom"
)

// Network is a deployed camera sensor network: a set of cameras on an
// operational torus. Networks are immutable after construction; the
// deployment package builds them.
type Network struct {
	torus   geom.Torus
	cameras []Camera
}

// NewNetwork validates the cameras and assembles a network on the given
// torus. The camera slice is copied.
func NewNetwork(t geom.Torus, cameras []Camera) (*Network, error) {
	out := make([]Camera, len(cameras))
	for i, c := range cameras {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("camera %d: %w", i, err)
		}
		c.Pos = t.Wrap(c.Pos)
		c.Orient = geom.NormalizeAngle(c.Orient)
		out[i] = c
	}
	return &Network{torus: t, cameras: out}, nil
}

// Torus returns the operational region.
func (n *Network) Torus() geom.Torus { return n.torus }

// Len returns the number of cameras.
func (n *Network) Len() int { return len(n.cameras) }

// Camera returns the i-th camera.
func (n *Network) Camera(i int) Camera { return n.cameras[i] }

// Cameras returns a copy of the camera slice.
func (n *Network) Cameras() []Camera {
	out := make([]Camera, len(n.cameras))
	copy(out, n.cameras)
	return out
}

// MaxRadius returns the largest sensing radius in the network, or 0 for
// an empty network.
func (n *Network) MaxRadius() float64 {
	r := 0.0
	for _, c := range n.cameras {
		if c.Radius > r {
			r = c.Radius
		}
	}
	return r
}

// TotalSensingArea returns Σ_i s_i over all deployed cameras.
func (n *Network) TotalSensingArea() float64 {
	s := 0.0
	for _, c := range n.cameras {
		s += c.SensingArea()
	}
	return s
}

// MeanSensingArea returns the average sensing area per camera, the
// finite-n analogue of the paper's weighted sum s_c = Σ c_y s_y. Returns
// 0 for an empty network.
func (n *Network) MeanSensingArea() float64 {
	if len(n.cameras) == 0 {
		return 0
	}
	return n.TotalSensingArea() / float64(len(n.cameras))
}

// GroupCounts tallies cameras per group index. The returned slice has
// length max(group)+1; an empty network yields nil.
func (n *Network) GroupCounts() []int {
	maxGroup := -1
	for _, c := range n.cameras {
		if c.Group > maxGroup {
			maxGroup = c.Group
		}
	}
	if maxGroup < 0 {
		return nil
	}
	counts := make([]int, maxGroup+1)
	for _, c := range n.cameras {
		counts[c.Group]++
	}
	return counts
}

// CoveringIndices returns the indices of all cameras that cover point p,
// by brute-force scan. The spatial package provides an indexed
// equivalent for hot paths; this form is the correctness oracle.
func (n *Network) CoveringIndices(p geom.Vec) []int {
	var out []int
	for i, c := range n.cameras {
		if c.Covers(n.torus, p) {
			out = append(out, i)
		}
	}
	return out
}

// ViewedDirections returns the viewed directions (angles of P→S) of all
// cameras covering p, by brute-force scan.
func (n *Network) ViewedDirections(p geom.Vec) []float64 {
	var out []float64
	for _, c := range n.cameras {
		if c.Covers(n.torus, p) {
			out = append(out, c.ViewedDirection(n.torus, p))
		}
	}
	return out
}
