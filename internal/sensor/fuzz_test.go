package sensor

import (
	"math"
	"strings"
	"testing"

	"fullview/internal/geom"
)

func FuzzParseProfile(f *testing.F) {
	f.Add("1:0.15:0.5")
	f.Add("0.3:0.2:0.33,0.7:0.1:0.5")
	f.Add("")
	f.Add("::")
	f.Add("1:0.15:0.5,")
	f.Add("NaN:Inf:-1")
	f.Add(strings.Repeat("0.1:0.1:0.1,", 9) + "0.1:0.1:0.1")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseProfile(s) // must never panic
		if err != nil {
			return
		}
		// Whatever parses must be a valid profile…
		sum := 0.0
		for _, g := range p.Groups() {
			if err := g.Validate(); err != nil {
				t.Fatalf("parsed invalid group from %q: %v", s, err)
			}
			sum += g.Fraction
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("parsed fractions sum to %v from %q", sum, s)
		}
		// …and round-trip through FormatProfile.
		again, err := ParseProfile(FormatProfile(p))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if again.NumGroups() != p.NumGroups() {
			t.Fatalf("round trip changed group count for %q", s)
		}
	})
}

func FuzzCameraCovers(f *testing.F) {
	f.Add(0.5, 0.5, 0.0, 0.2, 1.0, 0.6, 0.5)
	f.Add(0.95, 0.95, 3.0, 0.3, 6.0, 0.05, 0.05)
	f.Fuzz(func(t *testing.T, cx, cy, orient, radius, aperture, px, py float64) {
		for _, v := range []float64{cx, cy, orient, radius, aperture, px, py} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return
			}
		}
		radius = math.Mod(math.Abs(radius), 0.5) + 0.001
		aperture = math.Mod(math.Abs(aperture), 2*math.Pi-0.01) + 0.005
		cam := Camera{
			Pos:      geom.UnitTorus.Wrap(geom.V(cx, cy)),
			Orient:   orient,
			Radius:   radius,
			Aperture: aperture,
		}
		p := geom.UnitTorus.Wrap(geom.V(px, py))
		covered := cam.Covers(geom.UnitTorus, p)
		// Coverage implies being within the sensing radius.
		if covered && geom.UnitTorus.Dist(cam.Pos, p) > radius+1e-12 {
			t.Fatalf("covered point beyond radius: cam=%+v p=%v", cam, p)
		}
		// The viewed direction is always a valid angle.
		if d := cam.ViewedDirection(geom.UnitTorus, p); d < 0 || d >= 2*math.Pi {
			t.Fatalf("viewed direction %v out of range", d)
		}
	})
}
