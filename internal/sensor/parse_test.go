package sensor

import (
	"errors"
	"math"
	"testing"
)

func TestParseProfileSingleGroup(t *testing.T) {
	p, err := ParseProfile("1:0.15:0.5")
	if err != nil {
		t.Fatal(err)
	}
	g := p.Groups()
	if len(g) != 1 {
		t.Fatalf("groups = %d", len(g))
	}
	if g[0].Fraction != 1 || g[0].Radius != 0.15 {
		t.Errorf("group = %+v", g[0])
	}
	if math.Abs(g[0].Aperture-math.Pi/2) > 1e-12 {
		t.Errorf("aperture = %v, want π/2", g[0].Aperture)
	}
}

func TestParseProfileMultiGroupWithSpaces(t *testing.T) {
	p, err := ParseProfile(" 0.3 : 0.2 : 0.33 , 0.7:0.1:0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	g := p.Groups()
	if len(g) != 2 {
		t.Fatalf("groups = %d", len(g))
	}
	if g[0].Fraction != 0.3 || g[1].Fraction != 0.7 {
		t.Errorf("fractions = %v, %v", g[0].Fraction, g[1].Fraction)
	}
	if math.Abs(g[0].Aperture-0.33*math.Pi) > 1e-12 {
		t.Errorf("aperture = %v", g[0].Aperture)
	}
}

func TestParseProfileErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{name: "empty", give: ""},
		{name: "missing field", give: "1:0.15"},
		{name: "extra field", give: "1:0.15:0.5:9"},
		{name: "non-numeric", give: "one:0.15:0.5"},
		{name: "trailing comma", give: "1:0.15:0.5,"},
		{name: "nan radius", give: "1:NaN:0.5"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseProfile(tt.give); err == nil {
				t.Errorf("ParseProfile(%q) accepted", tt.give)
			}
		})
	}
	// Structurally fine but semantically invalid: fractions don't sum
	// to 1 — must surface the profile validation error, not ErrParse.
	_, err := ParseProfile("0.5:0.1:0.5")
	if err == nil {
		t.Fatal("fractions-not-one accepted")
	}
	if errors.Is(err, ErrParse) {
		t.Errorf("validation failure misreported as parse error: %v", err)
	}
	if !errors.Is(err, ErrFractionSum) {
		t.Errorf("error = %v, want ErrFractionSum", err)
	}
}

func TestFormatProfileRoundTrip(t *testing.T) {
	orig, err := NewProfile(
		GroupSpec{Fraction: 0.25, Radius: 0.12, Aperture: math.Pi / 3},
		GroupSpec{Fraction: 0.75, Radius: 0.3, Aperture: math.Pi},
	)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseProfile(FormatProfile(orig))
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	a, b := orig.Groups(), parsed.Groups()
	if len(a) != len(b) {
		t.Fatalf("group count changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Fraction-b[i].Fraction) > 1e-12 ||
			math.Abs(a[i].Radius-b[i].Radius) > 1e-12 ||
			math.Abs(a[i].Aperture-b[i].Aperture) > 1e-12 {
			t.Errorf("group %d changed: %+v vs %+v", i, a[i], b[i])
		}
	}
}
