package sensor

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrParse reports a malformed profile string.
var ErrParse = errors.New("sensor: malformed profile string")

// ParseProfile parses a heterogeneity profile from its compact textual
// form: comma-separated groups, each "fraction:radius:aperture", with
// the aperture given as a fraction of π. Whitespace around separators is
// ignored.
//
//	"1:0.15:0.5"                 one group, r=0.15, φ=π/2
//	"0.3:0.2:0.33, 0.7:0.1:0.5"  30% r=0.2 φ=0.33π + 70% r=0.1 φ=π/2
//
// The parsed groups go through the same validation as NewProfile
// (fractions must sum to 1, apertures in (0, 2π], …).
func ParseProfile(s string) (Profile, error) {
	parts := strings.Split(s, ",")
	groups := make([]GroupSpec, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Profile{}, fmt.Errorf("%w: empty group %d", ErrParse, i+1)
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return Profile{}, fmt.Errorf(
				"%w: group %d %q needs fraction:radius:aperture", ErrParse, i+1, part)
		}
		var vals [3]float64
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return Profile{}, fmt.Errorf("%w: group %d field %d: %v", ErrParse, i+1, j+1, err)
			}
			vals[j] = v
		}
		groups = append(groups, GroupSpec{
			Fraction: vals[0],
			Radius:   vals[1],
			Aperture: vals[2] * math.Pi,
		})
	}
	return NewProfile(groups...)
}

// FormatProfile renders a profile in the ParseProfile syntax
// (round-trippable up to float formatting).
func FormatProfile(p Profile) string {
	var b strings.Builder
	for i, g := range p.groups {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g:%g:%g", g.Fraction, g.Radius, g.Aperture/math.Pi)
	}
	return b.String()
}
