package sensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustProfile(t *testing.T, groups ...GroupSpec) Profile {
	t.Helper()
	p, err := NewProfile(groups...)
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	return p
}

func TestNewProfileValidation(t *testing.T) {
	tests := []struct {
		name    string
		give    []GroupSpec
		wantErr error
	}{
		{
			name:    "empty",
			wantErr: ErrNoGroups,
		},
		{
			name: "valid single",
			give: []GroupSpec{{Fraction: 1, Radius: 0.1, Aperture: 1}},
		},
		{
			name: "valid pair",
			give: []GroupSpec{
				{Fraction: 0.25, Radius: 0.1, Aperture: 1},
				{Fraction: 0.75, Radius: 0.2, Aperture: 2},
			},
		},
		{
			name: "three thirds within tolerance",
			give: []GroupSpec{
				{Fraction: 1.0 / 3, Radius: 0.1, Aperture: 1},
				{Fraction: 1.0 / 3, Radius: 0.2, Aperture: 1},
				{Fraction: 1.0 / 3, Radius: 0.3, Aperture: 1},
			},
		},
		{
			name: "fractions short of one",
			give: []GroupSpec{
				{Fraction: 0.5, Radius: 0.1, Aperture: 1},
			},
			wantErr: ErrFractionSum,
		},
		{
			name: "fraction zero",
			give: []GroupSpec{
				{Fraction: 0, Radius: 0.1, Aperture: 1},
				{Fraction: 1, Radius: 0.1, Aperture: 1},
			},
			wantErr: ErrBadFraction,
		},
		{
			name:    "bad radius",
			give:    []GroupSpec{{Fraction: 1, Radius: -0.1, Aperture: 1}},
			wantErr: ErrBadRadius,
		},
		{
			name:    "bad aperture",
			give:    []GroupSpec{{Fraction: 1, Radius: 0.1, Aperture: 0}},
			wantErr: ErrBadAperture,
		},
		{
			name:    "aperture above 2pi",
			give:    []GroupSpec{{Fraction: 1, Radius: 0.1, Aperture: 2*math.Pi + 0.1}},
			wantErr: ErrBadAperture,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewProfile(tt.give...)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("NewProfile error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestHomogeneous(t *testing.T) {
	p, err := Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGroups() != 1 {
		t.Errorf("NumGroups = %d", p.NumGroups())
	}
	want := math.Pi / 2 * 0.04 / 2
	if got := p.WeightedSensingArea(); math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedSensingArea = %v, want %v", got, want)
	}
}

func TestWeightedSensingArea(t *testing.T) {
	p := mustProfile(t,
		GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: 2}, // s = 0.01
		GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: 1}, // s = 0.02
	)
	if got, want := p.WeightedSensingArea(), 0.015; math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedSensingArea = %v, want %v", got, want)
	}
}

func TestProfileGroupsIsCopy(t *testing.T) {
	p := mustProfile(t, GroupSpec{Fraction: 1, Radius: 0.1, Aperture: 1})
	g := p.Groups()
	g[0].Radius = 99
	if p.Groups()[0].Radius != 0.1 {
		t.Error("mutating Groups() result affected the profile")
	}
}

func TestProfileMaxRadius(t *testing.T) {
	p := mustProfile(t,
		GroupSpec{Fraction: 0.3, Radius: 0.05, Aperture: 1},
		GroupSpec{Fraction: 0.7, Radius: 0.25, Aperture: 1},
	)
	if got := p.MaxRadius(); got != 0.25 {
		t.Errorf("MaxRadius = %v", got)
	}
}

func TestProfileCounts(t *testing.T) {
	tests := []struct {
		name      string
		fractions []float64
		n         int
		want      []int
	}{
		{name: "even split", fractions: []float64{0.5, 0.5}, n: 10, want: []int{5, 5}},
		{name: "rounding up largest remainder", fractions: []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, n: 10, want: []int{4, 3, 3}},
		{name: "uneven", fractions: []float64{0.7, 0.3}, n: 10, want: []int{7, 3}},
		{name: "zero n", fractions: []float64{0.5, 0.5}, n: 0, want: []int{0, 0}},
		{name: "single group", fractions: []float64{1}, n: 17, want: []int{17}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			groups := make([]GroupSpec, len(tt.fractions))
			for i, f := range tt.fractions {
				groups[i] = GroupSpec{Fraction: f, Radius: 0.1, Aperture: 1}
			}
			p := mustProfile(t, groups...)
			got := p.Counts(tt.n)
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d", len(got))
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("Counts = %v, want %v", got, tt.want)
					break
				}
			}
		})
	}
}

func TestProfileCountsSumProperty(t *testing.T) {
	f := func(rawN uint16, split uint8) bool {
		n := int(rawN)
		frac := (float64(split)/255)*0.98 + 0.01
		p, err := NewProfile(
			GroupSpec{Fraction: frac, Radius: 0.1, Aperture: 1},
			GroupSpec{Fraction: 1 - frac, Radius: 0.2, Aperture: 1},
		)
		if err != nil {
			return false
		}
		counts := p.Counts(n)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleToArea(t *testing.T) {
	p := mustProfile(t,
		GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: 2},
		GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: 1},
	)
	target := 0.003
	scaled, err := p.ScaleToArea(target)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.WeightedSensingArea(); math.Abs(got-target) > 1e-12 {
		t.Errorf("scaled area = %v, want %v", got, target)
	}
	// Apertures and fractions are preserved; radii keep their ratio.
	orig, now := p.Groups(), scaled.Groups()
	for i := range orig {
		if orig[i].Aperture != now[i].Aperture || orig[i].Fraction != now[i].Fraction {
			t.Errorf("group %d aperture/fraction changed", i)
		}
	}
	ratioBefore := orig[1].Radius / orig[0].Radius
	ratioAfter := now[1].Radius / now[0].Radius
	if math.Abs(ratioBefore-ratioAfter) > 1e-12 {
		t.Errorf("radius ratio changed: %v → %v", ratioBefore, ratioAfter)
	}
}

func TestScaleToAreaInvalidTarget(t *testing.T) {
	p := mustProfile(t, GroupSpec{Fraction: 1, Radius: 0.1, Aperture: 1})
	for _, target := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := p.ScaleToArea(target); !errors.Is(err, ErrNonPositiveArea) {
			t.Errorf("ScaleToArea(%v) error = %v, want ErrNonPositiveArea", target, err)
		}
	}
}

func TestProfileString(t *testing.T) {
	p := mustProfile(t, GroupSpec{Fraction: 1, Radius: 0.1, Aperture: 1})
	if p.String() == "" {
		t.Error("String returned empty")
	}
}
