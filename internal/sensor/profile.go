package sensor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fullview/internal/geom"
)

// Validation errors for group specifications and profiles.
var (
	ErrNoGroups        = errors.New("sensor: profile needs at least one group")
	ErrBadFraction     = errors.New("sensor: group fraction must be in (0, 1]")
	ErrBadRadius       = errors.New("sensor: group radius must be positive and finite")
	ErrBadAperture     = errors.New("sensor: group aperture must be in (0, 2π]")
	ErrFractionSum     = errors.New("sensor: group fractions must sum to 1")
	ErrNonPositiveArea = errors.New("sensor: target sensing area must be positive")
)

// fractionSumTolerance is how far Σc_y may drift from 1 before a profile
// is rejected; it absorbs accumulated floating-point error in hand-built
// profiles such as 1.0/3 three times.
const fractionSumTolerance = 1e-9

// GroupSpec describes one heterogeneity group G_y: a fraction c_y of the
// n deployed sensors, each with sensing radius r_y and angle of view φ_y.
type GroupSpec struct {
	// Fraction is c_y ∈ (0, 1]; fractions across a profile sum to 1.
	Fraction float64
	// Radius is r_y > 0.
	Radius float64
	// Aperture is φ_y ∈ (0, 2π].
	Aperture float64
}

// SensingArea returns s_y = φ_y·r_y²/2.
func (g GroupSpec) SensingArea() float64 {
	return g.Aperture * g.Radius * g.Radius / 2
}

// Validate checks the group parameters.
func (g GroupSpec) Validate() error {
	if !(g.Fraction > 0) || g.Fraction > 1 {
		return fmt.Errorf("%w: got %v", ErrBadFraction, g.Fraction)
	}
	if !(g.Radius > 0) || math.IsInf(g.Radius, 0) {
		return fmt.Errorf("%w: got %v", ErrBadRadius, g.Radius)
	}
	if !(g.Aperture > 0) || g.Aperture > geom.TwoPi {
		return fmt.Errorf("%w: got %v", ErrBadAperture, g.Aperture)
	}
	return nil
}

// Profile is a validated heterogeneity profile: the list of group
// specifications for a network. Construct with NewProfile or Homogeneous.
type Profile struct {
	groups []GroupSpec
}

// NewProfile validates the groups and returns a Profile. Group fractions
// must sum to 1 (the paper's Σc_y = 1).
func NewProfile(groups ...GroupSpec) (Profile, error) {
	if len(groups) == 0 {
		return Profile{}, ErrNoGroups
	}
	sum := 0.0
	for i, g := range groups {
		if err := g.Validate(); err != nil {
			return Profile{}, fmt.Errorf("group %d: %w", i, err)
		}
		sum += g.Fraction
	}
	if math.Abs(sum-1) > fractionSumTolerance {
		return Profile{}, fmt.Errorf("%w: got %v", ErrFractionSum, sum)
	}
	out := make([]GroupSpec, len(groups))
	copy(out, groups)
	return Profile{groups: out}, nil
}

// Homogeneous returns the single-group profile with the given radius and
// aperture. It panics only on invalid parameters, reported via error.
func Homogeneous(radius, aperture float64) (Profile, error) {
	return NewProfile(GroupSpec{Fraction: 1, Radius: radius, Aperture: aperture})
}

// Groups returns a copy of the group specifications.
func (p Profile) Groups() []GroupSpec {
	out := make([]GroupSpec, len(p.groups))
	copy(out, p.groups)
	return out
}

// NumGroups returns u, the number of heterogeneity groups.
func (p Profile) NumGroups() int { return len(p.groups) }

// WeightedSensingArea returns s_c = Σ_y c_y·s_y, the paper's weighted
// summation of sensing areas — the quantity compared against the critical
// sensing area.
func (p Profile) WeightedSensingArea() float64 {
	s := 0.0
	for _, g := range p.groups {
		s += g.Fraction * g.SensingArea()
	}
	return s
}

// MaxRadius returns the largest group radius; spatial indexes use it as
// the query radius bound.
func (p Profile) MaxRadius() float64 {
	r := 0.0
	for _, g := range p.groups {
		if g.Radius > r {
			r = g.Radius
		}
	}
	return r
}

// Counts apportions n sensors to the groups so that group y receives
// approximately c_y·n and the counts sum to exactly n (largest-remainder
// rounding, ties broken by group order).
func (p Profile) Counts(n int) []int {
	if n < 0 {
		n = 0
	}
	counts := make([]int, len(p.groups))
	type rem struct {
		idx  int
		frac float64
	}
	remainders := make([]rem, len(p.groups))
	assigned := 0
	for i, g := range p.groups {
		exact := g.Fraction * float64(n)
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		remainders[i] = rem{idx: i, frac: exact - math.Floor(exact)}
	}
	sort.SliceStable(remainders, func(a, b int) bool {
		return remainders[a].frac > remainders[b].frac
	})
	for i := 0; assigned < n; i++ {
		counts[remainders[i%len(remainders)].idx]++
		assigned++
	}
	return counts
}

// ScaleToArea returns a copy of the profile with every radius scaled by
// the same factor so that the weighted sensing area equals target. Since
// s_y ∝ r_y², the factor is √(target/current). Apertures and fractions
// are unchanged, preserving the heterogeneity "shape" — this is how the
// experiments sweep a profile across multiples of the critical sensing
// area.
func (p Profile) ScaleToArea(target float64) (Profile, error) {
	if !(target > 0) || math.IsInf(target, 0) {
		return Profile{}, fmt.Errorf("%w: got %v", ErrNonPositiveArea, target)
	}
	current := p.WeightedSensingArea()
	k := math.Sqrt(target / current)
	groups := make([]GroupSpec, len(p.groups))
	for i, g := range p.groups {
		g.Radius *= k
		groups[i] = g
	}
	return NewProfile(groups...)
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("Profile{u=%d, s_c=%.6g}", len(p.groups), p.WeightedSensingArea())
}
