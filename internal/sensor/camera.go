// Package sensor implements the paper's camera model: binary-sector
// cameras (Section II-A) and heterogeneous group profiles (Section II,
// "we partition sensors to u groups G_1 … G_u").
package sensor

import (
	"fmt"

	"fullview/internal/geom"
)

// Camera is a camera sensor under the binary sector model: it senses
// perfectly inside a sector of radius Radius and central angle Aperture
// whose bisector points along Orient, and senses nothing outside it. The
// orientation is fixed once deployed (the paper's cameras cannot steer).
type Camera struct {
	// Pos is the camera location on the operational torus.
	Pos geom.Vec
	// Orient is the orientation f⃗ — the angular bisector of the sensing
	// sector — in [0, 2π).
	Orient float64
	// Radius is the sensing radius r.
	Radius float64
	// Aperture is the angle of view φ in (0, 2π].
	Aperture float64
	// Group is the index of the heterogeneity group this camera belongs
	// to (0-based), or 0 for homogeneous networks.
	Group int
}

// SensingArea returns s = φ·r²/2, the area of the sensing sector. The
// paper's central observation (Section VI-A) is that under uniform
// deployment this single number — not r or φ individually — determines a
// camera's contribution to full-view coverage.
func (c Camera) SensingArea() float64 {
	return c.Aperture * c.Radius * c.Radius / 2
}

// Covers reports whether the camera senses point p on torus t: p must be
// within Radius of the camera and the direction camera→p must lie within
// Aperture/2 of the orientation. Boundary cases (exactly at radius or at
// the sector edge) count as covered. A point exactly at the camera
// position is covered.
func (c Camera) Covers(t geom.Torus, p geom.Vec) bool {
	d := t.Delta(c.Pos, p)
	if d.Norm2() > c.Radius*c.Radius {
		return false
	}
	if d.IsZero() {
		return true
	}
	return geom.AngularDistance(d.Angle(), c.Orient) <= c.Aperture/2
}

// ViewedDirection returns the paper's "viewed direction" of point p with
// respect to this camera: the direction of the vector P→S from the object
// to the sensor, in [0, 2π). The full-view condition compares this
// direction against the object's facing direction.
func (c Camera) ViewedDirection(t geom.Torus, p geom.Vec) float64 {
	return t.Delta(p, c.Pos).Angle()
}

// Validate reports whether the camera's parameters are admissible.
func (c Camera) Validate() error {
	if !(c.Radius > 0) {
		return fmt.Errorf("sensor: camera radius must be positive, got %v", c.Radius)
	}
	if !(c.Aperture > 0) || c.Aperture > geom.TwoPi {
		return fmt.Errorf("sensor: camera aperture must be in (0, 2π], got %v", c.Aperture)
	}
	return nil
}

// String implements fmt.Stringer.
func (c Camera) String() string {
	return fmt.Sprintf("Camera{pos=%v orient=%.4g r=%.4g φ=%.4g group=%d}",
		c.Pos, c.Orient, c.Radius, c.Aperture, c.Group)
}
