package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"fullview/internal/geom"
)

func TestCameraSensingArea(t *testing.T) {
	tests := []struct {
		name string
		give Camera
		want float64
	}{
		{
			name: "quarter aperture unit radius",
			give: Camera{Radius: 1, Aperture: math.Pi / 2},
			want: math.Pi / 4,
		},
		{
			name: "full circle is disk",
			give: Camera{Radius: 2, Aperture: 2 * math.Pi},
			want: 4 * math.Pi,
		},
		{
			name: "half radius quarters area",
			give: Camera{Radius: 0.5, Aperture: 1},
			want: 0.125,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.SensingArea(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("SensingArea = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCameraCovers(t *testing.T) {
	// Camera at center, looking east (+x), 90° aperture, radius 0.2.
	cam := Camera{
		Pos:      geom.V(0.5, 0.5),
		Orient:   0,
		Radius:   0.2,
		Aperture: math.Pi / 2,
	}
	tests := []struct {
		name string
		p    geom.Vec
		want bool
	}{
		{name: "dead ahead inside", p: geom.V(0.6, 0.5), want: true},
		{name: "at exact radius", p: geom.V(0.7, 0.5), want: true},
		{name: "beyond radius", p: geom.V(0.71, 0.5), want: false},
		{name: "on upper sector edge", p: geom.V(0.5+0.1*math.Cos(math.Pi/4), 0.5+0.1*math.Sin(math.Pi/4)), want: true},
		{name: "outside angular range", p: geom.V(0.5, 0.6), want: false},
		{name: "behind camera", p: geom.V(0.4, 0.5), want: false},
		{name: "at camera position", p: geom.V(0.5, 0.5), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := cam.Covers(geom.UnitTorus, tt.p); got != tt.want {
				t.Errorf("Covers(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestCameraCoversAcrossTorusSeam(t *testing.T) {
	// Camera near the right edge looking east must see points wrapped to
	// the left edge.
	cam := Camera{
		Pos:      geom.V(0.95, 0.5),
		Orient:   0,
		Radius:   0.2,
		Aperture: math.Pi / 2,
	}
	if !cam.Covers(geom.UnitTorus, geom.V(0.05, 0.5)) {
		t.Error("camera should cover across the seam")
	}
	if cam.Covers(geom.UnitTorus, geom.V(0.25, 0.5)) {
		t.Error("point beyond radius across the seam should not be covered")
	}
}

func TestCameraFullCircleApertureIsDisk(t *testing.T) {
	cam := Camera{Pos: geom.V(0.5, 0.5), Orient: 1.234, Radius: 0.3, Aperture: 2 * math.Pi}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := geom.UnitTorus.Wrap(geom.V(x, y))
		inDisk := geom.UnitTorus.Dist(cam.Pos, p) <= cam.Radius
		return cam.Covers(geom.UnitTorus, p) == inDisk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestViewedDirection(t *testing.T) {
	cam := Camera{Pos: geom.V(0.7, 0.5), Orient: math.Pi, Radius: 0.5, Aperture: math.Pi}
	p := geom.V(0.5, 0.5)
	// Vector P→S points east.
	if got := cam.ViewedDirection(geom.UnitTorus, p); math.Abs(got) > 1e-12 {
		t.Errorf("ViewedDirection = %v, want 0", got)
	}
	// Viewed direction wraps across the seam too.
	cam2 := Camera{Pos: geom.V(0.05, 0.5), Orient: math.Pi, Radius: 0.5, Aperture: math.Pi}
	p2 := geom.V(0.95, 0.5)
	if got := cam2.ViewedDirection(geom.UnitTorus, p2); math.Abs(got) > 1e-12 {
		t.Errorf("seam ViewedDirection = %v, want 0", got)
	}
}

func TestViewedDirectionOppositeOfCameraView(t *testing.T) {
	// The viewed direction (P→S) is the reverse of the camera→point ray.
	f := func(sx, sy, px, py float64) bool {
		if math.IsNaN(sx + sy + px + py) {
			return true
		}
		s := geom.UnitTorus.Wrap(geom.V(sx, sy))
		p := geom.UnitTorus.Wrap(geom.V(px, py))
		if geom.UnitTorus.Dist(s, p) < 1e-9 || geom.UnitTorus.Dist(s, p) > 0.49 {
			return true // degenerate or ambiguous shortest path
		}
		cam := Camera{Pos: s, Radius: 1, Aperture: math.Pi}
		toPoint := geom.UnitTorus.Delta(s, p).Angle()
		viewed := cam.ViewedDirection(geom.UnitTorus, p)
		return geom.AngularDistance(viewed, toPoint+math.Pi) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCameraValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Camera
		wantErr bool
	}{
		{name: "valid", give: Camera{Radius: 0.1, Aperture: 1}},
		{name: "zero radius", give: Camera{Radius: 0, Aperture: 1}, wantErr: true},
		{name: "negative radius", give: Camera{Radius: -1, Aperture: 1}, wantErr: true},
		{name: "zero aperture", give: Camera{Radius: 1, Aperture: 0}, wantErr: true},
		{name: "aperture beyond full circle", give: Camera{Radius: 1, Aperture: 7}, wantErr: true},
		{name: "nan radius", give: Camera{Radius: math.NaN(), Aperture: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCameraString(t *testing.T) {
	c := Camera{Pos: geom.V(0.1, 0.2), Orient: 1, Radius: 0.3, Aperture: 2, Group: 1}
	if got := c.String(); got == "" {
		t.Error("String returned empty")
	}
}
