// Package version identifies deployed binaries: every CLI and the fvcd
// daemon expose a -version flag reporting the module version and VCS
// revision baked into the build by the Go toolchain, so bug reports and
// production deployments can name the exact code they run.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns the one-line version report for the named binary, e.g.
//
//	fvcd fullview (devel) rev 1a2b3c4d5e6f dirty go1.22.0 linux/amd64
//
// Fields degrade gracefully: binaries built outside a module or without
// VCS metadata (go build of a file, some CI tarballs) omit the missing
// parts rather than failing.
func String(binary string) string {
	var b strings.Builder
	b.WriteString(binary)
	info, ok := debug.ReadBuildInfo()
	if ok {
		if info.Main.Path != "" {
			fmt.Fprintf(&b, " %s", info.Main.Path)
		}
		if v := info.Main.Version; v != "" {
			fmt.Fprintf(&b, " %s", v)
		}
		if rev, dirty := vcs(info); rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			fmt.Fprintf(&b, " rev %s", rev)
			if dirty {
				b.WriteString(" dirty")
			}
		}
	}
	fmt.Fprintf(&b, " %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}

// vcs extracts the VCS revision and dirty flag from build settings.
func vcs(info *debug.BuildInfo) (rev string, dirty bool) {
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, dirty
}
