package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestInertByDefault(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("package armed with no hooks set")
	}
	if err := Fire(JournalWrite); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

// TestDisarmedFireZeroAlloc pins the cost contract that lets injection
// points sit on hot paths: a disarmed Fire must not allocate.
func TestDisarmedFireZeroAlloc(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		_ = Fire(Handler)
	})
	if allocs != 0 {
		t.Fatalf("disarmed Fire allocates %v times per call, want 0", allocs)
	}
}

func TestSetFireRemove(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	remove := Set(JournalWrite, Error(boom))
	if !Armed() {
		t.Fatal("Set did not arm")
	}
	if err := Fire(JournalWrite); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want %v", err, boom)
	}
	// Other points stay inert.
	if err := Fire(Handler); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	remove()
	if Armed() {
		t.Fatal("remove did not disarm the last hook")
	}
	if err := Fire(JournalWrite); err != nil {
		t.Fatalf("Fire after remove = %v, want nil", err)
	}
}

// TestStaleRemoverIsNoOp checks that a remover from a replaced hook
// cannot disarm its replacement.
func TestStaleRemoverIsNoOp(t *testing.T) {
	defer Reset()
	first := errors.New("first")
	second := errors.New("second")
	removeFirst := Set(DepcacheBuild, Error(first))
	Set(DepcacheBuild, Error(second))
	removeFirst() // stale: must not remove the second hook
	if err := Fire(DepcacheBuild); !errors.Is(err, second) {
		t.Fatalf("Fire = %v, want the replacement hook's %v", err, second)
	}
}

func TestFailN(t *testing.T) {
	defer Reset()
	transient := errors.New("transient")
	Set(JournalWrite, FailN(transient, 2))
	for i := 0; i < 2; i++ {
		if err := Fire(JournalWrite); !errors.Is(err, transient) {
			t.Fatalf("firing %d = %v, want %v", i, err, transient)
		}
	}
	if err := Fire(JournalWrite); err != nil {
		t.Fatalf("firing after N failures = %v, want nil", err)
	}
}

func TestSleepHook(t *testing.T) {
	defer Reset()
	Set(QueryLatency, Sleep(10*time.Millisecond))
	t0 := time.Now()
	if err := Fire(QueryLatency); err != nil {
		t.Fatalf("Sleep hook returned %v", err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Fatalf("Sleep hook returned after %v, want ≥ 10ms", d)
	}
}

// TestPanicHookPropagates checks a panicking hook reaches the caller —
// the mechanism the chaos suite uses to simulate handler bugs.
func TestPanicHookPropagates(t *testing.T) {
	defer Reset()
	Set(Handler, func() error { panic("injected") })
	defer func() {
		if p := recover(); p != "injected" {
			t.Fatalf("recovered %v, want the injected panic", p)
		}
	}()
	_ = Fire(Handler)
	t.Fatal("panicking hook did not panic")
}

// TestConcurrentFire hammers Fire from many goroutines while hooks are
// armed and removed — race-detector fodder for the global state.
func TestConcurrentFire(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Fire(JournalWrite)
					_ = Fire(Handler)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		remove := Set(JournalWrite, Error(errors.New("x")))
		_ = Fire(JournalWrite)
		remove()
	}
	close(stop)
	wg.Wait()
}
