// Package faultinject provides named, deterministic fault-injection
// points for chaos testing the service layer. Production code calls
// Fire at well-known sites (journal write, journal replay, deployment
// cache build, handler execution, query latency); the package is inert
// unless a test arms a hook, and the disarmed fast path is a single
// atomic load — no lock, no map lookup, no allocation — so injection
// points can sit on hot paths without cost.
//
// Hooks express every failure mode the chaos suite needs:
//
//   - return an error     → the site fails with that error
//   - panic               → the site panics (exercising recovery paths)
//   - sleep, then nil     → the site is slow (exercising deadlines)
//
// Arm a hook with Set (which returns its own removal function) and
// always disarm — via the returned remover or Reset — before the test
// ends, since hooks are process-global. Helpers Error and Sleep build
// the two common hook shapes; compose anything else inline.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site compiled into production code.
type Point string

// The service layer's injection points.
const (
	// JournalWrite fires inside depjournal.Append, before the record is
	// written. An error makes the append fail as if the disk did.
	JournalWrite Point = "journal-write"
	// JournalReplay fires at the start of the server's startup replay of
	// the deployment journal. A sleeping hook holds the service in its
	// "starting" readiness state.
	JournalReplay Point = "journal-replay"
	// DepcacheBuild fires inside the deployment-cache build function,
	// before the spatial index is constructed.
	DepcacheBuild Point = "depcache-build"
	// Handler fires immediately before a /v1 handler executes, inside
	// the panic-recovery middleware. A panicking hook simulates a
	// handler bug.
	Handler Point = "handler"
	// QueryLatency fires at the top of the query handler's evaluation,
	// after validation. A sleeping hook simulates a pathological slow
	// query for deadline tests.
	QueryLatency Point = "query-latency"
	// JobJournalWrite fires inside every job-journal write (spec, band,
	// and terminal records). An error makes the write fail as if the
	// disk did; the job then runs memory-only and the service reports
	// degraded readiness.
	JobJournalWrite Point = "job-journal-write"
	// JobReplay fires at the start of the job manager's startup replay
	// of the per-job journals. An error abandons the replay (the daemon
	// starts with no restored jobs); a sleeping hook holds the service
	// in its "starting" readiness state.
	JobReplay Point = "job-replay"
	// JobBand fires before each job band executes (once per retry
	// attempt). An error fails the attempt — wrap it with
	// experiment.Transient to exercise the bounded-retry path — and a
	// blocking hook holds a job mid-run deterministically.
	JobBand Point = "job-band"
	// JobPanic fires inside the job worker's per-band panic containment,
	// right next to JobBand. A panicking hook simulates a worker bug;
	// the job must fail with a structured error while the daemon keeps
	// serving.
	JobPanic Point = "job-panic"
	// SnapshotFetch fires before a fresh replica fetches a warm-start
	// journal snapshot from a cluster peer. An error makes the fetch
	// fail as if every peer were unreachable; the replica then starts
	// cold and reports degraded readiness while continuing to serve.
	SnapshotFetch Point = "snapshot-fetch"
	// MirrorDrop fires inside each mirror-post attempt, before the HTTP
	// request is sent. An error fails that attempt exactly like a
	// transport error: it consumes one of the bounded retries, and a
	// hook that keeps firing exhausts them so the record is dropped and
	// counted — the sustained-mirror-loss half of the chaos suite.
	MirrorDrop Point = "mirror-drop"
	// DigestFetch fires before the anti-entropy reconciler fetches a
	// peer's digest map. An error skips that peer for the round, as if
	// it were partitioned away.
	DigestFetch Point = "digest-fetch"
	// AntiEntropyApply fires after a divergent deployment's snapshot is
	// fetched and parsed, before it is applied locally. An error abandons
	// that repair (it is retried next round), exercising the
	// repair-interrupted path.
	AntiEntropyApply Point = "antientropy-apply"
)

// hook is an armed hook plus the generation it was installed at, so a
// remover can tell whether its hook is still the live one.
type hook struct {
	fn  func() error
	gen uint64
}

var (
	// armed is the disarmed-path gate: false means every Fire returns
	// nil after one atomic load.
	armed atomic.Bool

	mu    sync.Mutex
	gen   uint64
	hooks map[Point]hook
)

// Fire runs the hook armed at p, if any. With nothing armed anywhere it
// costs one atomic load and returns nil; it never allocates on that
// path. The hook's error (or panic) propagates to the caller.
func Fire(p Point) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	h, ok := hooks[p]
	mu.Unlock()
	if !ok {
		return nil
	}
	return h.fn()
}

// Set arms fn at p, replacing any previous hook there, and returns a
// function that removes exactly this hook (a later Set at the same
// point wins; the stale remover is then a no-op).
func Set(p Point, fn func() error) (remove func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[Point]hook)
	}
	gen++
	mine := gen
	hooks[p] = hook{fn: fn, gen: mine}
	armed.Store(true)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if h, ok := hooks[p]; ok && h.gen == mine {
			delete(hooks, p)
		}
		if len(hooks) == 0 {
			armed.Store(false)
		}
	}
}

// Reset disarms every hook, returning the package to its inert state.
// Tests that arm hooks should defer Reset.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	armed.Store(false)
}

// Armed reports whether any hook is currently armed (for test sanity
// checks).
func Armed() bool { return armed.Load() }

// Error returns a hook that always fails with err.
func Error(err error) func() error {
	return func() error { return err }
}

// Sleep returns a hook that sleeps d and then succeeds — the latency
// fault for deadline tests.
func Sleep(d time.Duration) func() error {
	return func() error {
		time.Sleep(d)
		return nil
	}
}

// FailN returns a hook that fails with err for the first n firings and
// succeeds afterwards — the transient fault for retry tests.
func FailN(err error, n int64) func() error {
	var fired atomic.Int64
	return func() error {
		if fired.Add(1) <= n {
			return err
		}
		return nil
	}
}
