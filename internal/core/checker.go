// Package core implements the paper's contribution: the full-view
// coverage test (Definition 1), the geometric necessary condition
// (Section III, 2θ-sectors), the geometric sufficient condition
// (Section IV, θ-sectors), classic k-coverage, and region-level coverage
// over the dense grid that stands in for the whole operational area.
package core

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// ErrBadTheta reports an effective angle outside (0, π].
var ErrBadTheta = errors.New("core: effective angle θ must be in (0, π]")

// Checker evaluates coverage predicates for one deployed network and one
// effective angle θ. It reuses internal buffers across calls, so a
// Checker must not be used from multiple goroutines concurrently; use
// Clone to derive one per worker instead (cloning shares the immutable
// spatial index and costs one scratch-buffer allocation).
type Checker struct {
	index      spatial.Source
	theta      float64
	necessary  occupancy // anchored 2θ partition, O(m) evaluator
	sufficient occupancy // anchored θ partition
	dirBuf     []float64
	batch      spatial.BatchScratch // SurveyBatch gather scratch
}

// NewChecker builds a Checker for the network with effective angle
// theta ∈ (0, π].
func NewChecker(net *sensor.Network, theta float64) (*Checker, error) {
	return newChecker(spatial.NewIndex(net), theta)
}

// NewCheckerFromIndex builds a Checker sharing an existing immutable
// spatial index. Use this to amortise index construction across several
// checkers (e.g. different θ on the same deployment).
func NewCheckerFromIndex(ix *spatial.Index, theta float64) (*Checker, error) {
	return newChecker(ix, theta)
}

// NewCheckerFromSource builds a Checker over any spatial.Source — an
// immutable Index, a MutableIndex absorbing churn, or a pinned View.
// Verdicts against a MutableIndex reflect whatever version each point
// evaluation observes; pin a Snapshot first when a whole batch must see
// one consistent version.
func NewCheckerFromSource(src spatial.Source, theta float64) (*Checker, error) {
	return newChecker(src, theta)
}

func newChecker(ix spatial.Source, theta float64) (*Checker, error) {
	if !(theta > 0) || theta > math.Pi {
		return nil, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	necessary, err := newOccupancy(2 * theta)
	if err != nil {
		return nil, fmt.Errorf("core: necessary partition: %w", err)
	}
	sufficient, err := newOccupancy(theta)
	if err != nil {
		return nil, fmt.Errorf("core: sufficient partition: %w", err)
	}
	return &Checker{
		index:      ix,
		theta:      theta,
		necessary:  necessary,
		sufficient: sufficient,
		dirBuf:     make([]float64, 0, 64),
	}, nil
}

// Clone returns an independent Checker over the same network and
// effective angle: the immutable spatial index and sector partitions
// are shared, the mutable scratch buffers are private. Use it to give
// every goroutine of a parallel sweep its own Checker.
func (c *Checker) Clone() *Checker {
	clone := *c
	clone.necessary = c.necessary.clone()
	clone.sufficient = c.sufficient.clone()
	clone.dirBuf = make([]float64, 0, cap(c.dirBuf))
	clone.batch = spatial.BatchScratch{}
	return &clone
}

// Theta returns the effective angle θ.
func (c *Checker) Theta() float64 { return c.theta }

// Index returns the underlying spatial source.
func (c *Checker) Index() spatial.Source { return c.index }

// viewedDirections fills the scratch buffer with the viewed directions of
// all cameras covering p.
func (c *Checker) viewedDirections(p geom.Vec) []float64 {
	c.dirBuf = c.index.AppendViewedDirections(c.dirBuf[:0], p)
	return c.dirBuf
}

// FullViewCovered reports whether point p is full-view covered
// (Definition 1): for every facing direction d⃗ there is a covering
// camera S with ∠(d⃗, PS) ≤ θ. Equivalently, the maximum circular gap
// between the viewed directions of the covering cameras is at most 2θ.
func (c *Checker) FullViewCovered(p geom.Vec) bool {
	dirs := c.viewedDirections(p)
	if len(dirs) == 0 {
		return false
	}
	gap, _ := geom.MaxCircularGapInPlace(dirs)
	return gap <= 2*c.theta
}

// UnsafeDirection returns a facing direction witnessing that p is not
// full-view covered (the bisector of the widest viewed-direction gap),
// or ok == false when p is full-view covered.
func (c *Checker) UnsafeDirection(p geom.Vec) (dir float64, ok bool) {
	dirs := c.viewedDirections(p)
	gap, bisector := geom.MaxCircularGapInPlace(dirs)
	if len(dirs) > 0 && gap <= 2*c.theta {
		return 0, false
	}
	return bisector, true
}

// MeetsNecessary reports whether p satisfies the paper's geometric
// necessary condition for full-view coverage: every sector of the
// anchored 2θ partition (including the re-centred remainder sector)
// contains the viewed direction of at least one covering camera.
func (c *Checker) MeetsNecessary(p geom.Vec) bool {
	return c.necessary.allOccupied(c.viewedDirections(p))
}

// MeetsSufficient reports whether p satisfies the paper's geometric
// sufficient condition: every sector of the anchored θ partition
// contains the viewed direction of at least one covering camera. When it
// holds, p is guaranteed full-view covered.
func (c *Checker) MeetsSufficient(p geom.Vec) bool {
	return c.sufficient.allOccupied(c.viewedDirections(p))
}

// CoverageCount returns the number of cameras covering p (its
// k-coverage multiplicity).
func (c *Checker) CoverageCount(p geom.Vec) int {
	return c.index.CountCovering(p)
}

// KCovered reports whether at least k cameras cover p. KCovered(p, 1) is
// traditional 1-coverage.
func (c *Checker) KCovered(p geom.Vec, k int) bool {
	if k <= 0 {
		return true
	}
	return c.index.CountCovering(p) >= k
}

// sectorsAllOccupied reports whether every sector contains at least one
// of the directions. It is the O(sectors·dirs) reference implementation
// of occupancy.allOccupied, retained as the oracle for the randomized
// equivalence tests.
func sectorsAllOccupied(sectors []geom.Sector, dirs []float64) bool {
	for _, s := range sectors {
		occupied := false
		for _, d := range dirs {
			if s.Contains(d) {
				occupied = true
				break
			}
		}
		if !occupied {
			return false
		}
	}
	return true
}
