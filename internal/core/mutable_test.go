package core

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// mutatedPair builds a MutableIndex, applies a mutation burst, and
// returns it next to a fresh network holding the identical final
// camera list.
func mutatedPair(t *testing.T) (*spatial.MutableIndex, *sensor.Network) {
	t.Helper()
	p, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.08, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.15, Aperture: math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, p, 80, rng.New(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	m := spatial.NewMutableIndex(net, spatial.MutableOptions{RebuildFraction: -1})
	if _, err := m.Remove([]int{70, 31, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reaim([]spatial.ReaimOp{{Index: 0, Orient: 2.1}, {Index: 40, Orient: -0.7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add([]sensor.Camera{
		{Pos: geom.V(0.33, 0.81), Orient: 1.0, Radius: 0.12, Aperture: math.Pi / 2},
		{Pos: geom.V(0.92, 0.04), Orient: -2.5, Radius: 0.18, Aperture: math.Pi / 3},
	}); err != nil {
		t.Fatal(err)
	}
	final, err := sensor.NewNetwork(geom.UnitTorus, m.Cameras())
	if err != nil {
		t.Fatal(err)
	}
	return m, final
}

// TestCheckerOverMutableEquivalence checks that Checker and
// MultiChecker verdicts through a churned MutableIndex are
// bit-identical to checkers over a fresh network built from the final
// camera list — through the overlay and again after the rebuild.
func TestCheckerOverMutableEquivalence(t *testing.T) {
	m, final := mutatedPair(t)
	thetas := []float64{math.Pi / 6, math.Pi / 2, math.Pi}

	freshMC, err := NewMultiChecker(final, thetas)
	if err != nil {
		t.Fatal(err)
	}
	freshC, err := NewChecker(final, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}

	check := func(tag string) {
		t.Helper()
		mc, err := NewMultiCheckerFromSource(m, thetas)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCheckerFromSource(m, math.Pi/2)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(23, 1)
		for trial := 0; trial < 400; trial++ {
			p := geom.V(r.Float64(), r.Float64())
			got, want := mc.Evaluate(p), freshMC.Evaluate(p)
			if got.NumCovering != want.NumCovering || got.MaxGap != want.MaxGap {
				t.Fatalf("%s trial %d: Evaluate (%d, %v) vs fresh (%d, %v)",
					tag, trial, got.NumCovering, got.MaxGap, want.NumCovering, want.MaxGap)
			}
			for i := range got.PerTheta {
				if got.PerTheta[i] != want.PerTheta[i] {
					t.Fatalf("%s trial %d θ=%v: %+v vs fresh %+v",
						tag, trial, thetas[i], got.PerTheta[i], want.PerTheta[i])
				}
			}
			if g, w := c.FullViewCovered(p), freshC.FullViewCovered(p); g != w {
				t.Fatalf("%s trial %d: FullViewCovered %v vs fresh %v", tag, trial, g, w)
			}
			if g, w := c.CoverageCount(p), freshC.CoverageCount(p); g != w {
				t.Fatalf("%s trial %d: CoverageCount %d vs fresh %d", tag, trial, g, w)
			}
		}
	}
	if m.OverlaySize() == 0 {
		t.Fatal("mutation burst left no overlay; test would not exercise the overlay path")
	}
	check("overlay")
	m.ForceRebuild()
	m.WaitRebuild()
	check("post-rebuild")
}

// TestCheckerOverlayEmptyZeroAlloc pins the overlay-empty fast path:
// evaluating points through a MutableIndex whose overlay is empty (at
// construction, and again after a rebuild folded churn away) must stay
// at zero allocations per point, exactly like the immutable index.
func TestCheckerOverlayEmptyZeroAlloc(t *testing.T) {
	m, _ := mutatedPair(t)
	m.ForceRebuild()
	m.WaitRebuild()
	if m.OverlaySize() != 0 {
		t.Fatalf("overlay size %d after rebuild, want 0", m.OverlaySize())
	}
	c, err := NewCheckerFromSource(m, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMultiCheckerFromSource(m, []float64{math.Pi / 4, math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(29, 0)
	// Prime the internal buffers, then demand allocation-free steady
	// state.
	for i := 0; i < 50; i++ {
		p := geom.V(r.Float64(), r.Float64())
		c.FullViewCovered(p)
		mc.Evaluate(p)
	}
	var p geom.Vec
	if allocs := testing.AllocsPerRun(200, func() {
		p = geom.V(r.Float64(), r.Float64())
		c.FullViewCovered(p)
	}); allocs != 0 {
		t.Errorf("Checker.FullViewCovered allocates %.2f per point on the overlay-empty path, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		p = geom.V(r.Float64(), r.Float64())
		mc.Evaluate(p)
	}); allocs != 0 {
		t.Errorf("MultiChecker.Evaluate allocates %.2f per point on the overlay-empty path, want 0", allocs)
	}
	_ = p
}
