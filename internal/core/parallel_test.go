package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestSurveyRegionParallelMatchesSequential(t *testing.T) {
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.15, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.25, Aperture: math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 600, rng.New(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := c.SurveyRegion(points)
	for _, workers := range []int{0, 1, 2, 3, 4, 7, 16, runtime.GOMAXPROCS(0)} {
		got := c.SurveyRegionParallel(points, workers)
		if got != want {
			t.Errorf("workers=%d: %+v != sequential %+v", workers, got, want)
		}
		viaCtx, err := c.SurveyRegionContext(context.Background(), points, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if viaCtx != want {
			t.Errorf("workers=%d: context sweep %+v != sequential %+v", workers, viaCtx, want)
		}
	}
}

func TestSurveyRegionContextCancelled(t *testing.T) {
	c := denseRandomChecker(t, 200, math.Pi/3, 3)
	points, err := deploy.GridPoints(geom.UnitTorus, 40)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := c.SurveyRegionContext(ctx, points, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got != (RegionStats{}) {
		t.Errorf("cancelled sweep returned stats %+v", got)
	}
}

func TestCheckerCloneIsIndependent(t *testing.T) {
	c := denseRandomChecker(t, 300, math.Pi/4, 4)
	clone := c.Clone()
	if clone == c {
		t.Fatal("Clone returned the same checker")
	}
	if clone.Index() != c.Index() {
		t.Error("Clone must share the spatial index")
	}
	if clone.Theta() != c.Theta() {
		t.Errorf("Clone theta = %v, want %v", clone.Theta(), c.Theta())
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if c.Report(p) != clone.Report(p) {
			t.Fatalf("clone disagrees with original at %v", p)
		}
	}
}

func TestSurveyRegionParallelEmpty(t *testing.T) {
	c := denseRandomChecker(t, 10, math.Pi/2, 1)
	got := c.SurveyRegionParallel(nil, 4)
	if got.Points != 0 || got.MeanCovering != 0 {
		t.Errorf("empty parallel survey = %+v", got)
	}
}

func TestSurveyRegionParallelMoreWorkersThanPoints(t *testing.T) {
	c := denseRandomChecker(t, 100, math.Pi/2, 2)
	points, err := deploy.GridPoints(geom.UnitTorus, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := c.SurveyRegion(points)
	if got := c.SurveyRegionParallel(points, 64); got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func BenchmarkSurveySequential(b *testing.B) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 2000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/4)
	if err != nil {
		b.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SurveyRegion(points)
	}
}

func BenchmarkSurveyParallel(b *testing.B) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 2000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/4)
	if err != nil {
		b.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SurveyRegionParallel(points, 0)
	}
}
