package core

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestSurveyRegionParallelMatchesSequential(t *testing.T) {
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.15, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.25, Aperture: math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 600, rng.New(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := c.SurveyRegion(points)
	for _, workers := range []int{0, 1, 2, 4, 7, 16} {
		got := c.SurveyRegionParallel(points, workers)
		if got != want {
			t.Errorf("workers=%d: %+v != sequential %+v", workers, got, want)
		}
	}
}

func TestSurveyRegionParallelEmpty(t *testing.T) {
	c := denseRandomChecker(t, 10, math.Pi/2, 1)
	got := c.SurveyRegionParallel(nil, 4)
	if got.Points != 0 || got.MeanCovering != 0 {
		t.Errorf("empty parallel survey = %+v", got)
	}
}

func TestSurveyRegionParallelMoreWorkersThanPoints(t *testing.T) {
	c := denseRandomChecker(t, 100, math.Pi/2, 2)
	points, err := deploy.GridPoints(geom.UnitTorus, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := c.SurveyRegion(points)
	if got := c.SurveyRegionParallel(points, 64); got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func BenchmarkSurveySequential(b *testing.B) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 2000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/4)
	if err != nil {
		b.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SurveyRegion(points)
	}
}

func BenchmarkSurveyParallel(b *testing.B) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 2000, rng.New(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/4)
	if err != nil {
		b.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SurveyRegionParallel(points, 0)
	}
}
