package core

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// camerasAt builds cameras whose viewed directions from point p are
// exactly the given angles: each camera sits at distance 0.1 from p in
// direction β, oriented back toward p, with a generous sector.
func camerasAt(p geom.Vec, viewedDirs ...float64) []sensor.Camera {
	cams := make([]sensor.Camera, len(viewedDirs))
	for i, beta := range viewedDirs {
		pos := geom.UnitTorus.Translate(p, geom.FromPolar(0.1, beta))
		cams[i] = sensor.Camera{
			Pos:      pos,
			Orient:   geom.NormalizeAngle(beta + math.Pi),
			Radius:   0.2,
			Aperture: math.Pi / 2,
		}
	}
	return cams
}

func checkerFor(t *testing.T, theta float64, cams []sensor.Camera) *Checker {
	t.Helper()
	net, err := sensor.NewNetwork(geom.UnitTorus, cams)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCheckerValidatesTheta(t *testing.T) {
	net, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, -0.1, math.Pi + 0.01, math.NaN()} {
		if _, err := NewChecker(net, theta); !errors.Is(err, ErrBadTheta) {
			t.Errorf("theta %v: error = %v, want ErrBadTheta", theta, err)
		}
	}
	if c, err := NewChecker(net, math.Pi); err != nil || c.Theta() != math.Pi {
		t.Errorf("theta π should be accepted: %v", err)
	}
}

func TestFullViewCoveredSquareOfCameras(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Four cameras at 0, π/2, π, 3π/2: gaps of π/2 each.
	square := camerasAt(p, 0, math.Pi/2, math.Pi, 3*math.Pi/2)

	tests := []struct {
		name  string
		theta float64
		want  bool
	}{
		{name: "theta quarter pi covers", theta: math.Pi / 4, want: true},
		{name: "theta slightly below quarter fails", theta: math.Pi/4 - 0.01, want: false},
		{name: "theta pi covers", theta: math.Pi, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := checkerFor(t, tt.theta, square)
			if got := c.FullViewCovered(p); got != tt.want {
				t.Errorf("FullViewCovered = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFullViewCoveredNoCameras(t *testing.T) {
	c := checkerFor(t, math.Pi, nil)
	if c.FullViewCovered(geom.V(0.5, 0.5)) {
		t.Error("empty network cannot full-view cover anything, even at θ = π")
	}
}

func TestFullViewThetaPiEquals1Coverage(t *testing.T) {
	p := geom.V(0.5, 0.5)
	c := checkerFor(t, math.Pi, camerasAt(p, 1.0))
	// Section VII-A: at θ = π full-view coverage degenerates to
	// 1-coverage — a single covering camera suffices.
	if !c.FullViewCovered(p) {
		t.Error("one covering camera at θ = π should full-view cover")
	}
	if !c.MeetsNecessary(p) {
		t.Error("necessary condition should hold (single 2π sector)")
	}
}

func TestUnsafeDirection(t *testing.T) {
	p := geom.V(0.5, 0.5)
	// Cameras only on the east side: facing west is unsafe.
	c := checkerFor(t, math.Pi/4, camerasAt(p, -0.3, 0, 0.3))
	dir, bad := c.UnsafeDirection(p)
	if !bad {
		t.Fatal("point should not be full-view covered")
	}
	if geom.AngularDistance(dir, math.Pi) > 0.35 {
		t.Errorf("unsafe direction %v should point roughly west (π)", dir)
	}
	// Verify the witness: no covering camera within θ of it.
	net, err := sensor.NewNetwork(geom.UnitTorus, camerasAt(p, -0.3, 0, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range net.ViewedDirections(p) {
		if geom.AngularDistance(dir, beta) <= c.Theta() {
			t.Errorf("witness direction %v is within θ of camera at %v", dir, beta)
		}
	}

	covered := checkerFor(t, math.Pi/4, camerasAt(p, 0, math.Pi/2, math.Pi, 3*math.Pi/2))
	if _, bad := covered.UnsafeDirection(p); bad {
		t.Error("covered point should have no unsafe direction")
	}
}

func TestMeetsNecessaryAndSufficient(t *testing.T) {
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 4 // necessary: 4 sectors of π/2; sufficient: 8 sectors of π/4.

	tests := []struct {
		name           string
		dirs           []float64
		wantNecessary  bool
		wantSufficient bool
	}{
		{
			name:           "one per quadrant meets necessary only",
			dirs:           []float64{0.1, math.Pi/2 + 0.1, math.Pi + 0.1, 3*math.Pi/2 + 0.1},
			wantNecessary:  true,
			wantSufficient: false,
		},
		{
			name: "one per octant meets both",
			dirs: []float64{
				0.1, math.Pi/4 + 0.1, math.Pi/2 + 0.1, 3*math.Pi/4 + 0.1,
				math.Pi + 0.1, 5*math.Pi/4 + 0.1, 3*math.Pi/2 + 0.1, 7*math.Pi/4 + 0.1,
			},
			wantNecessary:  true,
			wantSufficient: true,
		},
		{
			name:           "empty quadrant fails necessary",
			dirs:           []float64{0.1, math.Pi/2 + 0.1, math.Pi + 0.1},
			wantNecessary:  false,
			wantSufficient: false,
		},
		{
			name:           "no cameras",
			dirs:           nil,
			wantNecessary:  false,
			wantSufficient: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := checkerFor(t, theta, camerasAt(p, tt.dirs...))
			if got := c.MeetsNecessary(p); got != tt.wantNecessary {
				t.Errorf("MeetsNecessary = %v, want %v", got, tt.wantNecessary)
			}
			if got := c.MeetsSufficient(p); got != tt.wantSufficient {
				t.Errorf("MeetsSufficient = %v, want %v", got, tt.wantSufficient)
			}
		})
	}
}

func TestNecessaryButNotFullView(t *testing.T) {
	// Section VI-C / Figure 9 (left): a point can satisfy the anchored
	// necessary condition yet fail full-view coverage when two adjacent
	// sensors inside their sectors are more than 2θ apart.
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 4
	// One camera near the *end* of each 2θ quadrant sector: gaps between
	// consecutive cameras stay π/2, except engineered: put first camera
	// early in sector 1 and the second late in sector 2.
	dirs := []float64{
		0.05,              // sector [0, π/2]
		math.Pi - 0.05,    // sector [π/2, π], near its end
		math.Pi + 0.1,     // sector [π, 3π/2]
		3*math.Pi/2 + 0.1, // sector [3π/2, 2π]
	}
	c := checkerFor(t, theta, camerasAt(p, dirs...))
	if !c.MeetsNecessary(p) {
		t.Fatal("construction should meet the necessary condition")
	}
	// Gap between 0.05 and π-0.05 is π-0.1 > 2θ = π/2.
	if c.FullViewCovered(p) {
		t.Error("point should not be full-view covered: gap exceeds 2θ")
	}
}

func TestKCoverage(t *testing.T) {
	p := geom.V(0.5, 0.5)
	c := checkerFor(t, math.Pi/4, camerasAt(p, 0, 1, 2))
	if got := c.CoverageCount(p); got != 3 {
		t.Fatalf("CoverageCount = %d, want 3", got)
	}
	for k, want := range map[int]bool{0: true, 1: true, 3: true, 4: false} {
		if got := c.KCovered(p, k); got != want {
			t.Errorf("KCovered(%d) = %v, want %v", k, got, want)
		}
	}
	// A far-away point is covered by nobody.
	far := geom.V(0.5, 0.9)
	if c.KCovered(far, 1) {
		t.Error("far point should not be 1-covered")
	}
	if !c.KCovered(far, 0) {
		t.Error("0-coverage is vacuously true")
	}
}

func TestReportConsistency(t *testing.T) {
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: math.Pi},
		sensor.GroupSpec{Fraction: 0.5, Radius: 0.3, Aperture: math.Pi / 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 300, rng.New(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(22, 0)
	for trial := 0; trial < 300; trial++ {
		p := geom.V(r.Float64(), r.Float64())
		rep := c.Report(p)
		if rep.FullView != c.FullViewCovered(p) {
			t.Fatalf("trial %d: Report.FullView inconsistent", trial)
		}
		if rep.Necessary != c.MeetsNecessary(p) {
			t.Fatalf("trial %d: Report.Necessary inconsistent", trial)
		}
		if rep.Sufficient != c.MeetsSufficient(p) {
			t.Fatalf("trial %d: Report.Sufficient inconsistent", trial)
		}
		if rep.NumCovering != c.CoverageCount(p) {
			t.Fatalf("trial %d: Report.NumCovering inconsistent", trial)
		}
	}
}

// TestImplicationChain is the central invariant of the paper's geometry:
// sufficient condition ⇒ full-view coverage ⇒ necessary condition, for
// every point, network, and θ.
func TestImplicationChain(t *testing.T) {
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.3, Radius: 0.15, Aperture: math.Pi},
		sensor.GroupSpec{Fraction: 0.7, Radius: 0.25, Aperture: 2 * math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	thetas := []float64{math.Pi / 6, math.Pi / 4, 0.3 * math.Pi, math.Pi / 2, 0.8 * math.Pi, math.Pi}
	for seed := uint64(0); seed < 4; seed++ {
		net, err := deploy.Uniform(geom.UnitTorus, profile, 400, rng.New(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		for _, theta := range thetas {
			c, err := NewChecker(net, theta)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(seed, 77)
			for trial := 0; trial < 200; trial++ {
				p := geom.V(r.Float64(), r.Float64())
				rep := c.Report(p)
				if rep.Sufficient && !rep.FullView {
					t.Fatalf("seed %d θ=%v: sufficient but not full-view at %v", seed, theta, p)
				}
				if rep.FullView && !rep.Necessary {
					t.Fatalf("seed %d θ=%v: full-view but necessary fails at %v", seed, theta, p)
				}
			}
		}
	}
}

// TestNecessaryImpliesMinimumCameraCount checks the paper's remark that
// the necessary condition requires at least ⌊π/θ⌋ covering cameras (one
// per disjoint full 2θ sector).
func TestNecessaryImpliesMinimumCameraCount(t *testing.T) {
	profile, err := sensor.Homogeneous(0.3, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{math.Pi / 5, math.Pi / 3, math.Pi / 2} {
		minCams := int(math.Pi / theta)
		net, err := deploy.Uniform(geom.UnitTorus, profile, 200, rng.New(3, 0))
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewChecker(net, theta)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(4, 0)
		for trial := 0; trial < 200; trial++ {
			p := geom.V(r.Float64(), r.Float64())
			if c.MeetsNecessary(p) && c.CoverageCount(p) < minCams {
				t.Fatalf("θ=%v: necessary condition held with only %d < %d cameras",
					theta, c.CoverageCount(p), minCams)
			}
		}
	}
}

func TestNewCheckerFromIndexSharesIndex(t *testing.T) {
	profile, err := sensor.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 100, rng.New(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewCheckerFromSource(base.Index(), math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if other.Index() != base.Index() {
		t.Error("index not shared")
	}
	p := geom.V(0.25, 0.75)
	if base.CoverageCount(p) != other.CoverageCount(p) {
		t.Error("coverage counts differ across shared index")
	}
}
