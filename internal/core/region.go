package core

import (
	"encoding/json"

	"fullview/internal/geom"
)

// PointReport is the full coverage diagnosis of a single point.
type PointReport struct {
	// NumCovering is the number of cameras covering the point.
	NumCovering int
	// MaxGap is the widest circular gap between viewed directions of
	// covering cameras (2π when fewer than two cameras cover the point).
	MaxGap float64
	// FullView reports whether the point is full-view covered.
	FullView bool
	// Necessary reports whether the geometric necessary condition holds.
	Necessary bool
	// Sufficient reports whether the geometric sufficient condition holds.
	Sufficient bool
}

// Report diagnoses point p in one pass over its covering cameras.
func (c *Checker) Report(p geom.Vec) PointReport {
	dirs := c.viewedDirections(p)
	// Occupancy first: it reads the raw directions, while the in-place
	// gap computation normalizes and sorts the buffer.
	necessary := c.necessary.allOccupied(dirs)
	sufficient := c.sufficient.allOccupied(dirs)
	gap, _ := geom.MaxCircularGapInPlace(dirs)
	return PointReport{
		NumCovering: len(dirs),
		MaxGap:      gap,
		FullView:    len(dirs) > 0 && gap <= 2*c.theta,
		Necessary:   necessary,
		Sufficient:  sufficient,
	}
}

// RegionStats aggregates coverage over a set of sample points (normally
// the paper's dense grid, which stands in for the whole area).
type RegionStats struct {
	// Points is the number of sample points examined.
	Points int
	// FullView, Necessary, Sufficient count points passing each test.
	FullView   int
	Necessary  int
	Sufficient int
	// MinCovering / MeanCovering summarize k-coverage multiplicity.
	MinCovering  int
	MeanCovering float64
	// totalCovering carries the exact integer covering-count sum so that
	// Merge can recompute MeanCovering without floating-point drift —
	// merged stats are bit-identical to a sequential sweep.
	totalCovering int
}

// observe folds one point report into the aggregate.
func (s *RegionStats) observe(r PointReport) {
	if s.Points == 0 || r.NumCovering < s.MinCovering {
		s.MinCovering = r.NumCovering
	}
	s.Points++
	s.totalCovering += r.NumCovering
	if r.FullView {
		s.FullView++
	}
	if r.Necessary {
		s.Necessary++
	}
	if r.Sufficient {
		s.Sufficient++
	}
	s.MeanCovering = float64(s.totalCovering) / float64(s.Points)
}

// Merge combines two partial aggregates over disjoint point sets, as
// produced by surveying two halves of a region. Merging the chunk
// aggregates of a parallel sweep in chunk order reproduces the
// sequential sweep's statistics exactly, including MeanCovering (the
// integer covering-count sum is carried internally and re-divided).
func (s RegionStats) Merge(other RegionStats) RegionStats {
	if other.Points == 0 {
		return s
	}
	if s.Points == 0 {
		return other
	}
	if other.MinCovering < s.MinCovering {
		s.MinCovering = other.MinCovering
	}
	s.Points += other.Points
	s.FullView += other.FullView
	s.Necessary += other.Necessary
	s.Sufficient += other.Sufficient
	s.totalCovering += other.totalCovering
	s.MeanCovering = float64(s.totalCovering) / float64(s.Points)
	return s
}

// FullViewFraction returns the fraction of sample points that are
// full-view covered — by the paper's expectation argument (Section V),
// the empirical analogue of the probability that an arbitrary point is
// covered.
func (s RegionStats) FullViewFraction() float64 { return fraction(s.FullView, s.Points) }

// NecessaryFraction returns the fraction of points meeting the necessary
// condition.
func (s RegionStats) NecessaryFraction() float64 { return fraction(s.Necessary, s.Points) }

// SufficientFraction returns the fraction of points meeting the
// sufficient condition.
func (s RegionStats) SufficientFraction() float64 { return fraction(s.Sufficient, s.Points) }

// AllFullView reports whether every sample point is full-view covered —
// the event ("the dense grid is full-view covered") whose asymptotic
// probability Theorems 1 and 2 bound.
func (s RegionStats) AllFullView() bool { return s.FullView == s.Points }

// AllNecessary reports whether every point meets the necessary condition
// (the paper's event H_N).
func (s RegionStats) AllNecessary() bool { return s.Necessary == s.Points }

// AllSufficient reports whether every point meets the sufficient
// condition (the paper's event H_S).
func (s RegionStats) AllSufficient() bool { return s.Sufficient == s.Points }

func fraction(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

// regionStatsJSON is the serialized form of RegionStats. The exact
// integer covering-count sum travels explicitly so that stats restored
// from a checkpoint journal merge bit-identically to never-serialized
// ones; MeanCovering is derived, not stored.
type regionStatsJSON struct {
	Points        int `json:"points"`
	FullView      int `json:"fullView"`
	Necessary     int `json:"necessary"`
	Sufficient    int `json:"sufficient"`
	MinCovering   int `json:"minCovering"`
	TotalCovering int `json:"totalCovering"`
}

// MarshalJSON implements json.Marshaler. All serialized fields are
// integers, so the round-trip is exact — a requirement of the
// checkpoint/resume guarantee that resumed experiment results are
// bit-identical to uninterrupted ones.
func (s RegionStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(regionStatsJSON{
		Points:        s.Points,
		FullView:      s.FullView,
		Necessary:     s.Necessary,
		Sufficient:    s.Sufficient,
		MinCovering:   s.MinCovering,
		TotalCovering: s.totalCovering,
	})
}

// UnmarshalJSON implements json.Unmarshaler; see MarshalJSON.
func (s *RegionStats) UnmarshalJSON(data []byte) error {
	var v regionStatsJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*s = RegionStats{
		Points:        v.Points,
		FullView:      v.FullView,
		Necessary:     v.Necessary,
		Sufficient:    v.Sufficient,
		MinCovering:   v.MinCovering,
		totalCovering: v.TotalCovering,
	}
	if v.Points > 0 {
		s.MeanCovering = float64(v.TotalCovering) / float64(v.Points)
	}
	return nil
}

// SurveyRegion evaluates every sample point and aggregates the results.
// It is the single-worker case of SurveyRegionParallel; both run
// through the internal/sweep engine and produce identical statistics.
func (c *Checker) SurveyRegion(points []geom.Vec) RegionStats {
	return c.SurveyRegionParallel(points, 1)
}

// FirstFullViewGap scans the sample points and returns the first point
// that is not full-view covered together with a witness unsafe facing
// direction. found is false when every point is covered.
func (c *Checker) FirstFullViewGap(points []geom.Vec) (p geom.Vec, unsafeDir float64, found bool) {
	for _, pt := range points {
		if dir, bad := c.UnsafeDirection(pt); bad {
			return pt, dir, true
		}
	}
	return geom.Vec{}, 0, false
}
