package core

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func denseRandomChecker(t *testing.T, n int, theta float64, seed uint64) *Checker {
	t.Helper()
	profile, err := sensor.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, theta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSurveyRegionCountsMatchPerPointChecks(t *testing.T) {
	c := denseRandomChecker(t, 500, math.Pi/4, 31)
	points, err := deploy.GridPoints(geom.UnitTorus, 15)
	if err != nil {
		t.Fatal(err)
	}
	stats := c.SurveyRegion(points)
	if stats.Points != len(points) {
		t.Fatalf("Points = %d, want %d", stats.Points, len(points))
	}
	fullView, necessary, sufficient, minCov, total := 0, 0, 0, math.MaxInt, 0
	for _, p := range points {
		rep := c.Report(p)
		if rep.FullView {
			fullView++
		}
		if rep.Necessary {
			necessary++
		}
		if rep.Sufficient {
			sufficient++
		}
		if rep.NumCovering < minCov {
			minCov = rep.NumCovering
		}
		total += rep.NumCovering
	}
	if stats.FullView != fullView || stats.Necessary != necessary || stats.Sufficient != sufficient {
		t.Errorf("stats counts = %+v, want fv=%d nec=%d suf=%d", stats, fullView, necessary, sufficient)
	}
	if stats.MinCovering != minCov {
		t.Errorf("MinCovering = %d, want %d", stats.MinCovering, minCov)
	}
	wantMean := float64(total) / float64(len(points))
	if math.Abs(stats.MeanCovering-wantMean) > 1e-12 {
		t.Errorf("MeanCovering = %v, want %v", stats.MeanCovering, wantMean)
	}
}

func TestSurveyRegionOrderingInvariant(t *testing.T) {
	// Fraction ordering mirrors the implication chain:
	// sufficient ≤ full-view ≤ necessary.
	for seed := uint64(0); seed < 5; seed++ {
		c := denseRandomChecker(t, 400, math.Pi/3, seed)
		points, err := deploy.GridPoints(geom.UnitTorus, 20)
		if err != nil {
			t.Fatal(err)
		}
		s := c.SurveyRegion(points)
		if s.Sufficient > s.FullView || s.FullView > s.Necessary {
			t.Errorf("seed %d: ordering violated: suf=%d fv=%d nec=%d",
				seed, s.Sufficient, s.FullView, s.Necessary)
		}
	}
}

func TestSurveyRegionEmpty(t *testing.T) {
	c := denseRandomChecker(t, 10, math.Pi/4, 1)
	s := c.SurveyRegion(nil)
	if s.Points != 0 || s.MeanCovering != 0 {
		t.Errorf("empty survey = %+v", s)
	}
	if s.FullViewFraction() != 0 || s.NecessaryFraction() != 0 || s.SufficientFraction() != 0 {
		t.Error("fractions of an empty survey should be 0")
	}
	if !s.AllFullView() || !s.AllNecessary() || !s.AllSufficient() {
		t.Error("vacuous all-coverage on empty point set should hold")
	}
}

func TestRegionStatsFractions(t *testing.T) {
	s := RegionStats{Points: 10, FullView: 5, Necessary: 8, Sufficient: 2}
	if got := s.FullViewFraction(); got != 0.5 {
		t.Errorf("FullViewFraction = %v", got)
	}
	if got := s.NecessaryFraction(); got != 0.8 {
		t.Errorf("NecessaryFraction = %v", got)
	}
	if got := s.SufficientFraction(); got != 0.2 {
		t.Errorf("SufficientFraction = %v", got)
	}
	if s.AllFullView() {
		t.Error("AllFullView should be false at 5/10")
	}
	full := RegionStats{Points: 3, FullView: 3, Necessary: 3, Sufficient: 3}
	if !full.AllFullView() || !full.AllNecessary() || !full.AllSufficient() {
		t.Error("all-covered stats should report true")
	}
}

func TestFirstFullViewGap(t *testing.T) {
	// Dense omnidirectional cameras cover everything; then an empty
	// network covers nothing.
	profile, err := sensor.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 3000, rng.New(77, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found := c.FirstFullViewGap(points); found {
		t.Error("dense omnidirectional network should leave no gap")
	}

	emptyNet, err := sensor.NewNetwork(geom.UnitTorus, nil)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := NewChecker(emptyNet, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	p, _, found := ec.FirstFullViewGap(points)
	if !found {
		t.Fatal("empty network must report a gap")
	}
	if p != points[0] {
		t.Errorf("first gap at %v, want first point %v", p, points[0])
	}
}
